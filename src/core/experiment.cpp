#include "core/experiment.hpp"

#include <cmath>

#include "stencil/futurized.hpp"
#include "threads/thread_manager.hpp"
#include "topo/topology.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace gran::core {

native_backend::native_backend(std::string policy) : policy_(std::move(policy)) {}

run_measurement native_backend::run(const stencil::params& p, int cores) {
  scheduler_config cfg;
  cfg.num_workers = cores;
  cfg.policy = policy_;
  cfg.pin_workers = topology::host().num_cpus() >= cores;

  thread_manager tm(cfg);
  tm.reset_counters();
  const auto before = tm.counter_totals();

  const auto result = stencil::run_futurized(tm, p);

  // run_futurized returns when the results are ready, which is signalled
  // from *inside* the final tasks' completion path; drain fully so the
  // counter totals include every task's accounting.
  tm.wait_idle();
  const auto after = tm.counter_totals();

  run_measurement meas;
  meas.exec_time_s = result.elapsed_s;
  meas.cores = cores;
  meas.tasks = after.tasks_executed - before.tasks_executed;
  meas.phases = after.phases_executed - before.phases_executed;
  meas.exec_ns = static_cast<double>(after.exec_ns - before.exec_ns);
  meas.func_ns = static_cast<double>(after.func_ns - before.func_ns);
  meas.pending_accesses = after.queues.pending_accesses - before.queues.pending_accesses;
  meas.pending_misses = after.queues.pending_misses - before.queues.pending_misses;
  meas.staged_accesses = after.queues.staged_accesses - before.queues.staged_accesses;
  meas.staged_misses = after.queues.staged_misses - before.queues.staged_misses;
  return meas;
}

std::vector<std::size_t> granularity_sweep(std::size_t lo, std::size_t hi, int per_decade) {
  std::vector<std::size_t> sizes;
  GRAN_ASSERT(lo >= 1 && hi >= lo && per_decade >= 1);
  const double step = std::pow(10.0, 1.0 / per_decade);
  double v = static_cast<double>(lo);
  std::size_t prev = 0;
  while (v <= static_cast<double>(hi) * 1.0001) {
    const auto s = static_cast<std::size_t>(std::llround(v));
    if (s != prev) {
      sizes.push_back(s);
      prev = s;
    }
    v *= step;
  }
  if (sizes.empty() || sizes.back() != hi) sizes.push_back(hi);
  return sizes;
}

granularity_experiment::granularity_experiment(experiment_backend& backend,
                                               sweep_config cfg)
    : backend_(backend), cfg_(std::move(cfg)) {}

std::vector<sweep_point> granularity_experiment::run(const progress_fn& progress) {
  // Baseline pass (Eq. 5 needs td measured on one core per partition size).
  if (cfg_.measure_baseline && td1_ns_.size() != cfg_.partition_sizes.size()) {
    td1_ns_.clear();
    td1_ns_.reserve(cfg_.partition_sizes.size());
    for (const std::size_t ps : cfg_.partition_sizes) {
      stencil::params p = cfg_.base;
      p.partition_size = ps;
      p.normalize();
      const run_measurement one = backend_.run(p, 1);
      td1_ns_.push_back(one.tasks ? one.exec_ns / static_cast<double>(one.tasks) : 0.0);
      GRAN_LOG_DEBUG("baseline td1(%zu) = %.1f ns", ps, td1_ns_.back());
    }
  }

  std::vector<sweep_point> points;
  points.reserve(cfg_.partition_sizes.size());

  for (std::size_t i = 0; i < cfg_.partition_sizes.size(); ++i) {
    stencil::params p = cfg_.base;
    p.partition_size = cfg_.partition_sizes[i];
    p.normalize();

    sweep_point point;
    point.partition_size = p.partition_size;
    point.cores = cfg_.cores;
    point.num_tasks = p.num_tasks();
    point.td1_ns = cfg_.measure_baseline && i < td1_ns_.size() ? td1_ns_[i] : 0.0;

    // Accumulate counter means over the samples (the paper computes metrics
    // from the average of the event counts, §II).
    run_measurement acc;
    acc.cores = cfg_.cores;
    for (int s = 0; s < cfg_.samples; ++s) {
      const run_measurement meas = backend_.run(p, cfg_.cores);
      point.exec_time_s.add(meas.exec_time_s);
      accumulate_measurement(acc, meas);
    }
    point.mean = average_measurement(acc, cfg_.samples);
    point.cov = point.exec_time_s.cov();
    point.m = compute_metrics(point.mean, point.td1_ns);

    if (progress) progress(point);
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace gran::core
