#include "core/tuner.hpp"

#include <algorithm>
#include <cmath>

#include "sync/latch.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace gran::core {

grain_tuner::grain_tuner(std::size_t initial_chunk, options opts)
    : opts_(opts), chunk_(std::clamp(initial_chunk, opts.min_chunk, opts.max_chunk)) {
  GRAN_ASSERT(opts_.min_chunk >= 1 && opts_.max_chunk >= opts_.min_chunk);
  GRAN_ASSERT(opts_.high_water > opts_.low_water);
}

std::size_t grain_tuner::update(double idle_rate, std::uint64_t tasks_in_interval,
                                int cores) {
  const std::size_t before = chunk_;

  if (idle_rate > opts_.high_water) {
    if (tasks_in_interval < static_cast<std::uint64_t>(std::max(1, cores)) * 2) {
      // Starvation regime: too few tasks to keep the cores busy — the only
      // fix granularity offers is *smaller* chunks.
      chunk_ = static_cast<std::size_t>(
          std::max(1.0, std::floor(static_cast<double>(chunk_) * opts_.shrink_factor)));
    } else {
      // Overhead regime: plenty of tasks but management dominates — coarsen.
      // Far above the watermark the chunk is orders of magnitude off, so
      // square the growth factor to converge in O(log) waves instead of
      // crawling doubling by doubling.
      const double factor = idle_rate > 0.5 + opts_.high_water / 2.0
                                ? opts_.grow_factor * opts_.grow_factor
                                : opts_.grow_factor;
      chunk_ = static_cast<std::size_t>(std::ceil(static_cast<double>(chunk_) * factor));
    }
  }
  // Inside the hysteresis band (or below low_water): hold. Idle-rate below
  // low_water means scheduling costs are already negligible; growing further
  // only risks load imbalance (paper §IV-A: idle-rate alone cannot locate
  // the optimum, so the controller is deliberately conservative here).

  chunk_ = std::clamp(chunk_, opts_.min_chunk, opts_.max_chunk);

  // Bounded history: keep the last history_limit decisions in a ring. The
  // old unbounded push_back leaked one record per wave for the lifetime of
  // a long-running controller.
  const decision d{idle_rate, before, chunk_};
  if (opts_.history_limit == 0) {
    ++dropped_;
  } else if (ring_.size() < opts_.history_limit) {
    ring_.push_back(d);
  } else {
    ring_[head_] = d;
    head_ = (head_ + 1) % opts_.history_limit;
    ++dropped_;
  }
  return chunk_;
}

std::vector<grain_tuner::decision> grain_tuner::history() const {
  std::vector<decision> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

adaptive_run_report adaptive_chunked_for_each(
    thread_manager& tm, std::size_t n, std::size_t initial_chunk,
    const std::function<void(std::size_t, std::size_t)>& fn, tuner_options opts,
    std::size_t wave_size) {
  grain_tuner tuner(initial_chunk, opts);
  adaptive_run_report report;

  // Default wave: enough items that every core sees several tasks even at
  // the current chunk size.
  const auto wave_items = [&]() -> std::size_t {
    if (wave_size != 0) return wave_size;
    return std::max<std::size_t>(tuner.chunk() * static_cast<std::size_t>(tm.num_workers()) * 4,
                                 tuner.chunk());
  };

  stopwatch clock;
  wave_probe probe;
  std::size_t next = 0;
  while (next < n) {
    const std::size_t wave_end = std::min(n, next + wave_items());
    const std::size_t chunk = tuner.chunk();
    const std::size_t num_tasks = (wave_end - next + chunk - 1) / chunk;

    const auto before = tm.counter_totals();

    // The wave's idle-rate interval closes inside the last finishing task
    // (wave_probe), not after the caller's done.wait() returns — the join
    // tail would otherwise count as idle time and bias the tuner toward
    // "too fine" on short waves.
    probe.arm(num_tasks);
    latch done(static_cast<std::int64_t>(num_tasks));
    for (std::size_t first = next; first < wave_end; first += chunk) {
      const std::size_t last = std::min(wave_end, first + chunk);
      tm.spawn(
          [&fn, &done, &probe, &tm, first, last] {
            fn(first, last);
            probe.task_done(tm);
            done.count_down();
          },
          task_priority::normal, "adaptive-chunk");
    }
    done.wait();

    const auto after = probe.end_or(tm.counter_totals());
    if (probe.clean()) ++report.clean_wave_snapshots;
    const double func = static_cast<double>(after.func_ns - before.func_ns);
    const double exec = static_cast<double>(after.exec_ns - before.exec_ns);
    const double idle_rate = func > 0.0 ? std::max(0.0, func - exec) / func : 0.0;
    const std::uint64_t tasks = after.tasks_executed - before.tasks_executed;

    tuner.update(idle_rate, tasks, tm.num_workers());
    ++report.waves;
    next = wave_end;
  }

  report.elapsed_s = clock.elapsed_s();
  report.final_chunk = tuner.chunk();
  report.decisions = tuner.history();
  return report;
}

}  // namespace gran::core
