// Adaptive grain-size tuner — the paper's stated goal ("the first step
// toward the goal of dynamically adapting task size"), built here as the
// natural extension of its metric methodology.
//
// The controller watches the idle-rate over measurement intervals and
// adjusts the chunk (partition) size between waves of work:
//   * idle-rate above `high_water`  -> tasks too fine, grow the chunk;
//   * idle-rate below `low_water` AND execution regressing -> chunk may be
//     too coarse (starvation shows up as idle-rate too, so also shrink when
//     there are fewer tasks than cores).
// A hysteresis band between the watermarks avoids oscillation.
//
// adaptive_chunked_for_each() demonstrates the controller end-to-end: it
// processes an index range in waves of chunked tasks, re-tuning the chunk
// size from live /threads counters after every wave.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "threads/thread_manager.hpp"

namespace gran::core {

struct tuner_options {
  double high_water = 0.30;   // paper §IV-A's workable threshold
  double low_water = 0.05;
  double grow_factor = 2.0;
  double shrink_factor = 0.5;
  std::size_t min_chunk = 1;
  std::size_t max_chunk = std::size_t{1} << 30;
  // Decisions retained for history(); older ones are dropped (and counted)
  // once the limit is reached, so a long-running controller cannot grow
  // without bound. 0 = keep nothing.
  std::size_t history_limit = 256;
};

class grain_tuner {
 public:
  using options = tuner_options;

  explicit grain_tuner(std::size_t initial_chunk, options opts = {});

  // Feeds one interval's observations; returns the chunk size to use next.
  // `tasks_in_interval` vs `cores` distinguishes fine-grain overhead (many
  // tasks, high idle-rate) from coarse-grain starvation (fewer tasks than
  // cores, also high idle-rate).
  std::size_t update(double idle_rate, std::uint64_t tasks_in_interval, int cores);

  std::size_t chunk() const noexcept { return chunk_; }

  struct decision {
    double idle_rate;
    std::size_t chunk_before;
    std::size_t chunk_after;
  };
  // The most recent decisions (up to opts.history_limit), oldest first.
  // Materialized from the internal ring on each call.
  std::vector<decision> history() const;
  // Decisions evicted from the ring because the limit was reached.
  std::uint64_t dropped_decisions() const noexcept { return dropped_; }

 private:
  options opts_;
  std::size_t chunk_;
  // Ring of the last history_limit decisions; head_ is the oldest slot once
  // the ring has wrapped.
  std::vector<decision> ring_;
  std::size_t head_ = 0;
  std::uint64_t dropped_ = 0;
};

struct adaptive_run_report {
  std::size_t final_chunk = 0;
  std::size_t waves = 0;
  double elapsed_s = 0.0;
  std::vector<grain_tuner::decision> decisions;
};

// Applies `fn(first, last)` over [0, n) in adaptively sized chunks, one wave
// at a time. Each wave spawns ceil(remaining_wave / chunk) tasks on `tm`,
// waits for them, then re-tunes the chunk from the interval's idle-rate.
adaptive_run_report adaptive_chunked_for_each(
    thread_manager& tm, std::size_t n, std::size_t initial_chunk,
    const std::function<void(std::size_t, std::size_t)>& fn,
    tuner_options opts = {}, std::size_t wave_size = 0);

}  // namespace gran::core
