// Adaptive grain-size tuner — the paper's stated goal ("the first step
// toward the goal of dynamically adapting task size"), built here as the
// natural extension of its metric methodology.
//
// The controller watches the idle-rate over measurement intervals and
// adjusts the chunk (partition) size between waves of work:
//   * idle-rate above `high_water`  -> tasks too fine, grow the chunk;
//   * idle-rate below `low_water` AND execution regressing -> chunk may be
//     too coarse (starvation shows up as idle-rate too, so also shrink when
//     there are fewer tasks than cores).
// A hysteresis band between the watermarks avoids oscillation.
//
// adaptive_chunked_for_each() demonstrates the controller end-to-end: it
// processes an index range in waves of chunked tasks, re-tuning the chunk
// size from live /threads counters after every wave.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "threads/thread_manager.hpp"

namespace gran::core {

// Wave-boundary counter probe — fixes the adaptive controller's staleness
// bias. The controller's interval used to be [before caller spawns, after
// caller wakes from the join]: that window includes the join tail (the last
// task's count_down racing the caller's wakeup, plus every worker spinning
// down while the caller is still parked), which inflates the measured
// idle-rate. On short waves the tail dominates, the controller diagnoses
// "tasks too fine" and grows the chunk it should have held. The probe closes
// the window at the instant the wave's *last finishing task* completes: each
// task calls task_done() just before its count_down, and the one that
// brings the count to zero snapshots the live counters from inside the
// worker — before the join tail exists.
class wave_probe {
 public:
  // Arms the probe for a wave of `tasks` tasks (re-armable between waves).
  void arm(std::size_t tasks) noexcept {
    ready_.store(false, std::memory_order_relaxed);
    remaining_.store(tasks, std::memory_order_release);
  }

  // Called by each task right before it signals the wave's latch; the last
  // caller stores the wave-end counter snapshot.
  void task_done(thread_manager& tm) noexcept {
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      end_ = tm.counter_totals();
      ready_.store(true, std::memory_order_release);
    }
  }

  // True once the last task stored its snapshot (always, barring a task that
  // skipped task_done).
  bool clean() const noexcept { return ready_.load(std::memory_order_acquire); }

  // The wave-end snapshot, or `fallback` (a caller-side reading, join tail
  // included) when none was stored.
  thread_manager::totals end_or(const thread_manager::totals& fallback) const noexcept {
    return clean() ? end_ : fallback;
  }

 private:
  std::atomic<std::size_t> remaining_{0};
  std::atomic<bool> ready_{false};
  thread_manager::totals end_{};
};

struct tuner_options {
  double high_water = 0.30;   // paper §IV-A's workable threshold
  double low_water = 0.05;
  double grow_factor = 2.0;
  double shrink_factor = 0.5;
  std::size_t min_chunk = 1;
  std::size_t max_chunk = std::size_t{1} << 30;
  // Decisions retained for history(); older ones are dropped (and counted)
  // once the limit is reached, so a long-running controller cannot grow
  // without bound. 0 = keep nothing.
  std::size_t history_limit = 256;
};

class grain_tuner {
 public:
  using options = tuner_options;

  explicit grain_tuner(std::size_t initial_chunk, options opts = {});

  // Feeds one interval's observations; returns the chunk size to use next.
  // `tasks_in_interval` vs `cores` distinguishes fine-grain overhead (many
  // tasks, high idle-rate) from coarse-grain starvation (fewer tasks than
  // cores, also high idle-rate).
  std::size_t update(double idle_rate, std::uint64_t tasks_in_interval, int cores);

  std::size_t chunk() const noexcept { return chunk_; }

  struct decision {
    double idle_rate;
    std::size_t chunk_before;
    std::size_t chunk_after;
  };
  // The most recent decisions (up to opts.history_limit), oldest first.
  // Materialized from the internal ring on each call.
  std::vector<decision> history() const;
  // Decisions evicted from the ring because the limit was reached.
  std::uint64_t dropped_decisions() const noexcept { return dropped_; }

 private:
  options opts_;
  std::size_t chunk_;
  // Ring of the last history_limit decisions; head_ is the oldest slot once
  // the ring has wrapped.
  std::vector<decision> ring_;
  std::size_t head_ = 0;
  std::uint64_t dropped_ = 0;
};

struct adaptive_run_report {
  std::size_t final_chunk = 0;
  std::size_t waves = 0;
  // Waves whose idle-rate interval was closed by the wave_probe (snapshot
  // taken inside the last finishing task, join tail excluded). Equal to
  // `waves` in a healthy run; tests assert it.
  std::size_t clean_wave_snapshots = 0;
  double elapsed_s = 0.0;
  std::vector<grain_tuner::decision> decisions;
};

// Applies `fn(first, last)` over [0, n) in adaptively sized chunks, one wave
// at a time. Each wave spawns ceil(remaining_wave / chunk) tasks on `tm`,
// waits for them, then re-tunes the chunk from the interval's idle-rate.
adaptive_run_report adaptive_chunked_for_each(
    thread_manager& tm, std::size_t n, std::size_t initial_chunk,
    const std::function<void(std::size_t, std::size_t)>& fn,
    tuner_options opts = {}, std::size_t wave_size = 0);

}  // namespace gran::core
