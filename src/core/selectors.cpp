#include "core/selectors.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gran::core {

namespace {

selection make_selection(const std::vector<sweep_point>& sweep, std::size_t index) {
  const double best = best_exec_time(sweep).exec_time_s;
  selection s;
  s.index = index;
  s.partition_size = sweep[index].partition_size;
  s.exec_time_s = sweep[index].exec_time_s.mean();
  s.regret = best > 0.0 ? s.exec_time_s / best - 1.0 : 0.0;
  return s;
}

}  // namespace

selection best_exec_time(const std::vector<sweep_point>& sweep) {
  GRAN_ASSERT_MSG(!sweep.empty(), "selector over an empty sweep");
  std::size_t best = 0;
  for (std::size_t i = 1; i < sweep.size(); ++i)
    if (sweep[i].exec_time_s.mean() < sweep[best].exec_time_s.mean()) best = i;
  selection s;
  s.index = best;
  s.partition_size = sweep[best].partition_size;
  s.exec_time_s = sweep[best].exec_time_s.mean();
  s.regret = 0.0;
  return s;
}

std::optional<selection> idle_rate_threshold(const std::vector<sweep_point>& sweep,
                                             double threshold) {
  GRAN_ASSERT_MSG(!sweep.empty(), "selector over an empty sweep");
  // Scan from the finest grain upward; the paper wants the *smallest*
  // acceptable partition size.
  std::vector<std::size_t> order(sweep.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sweep[a].partition_size < sweep[b].partition_size;
  });
  for (const std::size_t i : order)
    if (sweep[i].m.idle_rate <= threshold) return make_selection(sweep, i);
  return std::nullopt;
}

selection pending_queue_minimum(const std::vector<sweep_point>& sweep) {
  GRAN_ASSERT_MSG(!sweep.empty(), "selector over an empty sweep");
  std::size_t best = 0;
  for (std::size_t i = 1; i < sweep.size(); ++i)
    if (sweep[i].mean.pending_accesses < sweep[best].mean.pending_accesses) best = i;
  return make_selection(sweep, best);
}

}  // namespace gran::core
