// Granularity sweeps over parameterized task graphs (src/graph) — the
// Task-Bench-style generalization of the stencil experiment driver.
//
// The granularity axis here is the kernel grain (ns of work per task)
// rather than the partition size: the dependence structure is fixed by the
// graph_spec while the task size sweeps, which is exactly the paper's
// independent variable isolated from the problem decomposition. Both
// backends execute the *same* DAG — natively via dataflow futurization, or
// on the modeled machine via the discrete-event simulator — and report the
// observed task/edge counts so the two executions can be cross-checked
// exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "graph/kernels.hpp"
#include "graph/spec.hpp"
#include "util/stats.hpp"

namespace gran::core {

// What one graph execution reports: the usual counter measurement plus the
// DAG shape actually realized (for native-vs-sim agreement checks).
struct graph_run_result {
  run_measurement m;
  std::uint64_t tasks = 0;  // tasks executed (== spec total_tasks())
  std::uint64_t edges = 0;  // dependence edges wired/signaled (== total_edges())
};

// Runs one (graph, kernel, cores) configuration.
class graph_backend {
 public:
  virtual ~graph_backend() = default;
  virtual std::string name() const = 0;
  virtual graph_run_result run(const graph::graph_spec& g,
                               const graph::kernel_spec& k, int cores) = 0;
};

// Native backend: real thread_manager + futurized DAG on this host. A fresh
// manager is built per run; counters are reset per run.
class native_graph_backend final : public graph_backend {
 public:
  // `window` bounds live dataflow rows as in graph::futurize_dag (0: none).
  explicit native_graph_backend(std::string policy = "priority-local-fifo",
                                std::size_t window = 0);
  std::string name() const override { return "native(" + policy_ + ")"; }
  graph_run_result run(const graph::graph_spec& g, const graph::kernel_spec& k,
                       int cores) override;

 private:
  std::string policy_;
  std::size_t window_;
};

struct graph_sweep_config {
  graph::graph_spec graph;         // fixed dependence structure
  graph::kernel_spec kernel;       // grain_ns overwritten per sweep point
  std::vector<double> grains_ns;   // granularity axis (work per task, ns)
  int cores = 1;
  int samples = 3;                 // paper: 10
  bool measure_baseline = true;    // 1-core td1 pass for Eqs. 5/6
};

// One point of the sweep: all samples of one kernel grain.
struct graph_sweep_point {
  double grain_ns = 0.0;
  int cores = 1;
  std::uint64_t num_tasks = 0;
  std::uint64_t num_edges = 0;

  sample_stats exec_time_s;    // across samples
  double cov = 0.0;

  run_measurement mean;        // counters averaged over samples
  double td1_ns = 0.0;         // 1-core task duration baseline
  metrics m;                   // derived metrics (Eqs. 1–6)
};

// Geometric series of kernel grains from `lo_ns` to `hi_ns`, `per_decade`
// points per decade — mirrors granularity_sweep on the time axis.
std::vector<double> grain_sweep_ns(double lo_ns, double hi_ns,
                                   int per_decade = 4);

class graph_granularity_experiment {
 public:
  using progress_fn = std::function<void(const graph_sweep_point&)>;

  graph_granularity_experiment(graph_backend& backend, graph_sweep_config cfg);

  // Runs the full sweep; invokes `progress` after each completed point.
  std::vector<graph_sweep_point> run(const progress_fn& progress = nullptr);

  // Baseline pass: task durations td1 on one core per grain (measured once,
  // reusable across core counts).
  const std::vector<double>& baselines() const { return td1_ns_; }
  void set_baselines(std::vector<double> td1_ns) { td1_ns_ = std::move(td1_ns); }

 private:
  graph_backend& backend_;
  graph_sweep_config cfg_;
  std::vector<double> td1_ns_;
};

}  // namespace gran::core
