// Runtime policy engine — the APEX-style component the paper's §VI plans to
// drive with its metrics ("apply our findings to drive the policy engine
// with our metrics for adapting thread granularity and scheduling
// policies").
//
// A background thread samples a set of performance counters on a fixed
// period and hands each registered policy the *interval* since the previous
// tick (monotonic counters arrive as deltas, gauges/rates as end values —
// exactly the semantics of perf::interval). Policies react by invoking
// application callbacks: changing a grain-size knob, logging, flipping a
// scheduler parameter.
//
// A ready-made granularity policy wires the paper's idle-rate threshold to
// a grain_tuner, turning §IV-A's observation into a closed control loop.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/tuner.hpp"
#include "perf/sampler.hpp"

namespace gran::core {

struct policy_engine_options {
  std::chrono::milliseconds period{50};
};

class policy_engine {
 public:
  using options = policy_engine_options;

  // A policy sees the counter interval of the last period and the engine's
  // tick number.
  using policy_fn = std::function<void(const perf::interval&, std::uint64_t tick)>;

  explicit policy_engine(options opts = {});
  ~policy_engine();  // stops and joins

  policy_engine(const policy_engine&) = delete;
  policy_engine& operator=(const policy_engine&) = delete;

  // Registers a policy evaluated every period. `counters` lists the paths
  // the policy needs (they are sampled together each tick). Must be called
  // before start().
  void add_policy(std::string name, std::vector<std::string> counters, policy_fn fn);

  void start();
  void stop();
  bool running() const noexcept { return running_.load(std::memory_order_acquire); }

  // Ticks evaluated so far.
  std::uint64_t ticks() const noexcept { return ticks_.load(std::memory_order_acquire); }

 private:
  void engine_main();

  struct policy {
    std::string name;
    std::vector<std::string> counters;
    policy_fn fn;
  };

  options opts_;
  std::vector<policy> policies_;
  std::vector<std::string> all_counters_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> ticks_{0};
};

// The paper's granularity control loop as a pre-packaged policy: watches
// /threads/idle-rate and /threads/count/cumulative over each interval,
// feeds them to a grain_tuner, and reports chunk-size changes through
// `on_change(new_chunk)`. Attach the returned policy with add_policy().
policy_engine::policy_fn make_granularity_policy(
    grain_tuner& tuner, int cores, std::function<void(std::size_t)> on_change);

// The counter paths the granularity policy needs.
std::vector<std::string> granularity_policy_counters();

}  // namespace gran::core
