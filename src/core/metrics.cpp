#include "core/metrics.hpp"

#include <algorithm>

namespace gran::core {

metrics compute_metrics(const run_measurement& run, double td1_ns) {
  metrics m;

  const double overhead_ns = std::max(0.0, run.func_ns - run.exec_ns);
  if (run.func_ns > 0.0) m.idle_rate = overhead_ns / run.func_ns;

  const double nt = static_cast<double>(run.tasks);
  const double nc = static_cast<double>(std::max(1, run.cores));
  if (nt > 0.0) {
    m.task_duration_ns = run.exec_ns / nt;   // Eq. 2
    m.task_overhead_ns = overhead_ns / nt;   // Eq. 3
    m.tm_overhead_s = m.task_overhead_ns * nt / nc * 1e-9;  // Eq. 4
    if (td1_ns > 0.0) {
      m.wait_per_task_ns = m.task_duration_ns - td1_ns;        // Eq. 5
      m.wait_time_s = m.wait_per_task_ns * nt / nc * 1e-9;     // Eq. 6
    }
  }
  m.tm_plus_wait_s = m.tm_overhead_s + m.wait_time_s;
  return m;
}

}  // namespace gran::core
