#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace gran::core {

metrics compute_metrics(const run_measurement& run, double td1_ns) {
  metrics m;

  const double overhead_ns = std::max(0.0, run.func_ns - run.exec_ns);
  if (run.func_ns > 0.0) m.idle_rate = overhead_ns / run.func_ns;

  const double nt = static_cast<double>(run.tasks);
  const double nc = static_cast<double>(std::max(1, run.cores));
  if (nt > 0.0) {
    m.task_duration_ns = run.exec_ns / nt;   // Eq. 2
    m.task_overhead_ns = overhead_ns / nt;   // Eq. 3
    m.tm_overhead_s = m.task_overhead_ns * nt / nc * 1e-9;  // Eq. 4
    if (td1_ns > 0.0) {
      m.wait_per_task_ns = m.task_duration_ns - td1_ns;        // Eq. 5
      m.wait_time_s = m.wait_per_task_ns * nt / nc * 1e-9;     // Eq. 6
    }
  }
  m.tm_plus_wait_s = m.tm_overhead_s + m.wait_time_s;
  return m;
}

void accumulate_measurement(run_measurement& acc, const run_measurement& m) {
  acc.exec_time_s += m.exec_time_s;
  acc.tasks += m.tasks;
  acc.phases += m.phases;
  acc.exec_ns += m.exec_ns;
  acc.func_ns += m.func_ns;
  acc.pending_accesses += m.pending_accesses;
  acc.pending_misses += m.pending_misses;
  acc.staged_accesses += m.staged_accesses;
  acc.staged_misses += m.staged_misses;
}

run_measurement average_measurement(run_measurement acc, int samples) {
  const auto n = static_cast<double>(std::max(1, samples));
  const auto mean_u64 = [n](std::uint64_t v) {
    return static_cast<std::uint64_t>(std::llround(static_cast<double>(v) / n));
  };
  acc.exec_time_s /= n;
  acc.tasks = mean_u64(acc.tasks);
  acc.phases = mean_u64(acc.phases);
  acc.exec_ns /= n;
  acc.func_ns /= n;
  acc.pending_accesses = mean_u64(acc.pending_accesses);
  acc.pending_misses = mean_u64(acc.pending_misses);
  acc.staged_accesses = mean_u64(acc.staged_accesses);
  acc.staged_misses = mean_u64(acc.staged_misses);
  return acc;
}

}  // namespace gran::core
