// The experiment driver of §II: sweep task granularity (partition size) and
// core count over the heat-diffusion benchmark, collect the performance
// counters, and compute the paper's metrics with mean / stddev / COV over
// repeated samples.
//
// The driver is backend-agnostic: the *native* backend executes the
// futurized stencil on the real runtime of this machine; the *simulator*
// backend (src/sim) executes the same dependency graph on a modeled machine
// (Haswell / Xeon Phi / ...). Both produce run_measurement, so every figure
// bench works in either mode.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "stencil/params.hpp"
#include "util/stats.hpp"

namespace gran::core {

// Runs one (partition size × cores) configuration and reports its raw
// measurement.
class experiment_backend {
 public:
  virtual ~experiment_backend() = default;
  virtual std::string name() const = 0;
  virtual run_measurement run(const stencil::params& p, int cores) = 0;
};

// Native backend: real thread_manager + futurized stencil on this host.
// A fresh manager is built per core count; counters are reset per run.
class native_backend final : public experiment_backend {
 public:
  // `policy` is a scheduling-policy name (threads/policy.hpp); pinning is
  // disabled automatically when the host is oversubscribed.
  explicit native_backend(std::string policy = "priority-local-fifo");
  std::string name() const override { return "native(" + policy_ + ")"; }
  run_measurement run(const stencil::params& p, int cores) override;

 private:
  std::string policy_;
};

struct sweep_config {
  stencil::params base;                       // total_points / time_steps / physics
  std::vector<std::size_t> partition_sizes;   // granularity axis
  int cores = 1;
  int samples = 3;                            // paper: 10
  bool measure_baseline = true;               // 1-core td1 pass for Eqs. 5/6
};

// One point of the sweep: all samples of one partition size.
struct sweep_point {
  std::size_t partition_size = 0;
  int cores = 1;
  std::uint64_t num_tasks = 0;

  sample_stats exec_time_s;    // across samples
  double cov = 0.0;            // COV of execution time (paper §IV)

  run_measurement mean;        // counters averaged over samples
  double td1_ns = 0.0;         // 1-core task duration baseline
  metrics m;                   // derived metrics (Eqs. 1–6)
};

// Geometric series of partition sizes from `lo` to `hi` (inclusive-ish),
// `per_decade` points per decade — the paper sweeps 160 .. 100 M.
std::vector<std::size_t> granularity_sweep(std::size_t lo, std::size_t hi,
                                           int per_decade = 4);

class granularity_experiment {
 public:
  using progress_fn = std::function<void(const sweep_point&)>;

  granularity_experiment(experiment_backend& backend, sweep_config cfg);

  // Runs the full sweep; invokes `progress` after each completed point.
  std::vector<sweep_point> run(const progress_fn& progress = nullptr);

  // Baseline pass: task durations td1 on one core per partition size
  // (measured once, reused across core counts — the paper's "one time cost
  // prior to data runs").
  const std::vector<double>& baselines() const { return td1_ns_; }
  void set_baselines(std::vector<double> td1_ns) { td1_ns_ = std::move(td1_ns); }

 private:
  experiment_backend& backend_;
  sweep_config cfg_;
  std::vector<double> td1_ns_;
};

}  // namespace gran::core
