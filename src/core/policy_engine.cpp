#include "core/policy_engine.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace gran::core {

policy_engine::policy_engine(options opts) : opts_(opts) {}

policy_engine::~policy_engine() { stop(); }

void policy_engine::add_policy(std::string name, std::vector<std::string> counters,
                               policy_fn fn) {
  GRAN_ASSERT_MSG(!running(), "add_policy before start()");
  for (const auto& c : counters)
    if (std::find(all_counters_.begin(), all_counters_.end(), c) == all_counters_.end())
      all_counters_.push_back(c);
  policies_.push_back(policy{std::move(name), std::move(counters), std::move(fn)});
}

void policy_engine::start() {
  GRAN_ASSERT_MSG(!running(), "policy engine already running");
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { engine_main(); });
}

void policy_engine::stop() {
  if (!running()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void policy_engine::engine_main() {
  perf::snapshot previous = perf::snapshot::capture_paths(all_counters_);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_.load(std::memory_order_acquire)) {
    if (cv_.wait_for(lock, opts_.period,
                     [this] { return stopping_.load(std::memory_order_acquire); }))
      break;
    lock.unlock();

    const perf::snapshot current = perf::snapshot::capture_paths(all_counters_);
    const perf::interval delta(previous, current);
    const std::uint64_t tick = ticks_.fetch_add(1, std::memory_order_acq_rel) + 1;
    for (const auto& p : policies_) {
      // Policies must not throw: they run on the engine thread.
      try {
        p.fn(delta, tick);
      } catch (const std::exception& e) {
        GRAN_LOG_ERROR("policy '%s' threw: %s", p.name.c_str(), e.what());
      }
    }
    previous = current;

    lock.lock();
  }
}

std::vector<std::string> granularity_policy_counters() {
  // Cumulative time counters, so the idle-rate can be computed *over the
  // interval* rather than since runtime start.
  return {"/threads/time/cumulative", "/threads/time/overall",
          "/threads/count/cumulative"};
}

policy_engine::policy_fn make_granularity_policy(
    grain_tuner& tuner, int cores, std::function<void(std::size_t)> on_change) {
  return [&tuner, cores, on_change = std::move(on_change)](const perf::interval& delta,
                                                           std::uint64_t /*tick*/) {
    // Interval idle-rate from the cumulative-time deltas (Eq. 1 over the
    // measurement window — the "any interval of interest" of paper §II-A).
    const double exec = delta.value("/threads/time/cumulative", 0.0);
    const double func = delta.value("/threads/time/overall", 0.0);
    const auto tasks = static_cast<std::uint64_t>(
        std::max(0.0, delta.value("/threads/count/cumulative", 0.0)));
    if (tasks == 0 || func <= 0.0) return;  // no activity: nothing to learn
    const double idle = std::max(0.0, func - exec) / func;
    const std::size_t before = tuner.chunk();
    const std::size_t after = tuner.update(idle, tasks, cores);
    if (after != before && on_change) on_change(after);
  };
}

}  // namespace gran::core
