// Grain-size selection rules derived from the paper's findings.
//
//  * idle-rate threshold (§IV-A): "an acceptable grain size can be
//    determined by setting a threshold for the idle-rate" — pick the
//    smallest partition size whose idle-rate is at or below the threshold
//    (smallest = finest grain that still schedules efficiently, preserving
//    load-balancing headroom).
//  * pending-queue minimum (§IV-E): pick the partition size minimizing the
//    pending-queue access count — a timestamp-free alternative for
//    platforms without cheap high-resolution clocks.
//  * best execution time: the oracle both rules are judged against.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/experiment.hpp"

namespace gran::core {

struct selection {
  std::size_t partition_size = 0;
  std::size_t index = 0;          // into the sweep
  double exec_time_s = 0.0;
  // Relative slowdown vs. the sweep's best execution time (0 = optimal).
  double regret = 0.0;
};

// Oracle: the sweep point with minimum mean execution time.
selection best_exec_time(const std::vector<sweep_point>& sweep);

// Smallest partition size with idle-rate <= threshold (paper uses 30%).
// Empty when no point satisfies the threshold.
std::optional<selection> idle_rate_threshold(const std::vector<sweep_point>& sweep,
                                             double threshold = 0.30);

// Partition size minimizing total pending-queue accesses.
selection pending_queue_minimum(const std::vector<sweep_point>& sweep);

}  // namespace gran::core
