// Closed-loop split controller — decides, from live runtime signals, when a
// running coarse task should give away the back half of its range
// (algo/splittable.hpp). This is the paper's idle-rate threshold (§IV-A,
// ~30%) turned from a measurement into an actuator: instead of the operator
// reading the counter and re-running with a different grain, the controller
// reads it online and splits work mid-run.
//
// Two signals, fused:
//   * instantaneous hunger — the number of workers currently starving
//     (thread_manager::starving_workers(), maintained edge-triggered off the
//     same had_work transition that emits the pending_miss trace event).
//     This is the fast path: a parked or probing-and-missing worker means
//     someone can use the back half of *this* task right now.
//   * latched pressure — a hysteresis gate over the measurement-interval
//     idle-rate (Eq. 1) fused with the pending-queue miss rate, reusing the
//     grain_tuner watermarks (core/tuner.hpp): the gate opens above
//     `high_water` (0.30) and only closes again below `low_water` (0.05),
//     so a workload that hovers around the threshold does not flap between
//     splitting and coasting.
//
// should_split() is the hot-path query (one relaxed load each of the gate
// and the hunger count); observe()/maybe_observe() feed the gate at a
// sampled cadence. All methods are thread-safe: many tasks poll one shared
// controller.
//
// Knobs: GRAN_SPLIT=0 disables splitting entirely; GRAN_SPLIT_MIN=<items>
// floors the child size (a range below 2× the floor is never split — the
// demand is counted as /threads/count/split-denied). See docs/ADAPTIVE.md.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "threads/thread_manager.hpp"
#include "util/env.hpp"

namespace gran::core {

enum class split_verdict {
  no_demand,  // nobody is hungry and the pressure gate is closed
  split,      // give away the back half now
  denied,     // demand exists but the remaining range is below 2×min_chunk
};

struct split_options {
  bool enabled = true;        // GRAN_SPLIT=0 turns the controller off
  std::size_t min_chunk = 64;  // GRAN_SPLIT_MIN: smallest child a split may produce
  double high_water = 0.30;   // pressure gate opens (paper §IV-A threshold)
  double low_water = 0.05;    // ... and latches until pressure falls below this
  // Items executed between demand polls inside a splittable task; the
  // response latency to a starving worker is at most poll_iters items.
  std::size_t poll_iters = 64;
  // Polls between idle-rate/miss-rate re-observations (counter_totals walks
  // every worker, so the gate is fed at a decimated cadence). 0 = never
  // observe; only instantaneous hunger drives splits.
  std::size_t observe_every = 256;
};

// Applies the GRAN_SPLIT / GRAN_SPLIT_MIN / GRAN_SPLIT_POLL environment
// overrides to `base`.
inline split_options resolve_split_options(split_options base = {}) {
  base.enabled = env_bool("GRAN_SPLIT", base.enabled);
  const std::int64_t m = env_int("GRAN_SPLIT_MIN", 0);
  if (m > 0) base.min_chunk = static_cast<std::size_t>(m);
  const std::int64_t p = env_int("GRAN_SPLIT_POLL", 0);
  if (p > 0) base.poll_iters = static_cast<std::size_t>(p);
  return base;
}

class split_controller {
 public:
  explicit split_controller(split_options opts = resolve_split_options())
      : opts_(opts) {
    if (opts_.min_chunk == 0) opts_.min_chunk = 1;
  }

  split_controller(const split_controller&) = delete;
  split_controller& operator=(const split_controller&) = delete;

  const split_options& options() const noexcept { return opts_; }
  std::size_t min_chunk() const noexcept { return opts_.min_chunk; }
  std::size_t poll_iters() const noexcept {
    return std::max<std::size_t>(1, opts_.poll_iters);
  }

  // Hot-path query: should a task with `remaining` items left split now,
  // given `starving` workers currently finding no work and `queued` tasks
  // already sitting unclaimed in queues? Existing supply counts against the
  // demand twice over: queued tasks will feed starving workers without any
  // split (a parked worker is "starving" for its whole OS wake-up latency
  // even when its own queue holds work), and splits already offered but not
  // yet claimed (note_split/note_claim) are queued work in flight. Splitting
  // past supply shreds the range for consumers that were never short of
  // work.
  split_verdict should_split(std::size_t remaining, int starving,
                             std::int64_t queued) noexcept {
    if (!opts_.enabled) return split_verdict::no_demand;
    const std::int64_t supply =
        std::max<std::int64_t>(queued, offers_.load(std::memory_order_relaxed));
    const bool demand = starving > supply ||
                        (supply == 0 && gate_.load(std::memory_order_relaxed));
    if (!demand) return split_verdict::no_demand;
    if (remaining < 2 * opts_.min_chunk) return split_verdict::denied;
    return split_verdict::split;
  }

  // A splitter calls note_split() when it gives away its back half; the
  // child calls note_claim() as its first action. In between, the offer
  // satisfies one unit of demand.
  void note_split() noexcept { offers_.fetch_add(1, std::memory_order_relaxed); }
  void note_claim() noexcept { offers_.fetch_sub(1, std::memory_order_relaxed); }
  std::int64_t outstanding_offers() const noexcept {
    return offers_.load(std::memory_order_relaxed);
  }

  // Feeds one observation interval into the hysteresis gate. Pure (no
  // runtime dependency): tests drive it with synthetic idle-rate traces.
  // `pressure` is the max of the interval's idle-rate and its pending-queue
  // miss rate — but idle time only counts when the interval also saw at
  // least one pending-queue miss. Idle without misses means workers were off
  // the CPU (oversubscription, OS preemption), not spinning on empty
  // queues; splitting cannot help that and would shred the range down to
  // min_chunk.
  void observe(double idle_rate, std::uint64_t pending_misses,
               std::uint64_t pending_accesses) noexcept {
    const double miss_rate =
        pending_accesses > 0
            ? static_cast<double>(pending_misses) / static_cast<double>(pending_accesses)
            : 0.0;
    const double pressure =
        pending_misses > 0 ? std::max(idle_rate, miss_rate) : 0.0;
    const bool open = gate_.load(std::memory_order_relaxed);
    if (!open && pressure > opts_.high_water) {
      gate_.store(true, std::memory_order_relaxed);
      opens_.fetch_add(1, std::memory_order_relaxed);
    } else if (open && pressure < opts_.low_water) {
      gate_.store(false, std::memory_order_relaxed);
      closes_.fetch_add(1, std::memory_order_relaxed);
    }
    observations_.fetch_add(1, std::memory_order_relaxed);
  }

  // Sampled live observation: every `observe_every` polls, one caller (the
  // others skip past a held try-lock) snapshots the manager's counters and
  // feeds the delta since the previous snapshot into observe().
  void maybe_observe(thread_manager& tm) noexcept {
    if (opts_.observe_every == 0 || !opts_.enabled) return;
    if (polls_.fetch_add(1, std::memory_order_relaxed) % opts_.observe_every != 0)
      return;
    if (observe_busy_.exchange(true, std::memory_order_acquire)) return;
    const thread_manager::totals now = tm.counter_totals();
    if (have_baseline_) {
      const double func = static_cast<double>(now.func_ns - last_.func_ns);
      const double exec = static_cast<double>(now.exec_ns - last_.exec_ns);
      const double idle = func > 0.0 ? std::max(0.0, func - exec) / func : 0.0;
      observe(idle, now.queues.pending_misses - last_.queues.pending_misses,
              now.queues.pending_accesses - last_.queues.pending_accesses);
    }
    last_ = now;
    have_baseline_ = true;
    observe_busy_.store(false, std::memory_order_release);
  }

  // Introspection (tests, reports).
  bool gate_open() const noexcept { return gate_.load(std::memory_order_relaxed); }
  std::uint64_t observations() const noexcept {
    return observations_.load(std::memory_order_relaxed);
  }
  std::uint64_t gate_opens() const noexcept {
    return opens_.load(std::memory_order_relaxed);
  }
  std::uint64_t gate_closes() const noexcept {
    return closes_.load(std::memory_order_relaxed);
  }

 private:
  split_options opts_;
  std::atomic<bool> gate_{false};
  std::atomic<std::int64_t> offers_{0};
  std::atomic<std::uint64_t> polls_{0};
  std::atomic<std::uint64_t> observations_{0};
  std::atomic<std::uint64_t> opens_{0};
  std::atomic<std::uint64_t> closes_{0};
  // Snapshot state, guarded by the observe_busy_ try-lock.
  std::atomic<bool> observe_busy_{false};
  thread_manager::totals last_{};
  bool have_baseline_ = false;
};

}  // namespace gran::core
