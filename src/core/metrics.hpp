// The paper's metric methodology (§II-A) — the primary contribution.
//
// From raw event counts of one measured run, compute:
//   idle-rate            Ir = (Σt_func − Σt_exec) / Σt_func            (Eq. 1)
//   task duration        td = Σt_exec / nt                              (Eq. 2)
//   task overhead        to = (Σt_func − Σt_exec) / nt                  (Eq. 3)
//   TM overhead per core To = to · nt / nc                              (Eq. 4)
//   wait time per task   tw = td − td1   (td1: same run on one core)    (Eq. 5)
//   wait time per core   Tw = (td − td1) · nt / nc                      (Eq. 6)
// Wait time may legitimately be negative for very coarse grains (caching
// effects make the 1-core duration larger, §II-A).
#pragma once

#include <cstdint>

namespace gran::core {

// Raw measurements of one experiment run (one partition size × core count).
// Produced by an experiment_backend: the native runtime fills it from the
// /threads/* performance counters, the simulator from its event counts.
struct run_measurement {
  double exec_time_s = 0.0;   // wall/virtual time of the measured section
  std::uint64_t tasks = 0;    // nt — HPX-threads executed
  std::uint64_t phases = 0;   // thread phases (≥ tasks)
  double exec_ns = 0.0;       // Σ t_exec
  double func_ns = 0.0;       // Σ t_func (⊇ exec)
  std::uint64_t pending_accesses = 0;
  std::uint64_t pending_misses = 0;
  std::uint64_t staged_accesses = 0;
  std::uint64_t staged_misses = 0;
  int cores = 1;              // nc
};

// Derived metrics. Durations in nanoseconds; aggregate costs in seconds to
// compare directly against exec_time_s (the paper's Figs. 7, 8 plot them on
// one axis).
struct metrics {
  double idle_rate = 0.0;           // Eq. 1, in [0, 1]
  double task_duration_ns = 0.0;    // Eq. 2
  double task_overhead_ns = 0.0;    // Eq. 3
  double tm_overhead_s = 0.0;       // Eq. 4 (To)
  double wait_per_task_ns = 0.0;    // Eq. 5 (tw) — needs the 1-core baseline
  double wait_time_s = 0.0;         // Eq. 6 (Tw)
  double tm_plus_wait_s = 0.0;      // To + Tw, the combined cost of §IV-D
};

// `td1_ns` is the task duration of the same configuration measured on one
// core (Eq. 5's baseline). Pass 0 to skip the wait-time metrics (they are
// then reported as 0 — e.g. for the 1-core run itself, where tw ≡ 0).
metrics compute_metrics(const run_measurement& run, double td1_ns);

// Sample averaging (the paper computes metrics from the *average* of the
// event counts over repeated samples, §II). Shared by every sweep driver.
void accumulate_measurement(run_measurement& acc, const run_measurement& m);
run_measurement average_measurement(run_measurement acc, int samples);

}  // namespace gran::core
