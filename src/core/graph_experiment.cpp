#include "core/graph_experiment.hpp"

#include <cmath>

#include "graph/executor.hpp"
#include "threads/thread_manager.hpp"
#include "topo/topology.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace gran::core {

native_graph_backend::native_graph_backend(std::string policy, std::size_t window)
    : policy_(std::move(policy)), window_(window) {}

graph_run_result native_graph_backend::run(const graph::graph_spec& g,
                                           const graph::kernel_spec& k,
                                           int cores) {
  scheduler_config cfg;
  cfg.num_workers = cores;
  cfg.policy = policy_;
  cfg.pin_workers = topology::host().num_cpus() >= cores;

  thread_manager tm(cfg);
  tm.reset_counters();
  const auto before = tm.counter_totals();

  const graph::run_stats stats = graph::run_graph(tm, g, k, window_);

  // run_graph returns when every task's future is ready, which is signalled
  // from *inside* the final tasks' completion path; drain fully so the
  // counter totals include every task's accounting.
  tm.wait_idle();
  const auto after = tm.counter_totals();

  graph_run_result r;
  r.tasks = stats.tasks;
  r.edges = stats.edges;
  r.m.exec_time_s = stats.elapsed_s;
  r.m.cores = cores;
  r.m.tasks = after.tasks_executed - before.tasks_executed;
  r.m.phases = after.phases_executed - before.phases_executed;
  r.m.exec_ns = static_cast<double>(after.exec_ns - before.exec_ns);
  r.m.func_ns = static_cast<double>(after.func_ns - before.func_ns);
  r.m.pending_accesses = after.queues.pending_accesses - before.queues.pending_accesses;
  r.m.pending_misses = after.queues.pending_misses - before.queues.pending_misses;
  r.m.staged_accesses = after.queues.staged_accesses - before.queues.staged_accesses;
  r.m.staged_misses = after.queues.staged_misses - before.queues.staged_misses;
  return r;
}

std::vector<double> grain_sweep_ns(double lo_ns, double hi_ns, int per_decade) {
  GRAN_ASSERT(lo_ns > 0.0 && hi_ns >= lo_ns && per_decade >= 1);
  std::vector<double> grains;
  const double step = std::pow(10.0, 1.0 / per_decade);
  for (double v = lo_ns; v <= hi_ns * 1.0001; v *= step) grains.push_back(v);
  if (grains.empty() || grains.back() < hi_ns * 0.9999) grains.push_back(hi_ns);
  return grains;
}

graph_granularity_experiment::graph_granularity_experiment(graph_backend& backend,
                                                           graph_sweep_config cfg)
    : backend_(backend), cfg_(std::move(cfg)) {}

std::vector<graph_sweep_point> graph_granularity_experiment::run(
    const progress_fn& progress) {
  // Baseline pass (Eq. 5 needs td measured on one core per grain).
  if (cfg_.measure_baseline && td1_ns_.size() != cfg_.grains_ns.size()) {
    td1_ns_.clear();
    td1_ns_.reserve(cfg_.grains_ns.size());
    for (const double grain : cfg_.grains_ns) {
      graph::kernel_spec k = cfg_.kernel;
      k.grain_ns = grain;
      const run_measurement one = backend_.run(cfg_.graph, k, 1).m;
      td1_ns_.push_back(one.tasks ? one.exec_ns / static_cast<double>(one.tasks) : 0.0);
      GRAN_LOG_DEBUG("baseline td1(grain %.0f ns) = %.1f ns", grain, td1_ns_.back());
    }
  }

  std::vector<graph_sweep_point> points;
  points.reserve(cfg_.grains_ns.size());

  for (std::size_t i = 0; i < cfg_.grains_ns.size(); ++i) {
    graph::kernel_spec k = cfg_.kernel;
    k.grain_ns = cfg_.grains_ns[i];

    graph_sweep_point point;
    point.grain_ns = k.grain_ns;
    point.cores = cfg_.cores;
    point.td1_ns = cfg_.measure_baseline && i < td1_ns_.size() ? td1_ns_[i] : 0.0;

    run_measurement acc;
    acc.cores = cfg_.cores;
    for (int s = 0; s < cfg_.samples; ++s) {
      const graph_run_result res = backend_.run(cfg_.graph, k, cfg_.cores);
      point.num_tasks = res.tasks;
      point.num_edges = res.edges;
      point.exec_time_s.add(res.m.exec_time_s);
      accumulate_measurement(acc, res.m);
    }
    point.mean = average_measurement(acc, cfg_.samples);
    point.cov = point.exec_time_s.cov();
    point.m = compute_metrics(point.mean, point.td1_ns);

    if (progress) progress(point);
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace gran::core
