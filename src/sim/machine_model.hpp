// Cost models of the paper's four experimental platforms (Table I) for the
// discrete-event simulator.
//
// Calibration anchors, taken from the paper itself (§IV-A and Figs. 3–10):
//   * Haswell:  td(12,500 points, 1 core) ≈ 21 µs  -> ~1.7 ns per point
//   * Xeon Phi: td(12,500 points, 1 core) ≈ 1.1 ms -> ~88 ns per point
//   * Haswell idle-rate ≈ 90 % at partition 160   -> ~2.5 µs management
//     cost per task (creation + conversion + queue ops + dependencies)
//   * Xeon Phi idle-rate ≈ 80 % at partition 1e3  -> ~300 µs per task
//   * Haswell 28-core execution-time floor ≈ 1.7 s at 100 M × 50 steps
//     -> memory-bandwidth bound: ~16 B/point streamed against ~70 GB/s
//   * wait time grows with cores and partition size (Fig. 6)
//     -> per-core effective bandwidth min(bw_core, bw_total/streams)
//   * wait time negative for partitions ≫ LLC (Figs. 7, 8)
//     -> the 1-core baseline pays a working-set penalty that parallel
//        runs avoid (single_core_bias_*)
// Absolute reproduction is not the goal (paper hardware ≠ simulator);
// the shapes and crossovers are.
#pragma once

#include <cstdint>
#include <string>

#include "topo/platform_spec.hpp"

namespace gran::sim {

struct machine_model {
  platform_spec spec;

  // --- computation ---------------------------------------------------------
  // Single-stream cost of one grid-point update (includes in-cache memory).
  double cpu_ns_per_point = 1.7;

  // --- task-management costs, ns per event (single-core baseline) ----------
  double task_create_ns = 80;     // staged description allocation + enqueue
  double task_convert_ns = 130;   // staged -> pending (context/stack attach)
  double queue_op_ns = 30;        // one pending/staged pop or push
  double task_switch_ns = 60;     // context switch in + out of a task
  double dependency_ns = 40;      // signalling one dependent future
  double steal_probe_ns = 80;     // probing another worker's queue
  double numa_penalty_ns = 200;   // extra when crossing NUMA domains

  // Shared-structure contention: allocator locks, queue cache-line
  // ping-pong, counter updates. Management events (create/convert/queue/
  // switch/dependency) cost base * (1 + contention_per_core * (cores - 1)).
  // This is what makes fine-grain idle-rate *rise with the core count*
  // (paper Figs. 4, 5) while single-core costs stay calibrated.
  double contention_per_core = 1.4;
  double idle_probe_ns = 500;     // one full fruitless work-search round
  // Idle workers spin for idle_spin_rounds searches per starvation episode,
  // then park until new work appears (the worker loop's backoff); this
  // bounds how fast the queue counters grow while starving.
  int idle_spin_rounds = 24;

  // The benchmark's main thread builds the dataflow tree serially while the
  // workers execute (one node per partition per step, in step-major order).
  // A task cannot exist before its node is constructed, which caps the task
  // supply rate at fine granularity.
  double construct_node_ns = 1'200;

  // --- memory model ---------------------------------------------------------
  // Streamed bytes per grid-point update beyond what caches absorb
  // (read previous partition + write next ≈ 2 × 8 B).
  double bytes_per_point = 16.0;
  double bw_total_gbps = 70.0;    // saturating node bandwidth
  double bw_core_gbps = 12.0;     // single-stream bandwidth

  // --- 1-core working-set penalty (negative-wait-time effect) --------------
  // Extra ns/point paid by a single core cycling the whole grid through its
  // cache once partitions exceed cache_anchor_bytes.
  double single_core_bias_ns = 0.5;
  double cache_anchor_bytes = 35.0 * 1024 * 1024;

  // Deterministic execution-time jitter amplitude (fraction, e.g. 0.03).
  double jitter = 0.03;

  // --- derived -------------------------------------------------------------
  // Execution time (ns) of one partition update of `points` grid points
  // when `active_streams` tasks execute concurrently machine-wide.
  double task_exec_ns(std::uint64_t points, int active_streams, int total_cores) const;

  // The 1-core baseline variant, including the working-set penalty.
  double task_exec_single_core_ns(std::uint64_t points, std::uint64_t total_points) const;
};

// Factory per paper platform (names: "sandy-bridge", "ivy-bridge",
// "haswell", "xeon-phi"). Throws std::invalid_argument on unknown names.
machine_model make_machine_model(const std::string& platform);

machine_model haswell_model();
machine_model ivy_bridge_model();
machine_model sandy_bridge_model();
machine_model xeon_phi_model();

}  // namespace gran::sim
