// Discrete-event simulator of the gran runtime executing the futurized
// heat-ring workload on a modeled machine.
//
// The simulator executes the *same scheduling algorithm* as the native
// Priority Local-FIFO policy — per-core dual staged/pending FIFO queues and
// the six-step NUMA-aware search order of Fig. 1 — over virtual time, with
// per-event costs from a machine_model. Task execution time follows the
// model's compute + bandwidth-contention law, so the paper's wait-time
// behaviour emerges from the simulation rather than being scripted.
//
// The workload is the dependency graph of HPX-Stencil (paper Fig. 2): task
// (t, b) becomes runnable when partitions b-1, b, b+1 of step t-1 complete;
// the completing core that satisfies the last dependency stages the
// dependent locally, exactly like the native dataflow() continuation.
#pragma once

#include <cstdint>

#include "core/metrics.hpp"
#include "sim/machine_model.hpp"
#include "stencil/params.hpp"

namespace gran::sim {

// Scheduling-policy variants for the ablation benches. The paper's
// measurements use priority_local (the default).
enum class sim_policy {
  priority_local,   // staged/pending dual queues, NUMA-aware 6-step search
  static_fifo,      // same queues, no stealing at all
  work_stealing,    // LIFO owner pop, FIFO steal, no staged stage
};

// What the simulated tasks are:
//   stencil      — the paper's benchmark: one task per partition per step,
//                  each depending on the three closest partitions of the
//                  previous step (Fig. 2);
//   independent  — the paper's "micro benchmarks" (§I-C): the same number
//                  of tasks of the same size with NO dependencies, created
//                  serially by the main thread. Isolates pure scheduling
//                  effects from the dataflow structure.
enum class sim_workload { stencil, independent };

struct sim_config {
  machine_model model;
  int cores = 1;               // simulated workers (clamped to model cores)
  stencil::params workload;
  std::uint64_t seed = 1;      // deterministic execution-time jitter
  sim_policy policy = sim_policy::priority_local;
  sim_workload workload_kind = sim_workload::stencil;
  // When false, the steal search ignores NUMA domains and probes every
  // victim in plain ring order (ablation_steal_order).
  bool numa_aware_steal = true;
};

struct sim_result {
  double makespan_s = 0.0;          // virtual time until the last completion
  core::run_measurement measurement;  // same schema the native backend fills
  std::uint64_t tasks_stolen = 0;
  std::uint64_t tasks_converted = 0;
  std::uint64_t edges_signaled = 0;  // dependency notifications delivered
};

// Runs one simulation. Deterministic for a fixed config.
sim_result simulate_stencil(const sim_config& cfg);

}  // namespace gran::sim
