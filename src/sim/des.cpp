#include "sim/des.hpp"

#include <algorithm>
#include <cstdint>

#include "sim/des_engine.hpp"
#include "util/assert.hpp"

namespace gran::sim {

namespace {

using detail::id_part;
using detail::id_step;
using detail::task_id;

// The heat-ring dependence structure (paper Fig. 2): task (t, b) depends on
// partitions b-1, b, b+1 of step t-1, periodic. `independent` drops every
// edge, turning it into the paper's micro benchmark (§I-C): same tasks,
// same sizes, no dataflow.
class stencil_workload {
 public:
  explicit stencil_workload(const sim_config& cfg)
      : model_(cfg.model),
        np_(cfg.workload.num_partitions()),
        steps_(cfg.workload.time_steps),
        points_(cfg.workload.partition_size),
        total_points_(cfg.workload.total_points),
        independent_(cfg.workload_kind == sim_workload::independent),
        distinct_preds_(static_cast<int>(std::min<std::uint64_t>(np_, 3))) {}

  std::uint64_t total_tasks() const { return np_ * steps_; }

  std::uint64_t construction_ordinal(std::uint64_t id) const {
    return static_cast<std::uint64_t>(id_step(id)) * np_ + id_part(id);
  }

  template <typename F>
  void for_each_root(F&& f) const {
    // The independent workload has no dependency edges, so *every* task is
    // a root; the stencil seeds only step 0.
    const std::uint64_t root_steps = independent_ ? steps_ : 1;
    for (std::uint64_t t = 0; t < root_steps; ++t)
      for (std::uint64_t b = 0; b < np_; ++b) f(task_id(t, b));
  }

  int fanin(std::uint64_t /*id*/) const { return distinct_preds_; }

  template <typename F>
  void for_each_dependent(std::uint64_t id, F&& f) const {
    if (independent_) return;  // no edges
    const std::uint32_t t = id_step(id);
    const std::uint64_t b = id_part(id);
    if (t + 1 >= steps_) return;
    const std::uint64_t candidates[3] = {(b + np_ - 1) % np_, b, (b + 1) % np_};
    // Symmetric 3-point ring: the first distinct_preds candidates are the
    // distinct dependents.
    for (int i = 0; i < distinct_preds_; ++i)
      f(task_id(t + 1, candidates[static_cast<std::size_t>(i)]));
  }

  double exec_ns(std::uint64_t /*id*/, int active_streams, int total_cores) const {
    return model_.task_exec_ns(points_, active_streams, total_cores);
  }

  double exec_single_core_ns(std::uint64_t /*id*/) const {
    return model_.task_exec_single_core_ns(points_, total_points_);
  }

  std::size_t fanin_reserve_hint() const {
    return static_cast<std::size_t>(np_ * 2 + 16);
  }

 private:
  const machine_model& model_;
  const std::uint64_t np_;
  const std::uint32_t steps_;
  const std::uint64_t points_;
  const std::uint64_t total_points_;
  const bool independent_;
  const int distinct_preds_;
};

}  // namespace

sim_result simulate_stencil(const sim_config& cfg) {
  GRAN_ASSERT_MSG(cfg.workload.total_points % cfg.workload.partition_size == 0,
                  "partition size must divide the grid (params::normalize)");
  detail::engine_config ecfg;
  ecfg.model = cfg.model;
  ecfg.cores = cfg.cores;
  ecfg.seed = cfg.seed;
  ecfg.policy = cfg.policy;
  ecfg.numa_aware_steal = cfg.numa_aware_steal;
  const stencil_workload w(cfg);
  detail::des_engine<stencil_workload> sim(ecfg, w);
  return sim.run();
}

}  // namespace gran::sim
