#include "sim/split_sim.hpp"

#include "sim/des_engine.hpp"

namespace gran::sim {

split_sim_result run_split_sim(const split_sim_config& cfg) {
  return detail::lazy_split_engine(cfg).run();
}

}  // namespace gran::sim
