#include "sim/machine_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gran::sim {

double machine_model::task_exec_ns(std::uint64_t points, int active_streams,
                                   int total_cores) const {
  const double p = static_cast<double>(points);
  const double cpu = p * cpu_ns_per_point;

  // Bandwidth contention: each of `k` concurrent streams gets at most
  // bw_total/k, capped by what a single core can draw. The stall is the
  // extra time beyond the single-stream case already folded into
  // cpu_ns_per_point.
  const int k = std::clamp(active_streams, 1, total_cores);
  const double bw_eff =
      std::min(bw_core_gbps, bw_total_gbps / static_cast<double>(k));
  const double stall_per_byte_ns = 1.0 / bw_eff - 1.0 / bw_core_gbps;  // ns/B (1/GBps)
  const double mem_stall = p * bytes_per_point * std::max(0.0, stall_per_byte_ns);

  return cpu + mem_stall;
}

double machine_model::task_exec_single_core_ns(std::uint64_t points,
                                               std::uint64_t total_points) const {
  const double p = static_cast<double>(points);
  double exec = p * cpu_ns_per_point;
  // Working-set penalty: when one core repeatedly streams partitions whose
  // footprint exceeds its cache anchor, every step reloads from DRAM. The
  // ramp uses the *partition* footprint (3 partitions touched per task).
  const double footprint = p * 8.0 * 3.0;
  const double ramp = std::clamp(footprint / cache_anchor_bytes - 1.0, 0.0, 1.0);
  exec += p * single_core_bias_ns * ramp;
  (void)total_points;
  return exec;
}

machine_model haswell_model() {
  machine_model m;
  m.spec = haswell_spec();
  m.cpu_ns_per_point = 1.68;  // anchors td(12,500) ~ 21 us
  // Management baseline ~ 0.45 us/task at one core; contention scales it to
  // the ~90 % fine-grain idle-rate of Fig. 4c at 28 cores.
  m.task_create_ns = 80;
  m.task_convert_ns = 130;
  m.queue_op_ns = 30;
  m.task_switch_ns = 60;
  m.dependency_ns = 40;
  m.steal_probe_ns = 80;
  m.numa_penalty_ns = 200;
  m.idle_probe_ns = 500;
  m.contention_per_core = 1.4;
  m.construct_node_ns = 200;  // serial dataflow-tree build by the main thread
  m.bytes_per_point = 16.0;
  m.bw_total_gbps = 70.0;
  m.bw_core_gbps = 12.0;
  m.single_core_bias_ns = 0.6;
  m.cache_anchor_bytes = 35.0 * 1024 * 1024;  // 35 MB shared L3
  return m;
}

machine_model ivy_bridge_model() {
  machine_model m = haswell_model();
  m.spec = ivy_bridge_spec();
  m.cpu_ns_per_point = 1.75;  // same clock, slightly older core
  m.bw_total_gbps = 60.0;
  return m;
}

machine_model sandy_bridge_model() {
  machine_model m = haswell_model();
  m.spec = sandy_bridge_spec();
  m.cpu_ns_per_point = 1.55;  // 2.9 GHz vs 2.3, older microarchitecture
  m.bw_total_gbps = 50.0;
  m.bw_core_gbps = 10.0;
  m.cache_anchor_bytes = 20.0 * 1024 * 1024;  // 20 MB L3
  m.construct_node_ns = 175;  // higher clock
  return m;
}

machine_model xeon_phi_model() {
  machine_model m;
  m.spec = xeon_phi_spec();
  // 1.2 GHz in-order cores: anchors td(12,500) ~ 1.1 ms.
  m.cpu_ns_per_point = 88.0;
  // Management baseline ~ 60 us/task at one core -- two orders of magnitude
  // above the big cores (KNC's scalar path); contention on 16-60 cores
  // anchors the fine-grain idle-rates of Fig. 5.
  m.task_create_ns = 8000;
  m.task_convert_ns = 18000;
  m.queue_op_ns = 3000;
  m.task_switch_ns = 7000;
  m.dependency_ns = 6000;
  m.steal_probe_ns = 2500;
  m.numa_penalty_ns = 0;  // single die
  m.idle_probe_ns = 40000;
  m.idle_spin_rounds = 16;
  m.contention_per_core = 0.6;
  m.construct_node_ns = 4000;
  m.bytes_per_point = 16.0;
  // KNC's scalar path drew ~2 GB/s per core against ~60 GB/s achievable
  // aggregate: with all 60 cores streaming, each sees half its solo
  // bandwidth -- that is the positive wait time of Fig. 8's mid range.
  // Coarse grains run fewer streams than the saturation point, so the
  // contention vanishes and the single-core working-set bias dominates
  // (negative wait time, Fig. 8's right side).
  m.bw_total_gbps = 60.0;
  m.bw_core_gbps = 2.0;
  m.single_core_bias_ns = 4.0;
  m.cache_anchor_bytes = 2.0 * 1024 * 1024;
  m.jitter = 0.05;
  return m;
}

machine_model make_machine_model(const std::string& platform) {
  if (platform == "haswell") return haswell_model();
  if (platform == "ivy-bridge") return ivy_bridge_model();
  if (platform == "sandy-bridge") return sandy_bridge_model();
  if (platform == "xeon-phi") return xeon_phi_model();
  throw std::invalid_argument("unknown platform model: " + platform);
}

}  // namespace gran::sim
