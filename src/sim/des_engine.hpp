// The discrete-event engine behind the simulator, generic over the
// workload's dependence structure (internal header — include from sim/*.cpp
// only).
//
// The engine owns everything the paper's scheduling behaviour emerges
// from: per-core dual staged/pending queues, the Priority Local-FIFO
// six-step NUMA-aware search (Fig. 1), the work-stealing and static-FIFO
// ablation policies, management-cost contention scaling, serial dataflow
// node construction by the main thread, idle-probe accounting and parking.
// A Workload supplies only the task graph and per-task execution cost:
//
//   std::uint64_t total_tasks() const;
//   // 0-based construction ordinal of task `id` (step-major order: the
//   // position at which the serial main thread builds its dataflow node).
//   std::uint64_t construction_ordinal(std::uint64_t id) const;
//   // Every task with no dependencies, in construction order.
//   template <typename F> void for_each_root(F&& f) const;       // f(id)
//   int fanin(std::uint64_t id) const;                           // > 0 unless root
//   template <typename F>
//   void for_each_dependent(std::uint64_t id, F&& f) const;      // f(dep_id)
//   // Pre-jitter execution cost with `active_streams` tasks running
//   // machine-wide, and the 1-core baseline variant.
//   double exec_ns(std::uint64_t id, int active_streams, int total_cores) const;
//   double exec_single_core_ns(std::uint64_t id) const;
//   std::size_t fanin_reserve_hint() const;
//
// Instantiations: the heat-ring stencil and the independent-task micro
// benchmark (sim/des.cpp), and any graph::graph_spec pattern
// (sim/graph_sim.cpp).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/metrics.hpp"
#include "sim/des.hpp"
#include "sim/machine_model.hpp"
#include "sim/split_sim.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace gran::sim::detail {

using time_ns = std::int64_t;

// Task identity: (step, point) packed into 64 bits.
inline std::uint64_t task_id(std::uint64_t step, std::uint64_t part) {
  return (step << 32) | part;
}
inline std::uint32_t id_step(std::uint64_t id) { return static_cast<std::uint32_t>(id >> 32); }
inline std::uint32_t id_part(std::uint64_t id) {
  return static_cast<std::uint32_t>(id & 0xffffffffu);
}

// The workload-independent slice of sim_config.
struct engine_config {
  machine_model model;
  int cores = 1;
  std::uint64_t seed = 1;
  sim_policy policy = sim_policy::priority_local;
  bool numa_aware_steal = true;
};

struct core_state {
  time_ns now = 0;
  int numa = 0;
  std::deque<std::uint64_t> staged;
  std::deque<std::uint64_t> pending;
  // Per-core queue instrumentation (aggregated into the measurement).
  std::uint64_t pending_accesses = 0;
  std::uint64_t pending_misses = 0;
  std::uint64_t staged_accesses = 0;
  std::uint64_t staged_misses = 0;
};

struct completion_event {
  time_ns at;
  int core;
  std::uint64_t task;
  bool operator>(const completion_event& o) const { return at > o.at; }
};

struct schedule_event {
  time_ns at;
  int core;
  bool operator>(const schedule_event& o) const { return at > o.at; }
};

// A task whose dependencies are met but whose dataflow node the (serial)
// main thread has not constructed yet; it becomes visible at `at`.
struct deferred_stage {
  time_ns at;
  int core;  // worker whose staged queue receives it
  std::uint64_t task;
  bool operator>(const deferred_stage& o) const { return at > o.at; }
};

template <typename Workload>
class des_engine {
 public:
  des_engine(const engine_config& cfg, const Workload& workload)
      : cfg_(cfg),
        w_(workload),
        num_cores_(std::max(1, std::min(cfg.cores, cfg.model.spec.cores))) {
    cores_.resize(static_cast<std::size_t>(num_cores_));
    const int domains =
        std::max(1, std::min(cfg.model.spec.numa_domains, num_cores_));
    for (int c = 0; c < num_cores_; ++c)
      cores_[static_cast<std::size_t>(c)].numa = c * domains / num_cores_;
    numa_members_.resize(static_cast<std::size_t>(domains));
    for (int c = 0; c < num_cores_; ++c) {
      numa_members_[static_cast<std::size_t>(cores_[static_cast<std::size_t>(c)].numa)]
          .push_back(c);
      all_cores_.push_back(c);
    }
    deps_.reserve(w_.fanin_reserve_hint());

    // Bake the shared-structure contention factor into the management
    // costs: base * (1 + contention_per_core * (cores - 1)).
    const double scale =
        1.0 + cfg_.model.contention_per_core * static_cast<double>(num_cores_ - 1);
    model_cost_.task_create_ns *= scale;
    model_cost_.task_convert_ns *= scale;
    model_cost_.queue_op_ns *= scale;
    model_cost_.task_switch_ns *= scale;
    model_cost_.dependency_ns *= scale;
  }

  sim_result run() {
    // Root tasks appear as the main thread constructs their dataflow nodes
    // (serially, step-major order), distributed round-robin — the external
    // spawner's placement in the native policy. The construction time is
    // the main thread's, not a worker's.
    w_.for_each_root([&](std::uint64_t id) {
      const std::uint64_t ordinal = w_.construction_ordinal(id);
      const auto target =
          static_cast<int>(ordinal % static_cast<std::uint64_t>(num_cores_));
      deferred_.push({creation_time(ordinal), target, id});
    });

    for (int c = 0; c < num_cores_; ++c) schedule_.push({0, c});

    const std::uint64_t total_tasks = w_.total_tasks();
    while (tasks_done_ < total_tasks) {
      // Advance whichever event comes first; work-producing events
      // (deferred stages, completions) break ties against scheduler wakes
      // so new work is visible to workers waking at the same instant.
      const time_ns t_def =
          deferred_.empty() ? std::numeric_limits<time_ns>::max() : deferred_.top().at;
      const time_ns t_cmp = completions_.empty() ? std::numeric_limits<time_ns>::max()
                                                 : completions_.top().at;
      const time_ns t_sch =
          schedule_.empty() ? std::numeric_limits<time_ns>::max() : schedule_.top().at;
      if (t_def <= t_cmp && t_def <= t_sch) {
        const deferred_stage ev = deferred_.top();
        deferred_.pop();
        on_deferred(ev);
      } else if (t_cmp <= t_sch) {
        const completion_event ev = completions_.top();
        completions_.pop();
        on_complete(ev);
      } else {
        GRAN_ASSERT_MSG(!schedule_.empty(), "simulation deadlock: no events");
        const schedule_event ev = schedule_.top();
        schedule_.pop();
        on_schedule(ev);
      }
    }

    sim_result result;
    result.makespan_s = static_cast<double>(makespan_) * 1e-9;
    result.tasks_stolen = stolen_;
    result.tasks_converted = converted_;
    result.edges_signaled = edges_signaled_;

    core::run_measurement& m = result.measurement;
    m.exec_time_s = result.makespan_s;
    m.cores = num_cores_;
    m.tasks = tasks_done_;
    m.phases = tasks_done_;  // simulated tasks never suspend: 1 phase each
    m.exec_ns = exec_ns_total_;
    m.func_ns = static_cast<double>(makespan_) * num_cores_;
    for (const core_state& c : cores_) {
      m.pending_accesses += c.pending_accesses;
      m.pending_misses += c.pending_misses;
      m.staged_accesses += c.staged_accesses;
      m.staged_misses += c.staged_misses;
    }
    return result;
  }

 private:
  // --- workload graph ------------------------------------------------------

  // Called when task `id` completes on `core` at its current time; stages
  // every dependent whose predecessors are now all complete.
  void signal_dependents(int core, std::uint64_t id) {
    core_state& cs = cores_[static_cast<std::size_t>(core)];
    w_.for_each_dependent(id, [&](std::uint64_t dep_id) {
      cs.now += model_cost_.dependency_ns;
      ++edges_signaled_;
      auto [it, inserted] = deps_.try_emplace(dep_id, w_.fanin(dep_id));
      if (--it->second == 0) {
        deps_.erase(it);
        // The last-arriving dependency stages the dependent locally
        // (mirroring the native dataflow continuation) — unless the main
        // thread has not constructed the dependent's node yet.
        const time_ns created = creation_time(w_.construction_ordinal(dep_id));
        if (created > cs.now) {
          deferred_.push({created, core, dep_id});
        } else {
          stage_task(core, dep_id);
          wake_parked(cs.now);
        }
      }
    });
  }

  // Virtual instant at which the main thread finishes constructing the
  // dataflow node with 0-based construction ordinal `ordinal`.
  time_ns creation_time(std::uint64_t ordinal) const {
    return static_cast<time_ns>(static_cast<double>(ordinal + 1) *
                                model_cost_.construct_node_ns);
  }

  // A deferred task's node is now constructed: make it visible. The
  // construction cost is the main thread's, so no worker is charged.
  void on_deferred(const deferred_stage& ev) {
    core_state& cs = cores_[static_cast<std::size_t>(ev.core)];
    if (cfg_.policy == sim_policy::work_stealing)
      cs.pending.push_back(ev.task);
    else
      cs.staged.push_back(ev.task);
    wake_parked(ev.at);
  }

  // Places a freshly created task according to the active policy, charging
  // the creating core.
  void stage_task(int core, std::uint64_t id) {
    core_state& cs = cores_[static_cast<std::size_t>(core)];
    cs.now += model_cost_.task_create_ns;
    if (cfg_.policy == sim_policy::work_stealing) {
      // No staged stage: the spawner pays the conversion immediately.
      cs.now += model_cost_.task_convert_ns;
      ++converted_;
      cs.pending.push_back(id);
    } else {
      cs.staged.push_back(id);
    }
  }

  // --- execution ------------------------------------------------------------

  double exec_ns_for(std::uint64_t id) const {
    double exec;
    if (num_cores_ == 1) {
      exec = w_.exec_single_core_ns(id);
    } else {
      exec = w_.exec_ns(id, active_ + 1, num_cores_);
    }
    // Deterministic +-jitter.
    const std::uint64_t h = mix64(id ^ cfg_.seed);
    const double u = mix64_to_unit(h);  // [0,1)
    return exec * (1.0 + cfg_.model.jitter * (2.0 * u - 1.0));
  }

  void start_task(int core, std::uint64_t id) {
    core_state& cs = cores_[static_cast<std::size_t>(core)];
    cs.now += model_cost_.task_switch_ns;
    const double exec = exec_ns_for(id);
    ++active_;
    exec_ns_total_ += exec;
    completions_.push(
        {cs.now + static_cast<time_ns>(std::llround(exec)), core, id});
  }

  void on_complete(const completion_event& ev) {
    core_state& cs = cores_[static_cast<std::size_t>(ev.core)];
    cs.now = std::max(cs.now, ev.at);
    --active_;
    ++tasks_done_;
    makespan_ = std::max(makespan_, ev.at);
    signal_dependents(ev.core, ev.task);
    schedule_.push({cs.now, ev.core});
  }

  // --- the Priority Local-FIFO search (Fig. 1), over virtual queues --------

  // Pops a runnable task for `core`, charging search costs to its clock.
  // Returns ~0ull when no work exists anywhere.
  static constexpr std::uint64_t k_no_task = ~std::uint64_t{0};

  std::uint64_t find_work(int core) {
    if (cfg_.policy == sim_policy::work_stealing) return find_work_ws(core);

    core_state& me = cores_[static_cast<std::size_t>(core)];
    const machine_model& mm = model_cost_;

    // 1. Local pending.
    ++me.pending_accesses;
    me.now += static_cast<time_ns>(mm.queue_op_ns);
    if (!me.pending.empty()) {
      const std::uint64_t id = me.pending.front();
      me.pending.pop_front();
      return id;
    }
    ++me.pending_misses;

    // 2. Local staged: convert -> own pending -> pop.
    ++me.staged_accesses;
    me.now += static_cast<time_ns>(mm.queue_op_ns);
    if (!me.staged.empty()) {
      const std::uint64_t id = me.staged.front();
      me.staged.pop_front();
      return convert_and_take(core, id, /*numa_cross=*/false);
    }
    ++me.staged_misses;

    if (cfg_.policy == sim_policy::static_fifo) return k_no_task;  // no stealing

    if (!cfg_.numa_aware_steal) {
      // Ablation: probe every victim in plain ring order, oblivious to the
      // domain layout (the per-victim NUMA penalty is still physical).
      if (std::uint64_t id = steal_staged(core, all_cores_); id != k_no_task) return id;
      return steal_pending(core, all_cores_);
    }

    // 3./4. Same NUMA domain: staged then pending.
    const auto& local = numa_members_[static_cast<std::size_t>(me.numa)];
    if (std::uint64_t id = steal_staged(core, local); id != k_no_task) return id;
    if (std::uint64_t id = steal_pending(core, local); id != k_no_task) return id;

    // 5./6. Remote domains.
    for (int d = 0; d < static_cast<int>(numa_members_.size()); ++d) {
      if (d == me.numa) continue;
      const auto& remote = numa_members_[static_cast<std::size_t>(d)];
      if (std::uint64_t id = steal_staged(core, remote); id != k_no_task) return id;
    }
    for (int d = 0; d < static_cast<int>(numa_members_.size()); ++d) {
      if (d == me.numa) continue;
      const auto& remote = numa_members_[static_cast<std::size_t>(d)];
      if (std::uint64_t id = steal_pending(core, remote); id != k_no_task) return id;
    }
    return k_no_task;
  }

  // Work-stealing-LIFO: owner pops at the back, thieves steal at the front,
  // plain ring victim order, no staged stage.
  std::uint64_t find_work_ws(int core) {
    core_state& me = cores_[static_cast<std::size_t>(core)];
    const machine_model& mm = model_cost_;

    ++me.pending_accesses;
    me.now += static_cast<time_ns>(mm.queue_op_ns);
    if (!me.pending.empty()) {
      const std::uint64_t id = me.pending.back();
      me.pending.pop_back();
      return id;
    }
    ++me.pending_misses;

    for (int k = 1; k < num_cores_; ++k) {
      const int v = (core + k) % num_cores_;
      core_state& victim = cores_[static_cast<std::size_t>(v)];
      const bool remote = victim.numa != me.numa;
      ++victim.pending_accesses;
      me.now +=
          static_cast<time_ns>(mm.steal_probe_ns + (remote ? mm.numa_penalty_ns : 0.0));
      if (!victim.pending.empty()) {
        const std::uint64_t id = victim.pending.front();
        victim.pending.pop_front();
        ++stolen_;
        return id;
      }
      ++victim.pending_misses;
    }
    return k_no_task;
  }

  std::uint64_t convert_and_take(int core, std::uint64_t id, bool numa_cross) {
    core_state& me = cores_[static_cast<std::size_t>(core)];
    const machine_model& mm = model_cost_;
    ++converted_;
    me.now += static_cast<time_ns>(mm.task_convert_ns +
                                   (numa_cross ? mm.numa_penalty_ns : 0.0));
    // Convert -> own pending queue -> pop (the native round trip, so the
    // pending-access counters keep HPX's semantics).
    me.pending.push_back(id);
    me.now += static_cast<time_ns>(mm.queue_op_ns);
    ++me.pending_accesses;
    me.now += static_cast<time_ns>(mm.queue_op_ns);
    const std::uint64_t got = me.pending.front();
    me.pending.pop_front();
    return got;
  }

  // Probes the staged queues of `members` in ring order after the thief's
  // own position. A hit is converted into the thief's pending queue.
  std::uint64_t steal_staged(int thief, const std::vector<int>& members) {
    core_state& me = cores_[static_cast<std::size_t>(thief)];
    const machine_model& mm = model_cost_;
    const std::size_t n = members.size();
    std::size_t start = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (members[i] == thief) {
        start = i + 1;
        break;
      }
    for (std::size_t k = 0; k < n; ++k) {
      const int v = members[(start + k) % n];
      if (v == thief) continue;
      core_state& victim = cores_[static_cast<std::size_t>(v)];
      const bool remote = victim.numa != me.numa;
      ++victim.staged_accesses;
      me.now +=
          static_cast<time_ns>(mm.steal_probe_ns + (remote ? mm.numa_penalty_ns : 0.0));
      if (!victim.staged.empty()) {
        const std::uint64_t id = victim.staged.front();
        victim.staged.pop_front();
        ++stolen_;
        return convert_and_take(thief, id, remote);
      }
      ++victim.staged_misses;
    }
    return k_no_task;
  }

  std::uint64_t steal_pending(int thief, const std::vector<int>& members) {
    core_state& me = cores_[static_cast<std::size_t>(thief)];
    const machine_model& mm = model_cost_;
    const std::size_t n = members.size();
    std::size_t start = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (members[i] == thief) {
        start = i + 1;
        break;
      }
    for (std::size_t k = 0; k < n; ++k) {
      const int v = members[(start + k) % n];
      if (v == thief) continue;
      core_state& victim = cores_[static_cast<std::size_t>(v)];
      const bool remote = victim.numa != me.numa;
      ++victim.pending_accesses;
      me.now +=
          static_cast<time_ns>(mm.steal_probe_ns + (remote ? mm.numa_penalty_ns : 0.0));
      if (!victim.pending.empty()) {
        const std::uint64_t id = victim.pending.front();
        victim.pending.pop_front();
        ++stolen_;
        return id;
      }
      ++victim.pending_misses;
    }
    return k_no_task;
  }

  void on_schedule(const schedule_event& ev) {
    core_state& me = cores_[static_cast<std::size_t>(ev.core)];
    me.now = std::max(me.now, ev.at);

    const std::uint64_t id = find_work(ev.core);
    if (id != k_no_task) {
      start_task(ev.core, id);
      return;  // re-scheduled by on_complete
    }

    // Nothing anywhere. Work can only appear when a running task completes
    // or the main thread constructs the next node; fast-forward to the
    // earlier of the two and account the probe rounds the real runtime
    // would have burned (they are what Figs. 9/10's right-hand rise is made
    // of).
    time_ns next_work = std::numeric_limits<time_ns>::max();
    if (!completions_.empty()) next_work = completions_.top().at;
    if (!deferred_.empty()) next_work = std::min(next_work, deferred_.top().at);
    if (next_work == std::numeric_limits<time_ns>::max()) {
      // Nothing running either: park until someone stages new work (or the
      // simulation ends — the main loop stops at the last completion).
      parked_.push_back(ev.core);
      return;
    }
    const time_ns wake =
        std::max(me.now + static_cast<time_ns>(cfg_.model.idle_probe_ns), next_work);
    account_idle_probes(ev.core, wake - me.now);
    me.now = wake;
    schedule_.push({me.now, ev.core});
  }

  // Re-arms every parked core at `at` (new work appeared).
  void wake_parked(time_ns at) {
    for (const int c : parked_)
      schedule_.push({std::max(cores_[static_cast<std::size_t>(c)].now, at), c});
    parked_.clear();
  }

  // One fruitless search = 1 own-pending + 1 own-staged probe plus a probe
  // of every other core's staged and pending queue. Attribute the skipped
  // rounds' counts arithmetically instead of iterating them.
  void account_idle_probes(int core, time_ns span) {
    // Backoff model: spin for up to idle_spin_rounds searches, then park
    // until new work wakes the worker (no further queue traffic).
    const auto probe = std::max<time_ns>(1, static_cast<time_ns>(cfg_.model.idle_probe_ns));
    const std::uint64_t rounds = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(std::max<int>(1, cfg_.model.idle_spin_rounds)),
        static_cast<std::uint64_t>(std::max<time_ns>(1, span / probe)));
    core_state& me = cores_[static_cast<std::size_t>(core)];
    const auto others = static_cast<std::uint64_t>(num_cores_ - 1);
    me.pending_accesses += rounds * (1 + others);
    me.pending_misses += rounds * (1 + others);
    if (cfg_.policy != sim_policy::work_stealing) {
      // Only the dual-queue policies probe staged queues while searching.
      me.staged_accesses += rounds * (1 + others);
      me.staged_misses += rounds * (1 + others);
    }
  }

  // --- state ----------------------------------------------------------------

  engine_config cfg_;
  const Workload& w_;
  const int num_cores_;
  // Cached copy of cost constants (hot loop reads; scaled by contention).
  machine_model model_cost_ = cfg_.model;

  std::vector<core_state> cores_;
  std::vector<std::vector<int>> numa_members_;
  std::vector<int> all_cores_;
  std::unordered_map<std::uint64_t, int> deps_;

  std::priority_queue<completion_event, std::vector<completion_event>,
                      std::greater<completion_event>>
      completions_;
  std::priority_queue<schedule_event, std::vector<schedule_event>,
                      std::greater<schedule_event>>
      schedule_;
  std::priority_queue<deferred_stage, std::vector<deferred_stage>,
                      std::greater<deferred_stage>>
      deferred_;

  std::vector<int> parked_;
  int active_ = 0;
  std::uint64_t tasks_done_ = 0;
  std::uint64_t stolen_ = 0;
  std::uint64_t converted_ = 0;
  std::uint64_t edges_signaled_ = 0;
  double exec_ns_total_ = 0.0;
  time_ns makespan_ = 0;
};

// --- lazy splitting mirror ---------------------------------------------------
//
// Simulated counterpart of the native closed-loop splitting executor
// (core/split_controller.hpp + algo/splittable.hpp), over the simplest
// workload that exhibits the paper's granularity U-curve: `items` uniform
// independent loop iterations on `cores` cores.
//
//   fixed mode (lazy = false): the loop is pre-chunked into items/chunk
//     tasks, created serially by the main thread (one task_create_ns each —
//     the native parallel_for spawn loop) and dealt round-robin. This is the
//     Fig. 3 grain sweep's subject: per-task management costs wall off fine
//     grains, tail imbalance walls off coarse ones.
//   lazy mode: one coarse block per core; an idle core that finds no queued
//     work picks the *running* task with the most remaining items and, when
//     at least 2×min_chunk remain, takes the back half — paying the steal
//     probe plus the full create/convert/switch path for the child, while
//     the victim pays the spawn (task_create_ns) and finishes early. Demand
//     with no splittable candidate counts as split-denied. This is the
//     simulator's version of the native controller, with one idealization:
//     demand here is exact (the sim knows precisely who is idle), whereas
//     the native side approximates it with the starving-worker count and the
//     sampled idle-rate gate between poll boundaries.
//
// Per-task imbalance (the `imbalance` dial, same convention as
// graph::kernel_spec) scales each task's per-item cost deterministically so
// lazy splitting has hot blocks to fix. The checksum is a wrapping sum of a
// per-item hash — commutative, so any split layout (or the native executor)
// over the same [0, items) range produces the same value.

class lazy_split_engine {
 public:
  explicit lazy_split_engine(const split_sim_config& cfg)
      : cfg_(cfg), num_cores_(std::max(1, cfg.cores)) {
    // Same contention scaling as des_engine: shared-structure management
    // costs grow with the core count.
    const double scale =
        1.0 + cfg_.model.contention_per_core * static_cast<double>(num_cores_ - 1);
    create_ns_ = cfg_.model.task_create_ns * scale;
    convert_ns_ = cfg_.model.task_convert_ns * scale;
    queue_ns_ = cfg_.model.queue_op_ns * scale;
    switch_ns_ = cfg_.model.task_switch_ns * scale;
    steal_ns_ = cfg_.model.steal_probe_ns;
    const int domains =
        std::max(1, std::min(cfg_.model.spec.numa_domains, num_cores_));
    cores_.resize(static_cast<std::size_t>(num_cores_));
    for (int c = 0; c < num_cores_; ++c)
      cores_[static_cast<std::size_t>(c)].numa = c * domains / num_cores_;
  }

  split_sim_result run() {
    seed_tasks();
    for (int c = 0; c < num_cores_; ++c) push_event(0, event_kind::wake, c);

    while (!events_.empty()) {
      const event ev = events_.top();
      events_.pop();
      switch (ev.kind) {
        case event_kind::arrival:
          on_arrival(ev);
          break;
        case event_kind::completion:
          on_completion(ev);
          break;
        case event_kind::wake:
          on_wake(ev);
          break;
      }
    }
    GRAN_ASSERT_MSG(items_executed_ == cfg_.items,
                    "split sim lost or duplicated items");

    split_sim_result r;
    r.makespan_s = static_cast<double>(makespan_) * 1e-9;
    r.tasks = tasks_done_;
    r.splits = splits_;
    r.split_denied = split_denied_;
    r.steals = steals_;
    r.items_executed = items_executed_;
    r.checksum = checksum_;
    r.exec_ns = exec_ns_total_;
    r.func_ns = static_cast<double>(makespan_) * num_cores_;
    r.idle_rate =
        r.func_ns > 0.0 ? std::max(0.0, r.func_ns - r.exec_ns) / r.func_ns : 0.0;
    return r;
  }

 private:
  enum class event_kind : int { arrival = 0, completion = 1, wake = 2 };

  struct event {
    time_ns at = 0;
    event_kind kind = event_kind::wake;
    int core = 0;
    std::uint64_t gen = 0;  // completion validity (bumped when a split
                            // shortens the running range)
    std::uint64_t lo = 0, hi = 0;  // arrival payload
    // Work-producing events (arrivals, completions) beat wakes at the same
    // instant, matching des_engine's tie-breaking.
    bool operator>(const event& o) const {
      if (at != o.at) return at > o.at;
      return static_cast<int>(kind) > static_cast<int>(o.kind);
    }
  };

  struct running_task {
    bool active = false;
    std::uint64_t lo = 0, hi = 0;
    time_ns exec_start = 0;   // when item `lo` began executing
    double item_ns = 0.0;     // this task's per-item cost (imbalance applied)
    std::uint64_t gen = 0;
  };

  struct split_core_state {
    time_ns now = 0;
    int numa = 0;
    std::deque<std::pair<std::uint64_t, std::uint64_t>> ready;
    running_task run;
  };

  void push_event(time_ns at, event_kind kind, int core, std::uint64_t gen = 0,
                  std::uint64_t lo = 0, std::uint64_t hi = 0) {
    events_.push({at, kind, core, gen, lo, hi});
  }

  // Deterministic per-task item cost: task ordinal `ord` runs its items at
  // item_ns * (1 + imbalance * u), u in [-1, 1). Split-off children inherit
  // the parent's cost (they execute the same items).
  double task_item_ns(std::uint64_t ord) const {
    if (cfg_.imbalance == 0.0) return std::max(1e-3, cfg_.item_ns);
    const double u = 2.0 * mix64_to_unit(mix64(cfg_.seed ^ (ord * 0x9e37u))) - 1.0;
    return std::max(1e-3, cfg_.item_ns * (1.0 + cfg_.imbalance * u));
  }

  // The main thread spawns every initial task serially — chunk k exists
  // only after k+1 create costs, the native parallel_for spawn loop's
  // supply cap at fine grains.
  void seed_tasks() {
    const std::uint64_t n = cfg_.items;
    if (n == 0) return;
    std::uint64_t blocks;
    std::uint64_t chunk;
    if (cfg_.lazy) {
      blocks = cfg_.initial_tasks != 0
                   ? cfg_.initial_tasks
                   : static_cast<std::uint64_t>(num_cores_);
      blocks = std::max<std::uint64_t>(1, std::min(blocks, n));
      chunk = 0;  // even block distribution below
    } else {
      chunk = cfg_.chunk != 0 ? cfg_.chunk
                              : std::max<std::uint64_t>(
                                    1, n / static_cast<std::uint64_t>(num_cores_));
      blocks = (n + chunk - 1) / chunk;
    }
    for (std::uint64_t b = 0; b < blocks; ++b) {
      const std::uint64_t lo = cfg_.lazy ? n * b / blocks : b * chunk;
      const std::uint64_t hi = cfg_.lazy ? n * (b + 1) / blocks
                                         : std::min(n, lo + chunk);
      if (lo >= hi) continue;
      const auto at = static_cast<time_ns>(static_cast<double>(b + 1) * create_ns_);
      push_event(at, event_kind::arrival,
                 static_cast<int>(b % static_cast<std::uint64_t>(num_cores_)),
                 /*gen=*/0, lo, hi);
    }
  }

  void on_arrival(const event& ev) {
    cores_[static_cast<std::size_t>(ev.core)].ready.emplace_back(ev.lo, ev.hi);
    wake_parked(ev.at);
  }

  void on_completion(const event& ev) {
    split_core_state& me = cores_[static_cast<std::size_t>(ev.core)];
    if (!me.run.active || ev.gen != me.run.gen) return;  // superseded by a split
    me.now = std::max(me.now, ev.at);
    makespan_ = std::max(makespan_, me.now);
    account_range(me.run.lo, me.run.hi, me.run.item_ns);
    me.run.active = false;
    ++tasks_done_;
    find_work(ev.core);
  }

  void on_wake(const event& ev) {
    split_core_state& me = cores_[static_cast<std::size_t>(ev.core)];
    me.now = std::max(me.now, ev.at);
    if (me.run.active) return;  // already got work through an earlier event
    find_work(ev.core);
  }

  void account_range(std::uint64_t lo, std::uint64_t hi, double per_item) {
    items_executed_ += hi - lo;
    exec_ns_total_ += static_cast<double>(hi - lo) * per_item;
    if (cfg_.hash_items)
      for (std::uint64_t i = lo; i < hi; ++i)
        checksum_ += split_item_hash(cfg_.seed, i);
  }

  void start_range(int core, std::uint64_t lo, std::uint64_t hi, double per_item,
                   double setup_ns) {
    split_core_state& me = cores_[static_cast<std::size_t>(core)];
    me.now += static_cast<time_ns>(setup_ns);
    me.run.active = true;
    me.run.lo = lo;
    me.run.hi = hi;
    me.run.item_ns = per_item;
    me.run.exec_start = me.now;
    ++me.run.gen;
    const double exec = static_cast<double>(hi - lo) * per_item;
    push_event(me.now + static_cast<time_ns>(exec), event_kind::completion, core,
               me.run.gen);
  }

  // Items of `rt` already executed at instant `t` (never beyond its range).
  static std::uint64_t items_done_at(const running_task& rt, time_ns t) {
    if (t <= rt.exec_start) return 0;
    const auto done = static_cast<std::uint64_t>(
        static_cast<double>(t - rt.exec_start) / rt.item_ns);
    return std::min(done, rt.hi - rt.lo);
  }

  void find_work(int core) {
    split_core_state& me = cores_[static_cast<std::size_t>(core)];

    // 1. Own ready queue (pop + convert + switch: the task was created
    // staged by the serial spawner).
    me.now += static_cast<time_ns>(queue_ns_);
    if (!me.ready.empty()) {
      const auto [lo, hi] = me.ready.front();
      me.ready.pop_front();
      start_range(core, lo, hi, task_item_ns(next_task_ord_++),
                  convert_ns_ + switch_ns_);
      return;
    }

    // 2. Steal a queued range, ring order, NUMA penalty when crossing.
    for (int k = 1; k < num_cores_; ++k) {
      const int v = (core + k) % num_cores_;
      split_core_state& victim = cores_[static_cast<std::size_t>(v)];
      const bool remote = victim.numa != me.numa;
      me.now += static_cast<time_ns>(steal_ns_ +
                                     (remote ? cfg_.model.numa_penalty_ns : 0.0));
      if (!victim.ready.empty()) {
        const auto [lo, hi] = victim.ready.front();
        victim.ready.pop_front();
        ++steals_;
        start_range(core, lo, hi, task_item_ns(next_task_ord_++),
                    convert_ns_ + switch_ns_);
        return;
      }
    }

    // 3. Lazy mode: split the running task with the most remaining items.
    if (cfg_.lazy && try_split_into(core)) return;

    // Nothing available: wait for the next work-producing event. When none
    // can occur the core leaves the simulation (the loop drains).
    park(core);
  }

  bool try_split_into(int thief) {
    split_core_state& me = cores_[static_cast<std::size_t>(thief)];
    int best = -1;
    std::uint64_t best_remaining = 0;
    bool any_running = false;
    for (int v = 0; v < num_cores_; ++v) {
      if (v == thief) continue;
      const running_task& rt = cores_[static_cast<std::size_t>(v)].run;
      if (!rt.active) continue;
      any_running = true;
      const std::uint64_t done = items_done_at(rt, me.now);
      const std::uint64_t remaining = rt.hi - rt.lo - done;
      if (remaining >= 2 * std::max<std::uint64_t>(1, cfg_.min_chunk) &&
          remaining > best_remaining) {
        best = v;
        best_remaining = remaining;
      }
    }
    // The victim scan rides on the steal probes already charged in step 2.
    if (best < 0) {
      if (any_running) ++split_denied_;
      return false;
    }

    split_core_state& victim = cores_[static_cast<std::size_t>(best)];
    running_task& rt = victim.run;
    const std::uint64_t done = items_done_at(rt, me.now);
    const std::uint64_t cursor = rt.lo + done;
    // Keep the front of the remainder with the victim (round up, as the
    // native splitter does), give the thief the back half.
    const std::uint64_t mid = cursor + (rt.hi - cursor + 1) / 2;
    const std::uint64_t child_hi = rt.hi;
    ++splits_;

    // Victim: finishes early at its shortened range; it also pays the spawn
    // of the child (the native record_split + spawn_on path).
    rt.hi = mid;
    ++rt.gen;
    const double kept =
        static_cast<double>(rt.hi - rt.lo) * rt.item_ns + create_ns_;
    push_event(rt.exec_start + static_cast<time_ns>(kept), event_kind::completion,
               best, rt.gen);

    // Thief: convert + switch for the freshly created child; the child
    // executes the parent's items at the parent's per-item cost.
    start_range(thief, mid, child_hi, rt.item_ns, convert_ns_ + switch_ns_);
    return true;
  }

  void park(int core) {
    parked_.push_back(core);
  }

  void wake_parked(time_ns at) {
    for (const int c : parked_) {
      const time_ns t = std::max(cores_[static_cast<std::size_t>(c)].now, at);
      push_event(std::max(t, at + static_cast<time_ns>(cfg_.model.idle_probe_ns)),
                 event_kind::wake, c);
    }
    parked_.clear();
  }

  split_sim_config cfg_;
  const int num_cores_;
  double create_ns_ = 0, convert_ns_ = 0, queue_ns_ = 0, switch_ns_ = 0,
         steal_ns_ = 0;

  std::vector<split_core_state> cores_;
  std::priority_queue<event, std::vector<event>, std::greater<event>> events_;
  std::vector<int> parked_;

  std::uint64_t next_task_ord_ = 0;
  std::uint64_t tasks_done_ = 0;
  std::uint64_t splits_ = 0;
  std::uint64_t split_denied_ = 0;
  std::uint64_t steals_ = 0;
  std::uint64_t items_executed_ = 0;
  std::uint64_t checksum_ = 0;
  double exec_ns_total_ = 0.0;
  time_ns makespan_ = 0;
};

}  // namespace gran::sim::detail
