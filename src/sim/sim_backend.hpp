// core::experiment_backend over the discrete-event simulator: the figure
// benches drive exactly the same sweep code whether measuring natively or
// on a modeled platform.
#pragma once

#include <string>

#include "core/experiment.hpp"
#include "sim/des.hpp"

namespace gran::sim {

class sim_backend final : public core::experiment_backend {
 public:
  explicit sim_backend(machine_model model, std::uint64_t seed = 1)
      : model_(std::move(model)), seed_(seed) {}

  // By platform name ("haswell", "xeon-phi", ...).
  explicit sim_backend(const std::string& platform, std::uint64_t seed = 1)
      : sim_backend(make_machine_model(platform), seed) {}

  std::string name() const override { return "sim(" + model_.spec.name + ")"; }

  core::run_measurement run(const stencil::params& p, int cores) override {
    sim_config cfg;
    cfg.model = model_;
    cfg.cores = cores;
    cfg.workload = p;
    cfg.seed = seed_++;  // fresh jitter per sample, still deterministic
    cfg.policy = policy_;
    cfg.workload_kind = workload_kind_;
    cfg.numa_aware_steal = numa_aware_steal_;
    return simulate_stencil(cfg).measurement;
  }

  const machine_model& model() const noexcept { return model_; }
  machine_model& model() noexcept { return model_; }

  // Ablation knobs (see sim_config).
  void set_policy(sim_policy p) noexcept { policy_ = p; }
  void set_numa_aware_steal(bool aware) noexcept { numa_aware_steal_ = aware; }
  void set_workload(sim_workload w) noexcept { workload_kind_ = w; }

 private:
  machine_model model_;
  std::uint64_t seed_;
  sim_policy policy_ = sim_policy::priority_local;
  sim_workload workload_kind_ = sim_workload::stencil;
  bool numa_aware_steal_ = true;
};

}  // namespace gran::sim
