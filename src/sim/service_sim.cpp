#include "sim/service_sim.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <vector>

#include "util/rng.hpp"

namespace gran::sim {

namespace {

struct pending_request {
  double admit_t_s = 0;         // sojourn clock starts here (as in native:
                                // block-policy wait is client-side)
  std::uint64_t grain_ns = 0;
  std::uint64_t seq = 0;
};

struct completion {
  double t_s = 0;
  double admit_t_s = 0;
  bool operator>(const completion& o) const { return t_s > o.t_s; }
};

}  // namespace

service_sim_result run_service_sim(const service_sim_config& cfg) {
  service_sim_result res;
  const int cores = std::max(1, cfg.cores);
  const std::int64_t bound = std::max<std::int64_t>(1, cfg.backlog_bound);

  const std::vector<service::arrival_event> arrivals =
      service::generate_arrivals(cfg.arrival, cfg.duration_s);
  res.generated = arrivals.size();
  res.offered_per_s =
      cfg.duration_s > 0 ? static_cast<double>(res.generated) / cfg.duration_s : 0;

  // Per-task management cost, contention-scaled the same way des_engine
  // scales shared-structure events (this is what bends the U-curve's left
  // wall upward as cores grow).
  const double contention =
      1.0 + cfg.model.contention_per_core * static_cast<double>(cores - 1);
  const double overhead_ns = (cfg.model.task_create_ns + cfg.model.task_convert_ns +
                              2.0 * cfg.model.queue_op_ns + cfg.model.task_switch_ns) *
                             contention;

  perf::log2_histogram sojourn_hist;
  std::deque<pending_request> pending;   // admitted, waiting for a core
  std::deque<service::arrival_event> gate;  // block policy: waiting admission
  std::priority_queue<completion, std::vector<completion>, std::greater<completion>>
      running;
  int free_cores = cores;

  std::uint64_t accepted = 0, completed = 0;
  const auto backlog = [&] {
    return static_cast<std::int64_t>(accepted) - static_cast<std::int64_t>(completed) -
           static_cast<std::int64_t>(res.shed);
  };

  const auto start_if_possible = [&](double now) {
    while (free_cores > 0 && !pending.empty()) {
      const pending_request r = pending.front();
      pending.pop_front();
      --free_cores;
      // Deterministic grain jitter keyed on the request's stream position.
      const double u = mix64_to_unit(mix64_combine(cfg.arrival.seed, mix64(r.seq)));
      const double jitter = 1.0 + cfg.model.jitter * (2.0 * u - 1.0);
      const double service_ns =
          overhead_ns + static_cast<double>(r.grain_ns) * std::max(0.0, jitter);
      running.push(completion{now + service_ns * 1e-9, r.admit_t_s});
    }
  };

  const auto admit = [&](const service::arrival_event& ev, double now) {
    ++accepted;
    res.backlog_peak = std::max(res.backlog_peak, backlog());
    pending.push_back(pending_request{now, ev.grain_ns, ev.seq});
    start_if_possible(now);
  };

  const auto on_arrival = [&](const service::arrival_event& ev) {
    if (backlog() < bound) {
      admit(ev, ev.t_s);
      return;
    }
    switch (cfg.policy) {
      case service::admission_policy::reject:
        ++res.rejected;
        return;
      case service::admission_policy::shed_oldest:
        // Mirror of the native semantics: drop the oldest still-queued
        // request if any; admit regardless (empty queue = bounded
        // overshoot, everything is already running).
        if (!pending.empty()) {
          pending.pop_front();
          ++res.shed;
        }
        admit(ev, ev.t_s);
        return;
      case service::admission_policy::block:
        gate.push_back(ev);
        return;
    }
  };

  const auto on_completion = [&](const completion& c) {
    ++completed;
    ++free_cores;
    const double sojourn_ns = std::max(0.0, (c.t_s - c.admit_t_s) * 1e9);
    sojourn_hist.record(static_cast<std::uint64_t>(sojourn_ns));
    res.makespan_s = std::max(res.makespan_s, c.t_s);
    // Completions make room: blocked submitters are admitted in FIFO order,
    // their sojourn clock starting now (as in native, where submit() stamps
    // after the backpressure wait).
    while (!gate.empty() && backlog() < bound) {
      const service::arrival_event ev = gate.front();
      gate.pop_front();
      admit(ev, c.t_s);
    }
    start_if_possible(c.t_s);
  };

  // Merge the two time-ordered event streams; arrivals win ties so a
  // same-instant completion cannot free capacity for a request that had not
  // arrived yet.
  std::size_t next_arrival = 0;
  while (next_arrival < arrivals.size() || !running.empty()) {
    const bool have_arrival = next_arrival < arrivals.size();
    const bool have_completion = !running.empty();
    if (have_arrival &&
        (!have_completion || arrivals[next_arrival].t_s <= running.top().t_s)) {
      on_arrival(arrivals[next_arrival++]);
    } else if (have_completion) {
      const completion c = running.top();
      running.pop();
      on_completion(c);
    }
  }

  res.accepted = accepted;
  res.completed = completed;
  res.sojourn = sojourn_hist.snap();
  res.sojourn_p50_ns = res.sojourn.percentile(50);
  res.sojourn_p95_ns = res.sojourn.percentile(95);
  res.sojourn_p99_ns = res.sojourn.percentile(99);
  res.sojourn_mean_ns = res.sojourn.mean();
  res.achieved_per_s =
      res.makespan_s > 0 ? static_cast<double>(completed) / res.makespan_s : 0;
  return res;
}

}  // namespace gran::sim
