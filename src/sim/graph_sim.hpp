// Discrete-event simulation of the parameterized task-graph workloads
// (graph/spec.hpp) on a modeled machine.
//
// The same des_engine that simulates the heat-ring stencil executes any
// graph_spec pattern: the dependence sets are precomputed into CSR form and
// handed to the engine, so the simulated scheduler sees exactly the DAG the
// native executor futurizes — same tasks, same edges, same construction
// order. Kernel costs are charged in virtual time from the kernel_spec's
// target grain (busy_spin / dgemm_like are compute-bound; memory_stream is
// scaled by the model's bandwidth-contention law), so a grain sweep means
// the same thing in both modes.
#pragma once

#include <cstdint>

#include "core/graph_experiment.hpp"
#include "graph/kernels.hpp"
#include "graph/spec.hpp"
#include "sim/des.hpp"
#include "sim/machine_model.hpp"

namespace gran::sim {

struct graph_sim_config {
  machine_model model;
  int cores = 1;               // simulated workers (clamped to model cores)
  graph::graph_spec graph;
  graph::kernel_spec kernel;
  std::uint64_t seed = 1;      // deterministic execution-time jitter
  sim_policy policy = sim_policy::priority_local;
  bool numa_aware_steal = true;
};

// Runs one simulation. Deterministic for a fixed config. Asserts that the
// graph spec validates.
sim_result simulate_graph(const graph_sim_config& cfg);

// core::graph_backend adapter: the simulator as a sweep backend, mirroring
// native_graph_backend so gran_characterize / graph_sweep work in either
// mode.
class graph_sim_backend final : public core::graph_backend {
 public:
  explicit graph_sim_backend(machine_model model,
                             sim_policy policy = sim_policy::priority_local,
                             std::uint64_t seed = 1);
  std::string name() const override;
  core::graph_run_result run(const graph::graph_spec& g,
                             const graph::kernel_spec& k, int cores) override;

 private:
  machine_model model_;
  sim_policy policy_;
  std::uint64_t seed_;
};

}  // namespace gran::sim
