#include "sim/graph_sim.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/des_engine.hpp"
#include "util/assert.hpp"

namespace gran::sim {

namespace {

using detail::id_part;
using detail::id_step;
using detail::task_id;

// A graph_spec materialized for the engine: per-task fanin plus the
// *forward* edges (dependents) in CSR form. The spec exposes predecessors;
// the engine signals successors, so one O(V + E) transposition pass up
// front buys O(out-degree) signaling per completion.
class graph_workload {
 public:
  graph_workload(const graph::graph_spec& g, const graph::kernel_spec& k,
                 const machine_model& model)
      : g_(g), k_(k), model_(model) {
    const std::uint64_t n = g_.total_tasks();
    fanin_.assign(n, 0);
    dep_offsets_.assign(n + 1, 0);

    std::vector<std::uint32_t> preds;
    preds.reserve(g_.max_fanin());

    // Pass 1: fanin of every task; out-degree of every predecessor.
    for (std::uint32_t t = 0; t < g_.steps; ++t) {
      for (std::uint32_t p = 0; p < g_.width; ++p) {
        g_.dependencies(t, p, preds);
        fanin_[ordinal(t, p)] = static_cast<std::uint32_t>(preds.size());
        for (const std::uint32_t q : preds) ++dep_offsets_[ordinal(t - 1, q) + 1];
      }
    }
    for (std::uint64_t i = 0; i < n; ++i) dep_offsets_[i + 1] += dep_offsets_[i];

    // Pass 2: fill the dependent lists (cursor per source task).
    dependents_.resize(dep_offsets_[n]);
    std::vector<std::uint64_t> cursor(dep_offsets_.begin(), dep_offsets_.end() - 1);
    for (std::uint32_t t = 0; t < g_.steps; ++t) {
      for (std::uint32_t p = 0; p < g_.width; ++p) {
        g_.dependencies(t, p, preds);
        for (const std::uint32_t q : preds)
          dependents_[cursor[ordinal(t - 1, q)]++] = task_id(t, p);
      }
    }

    for (std::uint64_t ord = 0; ord < n; ++ord)
      if (fanin_[ord] == 0)
        roots_.push_back(task_id(ord / g_.width, ord % g_.width));
  }

  std::uint64_t total_tasks() const { return g_.total_tasks(); }
  std::uint64_t total_edges() const { return dependents_.size(); }

  std::uint64_t construction_ordinal(std::uint64_t id) const {
    return ordinal(id_step(id), id_part(id));
  }

  template <typename F>
  void for_each_root(F&& f) const {
    for (const std::uint64_t id : roots_) f(id);
  }

  int fanin(std::uint64_t id) const {
    return static_cast<int>(fanin_[construction_ordinal(id)]);
  }

  template <typename F>
  void for_each_dependent(std::uint64_t id, F&& f) const {
    const std::uint64_t ord = construction_ordinal(id);
    for (std::uint64_t i = dep_offsets_[ord]; i < dep_offsets_[ord + 1]; ++i)
      f(dependents_[i]);
  }

  double exec_ns(std::uint64_t id, int active_streams, int total_cores) const {
    const double base = graph::task_grain_ns(k_, id_step(id), id_part(id));
    if (k_.kind != graph::kernel_kind::memory_stream) return base;
    // Bandwidth contention: the grain is calibrated against one stream at
    // bw_core; with `active_streams` concurrent streams the effective
    // per-stream bandwidth saturates at bw_total / streams.
    (void)total_cores;
    const double streams = static_cast<double>(std::max(1, active_streams));
    const double eff = std::max(
        std::min(model_.bw_core_gbps, model_.bw_total_gbps / streams), 1e-9);
    return base * (model_.bw_core_gbps / eff);
  }

  double exec_single_core_ns(std::uint64_t id) const {
    return graph::task_grain_ns(k_, id_step(id), id_part(id));
  }

  std::size_t fanin_reserve_hint() const {
    return static_cast<std::size_t>(g_.width) * 2 + 16;
  }

 private:
  std::uint64_t ordinal(std::uint32_t step, std::uint32_t point) const {
    return static_cast<std::uint64_t>(step) * g_.width + point;
  }

  const graph::graph_spec& g_;
  const graph::kernel_spec& k_;
  const machine_model& model_;
  std::vector<std::uint32_t> fanin_;
  std::vector<std::uint64_t> dep_offsets_;   // CSR offsets, by source ordinal
  std::vector<std::uint64_t> dependents_;    // CSR payload: dependent task ids
  std::vector<std::uint64_t> roots_;         // fanin-0 tasks, construction order
};

}  // namespace

sim_result simulate_graph(const graph_sim_config& cfg) {
  GRAN_ASSERT_MSG(cfg.graph.validate().empty(), "invalid graph spec");
  detail::engine_config ecfg;
  ecfg.model = cfg.model;
  ecfg.cores = cfg.cores;
  ecfg.seed = cfg.seed;
  ecfg.policy = cfg.policy;
  ecfg.numa_aware_steal = cfg.numa_aware_steal;
  const graph_workload w(cfg.graph, cfg.kernel, cfg.model);
  detail::des_engine<graph_workload> sim(ecfg, w);
  return sim.run();
}

graph_sim_backend::graph_sim_backend(machine_model model, sim_policy policy,
                                     std::uint64_t seed)
    : model_(std::move(model)), policy_(policy), seed_(seed) {}

std::string graph_sim_backend::name() const {
  return "sim(" + model_.spec.name + ")";
}

core::graph_run_result graph_sim_backend::run(const graph::graph_spec& g,
                                              const graph::kernel_spec& k,
                                              int cores) {
  graph_sim_config cfg;
  cfg.model = model_;
  cfg.cores = cores;
  cfg.graph = g;
  cfg.kernel = k;
  cfg.seed = seed_;
  cfg.policy = policy_;
  const sim_result r = simulate_graph(cfg);

  core::graph_run_result out;
  out.m = r.measurement;
  out.tasks = r.measurement.tasks;
  out.edges = r.edges_signaled;
  return out;
}

}  // namespace gran::sim
