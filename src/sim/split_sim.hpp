// Simulated mirror of the lazy-splitting executor (core/split_controller.hpp
// + algo/splittable.hpp): a discrete-event model of `items` uniform loop
// iterations on `cores` cores, runnable either pre-chunked at a fixed grain
// (the Fig. 3 sweep subject) or coarse-with-lazy-splitting. An idle
// simulated core that finds no queued work splits the running task with the
// most remaining items, exactly as a starving native worker triggers the
// split controller — so the controller's placement on the grain U-curve can
// be checked deterministically, without host noise.
//
// The checksum is a wrapping sum of split_item_hash over every executed
// index: commutative, hence identical for any split layout and for the
// native executor over the same range (tests/split_test.cpp asserts this).
#pragma once

#include <cstdint>

#include "sim/machine_model.hpp"
#include "util/rng.hpp"

namespace gran::sim {

// The shared per-item hash: native split tests and the simulator both sum
// this over every executed index, so checksums agree across executors by
// construction.
inline std::uint64_t split_item_hash(std::uint64_t seed, std::uint64_t i) noexcept {
  return mix64_combine(seed, mix64(i));
}

struct split_sim_config {
  machine_model model;
  int cores = 4;
  std::uint64_t seed = 1;
  std::uint64_t items = 0;
  double item_ns = 150.0;      // single-stream cost of one iteration
  double imbalance = 0.0;      // per-task item-cost spread in [-i, +i)
  bool lazy = true;            // false = pre-chunked fixed granularity
  std::uint64_t chunk = 0;     // fixed mode: items per task (0 = items/cores)
  std::uint64_t min_chunk = 64;    // lazy mode: GRAN_SPLIT_MIN mirror
  std::uint64_t initial_tasks = 0; // lazy mode: 0 = one per core
  bool hash_items = false;     // accumulate the per-item checksum (O(items))
};

struct split_sim_result {
  double makespan_s = 0.0;
  std::uint64_t tasks = 0;          // tasks executed (initial + split-off)
  std::uint64_t splits = 0;         // back halves taken from running tasks
  std::uint64_t split_denied = 0;   // idle demand with no splittable candidate
  std::uint64_t steals = 0;         // queued ranges taken from another core
  std::uint64_t items_executed = 0;
  std::uint64_t checksum = 0;       // Σ split_item_hash (when hash_items)
  double exec_ns = 0.0;             // Σ item execution time
  double func_ns = 0.0;             // makespan × cores
  double idle_rate = 0.0;           // (func − exec) / func, Eq. 1
};

split_sim_result run_split_sim(const split_sim_config& cfg);

}  // namespace gran::sim
