// Discrete-event mirror of the task-service ingress (service/service.hpp):
// the same arrival process (service/arrival.hpp — same seed, same
// generator, hence the *identical* (time, grain) request stream), the same
// admission policies over the same backlog signal, run against the
// machine_model's task-management costs instead of a live thread pool.
//
// What the mirror is for:
//   * native-vs-sim accepted-count identity *by construction*: under the
//     block policy every generated request is eventually admitted, so
//     accepted == generated on both sides for any seed
//     (tests/service_test.cpp asserts this);
//   * the sojourn-vs-grain U-curve at fixed offered load without host
//     noise: per-request overhead is paid per task, so fine grains drown in
//     management cost (left wall) while coarse grains queue behind long
//     service times (right wall) — the paper's Fig. 3 shape restated as
//     latency under continuous arrival;
//   * capacity planning: offered loads beyond the simulated saturation
//     point show exactly which policy degrades how (reject keeps backlog
//     bounded, block pushes the wait into the clients, shed keeps
//     freshness).
//
// Requests are served FIFO on `cores` simulated cores. Each request costs
// one task's management overhead (create + convert + two queue ops +
// switch, contention-scaled exactly like des_engine) plus its grain;
// deterministic jitter from the model applies to the grain.
#pragma once

#include <cstdint>

#include "perf/histogram.hpp"
#include "service/arrival.hpp"
#include "service/service.hpp"
#include "sim/machine_model.hpp"

namespace gran::sim {

struct service_sim_config {
  machine_model model;
  int cores = 4;
  service::arrival_config arrival;
  double duration_s = 1.0;  // arrival horizon; the sim drains to completion
  service::admission_policy policy = service::admission_policy::block;
  std::int64_t backlog_bound = 4096;
};

struct service_sim_result {
  std::uint64_t generated = 0;  // arrivals in [0, duration_s)
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::int64_t backlog_peak = 0;
  double makespan_s = 0;        // last completion time
  double offered_per_s = 0;     // generated / duration
  double achieved_per_s = 0;    // completed / makespan
  double sojourn_p50_ns = 0, sojourn_p95_ns = 0, sojourn_p99_ns = 0,
         sojourn_mean_ns = 0;
  perf::histogram_snapshot sojourn;  // full distribution (log2 buckets)
};

service_sim_result run_service_sim(const service_sim_config& cfg);

}  // namespace gran::sim
