// Move-only type-erased callable (a C++20-compatible subset of C++23's
// std::move_only_function) with a small-buffer optimization.
//
// Task bodies use this instead of std::function so callables may capture
// move-only state (std::unique_ptr, file handles, promises) — std::function
// requires copyability even when no copy ever happens.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/assert.hpp"

namespace gran {

template <typename Signature>
class unique_function;

template <typename R, typename... Args>
class unique_function<R(Args...)> {
  // Small-buffer size: enough for a lambda capturing several pointers.
  static constexpr std::size_t k_sbo_size = 48;
  static constexpr std::size_t k_sbo_align = alignof(std::max_align_t);

 public:
  unique_function() noexcept = default;
  unique_function(std::nullptr_t) noexcept {}

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, unique_function> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  unique_function(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= k_sbo_size && alignof(Fn) <= k_sbo_align &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(f));
      inline_ = true;
    } else {
      heap_ = new Fn(std::forward<F>(f));
    }
    vtable_ = &vtable_for<Fn>;
  }

  unique_function(unique_function&& other) noexcept { move_from(std::move(other)); }

  unique_function& operator=(unique_function&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  unique_function& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  unique_function(const unique_function&) = delete;
  unique_function& operator=(const unique_function&) = delete;

  ~unique_function() { reset(); }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  R operator()(Args... args) {
    GRAN_ASSERT_MSG(vtable_ != nullptr, "call of empty unique_function");
    return vtable_->invoke(target(), std::forward<Args>(args)...);
  }

  void swap(unique_function& other) noexcept {
    unique_function tmp(std::move(other));
    other = std::move(*this);
    *this = std::move(tmp);
  }

 private:
  struct vtable {
    R (*invoke)(void*, Args&&...);
    // Moves the target from `from` into `to_buffer` (inline targets) —
    // heap targets move the pointer instead and never use this.
    void (*move_construct)(void* to_buffer, void* from);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr vtable vtable_for{
      [](void* target, Args&&... args) -> R {
        return (*static_cast<Fn*>(target))(std::forward<Args>(args)...);
      },
      [](void* to_buffer, void* from) {
        ::new (to_buffer) Fn(std::move(*static_cast<Fn*>(from)));
        static_cast<Fn*>(from)->~Fn();
      },
      [](void* target) { static_cast<Fn*>(target)->~Fn(); },
  };

  void* target() noexcept {
    return inline_ ? static_cast<void*>(buffer_) : heap_;
  }

  void move_from(unique_function&& other) noexcept {
    vtable_ = other.vtable_;
    inline_ = other.inline_;
    if (vtable_ != nullptr) {
      if (inline_) {
        vtable_->move_construct(buffer_, other.buffer_);
      } else {
        heap_ = other.heap_;
      }
    }
    other.vtable_ = nullptr;
    other.inline_ = false;
    other.heap_ = nullptr;
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      if (inline_) {
        vtable_->destroy(buffer_);
      } else {
        vtable_->destroy(heap_);
        ::operator delete(heap_);
      }
    }
    vtable_ = nullptr;
    inline_ = false;
    heap_ = nullptr;
  }

  const vtable* vtable_ = nullptr;
  bool inline_ = false;
  union {
    alignas(k_sbo_align) unsigned char buffer_[k_sbo_size];
    void* heap_;
  };
};

}  // namespace gran
