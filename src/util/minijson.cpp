#include "util/minijson.hpp"

#include <cctype>
#include <cstdlib>
#include <utility>

namespace gran {

namespace {

void encode_utf8(unsigned cp, std::string& out) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

class json_parser {
 public:
  json_parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<json_value> parse() {
    json_value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& why) {
    if (error_ && error_->empty())
      *error_ = "offset " + std::to_string(pos_) + ": " + why;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(const char* word, std::size_t n) {
    if (text_.compare(pos_, n, word) != 0) {
      fail("invalid literal");
      return false;
    }
    pos_ += n;
    return true;
  }

  bool parse_value(json_value& out) {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (text_[pos_]) {
      case 'n':
        out.kind_ = json_value::kind::null;
        return literal("null", 4);
      case 't':
        out.kind_ = json_value::kind::boolean;
        out.bool_ = true;
        return literal("true", 4);
      case 'f':
        out.kind_ = json_value::kind::boolean;
        out.bool_ = false;
        return literal("false", 5);
      case '"':
        out.kind_ = json_value::kind::string;
        return parse_string(out.string_);
      case '[':
        return parse_array(out);
      case '{':
        return parse_object(out);
      default:
        return parse_number(out);
    }
  }

  bool parse_number(json_value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end != tok.c_str() + tok.size()) {
      pos_ = start;
      fail("invalid number");
      return false;
    }
    out.kind_ = json_value::kind::number;
    out.number_ = v;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return false;
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) break;
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          // Combine a surrogate pair when one follows; otherwise keep the
          // lone surrogate as-is (replacement is not our job).
          if (cp >= 0xD800 && cp <= 0xDBFF &&
              text_.compare(pos_, 2, "\\u") == 0) {
            const std::size_t save = pos_;
            pos_ += 2;
            unsigned lo = 0;
            if (!parse_hex4(lo)) return false;
            if (lo >= 0xDC00 && lo <= 0xDFFF)
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            else
              pos_ = save;
          }
          encode_utf8(cp, out);
          break;
        }
        default:
          pos_ -= 2;
          fail("invalid escape sequence");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
      return false;
    }
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      unsigned digit;
      if (c >= '0' && c <= '9')
        digit = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        digit = static_cast<unsigned>(c - 'a') + 10;
      else if (c >= 'A' && c <= 'F')
        digit = static_cast<unsigned>(c - 'A') + 10;
      else {
        fail("invalid \\u escape");
        return false;
      }
      out = (out << 4) | digit;
    }
    pos_ += 4;
    return true;
  }

  bool parse_array(json_value& out) {
    out.kind_ = json_value::kind::array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      json_value elem;
      if (!parse_value(elem)) return false;
      out.array_.push_back(std::move(elem));
      skip_ws();
      if (pos_ >= text_.size()) break;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      fail("expected ',' or ']' in array");
      return false;
    }
    fail("unterminated array");
    return false;
  }

  bool parse_object(json_value& out) {
    out.kind_ = json_value::kind::object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected string key in object");
        return false;
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        fail("expected ':' after object key");
        return false;
      }
      ++pos_;
      json_value member;
      if (!parse_value(member)) return false;
      out.object_[std::move(key)] = std::move(member);
      skip_ws();
      if (pos_ >= text_.size()) break;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      fail("expected ',' or '}' in object");
      return false;
    }
    fail("unterminated object");
    return false;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

std::optional<json_value> json_value::parse(const std::string& text,
                                            std::string* error) {
  if (error) error->clear();
  return json_parser(text, error).parse();
}

const json_value* json_value::find(const std::string& key) const {
  if (kind_ != kind::object) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double json_value::number_at(const std::string& key, double def) const {
  const json_value* v = find(key);
  return v && v->is_number() ? v->number_ : def;
}

std::string json_value::string_at(const std::string& key,
                                  const std::string& def) const {
  const json_value* v = find(key);
  return v && v->is_string() ? v->string_ : def;
}

}  // namespace gran
