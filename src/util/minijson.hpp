// Minimal recursive-descent JSON parser — just enough to consume the
// telemetry JSONL stream (tools/gran_top, tests) without an external
// dependency. Parses the full JSON grammar (null/bool/number/string/
// array/object, \uXXXX escapes to UTF-8); numbers are doubles.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gran {

class json_value {
 public:
  enum class kind { null, boolean, number, string, array, object };

  // Strict parse of a complete document (trailing garbage is an error).
  // std::nullopt on malformed input; `error` (when non-null) gets
  // "offset N: why".
  static std::optional<json_value> parse(const std::string& text,
                                         std::string* error = nullptr);

  kind type() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == kind::null; }
  bool is_object() const noexcept { return kind_ == kind::object; }
  bool is_array() const noexcept { return kind_ == kind::array; }
  bool is_number() const noexcept { return kind_ == kind::number; }
  bool is_string() const noexcept { return kind_ == kind::string; }

  bool as_bool(bool def = false) const noexcept {
    return kind_ == kind::boolean ? bool_ : def;
  }
  double as_number(double def = 0) const noexcept {
    return kind_ == kind::number ? number_ : def;
  }
  const std::string& as_string() const noexcept { return string_; }

  const std::vector<json_value>& items() const noexcept { return array_; }
  std::size_t size() const noexcept {
    return kind_ == kind::array ? array_.size() : object_.size();
  }

  // Object member lookup; nullptr when absent or not an object.
  const json_value* find(const std::string& key) const;
  // Convenience accessors over find().
  double number_at(const std::string& key, double def = 0) const;
  std::string string_at(const std::string& key,
                        const std::string& def = {}) const;

  const std::map<std::string, json_value>& members() const noexcept {
    return object_;
  }

 private:
  friend class json_parser;

  kind kind_ = kind::null;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<json_value> array_;
  std::map<std::string, json_value> object_;
};

}  // namespace gran
