// Leveled stderr logging. The level is read once from the GRAN_LOG
// environment variable (error|warn|info|debug|trace) and can be overridden
// programmatically. Logging from inside tasks is safe: the sink takes a
// plain OS mutex only after formatting, and never suspends.
#pragma once

#include <cstdarg>
#include <cstdint>

namespace gran {

enum class log_level : std::uint8_t { error = 0, warn, info, debug, trace };

namespace log {

log_level level() noexcept;
void set_level(log_level lvl) noexcept;
bool enabled(log_level lvl) noexcept;

// printf-style message; a newline is appended.
void write(log_level lvl, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace log
}  // namespace gran

#define GRAN_LOG(lvl, ...)                                       \
  do {                                                           \
    if (::gran::log::enabled(lvl)) ::gran::log::write(lvl, __VA_ARGS__); \
  } while (0)

#define GRAN_LOG_ERROR(...) GRAN_LOG(::gran::log_level::error, __VA_ARGS__)
#define GRAN_LOG_WARN(...) GRAN_LOG(::gran::log_level::warn, __VA_ARGS__)
#define GRAN_LOG_INFO(...) GRAN_LOG(::gran::log_level::info, __VA_ARGS__)
#define GRAN_LOG_DEBUG(...) GRAN_LOG(::gran::log_level::debug, __VA_ARGS__)
#define GRAN_LOG_TRACE(...) GRAN_LOG(::gran::log_level::trace, __VA_ARGS__)
