// Minimal command-line option parser shared by the bench and example
// binaries. Accepts --key=value, --key value, and boolean --flag forms;
// positional arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gran {

class cli_args {
 public:
  cli_args(int argc, const char* const* argv);

  // True if --name was present (with or without a value).
  bool has(const std::string& name) const;

  // Typed getters with defaults. Malformed values terminate with a message
  // naming the offending option (benches are non-interactive).
  std::string get(const std::string& name, const std::string& def = "") const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  // Comma-separated integer list, e.g. --cores=1,2,4,8.
  std::vector<std::int64_t> get_int_list(const std::string& name,
                                         std::vector<std::int64_t> def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::optional<std::string> raw(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace gran
