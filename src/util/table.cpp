#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/assert.hpp"

namespace gran {

table_writer::table_writer(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void table_writer::add_row(std::vector<std::string> cells) {
  GRAN_ASSERT_MSG(cells.size() == headers_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
}

void table_writer::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double v : cells) out.push_back(format_number(v, precision));
  add_row(std::move(out));
}

void table_writer::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t i = row[c].size(); i < widths[c]; ++i) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  const auto print_rule = [&]() {
    os << "+";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };

  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void table_writer::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

bool table_writer::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  print_csv(out);
  return static_cast<bool>(out);
}

std::string format_number(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

std::string format_duration_ns(double ns) {
  const double a = std::fabs(ns);
  char buf[64];
  if (a < 1e3)
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  else if (a < 1e6)
    std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
  else if (a < 1e9)
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  else
    std::snprintf(buf, sizeof(buf), "%.3f s", ns / 1e9);
  return buf;
}

std::string format_count(std::int64_t v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  int seen = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (seen && seen % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++seen;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace gran
