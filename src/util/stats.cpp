#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace gran {

void running_stats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double running_stats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double running_stats::stddev() const noexcept { return std::sqrt(variance()); }

double running_stats::cov() const noexcept {
  const double m = mean();
  return m != 0.0 ? stddev() / m : 0.0;
}

void running_stats::merge(const running_stats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double sample_stats::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double sample_stats::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double sample_stats::cov() const noexcept {
  const double m = mean();
  return m != 0.0 ? stddev() / m : 0.0;
}

double sample_stats::min() const noexcept {
  return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
}

double sample_stats::max() const noexcept {
  return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
}

double sample_stats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace gran
