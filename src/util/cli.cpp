#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

namespace gran {

namespace {

[[noreturn]] void bad_option(const std::string& name, const std::string& value,
                             const char* what) {
  std::fprintf(stderr, "error: option --%s: %s value '%s'\n", name.c_str(), what,
               value.c_str());
  std::exit(2);
}

bool looks_like_value(const char* s) { return s != nullptr && s[0] != '-'; }

}  // namespace

cli_args::cli_args(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      const auto eq = body.find('=');
      if (eq != std::string::npos) {
        options_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && looks_like_value(argv[i + 1])) {
        options_[body] = argv[++i];
      } else {
        options_[body] = "";  // boolean flag
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool cli_args::has(const std::string& name) const { return options_.count(name) != 0; }

std::optional<std::string> cli_args::raw(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string cli_args::get(const std::string& name, const std::string& def) const {
  return raw(name).value_or(def);
}

std::int64_t cli_args::get_int(const std::string& name, std::int64_t def) const {
  const auto v = raw(name);
  if (!v || v->empty()) return def;  // bare flag: no value given
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') bad_option(name, *v, "not an integer");
  return parsed;
}

double cli_args::get_double(const std::string& name, double def) const {
  const auto v = raw(name);
  if (!v || v->empty()) return def;  // bare flag: no value given
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') bad_option(name, *v, "not a number");
  return parsed;
}

bool cli_args::get_bool(const std::string& name, bool def) const {
  const auto v = raw(name);
  if (!v) return def;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes" || *v == "on") return true;
  if (*v == "0" || *v == "false" || *v == "no" || *v == "off") return false;
  bad_option(name, *v, "not a boolean");
}

std::vector<std::int64_t> cli_args::get_int_list(const std::string& name,
                                                 std::vector<std::int64_t> def) const {
  const auto v = raw(name);
  if (!v) return def;
  std::vector<std::int64_t> out;
  std::size_t pos = 0;
  while (pos <= v->size()) {
    const auto comma = v->find(',', pos);
    const std::string item =
        v->substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!item.empty()) {
      char* end = nullptr;
      const long long parsed = std::strtoll(item.c_str(), &end, 10);
      if (end == item.c_str() || *end != '\0') bad_option(name, item, "not an integer");
      out.push_back(parsed);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace gran
