// Exponential spin backoff for lock-free retry loops and idle worker waits.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace gran {

// Single CPU pause/yield hint.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

// Exponential backoff: spins with pause hints, escalating to OS yield once
// the spin budget is exhausted. Reset when progress is made.
class backoff {
 public:
  explicit backoff(std::uint32_t spin_limit = 1024) noexcept : spin_limit_(spin_limit) {}

  void pause() noexcept {
    if (count_ < spin_limit_) {
      for (std::uint32_t i = 0; i < count_ + 1; ++i) cpu_relax();
      count_ = count_ == 0 ? 1 : count_ * 2;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { count_ = 0; }

  // True once backoff has escalated past pure spinning.
  bool yielding() const noexcept { return count_ >= spin_limit_; }

 private:
  std::uint32_t count_ = 0;
  std::uint32_t spin_limit_;
};

}  // namespace gran
