// Exponential spin backoff for lock-free retry loops and idle worker waits.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace gran {

// Single CPU pause/yield hint.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

// Exponential backoff: spins with pause hints, escalating to OS yield once
// the spin budget is exhausted. Reset when progress is made.
class backoff {
 public:
  explicit backoff(std::uint32_t spin_limit = 1024) noexcept : spin_limit_(spin_limit) {}

  void pause() noexcept {
    if (count_ < spin_limit_) {
      for (std::uint32_t i = 0; i < count_ + 1; ++i) cpu_relax();
      count_ = count_ == 0 ? 1 : count_ * 2;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { count_ = 0; }

  // True once backoff has escalated past pure spinning.
  bool yielding() const noexcept { return count_ >= spin_limit_; }

 private:
  std::uint32_t count_ = 0;
  std::uint32_t spin_limit_;
};

// Idle-worker escalation: spin with pause hints, then OS-yield, then tell
// the caller to park (block on its wakeup primitive). Unlike `backoff`, the
// two thresholds are configurable so the scheduler's idle_spin_limit /
// idle_yield_limit knobs map onto it directly.
class idle_backoff {
 public:
  idle_backoff(std::uint32_t spin_limit, std::uint32_t yield_limit) noexcept
      : spin_limit_(spin_limit), yield_limit_(yield_limit) {}

  // One escalation step. Returns true once the caller should park.
  bool pause() noexcept {
    ++streak_;
    if (streak_ <= spin_limit_) {
      cpu_relax();
      return false;
    }
    if (streak_ <= yield_limit_) {
      std::this_thread::yield();
      return false;
    }
    return true;
  }

  void reset() noexcept { streak_ = 0; }
  std::uint32_t streak() const noexcept { return streak_; }

 private:
  std::uint32_t streak_ = 0;
  std::uint32_t spin_limit_;
  std::uint32_t yield_limit_;
};

}  // namespace gran
