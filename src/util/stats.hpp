// Sample statistics used by the experiment driver.
//
// The paper reports mean, standard deviation and coefficient of variation
// (COV = stddev / mean) of execution times and event counts over 10 samples
// (§II, §IV). sample_stats reproduces exactly those quantities.
#pragma once

#include <cstddef>
#include <vector>

namespace gran {

// Accumulates samples one at a time (Welford's algorithm) without storing
// them. Suitable for long counter streams.
class running_stats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator), 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  // Coefficient of variation: stddev / mean (0 when mean is 0).
  double cov() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

  // Merges another accumulator (parallel reduction of per-worker stats).
  void merge(const running_stats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Stores samples; adds percentiles to the running_stats quantities.
class sample_stats {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const noexcept;
  double stddev() const noexcept;
  double cov() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  // Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace gran
