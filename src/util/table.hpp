// ASCII-table and CSV emitters for the bench harness.
//
// Every figure bench prints (a) a human-readable aligned table of the series
// the paper plots, and (b) optionally the same rows as CSV for re-plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gran {

class table_writer {
 public:
  explicit table_writer(std::vector<std::string> headers);

  // Adds a row; cells are pre-formatted strings. Row length must match the
  // header count.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats a mixed row of doubles with the given precision.
  void add_numeric_row(const std::vector<double>& cells, int precision = 4);

  // Writes an aligned ASCII table.
  void print(std::ostream& os) const;

  // Writes RFC-4180-ish CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& os) const;

  // Writes CSV to a file path; returns false on I/O failure.
  bool save_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return headers_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double trimmed of trailing zeros ("1.25", "3", "0.0041").
std::string format_number(double v, int precision = 4);

// Formats nanoseconds with an adaptive unit ("312 ns", "21.4 us", "1.75 s").
std::string format_duration_ns(double ns);

// Formats a count with thousands separators ("12,500,000").
std::string format_count(std::int64_t v);

}  // namespace gran
