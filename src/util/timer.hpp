// High-resolution timing.
//
// Two clocks are provided:
//  * tsc_clock   — raw rdtsc cycles, calibrated once against steady_clock.
//                  ~6 ns to read; used by the per-task timestamping that
//                  feeds the /threads/time/* performance counters.
//  * stopwatch   — steady_clock convenience wrapper for coarse sections.
//
// The paper (§II, note) measures the overhead of invoking these timers and
// finds it insignificant except for sub-4 µs tasks on one core; the
// bench/micro_runtime binary reproduces that measurement.
#pragma once

#include <chrono>
#include <cstdint>

namespace gran {

// Nanoseconds as the universal internal time unit.
using nanoseconds_t = std::int64_t;

// Reads the CPU timestamp counter. On non-x86 platforms falls back to
// steady_clock (same interface, coarser cost).
std::uint64_t rdtsc() noexcept;

// Calibrated TSC clock. The first use (or an explicit calibrate()) measures
// the TSC frequency against std::chrono::steady_clock over a short window.
class tsc_clock {
 public:
  // Ticks of the underlying counter; convert with to_ns().
  static std::uint64_t now() noexcept { return rdtsc(); }

  // Nanoseconds per tick (calibrated once, cached).
  static double ns_per_tick();

  static nanoseconds_t to_ns(std::uint64_t ticks) {
    return static_cast<nanoseconds_t>(static_cast<double>(ticks) * ns_per_tick());
  }

  // Forces recalibration (used by tests).
  static void calibrate();
};

// Convenience steady_clock stopwatch.
class stopwatch {
 public:
  stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  nanoseconds_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_).count();
  }

  double elapsed_s() const { return static_cast<double>(elapsed_ns()) * 1e-9; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace gran
