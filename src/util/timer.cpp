#include "util/timer.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace gran {

std::uint64_t rdtsc() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

namespace {

double measure_ns_per_tick() {
#if defined(__x86_64__) || defined(__i386__)
  using clock = std::chrono::steady_clock;
  // Two short windows; take the slower estimate to dampen scheduling noise.
  double best = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    const auto t0 = clock::now();
    const std::uint64_t c0 = rdtsc();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const std::uint64_t c1 = rdtsc();
    const auto t1 = clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    const double ticks = static_cast<double>(c1 - c0);
    if (ticks > 0) best = std::max(best, ns / ticks);
  }
  return best > 0 ? best : 1.0;
#else
  return 1.0;  // fallback counter already runs in steady_clock ns
#endif
}

std::atomic<double> g_ns_per_tick{0.0};
std::mutex g_calibrate_mutex;

}  // namespace

double tsc_clock::ns_per_tick() {
  double v = g_ns_per_tick.load(std::memory_order_acquire);
  if (v == 0.0) {
    std::lock_guard<std::mutex> lock(g_calibrate_mutex);
    v = g_ns_per_tick.load(std::memory_order_acquire);
    if (v == 0.0) {
      v = measure_ns_per_tick();
      g_ns_per_tick.store(v, std::memory_order_release);
    }
  }
  return v;
}

void tsc_clock::calibrate() {
  std::lock_guard<std::mutex> lock(g_calibrate_mutex);
  g_ns_per_tick.store(measure_ns_per_tick(), std::memory_order_release);
}

}  // namespace gran
