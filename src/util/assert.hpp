// Lightweight always-on assertion macros for runtime invariants.
//
// GRAN_ASSERT is active in all build types: the invariants it guards
// (scheduler state machines, queue linkage) are cheap relative to the
// operations they protect and catching a corrupted task state late is far
// more expensive than the check.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gran::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "gran: assertion failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace gran::detail

#define GRAN_ASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr)) ::gran::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define GRAN_ASSERT_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) ::gran::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

// Debug-only assertion for hot paths.
#ifdef NDEBUG
#define GRAN_DEBUG_ASSERT(expr) ((void)0)
#else
#define GRAN_DEBUG_ASSERT(expr) GRAN_ASSERT(expr)
#endif
