// Cache-line geometry and padding helpers used to keep per-worker hot data
// (queues, counter cells) from false sharing.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace gran {

// std::hardware_destructive_interference_size is 64 on every x86-64 libstdc++
// but is not guaranteed to be defined; pin it explicitly.
inline constexpr std::size_t cache_line_size = 64;

// Wraps a value in storage padded out to a whole number of cache lines so
// adjacent array elements never share a line.
template <typename T>
struct alignas(cache_line_size) padded {
  T value{};

  padded() = default;
  template <typename... Args>
  explicit padded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

}  // namespace gran
