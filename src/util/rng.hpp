// Shared deterministic pseudo-randomness helpers.
//
// Everything that needs seeded, reproducible randomness — the simulator's
// execution-time jitter, the random task-graph generator, the randomized
// DAG fuzz tests — hashes through the same splitmix64 finalizer so a seed
// printed by one component can be replayed anywhere.
#pragma once

#include <cstdint>
#include <cstdlib>

namespace gran {

// splitmix64 finalizer: a high-quality 64-bit mix usable as a stateless,
// O(1)-queryable RNG (hash the coordinates, get the random value).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Order-sensitive combination of two hashes (for multi-coordinate keys,
// e.g. (seed, step, point)).
constexpr std::uint64_t mix64_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

// Maps a hash to a double in [0, 1) using the top 53 bits.
constexpr double mix64_to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

// Seed for randomized tests: GRAN_FUZZ_SEED when set (so a failure printed
// with its seed can be replayed exactly), `fallback` otherwise.
inline std::uint64_t fuzz_seed(std::uint64_t fallback) noexcept {
  if (const char* s = std::getenv("GRAN_FUZZ_SEED"); s != nullptr && *s != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 0);
    if (end != s && *end == '\0') return static_cast<std::uint64_t>(v);
  }
  return fallback;
}

}  // namespace gran
