#include "util/env.hpp"

#include <cstdlib>

namespace gran {

std::string env_string(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  return v ? std::string(v) : def;
}

std::int64_t env_int(const char* name, std::int64_t def) {
  const char* v = std::getenv(name);
  if (!v) return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end == v || *end != '\0') ? def : parsed;
}

bool env_bool(const char* name, bool def) {
  const char* v = std::getenv(name);
  if (!v) return def;
  const std::string s(v);
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  return def;
}

}  // namespace gran
