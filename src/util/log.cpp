#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "util/env.hpp"

namespace gran::log {

namespace {

log_level initial_level() {
  const std::string v = env_string("GRAN_LOG", "warn");
  if (v == "error") return log_level::error;
  if (v == "warn") return log_level::warn;
  if (v == "info") return log_level::info;
  if (v == "debug") return log_level::debug;
  if (v == "trace") return log_level::trace;
  return log_level::warn;
}

std::atomic<log_level> g_level{initial_level()};
std::mutex g_sink_mutex;

const char* level_name(log_level lvl) {
  switch (lvl) {
    case log_level::error: return "ERROR";
    case log_level::warn: return "WARN ";
    case log_level::info: return "INFO ";
    case log_level::debug: return "DEBUG";
    case log_level::trace: return "TRACE";
  }
  return "?";
}

}  // namespace

log_level level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_level(log_level lvl) noexcept { g_level.store(lvl, std::memory_order_relaxed); }
bool enabled(log_level lvl) noexcept { return lvl <= level(); }

void write(log_level lvl, const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[gran %s] %s\n", level_name(lvl), buf);
}

}  // namespace gran::log
