// Typed environment-variable access (configuration of defaults such as
// GRAN_LOG, GRAN_STACK_SIZE).
#pragma once

#include <cstdint>
#include <string>

namespace gran {

std::string env_string(const char* name, const std::string& def);
std::int64_t env_int(const char* name, std::int64_t def);
bool env_bool(const char* name, bool def);

}  // namespace gran
