#include "sync/timer_service.hpp"

#include "util/assert.hpp"

namespace gran {

namespace {
// wake_ticket states.
constexpr int k_armed = 0, k_firing = 1, k_done = 2, k_cancelled = 3;
}  // namespace

bool wake_ticket_cancel(const wake_ticket& ticket) {
  int expected = k_armed;
  if (ticket->compare_exchange_strong(expected, k_cancelled,
                                      std::memory_order_acq_rel))
    return true;  // timer will skip this entry
  // Timer won the race: wait out the (brief) delivery so the task pointer
  // is never touched after we return.
  while (ticket->load(std::memory_order_acquire) != k_done) std::this_thread::yield();
  return false;
}

timer_service& timer_service::global() {
  static timer_service service;
  return service;
}

timer_service::~timer_service() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void timer_service::ensure_thread_locked() {
  if (!running_) {
    running_ = true;
    thread_ = std::thread([this] { timer_main(); });
  }
}

void timer_service::sleep_until(clock::time_point deadline) {
  task* const t = thread_manager::current_task();
  if (t == nullptr) {
    std::this_thread::sleep_until(deadline);
    return;
  }

  this_task::prepare_suspend();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (deadline <= clock::now()) {
      lock.unlock();
      this_task::cancel_suspend();
      return;
    }
    ensure_thread_locked();
    deadlines_.push(entry{deadline, t, nullptr});
  }
  // Wake the timer thread so it can re-arm to an earlier deadline.
  cv_.notify_one();
  this_task::commit_suspend();
}

wake_ticket timer_service::schedule_wake(task* t, clock::time_point deadline) {
  GRAN_ASSERT(t != nullptr);
  auto ticket = std::make_shared<std::atomic<int>>(k_armed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ensure_thread_locked();
    deadlines_.push(entry{deadline, t, ticket});
  }
  cv_.notify_one();
  return ticket;
}

std::size_t timer_service::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deadlines_.size();
}

void timer_service::timer_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (deadlines_.empty()) {
      cv_.wait(lock, [this] { return stopping_ || !deadlines_.empty(); });
      continue;
    }
    const clock::time_point next = deadlines_.top().deadline;
    if (cv_.wait_until(lock, next,
                       [this, next] {
                         return stopping_ ||
                                (!deadlines_.empty() &&
                                 deadlines_.top().deadline < next);
                       })) {
      continue;  // earlier deadline arrived or shutting down
    }
    // Deadline passed: release every expired sleeper.
    const clock::time_point now = clock::now();
    std::vector<entry> expired;
    while (!deadlines_.empty() && deadlines_.top().deadline <= now) {
      expired.push_back(deadlines_.top());
      deadlines_.pop();
    }
    lock.unlock();
    for (const entry& e : expired) {
      if (e.ticket != nullptr) {
        // Cancellable wake: claim it; skip if the waiter cancelled.
        int expected = k_armed;
        if (!e.ticket->compare_exchange_strong(expected, k_firing,
                                               std::memory_order_acq_rel))
          continue;
      }
      thread_manager* tm = e.sleeper->owner();
      GRAN_ASSERT_MSG(tm != nullptr, "sleeping task has no owning manager");
      tm->wake(e.sleeper);
      if (e.ticket != nullptr) e.ticket->store(k_done, std::memory_order_release);
    }
    lock.lock();
  }
}

}  // namespace gran
