// Deadline service for cooperative sleeps: a task calling sleep_for()
// suspends (its worker keeps running other tasks) and is woken by a shared
// timer thread when the deadline passes; external threads just block.
//
// One lazily started timer thread serves the whole process; it sleeps until
// the earliest registered deadline and is re-armed whenever an earlier one
// arrives.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "threads/thread_manager.hpp"

namespace gran {

// Handshake object for cancellable timed wakes. States:
//   armed     — the timer will fire at the deadline
//   firing    — the timer thread is delivering the wake right now
//   done      — the wake was delivered
//   cancelled — the waiter cancelled before the timer fired
// The waiter must call wake_ticket_cancel() before letting the woken task
// terminate: it either cancels the timer or waits out an in-flight delivery,
// so the timer thread never touches a dead task.
using wake_ticket = std::shared_ptr<std::atomic<int>>;

// Cancels the ticket. Returns true if the timer had NOT fired (we cancelled
// it); false if the timer fired (after waiting for its delivery to finish).
bool wake_ticket_cancel(const wake_ticket& ticket);

class timer_service {
 public:
  using clock = std::chrono::steady_clock;

  static timer_service& global();

  ~timer_service();
  timer_service(const timer_service&) = delete;
  timer_service& operator=(const timer_service&) = delete;

  // Blocks the caller until `deadline`: cooperatively inside a task,
  // natively otherwise.
  void sleep_until(clock::time_point deadline);

  template <typename Rep, typename Period>
  void sleep_for(std::chrono::duration<Rep, Period> d) {
    sleep_until(clock::now() + d);
  }

  // Arms a one-shot wake of `t` at `deadline` (used by timed future waits).
  // The caller must wake_ticket_cancel() the ticket once it no longer wants
  // the wake — and before the task can terminate.
  wake_ticket schedule_wake(task* t, clock::time_point deadline);

  // Number of sleepers currently registered (tests/introspection).
  std::size_t pending() const;

 private:
  timer_service() = default;

  struct entry {
    clock::time_point deadline;
    task* sleeper;
    wake_ticket ticket;  // null for plain sleeps (not cancellable)
    bool operator>(const entry& o) const { return deadline > o.deadline; }
  };

  void ensure_thread_locked();
  void timer_main();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<entry, std::vector<entry>, std::greater<entry>> deadlines_;
  std::thread thread_;
  bool running_ = false;
  bool stopping_ = false;
};

namespace this_task {

// Cooperative sleep: the current task suspends until the duration elapses
// (outside a task this is a plain blocking sleep).
template <typename Rep, typename Period>
void sleep_for(std::chrono::duration<Rep, Period> d) {
  timer_service::global().sleep_for(d);
}

inline void sleep_until(timer_service::clock::time_point deadline) {
  timer_service::global().sleep_until(deadline);
}

}  // namespace this_task

}  // namespace gran
