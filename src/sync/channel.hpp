// Bounded multi-producer/multi-consumer channel with cooperative blocking —
// the CSP-style pipe used by the dataflow-pipeline example. send() blocks
// when full, recv() blocks when empty, close() releases every blocked party.
#pragma once

#include <deque>
#include <optional>

#include "sync/spinlock.hpp"
#include "sync/wait_queue.hpp"
#include "util/assert.hpp"

namespace gran {

template <typename T>
class channel {
 public:
  explicit channel(std::size_t capacity) : capacity_(capacity) {
    GRAN_ASSERT(capacity >= 1);
  }
  channel(const channel&) = delete;
  channel& operator=(const channel&) = delete;

  // Blocks while the channel is full. Returns false if the channel was
  // closed (the value is dropped).
  bool send(T value) {
    for (;;) {
      task* const t = thread_manager::current_task();
      if (t != nullptr) this_task::prepare_suspend();

      guard_.lock();
      if (closed_) {
        guard_.unlock();
        if (t != nullptr) this_task::cancel_suspend();
        return false;
      }
      if (items_.size() < capacity_) {
        items_.push_back(std::move(value));
        wait_queue to_wake = recv_waiters_.detach(1);
        guard_.unlock();
        if (t != nullptr) this_task::cancel_suspend();
        to_wake.dispatch_all();
        return true;
      }
      if (t != nullptr) {
        send_waiters_.add_task(t);
        guard_.unlock();
        this_task::commit_suspend();
      } else {
        external_waiter w;
        send_waiters_.add_external(&w);
        guard_.unlock();
        w.wait();
      }
    }
  }

  // Blocks while the channel is empty. Empty optional once the channel is
  // closed *and* drained.
  std::optional<T> recv() {
    for (;;) {
      task* const t = thread_manager::current_task();
      if (t != nullptr) this_task::prepare_suspend();

      guard_.lock();
      if (!items_.empty()) {
        T value = std::move(items_.front());
        items_.pop_front();
        wait_queue to_wake = send_waiters_.detach(1);
        guard_.unlock();
        if (t != nullptr) this_task::cancel_suspend();
        to_wake.dispatch_all();
        return value;
      }
      if (closed_) {
        guard_.unlock();
        if (t != nullptr) this_task::cancel_suspend();
        return std::nullopt;
      }
      if (t != nullptr) {
        recv_waiters_.add_task(t);
        guard_.unlock();
        this_task::commit_suspend();
      } else {
        external_waiter w;
        recv_waiters_.add_external(&w);
        guard_.unlock();
        w.wait();
      }
    }
  }

  // Non-blocking variants.
  bool try_send(T value) {
    guard_.lock();
    if (closed_ || items_.size() >= capacity_) {
      guard_.unlock();
      return false;
    }
    items_.push_back(std::move(value));
    wait_queue to_wake = recv_waiters_.detach(1);
    guard_.unlock();
    to_wake.dispatch_all();
    return true;
  }

  std::optional<T> try_recv() {
    guard_.lock();
    if (items_.empty()) {
      guard_.unlock();
      return std::nullopt;
    }
    T value = std::move(items_.front());
    items_.pop_front();
    wait_queue to_wake = send_waiters_.detach(1);
    guard_.unlock();
    to_wake.dispatch_all();
    return value;
  }

  // Closes the channel: senders fail, receivers drain then see nullopt.
  void close() {
    guard_.lock();
    closed_ = true;
    wait_queue senders = send_waiters_.detach_all();
    wait_queue receivers = recv_waiters_.detach_all();
    guard_.unlock();
    senders.dispatch_all();
    receivers.dispatch_all();
  }

  bool closed() const {
    guard_.lock();
    const bool c = closed_;
    guard_.unlock();
    return c;
  }

  std::size_t size() const {
    guard_.lock();
    const std::size_t n = items_.size();
    guard_.unlock();
    return n;
  }

 private:
  mutable spinlock guard_;
  wait_queue send_waiters_;
  wait_queue recv_waiters_;
  std::deque<T> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace gran
