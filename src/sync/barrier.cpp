#include "sync/barrier.hpp"

#include "util/assert.hpp"

namespace gran {

barrier::barrier(std::int64_t expected, std::function<void()> on_completion)
    : on_completion_(std::move(on_completion)), expected_(expected) {
  GRAN_ASSERT(expected >= 1);
}

void barrier::arrive_and_wait() {
  task* const t = thread_manager::current_task();
  if (t != nullptr) this_task::prepare_suspend();

  guard_.lock();
  const std::uint64_t my_phase = phase_;
  ++arrived_;
  if (arrived_ == expected_) {
    // Phase complete: run the completion, flip the phase, release everyone
    // (dispatch outside the spinlock — see wait_queue docs).
    if (on_completion_) on_completion_();
    arrived_ = 0;
    ++phase_;
    wait_queue to_wake = waiters_.detach_all();
    guard_.unlock();
    if (t != nullptr) this_task::cancel_suspend();
    to_wake.dispatch_all();
    return;
  }

  if (t != nullptr) {
    waiters_.add_task(t);
    guard_.unlock();
    // Wait until the phase advances; a barging wake from a later phase is
    // impossible because notify_all only fires on our phase's completion,
    // but re-check the phase to be robust against spurious wakes.
    for (;;) {
      this_task::commit_suspend();
      guard_.lock();
      const bool advanced = phase_ != my_phase;
      if (advanced) {
        guard_.unlock();
        return;
      }
      this_task::prepare_suspend();
      waiters_.add_task(t);
      guard_.unlock();
    }
  } else {
    external_waiter w;
    waiters_.add_external(&w);
    guard_.unlock();
    w.wait();
    // External waiters are only notified on phase completion.
  }
}

void barrier::arrive_and_drop() {
  guard_.lock();
  GRAN_ASSERT(expected_ >= 1);
  --expected_;
  // Dropping may satisfy the current phase for the remaining participants.
  wait_queue to_wake;
  if (expected_ > 0 && arrived_ == expected_) {
    if (on_completion_) on_completion_();
    arrived_ = 0;
    ++phase_;
    to_wake = waiters_.detach_all();
  }
  guard_.unlock();
  to_wake.dispatch_all();
}

}  // namespace gran
