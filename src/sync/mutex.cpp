#include "sync/mutex.hpp"

namespace gran {

void mutex::lock() {
  for (;;) {
    task* const t = thread_manager::current_task();
    if (t != nullptr) this_task::prepare_suspend();

    guard_.lock();
    if (!locked_) {
      locked_ = true;
      guard_.unlock();
      if (t != nullptr) this_task::cancel_suspend();
      return;
    }
    if (t != nullptr) {
      waiters_.add_task(t);
      guard_.unlock();
      this_task::commit_suspend();
      // Woken by unlock(); loop to compete for the lock again (barging
      // keeps the fast path cheap; starvation is bounded by FIFO wakes).
    } else {
      external_waiter w;
      waiters_.add_external(&w);
      guard_.unlock();
      w.wait();
    }
  }
}

bool mutex::try_lock() {
  guard_.lock();
  const bool acquired = !locked_;
  locked_ = true;
  guard_.unlock();
  return acquired;
}

void mutex::unlock() {
  guard_.lock();
  locked_ = false;
  wait_queue to_wake = waiters_.detach(1);
  guard_.unlock();
  // Dispatch outside the spinlock: the woken party may destroy this mutex.
  to_wake.dispatch_all();
}

}  // namespace gran
