// Cyclic barrier (std::barrier semantics without the completion function
// template parameter; an optional std::function completion runs under the
// barrier lock when a phase flips).
#pragma once

#include <cstdint>
#include <functional>

#include "sync/spinlock.hpp"
#include "sync/wait_queue.hpp"

namespace gran {

class barrier {
 public:
  explicit barrier(std::int64_t expected,
                   std::function<void()> on_completion = nullptr);
  barrier(const barrier&) = delete;
  barrier& operator=(const barrier&) = delete;

  // Arrives at the barrier and blocks until all `expected` participants of
  // the current phase have arrived.
  void arrive_and_wait();

  // Arrives without waiting and permanently reduces the participant count.
  void arrive_and_drop();

  std::int64_t expected() const noexcept { return expected_; }

 private:
  mutable spinlock guard_;
  wait_queue waiters_;
  std::function<void()> on_completion_;
  std::int64_t expected_;
  std::int64_t arrived_ = 0;
  std::uint64_t phase_ = 0;
};

}  // namespace gran
