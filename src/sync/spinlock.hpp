// Test-and-test-and-set spinlock with exponential backoff. Protects the
// short critical sections inside synchronization primitives and future
// shared states. Never held across a task suspension.
#pragma once

#include <atomic>

#include "util/backoff.hpp"

namespace gran {

class spinlock {
 public:
  spinlock() = default;
  spinlock(const spinlock&) = delete;
  spinlock& operator=(const spinlock&) = delete;

  void lock() noexcept {
    backoff bo;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) bo.pause();
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace gran
