// Single-use countdown latch (std::latch semantics, cooperative blocking).
// The workhorse of fork-join sections in the examples and tests: spawn N
// tasks, each count_down()s, the parent wait()s.
#pragma once

#include <cstdint>

#include "sync/spinlock.hpp"
#include "sync/wait_queue.hpp"

namespace gran {

class latch {
 public:
  explicit latch(std::int64_t expected);
  latch(const latch&) = delete;
  latch& operator=(const latch&) = delete;

  // Decrements by n; releases all waiters when the count reaches zero.
  void count_down(std::int64_t n = 1);

  bool try_wait() const;

  // Blocks until the count reaches zero.
  void wait() const;

  void arrive_and_wait(std::int64_t n = 1);

 private:
  mutable spinlock guard_;
  mutable wait_queue waiters_;
  std::int64_t count_;
};

}  // namespace gran
