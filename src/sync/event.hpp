// Manual-reset event: one-shot "it happened" flag with cooperative waiting.
// Lighter than a future<void> when no value/exception needs to travel.
#pragma once

#include "sync/spinlock.hpp"
#include "sync/wait_queue.hpp"

namespace gran {

class event {
 public:
  event() = default;
  event(const event&) = delete;
  event& operator=(const event&) = delete;

  // Sets the flag and releases all current and future waiters.
  void set();

  // Clears the flag (subsequent wait()s block again).
  void reset();

  bool is_set() const;

  // Blocks until the flag is set.
  void wait() const;

 private:
  mutable spinlock guard_;
  mutable wait_queue waiters_;
  bool set_ = false;
};

}  // namespace gran
