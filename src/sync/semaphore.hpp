// Cooperative counting semaphore (std::counting_semaphore semantics).
// Used by the examples to throttle in-flight work and by tests as a
// building block for producer/consumer scenarios.
#pragma once

#include <cstdint>

#include "sync/spinlock.hpp"
#include "sync/wait_queue.hpp"

namespace gran {

class counting_semaphore {
 public:
  explicit counting_semaphore(std::int64_t initial);
  counting_semaphore(const counting_semaphore&) = delete;
  counting_semaphore& operator=(const counting_semaphore&) = delete;

  // Increments the count by n, waking up to n waiters.
  void release(std::int64_t n = 1);

  // Decrements the count, blocking while it is zero.
  void acquire();

  bool try_acquire();

  std::int64_t value() const;

 private:
  mutable spinlock guard_;
  wait_queue waiters_;
  std::int64_t count_;
};

// Binary convenience alias.
class binary_semaphore : public counting_semaphore {
 public:
  explicit binary_semaphore(std::int64_t initial = 0) : counting_semaphore(initial) {}
};

}  // namespace gran
