// Cooperative condition variable for gran::mutex. Waiting tasks suspend;
// waiting external threads park. The usual spurious-wakeup contract applies:
// always wait under a predicate loop (the predicate overloads do).
#pragma once

#include <mutex>

#include "sync/mutex.hpp"
#include "sync/spinlock.hpp"
#include "sync/wait_queue.hpp"

namespace gran {

class condition_variable {
 public:
  condition_variable() = default;
  condition_variable(const condition_variable&) = delete;
  condition_variable& operator=(const condition_variable&) = delete;

  // `lock` must be held; released while waiting and re-acquired before
  // returning.
  void wait(std::unique_lock<mutex>& lock);

  template <typename Predicate>
  void wait(std::unique_lock<mutex>& lock, Predicate pred) {
    while (!pred()) wait(lock);
  }

  void notify_one();
  void notify_all();

 private:
  spinlock guard_;
  wait_queue waiters_;
};

}  // namespace gran
