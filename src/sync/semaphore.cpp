#include "sync/semaphore.hpp"

#include "util/assert.hpp"

namespace gran {

counting_semaphore::counting_semaphore(std::int64_t initial) : count_(initial) {
  GRAN_ASSERT(initial >= 0);
}

void counting_semaphore::release(std::int64_t n) {
  GRAN_ASSERT(n >= 0);
  guard_.lock();
  count_ += n;
  wait_queue to_wake = waiters_.detach(static_cast<std::size_t>(n));
  guard_.unlock();
  to_wake.dispatch_all();
}

void counting_semaphore::acquire() {
  for (;;) {
    task* const t = thread_manager::current_task();
    if (t != nullptr) this_task::prepare_suspend();

    guard_.lock();
    if (count_ > 0) {
      --count_;
      guard_.unlock();
      if (t != nullptr) this_task::cancel_suspend();
      return;
    }
    if (t != nullptr) {
      waiters_.add_task(t);
      guard_.unlock();
      this_task::commit_suspend();
      // Loop: competes again (another acquirer may have barged in).
    } else {
      external_waiter w;
      waiters_.add_external(&w);
      guard_.unlock();
      w.wait();
    }
  }
}

bool counting_semaphore::try_acquire() {
  guard_.lock();
  const bool ok = count_ > 0;
  if (ok) --count_;
  guard_.unlock();
  return ok;
}

std::int64_t counting_semaphore::value() const {
  guard_.lock();
  const std::int64_t v = count_;
  guard_.unlock();
  return v;
}

}  // namespace gran
