// Waiter bookkeeping shared by all blocking primitives.
//
// A waiter is either a task (suspended cooperatively — the worker keeps
// running other tasks, paper §I-B) or an external OS thread (parked on a
// condition variable). The owning primitive serializes access with its own
// spinlock; wait_queue itself is not thread-safe.
//
// Task-wait protocol (race-free with task::wake, see task.hpp):
//     this_task::prepare_suspend();
//     lock primitive;
//     if (condition already satisfied) { unlock; this_task::cancel_suspend(); }
//     else { wq.add_task(current); unlock; this_task::commit_suspend(); }
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "threads/thread_manager.hpp"

namespace gran {

// Stack-allocated parking slot for a non-worker thread.
class external_waiter {
 public:
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return notified_; });
  }

  // Returns true if notified, false on timeout.
  template <typename Clock, typename Duration>
  bool wait_until(std::chrono::time_point<Clock, Duration> deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_until(lock, deadline, [this] { return notified_; });
  }

  void notify() {
    // Notify *while holding* the mutex: the waiter cannot return from
    // wait() (and destroy this object) until we release it, so cv_ stays
    // valid for the notify call.
    std::lock_guard<std::mutex> lock(mutex_);
    notified_ = true;
    cv_.notify_one();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool notified_ = false;
};

class wait_queue {
 public:
  bool empty() const noexcept { return waiters_.empty(); }
  std::size_t size() const noexcept { return waiters_.size(); }

  void add_task(task* t) { waiters_.push_back(entry{t, nullptr}); }
  void add_external(external_waiter* w) { waiters_.push_back(entry{nullptr, w}); }

  // Removes a specific waiter (timeout/interrupt paths). Returns false when
  // it had already been removed by a notifier.
  bool remove(const task* t) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it)
      if (it->t == t) {
        waiters_.erase(it);
        return true;
      }
    return false;
  }

  bool remove_external(const external_waiter* w) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it)
      if (it->ext == w) {
        waiters_.erase(it);
        return true;
      }
    return false;
  }

  // Wakes the oldest waiter. Returns false when the queue was empty.
  //
  // DESTRUCTION-RACE WARNING: a released waiter may immediately destroy the
  // primitive that owns this queue. Only call notify_* with the owner's
  // lock held when the owner is guaranteed to outlive the wake (e.g. a
  // shared_state kept alive by the caller's shared_ptr). Otherwise use
  // detach_one()/detach_all() under the lock and dispatch_all() after
  // releasing it.
  bool notify_one() {
    if (waiters_.empty()) return false;
    const entry e = waiters_.front();
    waiters_.pop_front();
    dispatch(e);
    return true;
  }

  void notify_all() {
    while (notify_one()) {
    }
  }

  // Moves out up to `n` waiters (all by default) for dispatch outside the
  // owner's critical section.
  wait_queue detach_all() {
    wait_queue q;
    q.waiters_.swap(waiters_);
    return q;
  }

  wait_queue detach(std::size_t n) {
    wait_queue q;
    while (n-- > 0 && !waiters_.empty()) {
      q.waiters_.push_back(waiters_.front());
      waiters_.pop_front();
    }
    return q;
  }

  // Wakes everything previously detached. The queue being dispatched is a
  // local copy, so no lock is needed.
  void dispatch_all() {
    for (const entry& e : waiters_) dispatch(e);
    waiters_.clear();
  }

 private:
  struct entry {
    task* t;
    external_waiter* ext;
  };

  static void dispatch(const entry& e) {
    if (e.t != nullptr) {
      // Route through the task's owning manager so wakes work from any
      // thread — another task's worker or a plain OS thread.
      thread_manager* tm = e.t->owner();
      GRAN_ASSERT_MSG(tm != nullptr, "waking a task with no owning manager");
      tm->wake(e.t);
    } else {
      e.ext->notify();
    }
  }

  std::deque<entry> waiters_;
};

}  // namespace gran
