#include "sync/event.hpp"

namespace gran {

void event::set() {
  guard_.lock();
  set_ = true;
  wait_queue to_wake = waiters_.detach_all();
  guard_.unlock();
  to_wake.dispatch_all();
}

void event::reset() {
  guard_.lock();
  set_ = false;
  guard_.unlock();
}

bool event::is_set() const {
  guard_.lock();
  const bool s = set_;
  guard_.unlock();
  return s;
}

void event::wait() const {
  for (;;) {
    task* const t = thread_manager::current_task();
    if (t != nullptr) this_task::prepare_suspend();

    guard_.lock();
    if (set_) {
      guard_.unlock();
      if (t != nullptr) this_task::cancel_suspend();
      return;
    }
    if (t != nullptr) {
      waiters_.add_task(t);
      guard_.unlock();
      this_task::commit_suspend();
      // Re-check: reset() may have raced with the wake.
    } else {
      external_waiter w;
      waiters_.add_external(&w);
      guard_.unlock();
      w.wait();
      return;  // external waiters are only notified by set()
    }
  }
}

}  // namespace gran
