// Cooperative mutex: a blocked *task* suspends (its worker keeps executing
// other tasks); a blocked external thread parks on a condition variable.
// Ending a thread-phase on contention instead of spinning is the core of
// the paper's lightweight-synchronization story.
//
// Satisfies the C++ Lockable requirements, so std::unique_lock /
// std::lock_guard work.
#pragma once

#include "sync/spinlock.hpp"
#include "sync/wait_queue.hpp"

namespace gran {

class mutex {
 public:
  mutex() = default;
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock();
  bool try_lock();
  void unlock();

 private:
  spinlock guard_;
  wait_queue waiters_;
  bool locked_ = false;
};

}  // namespace gran
