#include "sync/condition_variable.hpp"

#include "util/assert.hpp"

namespace gran {

void condition_variable::wait(std::unique_lock<mutex>& lock) {
  GRAN_ASSERT_MSG(lock.owns_lock(), "condition_variable::wait requires a held lock");
  task* const t = thread_manager::current_task();
  if (t != nullptr) {
    this_task::prepare_suspend();
    guard_.lock();
    waiters_.add_task(t);
    guard_.unlock();
    // Release the user mutex only after registering: a notifier that takes
    // the mutex after unlock() is guaranteed to see this waiter.
    lock.unlock();
    this_task::commit_suspend();
  } else {
    external_waiter w;
    guard_.lock();
    waiters_.add_external(&w);
    guard_.unlock();
    lock.unlock();
    w.wait();
  }
  lock.lock();
}

void condition_variable::notify_one() {
  guard_.lock();
  wait_queue to_wake = waiters_.detach(1);
  guard_.unlock();
  to_wake.dispatch_all();
}

void condition_variable::notify_all() {
  guard_.lock();
  wait_queue to_wake = waiters_.detach_all();
  guard_.unlock();
  to_wake.dispatch_all();
}

}  // namespace gran
