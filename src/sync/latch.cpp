#include "sync/latch.hpp"

#include "util/assert.hpp"

namespace gran {

latch::latch(std::int64_t expected) : count_(expected) {
  GRAN_ASSERT(expected >= 0);
}

void latch::count_down(std::int64_t n) {
  guard_.lock();
  GRAN_ASSERT_MSG(count_ >= n, "latch count_down below zero");
  count_ -= n;
  wait_queue to_wake;
  if (count_ == 0) to_wake = waiters_.detach_all();
  guard_.unlock();
  // Dispatch outside the spinlock: a released waiter may destroy the latch.
  to_wake.dispatch_all();
}

bool latch::try_wait() const {
  guard_.lock();
  const bool done = count_ == 0;
  guard_.unlock();
  return done;
}

void latch::wait() const {
  task* const t = thread_manager::current_task();
  if (t != nullptr) {
    // Predicate loop: tolerate spurious wakes (a waker is allowed to wake
    // any suspended task; only the count reaching zero releases us).
    for (;;) {
      this_task::prepare_suspend();
      guard_.lock();
      if (count_ == 0) {
        guard_.unlock();
        this_task::cancel_suspend();
        return;
      }
      waiters_.add_task(t);
      guard_.unlock();
      this_task::commit_suspend();
      // Re-registering on a spurious wake requires removing any stale entry
      // first (the real release would otherwise wake us twice).
      guard_.lock();
      waiters_.remove(t);
      guard_.unlock();
    }
  } else {
    external_waiter w;
    guard_.lock();
    if (count_ == 0) {
      guard_.unlock();
      return;
    }
    waiters_.add_external(&w);
    guard_.unlock();
    w.wait();
  }
}

void latch::arrive_and_wait(std::int64_t n) {
  count_down(n);
  wait();
}

}  // namespace gran
