// Fiber stacks: mmap-backed with an inaccessible guard page below the
// usable region, plus a recycling pool so that steady-state task creation
// performs no syscalls (HPX-threads are created by the million; stack reuse
// is what keeps task-creation overhead in the sub-microsecond range the
// paper's idle-rate numbers imply).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

namespace gran {

// One mmap'd stack region. Movable, non-copyable; unmaps on destruction.
class fiber_stack {
 public:
  fiber_stack() = default;
  // Allocates `usable_size` bytes (rounded up to whole pages) plus one guard
  // page. Throws std::bad_alloc on mmap failure.
  explicit fiber_stack(std::size_t usable_size);
  ~fiber_stack();

  fiber_stack(fiber_stack&& other) noexcept;
  fiber_stack& operator=(fiber_stack&& other) noexcept;
  fiber_stack(const fiber_stack&) = delete;
  fiber_stack& operator=(const fiber_stack&) = delete;

  // Base of the usable region (just above the guard page).
  void* base() const noexcept { return usable_; }
  std::size_t size() const noexcept { return usable_size_; }
  bool valid() const noexcept { return usable_ != nullptr; }

 private:
  void release() noexcept;

  void* mapping_ = nullptr;       // includes the guard page
  std::size_t mapping_size_ = 0;
  void* usable_ = nullptr;
  std::size_t usable_size_ = 0;
};

// Thread-safe free-list of stacks of a single size.
class stack_pool {
 public:
  // Default stack size: GRAN_STACK_SIZE env var, else 64 KiB (HPX's small
  // stack default).
  static std::size_t default_stack_size();

  explicit stack_pool(std::size_t stack_size = default_stack_size(),
                      std::size_t max_cached = 1024);

  // Pops a cached stack or allocates a fresh one.
  fiber_stack acquire();

  // Returns a stack for reuse (dropped if the cache is full).
  void release(fiber_stack stack);

  std::size_t stack_size() const noexcept { return stack_size_; }
  std::size_t cached() const;

  // Process-wide pool used by the thread manager.
  static stack_pool& global();

 private:
  const std::size_t stack_size_;
  const std::size_t max_cached_;
  mutable std::mutex mutex_;
  std::vector<fiber_stack> cache_;
};

}  // namespace gran
