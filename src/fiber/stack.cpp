#include "fiber/stack.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <new>
#include <utility>

#include "util/assert.hpp"
#include "util/env.hpp"

namespace gran {

namespace {

std::size_t page_size() {
  static const std::size_t size = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return size;
}

std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t page = page_size();
  return (bytes + page - 1) / page * page;
}

}  // namespace

fiber_stack::fiber_stack(std::size_t usable_size) {
  const std::size_t page = page_size();
  usable_size_ = round_up_pages(usable_size);
  mapping_size_ = usable_size_ + page;  // one guard page at the low end
  void* map = ::mmap(nullptr, mapping_size_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (map == MAP_FAILED) throw std::bad_alloc();
  // Stacks grow downward: protect the lowest page so overflow faults.
  if (::mprotect(map, page, PROT_NONE) != 0) {
    ::munmap(map, mapping_size_);
    throw std::bad_alloc();
  }
  mapping_ = map;
  usable_ = static_cast<char*>(map) + page;
}

fiber_stack::~fiber_stack() { release(); }

fiber_stack::fiber_stack(fiber_stack&& other) noexcept
    : mapping_(std::exchange(other.mapping_, nullptr)),
      mapping_size_(std::exchange(other.mapping_size_, 0)),
      usable_(std::exchange(other.usable_, nullptr)),
      usable_size_(std::exchange(other.usable_size_, 0)) {}

fiber_stack& fiber_stack::operator=(fiber_stack&& other) noexcept {
  if (this != &other) {
    release();
    mapping_ = std::exchange(other.mapping_, nullptr);
    mapping_size_ = std::exchange(other.mapping_size_, 0);
    usable_ = std::exchange(other.usable_, nullptr);
    usable_size_ = std::exchange(other.usable_size_, 0);
  }
  return *this;
}

void fiber_stack::release() noexcept {
  if (mapping_ != nullptr) {
    ::munmap(mapping_, mapping_size_);
    mapping_ = nullptr;
    usable_ = nullptr;
    mapping_size_ = usable_size_ = 0;
  }
}

std::size_t stack_pool::default_stack_size() {
  static const std::size_t size =
      static_cast<std::size_t>(env_int("GRAN_STACK_SIZE", 64 * 1024));
  return size;
}

stack_pool::stack_pool(std::size_t stack_size, std::size_t max_cached)
    : stack_size_(stack_size), max_cached_(max_cached) {
  GRAN_ASSERT(stack_size_ >= 4096);
}

fiber_stack stack_pool::acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!cache_.empty()) {
      fiber_stack s = std::move(cache_.back());
      cache_.pop_back();
      return s;
    }
  }
  return fiber_stack(stack_size_);
}

void stack_pool::release(fiber_stack stack) {
  if (!stack.valid()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (cache_.size() < max_cached_) cache_.push_back(std::move(stack));
  // else: let `stack` unmap on scope exit
}

std::size_t stack_pool::cached() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

stack_pool& stack_pool::global() {
  static stack_pool pool;
  return pool;
}

}  // namespace gran
