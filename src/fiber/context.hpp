// Raw execution-context primitives underneath gran::fiber.
//
// Two implementations share this interface:
//  * an x86-64 SysV assembly switch (context_x86_64.S) costing a few tens of
//    nanoseconds — the default, so task-management overheads measured by the
//    perf counters are the same order of magnitude as HPX's;
//  * a portable ucontext fallback (GRAN_FIBER_UCONTEXT), ~1 µs per switch
//    because swapcontext performs a sigprocmask syscall.
#pragma once

#include <cstddef>

namespace gran {

// Opaque saved context: just the stack pointer of the suspended frame (the
// ucontext build stores a pointer to a heap ucontext_t instead).
struct execution_context {
  void* sp = nullptr;
};

// Entry signature for a fresh context. `param` is the pointer passed to the
// first ctx_switch into the context. Must never return.
using context_entry_fn = void (*)(void* param);

// Prepares `stack_base .. stack_base+size` (grows downward from the top) so
// that the first ctx_switch into the returned context invokes `entry` with
// the switch argument as `param`. The stack memory must stay alive for the
// context's lifetime.
execution_context ctx_make(void* stack_base, std::size_t size, context_entry_fn entry);

// Suspends the current context into `from`, resumes `to`, passing `arg`.
// Returns the argument of the switch that later resumes `from`.
void* ctx_switch(execution_context& from, execution_context& to, void* arg);

// Releases any heap state owned by a context created with ctx_make (no-op
// for the assembly build). Safe on moved-from/empty contexts.
void ctx_destroy(execution_context& ctx);

}  // namespace gran
