#include "fiber/context.hpp"

#include <cstdint>
#include <cstring>

#include "util/assert.hpp"

#if defined(GRAN_FIBER_UCONTEXT)
#include <ucontext.h>

#include <new>

namespace gran {

// ucontext build: execution_context::sp points at a heap ucontext_t.
// A static entry shim dispatches to the requested entry function; the switch
// argument is carried in a thread-local because makecontext only forwards
// ints portably.

namespace {

thread_local void* tl_switch_arg = nullptr;

struct uctx {
  ucontext_t ctx;
  context_entry_fn entry = nullptr;
  bool started = false;
};

void uctx_entry_shim(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<uctx*>((static_cast<std::uintptr_t>(hi) << 32) |
                                       static_cast<std::uintptr_t>(lo));
  self->entry(tl_switch_arg);
  GRAN_ASSERT_MSG(false, "fiber entry returned");
}

}  // namespace

execution_context ctx_make(void* stack_base, std::size_t size, context_entry_fn entry) {
  auto* u = new uctx;
  GRAN_ASSERT(getcontext(&u->ctx) == 0);
  u->ctx.uc_stack.ss_sp = stack_base;
  u->ctx.uc_stack.ss_size = size;
  u->ctx.uc_link = nullptr;
  u->entry = entry;
  const auto addr = reinterpret_cast<std::uintptr_t>(u);
  makecontext(&u->ctx, reinterpret_cast<void (*)()>(uctx_entry_shim), 2,
              static_cast<unsigned>(addr >> 32), static_cast<unsigned>(addr));
  execution_context ec;
  ec.sp = u;
  return ec;
}

void* ctx_switch(execution_context& from, execution_context& to, void* arg) {
  // `from` may be a bare anchor (sp == nullptr) the first time a worker
  // suspends into a fiber: lazily give it a ucontext_t shell.
  if (from.sp == nullptr) from.sp = new uctx;
  auto* f = static_cast<uctx*>(from.sp);
  auto* t = static_cast<uctx*>(to.sp);
  GRAN_ASSERT(t != nullptr);
  tl_switch_arg = arg;
  GRAN_ASSERT(swapcontext(&f->ctx, &t->ctx) == 0);
  return tl_switch_arg;
}

void ctx_destroy(execution_context& ctx) {
  delete static_cast<uctx*>(ctx.sp);
  ctx.sp = nullptr;
}

}  // namespace gran

#else  // assembly build

extern "C" {
// Defined in context_x86_64.S.
void* gran_ctx_switch(void** save_sp, void* restore_sp, void* arg);
void gran_ctx_trampoline();
}

namespace gran {

execution_context ctx_make(void* stack_base, std::size_t size, context_entry_fn entry) {
  GRAN_ASSERT(stack_base != nullptr && size >= 256);

  // 16-byte-aligned top of stack.
  auto top = (reinterpret_cast<std::uintptr_t>(stack_base) + size) & ~std::uintptr_t{15};

  // Frame consumed by the restore half of gran_ctx_switch, top-down:
  //   [top-8]   return address  -> gran_ctx_trampoline
  //   [top-16]  rbp
  //   [top-24]  rbx  -> entry function (read by the trampoline)
  //   [top-32]  r12
  //   [top-40]  r13
  //   [top-48]  r14
  //   [top-56]  r15
  //   [top-64]  mxcsr (4B) | x87 cw (2B) | pad
  auto* frame = reinterpret_cast<std::uint64_t*>(top - 64);
  std::memset(frame, 0, 64);
  frame[7] = reinterpret_cast<std::uint64_t>(&gran_ctx_trampoline);
  frame[5] = reinterpret_cast<std::uint64_t>(entry);
  // Sane default FP environment: round-to-nearest, all exceptions masked.
  auto* fpu = reinterpret_cast<std::uint32_t*>(frame);
  fpu[0] = 0x1F80;                                       // MXCSR
  *reinterpret_cast<std::uint16_t*>(fpu + 1) = 0x037F;   // x87 control word

  execution_context ec;
  ec.sp = frame;
  return ec;
}

void* ctx_switch(execution_context& from, execution_context& to, void* arg) {
  GRAN_DEBUG_ASSERT(to.sp != nullptr);
  return gran_ctx_switch(&from.sp, to.sp, arg);
}

void ctx_destroy(execution_context& ctx) { ctx.sp = nullptr; }

}  // namespace gran

#endif
