// Stackful fiber: a resumable user-level thread of execution.
//
// A fiber is always resumed *by* some other context (a worker's scheduler
// loop) and suspends *back to* its most recent resumer. This pairwise
// discipline is exactly what the cooperative HPX-thread model needs: the
// scheduler resumes a task, the task runs until it finishes a thread-phase
// (completes or cooperatively yields), and control returns to the scheduler
// without any kernel transition.
#pragma once

#include "fiber/context.hpp"
#include "fiber/stack.hpp"
#include "util/unique_function.hpp"

namespace gran {

class fiber {
 public:
  // Move-only: bodies may capture unique_ptr and friends.
  using body_fn = unique_function<void()>;

  // Creates a fiber that will run `body` on `stack` at first resume.
  fiber(fiber_stack stack, body_fn body);
  ~fiber();

  fiber(const fiber&) = delete;
  fiber& operator=(const fiber&) = delete;

  // Runs/continues the fiber on the calling thread until it suspends or
  // finishes. Returns the value the fiber passed to suspend(), or nullptr
  // when the body returned. Must not be called on a finished fiber, nor
  // re-entered while the fiber is running.
  void* resume(void* arg = nullptr);

  // Called from *inside* the fiber: suspends back to the resumer, passing
  // `arg` as resume()'s return value. Returns the argument of the next
  // resume().
  void* suspend(void* arg = nullptr);

  // True once the body has returned. The stack can then be reclaimed.
  bool finished() const noexcept { return finished_; }
  bool running() const noexcept { return running_; }

  // Takes the stack out of a finished fiber for pooling.
  fiber_stack take_stack();

  // The fiber currently executing on this OS thread (nullptr outside any).
  static fiber* current() noexcept;

 private:
  static void entry(void* self);
  void run_body();

  fiber_stack stack_;
  body_fn body_;
  execution_context self_ctx_;    // saved state of the fiber when suspended
  execution_context return_ctx_;  // saved state of the most recent resumer
  bool started_ = false;
  bool running_ = false;
  bool finished_ = false;
  // Sanitizer fiber-switch bookkeeping (unused outside sanitizer builds;
  // kept unconditionally so the ABI does not depend on sanitizer flags).
  void* asan_resumer_fake_ = nullptr;
  void* asan_self_fake_ = nullptr;
  const void* asan_resumer_bottom_ = nullptr;
  std::size_t asan_resumer_size_ = 0;
  void* tsan_fiber_ = nullptr;          // this context, as a TSan fiber
  void* tsan_resumer_fiber_ = nullptr;  // the context to switch back to
};

}  // namespace gran
