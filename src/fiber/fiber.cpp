#include "fiber/fiber.hpp"

#include <utility>

#include "util/assert.hpp"

// AddressSanitizer must be told about stack switches or it reports false
// stack-use-after-return/overflow on every fiber switch. The annotations
// follow the documented protocol: start_switch before leaving a context,
// finish_switch as the first action after arriving in the destination.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GRAN_ASAN_FIBERS 1
#endif
#if __has_feature(thread_sanitizer)
#define GRAN_TSAN_FIBERS 1
#endif
#endif
#if !defined(GRAN_ASAN_FIBERS) && defined(__SANITIZE_ADDRESS__)
#define GRAN_ASAN_FIBERS 1
#endif
#if !defined(GRAN_TSAN_FIBERS) && defined(__SANITIZE_THREAD__)
#define GRAN_TSAN_FIBERS 1
#endif
#ifdef GRAN_ASAN_FIBERS
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    __SIZE_TYPE__ size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save, const void** bottom_old,
                                     __SIZE_TYPE__* size_old);
}
#endif
#ifdef GRAN_TSAN_FIBERS
// ThreadSanitizer models each stackful context as its own logical thread.
extern "C" {
void* __tsan_get_current_fiber();
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace gran {

namespace {
thread_local fiber* tl_current_fiber = nullptr;
}

fiber::fiber(fiber_stack stack, body_fn body)
    : stack_(std::move(stack)), body_(std::move(body)) {
  GRAN_ASSERT_MSG(stack_.valid(), "fiber requires a valid stack");
  GRAN_ASSERT_MSG(static_cast<bool>(body_), "fiber requires a body");
  self_ctx_ = ctx_make(stack_.base(), stack_.size(), &fiber::entry);
#ifdef GRAN_TSAN_FIBERS
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

fiber::~fiber() {
  GRAN_ASSERT_MSG(!running_, "destroying a running fiber");
  // Destroying a started-but-unfinished fiber abandons its stack frame; the
  // stack unmaps with the object. Destructors on that abandoned frame do not
  // run — the scheduler only destroys terminated tasks, enforced there.
  ctx_destroy(self_ctx_);
  ctx_destroy(return_ctx_);
#ifdef GRAN_TSAN_FIBERS
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

void fiber::entry(void* self_ptr) {
  auto* self = static_cast<fiber*>(self_ptr);
  self->run_body();
  GRAN_ASSERT_MSG(false, "unreachable: run_body never returns");
}

void fiber::run_body() {
#ifdef GRAN_ASAN_FIBERS
  // First arrival on this fiber's stack: record where we came from.
  __sanitizer_finish_switch_fiber(nullptr, &asan_resumer_bottom_, &asan_resumer_size_);
#endif
  body_();
  finished_ = true;
  // Final suspension: hand control back to the resumer forever.
  fiber* self = this;  // `this` may dangle after the last switch; copy first
  void* ignored = nullptr;
  for (;;) {
#ifdef GRAN_ASAN_FIBERS
    // nullptr fake-stack save: this context is terminating.
    __sanitizer_start_switch_fiber(nullptr, self->asan_resumer_bottom_,
                                   self->asan_resumer_size_);
#endif
#ifdef GRAN_TSAN_FIBERS
    __tsan_switch_to_fiber(self->tsan_resumer_fiber_, 0);
#endif
    // A resume() of a finished fiber is a caller bug; the assert in resume()
    // catches it before we would ever get here twice.
    ignored = ctx_switch(self->self_ctx_, self->return_ctx_, nullptr);
    (void)ignored;
    GRAN_ASSERT_MSG(false, "resumed a finished fiber");
  }
}

void* fiber::resume(void* arg) {
  GRAN_ASSERT_MSG(!finished_, "resume of a finished fiber");
  GRAN_ASSERT_MSG(!running_, "fiber is already running");
  fiber* const prev = tl_current_fiber;
  tl_current_fiber = this;
  running_ = true;
  // The first resume passes `this` so the trampoline can reach entry();
  // later resumes pass the caller's argument through as suspend()'s return
  // value (the first resume's arg is therefore not observable by the body).
  void* const pass = started_ ? arg : static_cast<void*>(this);
  started_ = true;
#ifdef GRAN_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&asan_resumer_fake_, stack_.base(), stack_.size());
#endif
#ifdef GRAN_TSAN_FIBERS
  tsan_resumer_fiber_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  void* const result = ctx_switch(return_ctx_, self_ctx_, pass);
#ifdef GRAN_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(asan_resumer_fake_, nullptr, nullptr);
#endif
  running_ = false;
  tl_current_fiber = prev;
  return finished_ ? nullptr : result;
}

void* fiber::suspend(void* arg) {
  GRAN_ASSERT_MSG(tl_current_fiber == this, "suspend outside the fiber");
#ifdef GRAN_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&asan_self_fake_, asan_resumer_bottom_,
                                 asan_resumer_size_);
#endif
#ifdef GRAN_TSAN_FIBERS
  __tsan_switch_to_fiber(tsan_resumer_fiber_, 0);
#endif
  void* const result = ctx_switch(self_ctx_, return_ctx_, arg);
#ifdef GRAN_ASAN_FIBERS
  // Re-arrived on this fiber (possibly resumed from a different OS thread):
  // refresh the resumer's stack bounds.
  __sanitizer_finish_switch_fiber(asan_self_fake_, &asan_resumer_bottom_,
                                  &asan_resumer_size_);
#endif
  return result;
}

fiber_stack fiber::take_stack() {
  GRAN_ASSERT_MSG(finished_, "stack can only be taken from a finished fiber");
  return std::move(stack_);
}

fiber* fiber::current() noexcept { return tl_current_fiber; }

}  // namespace gran
