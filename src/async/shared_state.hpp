// Shared state behind future/promise.
//
// Holds exactly one of {nothing, value, exception}; supports cooperative
// waiting (tasks suspend, external threads park) and attached continuations
// (run by the fulfilling thread, in registration order, outside the state's
// lock). Continuations are the mechanism dataflow/when_all/then use to turn
// data dependencies into the runtime-generated execution tree the paper
// describes (§I-C).
#pragma once

#include <atomic>
#include <exception>
#include <future>  // std::future_error / future_errc
#include <optional>
#include <utility>
#include <variant>
#include <vector>

#include "sync/spinlock.hpp"
#include "sync/timer_service.hpp"
#include "sync/wait_queue.hpp"
#include "util/assert.hpp"

namespace gran::detail {

template <typename T>
struct state_storage {
  using type = T;
};
template <>
struct state_storage<void> {
  using type = std::monostate;
};

template <typename T>
class shared_state {
 public:
  using storage_t = typename state_storage<T>::type;
  using continuation_fn = std::function<void()>;

  shared_state() = default;
  shared_state(const shared_state&) = delete;
  shared_state& operator=(const shared_state&) = delete;

  bool is_ready() const noexcept { return ready_.load(std::memory_order_acquire); }

  // --- producer side ------------------------------------------------------

  template <typename... Args>
  void set_value(Args&&... args) {
    std::vector<continuation_fn> continuations;
    {
      guard_.lock();
      if (ready_.load(std::memory_order_relaxed)) {
        guard_.unlock();
        throw std::future_error(std::future_errc::promise_already_satisfied);
      }
      value_.emplace(std::forward<Args>(args)...);
      ready_.store(true, std::memory_order_release);
      waiters_.notify_all();
      continuations.swap(continuations_);
      guard_.unlock();
    }
    for (auto& fn : continuations) fn();
  }

  void set_exception(std::exception_ptr error) {
    GRAN_ASSERT(error != nullptr);
    std::vector<continuation_fn> continuations;
    {
      guard_.lock();
      if (ready_.load(std::memory_order_relaxed)) {
        guard_.unlock();
        throw std::future_error(std::future_errc::promise_already_satisfied);
      }
      error_ = std::move(error);
      ready_.store(true, std::memory_order_release);
      waiters_.notify_all();
      continuations.swap(continuations_);
      guard_.unlock();
    }
    for (auto& fn : continuations) fn();
  }

  // --- consumer side ------------------------------------------------------

  void wait() const {
    if (is_ready()) return;
    for (;;) {
      task* const t = thread_manager::current_task();
      if (t != nullptr) this_task::prepare_suspend();

      guard_.lock();
      if (ready_.load(std::memory_order_relaxed)) {
        guard_.unlock();
        if (t != nullptr) this_task::cancel_suspend();
        return;
      }
      if (t != nullptr) {
        waiters_.add_task(t);
        guard_.unlock();
        this_task::commit_suspend();
        // Readiness is monotonic; loop only as spurious-wake insurance.
      } else {
        external_waiter w;
        waiters_.add_external(&w);
        guard_.unlock();
        w.wait();
        return;
      }
    }
  }

  // Timed wait: blocks until ready or `deadline`. Returns true when the
  // state is ready (possibly having become ready exactly at wake-up).
  bool wait_until(timer_service::clock::time_point deadline) const {
    if (is_ready()) return true;
    task* const t = thread_manager::current_task();
    if (t == nullptr) {
      // External thread: a timed park, with stale-entry cleanup on timeout.
      for (;;) {
        external_waiter w;
        guard_.lock();
        if (ready_.load(std::memory_order_relaxed)) {
          guard_.unlock();
          return true;
        }
        if (timer_service::clock::now() >= deadline) {
          guard_.unlock();
          return false;
        }
        waiters_.add_external(&w);
        guard_.unlock();
        if (w.wait_until(deadline)) return true;
        guard_.lock();
        const bool removed = waiters_.remove_external(&w);
        guard_.unlock();
        // Not removed => a notifier popped us concurrently; it will (or
        // already did) call notify(), making the slot safe to destroy only
        // after that delivery: absorb it.
        if (!removed) w.wait();
        if (is_ready()) return true;
      }
    }
    // Task path: park with a cancellable timer wake racing the notifier.
    for (;;) {
      this_task::prepare_suspend();
      guard_.lock();
      if (ready_.load(std::memory_order_relaxed)) {
        guard_.unlock();
        this_task::cancel_suspend();
        return true;
      }
      if (timer_service::clock::now() >= deadline) {
        guard_.unlock();
        this_task::cancel_suspend();
        return false;
      }
      waiters_.add_task(t);
      guard_.unlock();
      const wake_ticket ticket = timer_service::global().schedule_wake(t, deadline);
      this_task::commit_suspend();
      // Either the notifier or the timer woke us. Retire the timer claim
      // (waiting out an in-flight delivery) and drop any stale waiter entry
      // before looping.
      wake_ticket_cancel(ticket);
      guard_.lock();
      waiters_.remove(t);
      guard_.unlock();
      if (is_ready()) return true;
      if (timer_service::clock::now() >= deadline) return false;
    }
  }

  // Blocks, then returns the stored value or rethrows the stored exception.
  const storage_t& get() const {
    wait();
    if (error_) std::rethrow_exception(error_);
    return *value_;
  }

  bool has_exception() const noexcept {
    return is_ready() && error_ != nullptr;
  }
  std::exception_ptr exception() const noexcept {
    return is_ready() ? error_ : nullptr;
  }

  // Runs `fn` when the state becomes ready. If it already is, `fn` runs
  // inline in the calling thread. `fn` must not block.
  void add_continuation(continuation_fn fn) {
    guard_.lock();
    if (!ready_.load(std::memory_order_relaxed)) {
      continuations_.push_back(std::move(fn));
      guard_.unlock();
      return;
    }
    guard_.unlock();
    fn();
  }

 private:
  mutable spinlock guard_;
  mutable wait_queue waiters_;
  std::vector<continuation_fn> continuations_;
  std::optional<storage_t> value_;
  std::exception_ptr error_;
  std::atomic<bool> ready_{false};
};

}  // namespace gran::detail
