// Lightweight executor: a (manager, priority) pair behind one value type,
// so APIs and data structures can carry "where and how to run work" without
// referencing the thread manager directly — the shape of HPX's executor
// concept, reduced to what this runtime needs.
#pragma once

#include "async/async.hpp"
#include "async/dataflow.hpp"

namespace gran {

class executor {
 public:
  // Binds to the resolved default manager.
  executor() : tm_(&resolve_manager()) {}
  explicit executor(thread_manager& tm, task_priority priority = task_priority::normal)
      : tm_(&tm), priority_(priority) {}

  thread_manager& manager() const noexcept { return *tm_; }
  task_priority priority() const noexcept { return priority_; }

  // Same placement, different priority.
  executor with_priority(task_priority p) const { return executor(*tm_, p); }

  // Fire-and-forget (no future allocated).
  template <typename F>
  void post(F&& f) const {
    tm_->spawn(std::forward<F>(f), priority_, "executor::post");
  }

  // Two-way execution: returns a future for f(args...).
  template <typename F, typename... Args>
  auto async(F&& f, Args&&... args) const {
    return async_on(*tm_, priority_, std::forward<F>(f), std::forward<Args>(args)...);
  }

  // Dependency-driven execution on this executor.
  template <typename F, typename... Ts>
  auto dataflow(F&& f, future<Ts>... inputs) const {
    return dataflow_on(*tm_, priority_, std::forward<F>(f), std::move(inputs)...);
  }

  friend bool operator==(const executor& a, const executor& b) noexcept {
    return a.tm_ == b.tm_ && a.priority_ == b.priority_;
  }

 private:
  thread_manager* tm_;
  task_priority priority_ = task_priority::normal;
};

}  // namespace gran
