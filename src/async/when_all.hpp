// when_all / when_any — readiness composition over sets of futures.
//
// Together with future::then these are HPX's "additional facilities to
// compose Futures sequentially and in parallel" (§I-C) from which the
// benchmark builds its dependency tree. Since gran futures are shared,
// when_all returns future<void>: callers keep their own (cheap) copies of
// the inputs and read them after the signal.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "async/future.hpp"

namespace gran {

namespace detail {

struct when_all_control {
  explicit when_all_control(std::size_t n) : remaining(n) {}
  std::atomic<std::size_t> remaining;
  std::shared_ptr<shared_state<void>> st = std::make_shared<shared_state<void>>();

  void arrive() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) st->set_value();
  }
};

}  // namespace detail

// Ready when every input is ready (exceptions count as ready; inspect the
// inputs afterwards).
template <typename T>
future<void> when_all(const std::vector<future<T>>& futures) {
  if (futures.empty()) return make_ready_future();
  auto ctl = std::make_shared<detail::when_all_control>(futures.size());
  future<void> result(ctl->st);
  for (const auto& f : futures) {
    GRAN_ASSERT_MSG(f.valid(), "when_all over an invalid future");
    f.on_ready([ctl] { ctl->arrive(); });
  }
  return result;
}

template <typename... Ts>
future<void> when_all(const future<Ts>&... futures) {
  constexpr std::size_t n = sizeof...(Ts);
  if constexpr (n == 0) {
    return make_ready_future();
  } else {
    auto ctl = std::make_shared<detail::when_all_control>(n);
    future<void> result(ctl->st);
    (
        [&] {
          GRAN_ASSERT_MSG(futures.valid(), "when_all over an invalid future");
          futures.on_ready([ctl] { ctl->arrive(); });
        }(),
        ...);
    return result;
  }
}

// Ready when the first input is ready; the value is that input's index.
template <typename T>
future<std::size_t> when_any(const std::vector<future<T>>& futures) {
  GRAN_ASSERT_MSG(!futures.empty(), "when_any over an empty set");
  struct control {
    std::atomic<bool> fired{false};
    std::shared_ptr<detail::shared_state<std::size_t>> st =
        std::make_shared<detail::shared_state<std::size_t>>();
  };
  auto ctl = std::make_shared<control>();
  future<std::size_t> result(ctl->st);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    GRAN_ASSERT_MSG(futures[i].valid(), "when_any over an invalid future");
    futures[i].on_ready([ctl, i] {
      if (!ctl->fired.exchange(true, std::memory_order_acq_rel)) ctl->st->set_value(i);
    });
  }
  return result;
}

}  // namespace gran
