// gran::async / gran::post — spawn a callable as a lightweight task.
//
// async(f, args...) schedules f(args...) on the resolved thread manager
// (current worker's, else the process default) and returns a future for its
// result. This mirrors hpx::async, the API the paper's benchmark uses to
// launch every partition update (§I-C). Callables and arguments must be
// copyable (task bodies are type-erased into std::function).
#pragma once

#include <tuple>
#include <type_traits>
#include <utility>

#include "async/future.hpp"

namespace gran {

template <typename F, typename... Args>
auto async_on(thread_manager& tm, task_priority priority, F&& f, Args&&... args) {
  using R = std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>&...>;
  auto st = std::make_shared<detail::shared_state<R>>();
  tm.spawn(
      [st, f = std::forward<F>(f),
       args_tuple = std::make_tuple(std::forward<Args>(args)...)]() mutable {
        detail::fulfill_state<R>(st, [&]() -> decltype(auto) {
          return std::apply([&](auto&... unpacked) -> decltype(auto) { return f(unpacked...); },
                            args_tuple);
        });
      },
      priority, "async");
  return future<R>(st);
}

template <typename F, typename... Args>
  requires std::invocable<std::decay_t<F>, std::decay_t<Args>&...>
auto async(F&& f, Args&&... args) {
  return async_on(resolve_manager(), task_priority::normal, std::forward<F>(f),
                  std::forward<Args>(args)...);
}

template <typename F, typename... Args>
  requires std::invocable<std::decay_t<F>, std::decay_t<Args>&...>
auto async(task_priority priority, F&& f, Args&&... args) {
  return async_on(resolve_manager(), priority, std::forward<F>(f),
                  std::forward<Args>(args)...);
}

// Fire-and-forget: schedules f(args...) with no future (cheaper — no shared
// state allocation).
template <typename F, typename... Args>
void post(F&& f, Args&&... args) {
  resolve_manager().spawn(
      [f = std::forward<F>(f),
       args_tuple = std::make_tuple(std::forward<Args>(args)...)]() mutable {
        std::apply([&](auto&... unpacked) { f(unpacked...); }, args_tuple);
      },
      task_priority::normal, "post");
}

}  // namespace gran
