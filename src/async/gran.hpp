// Umbrella header for the gran public API: runtime, tasks, futures,
// composition, synchronization, and performance counters.
#pragma once

#include "async/async.hpp"
#include "async/dataflow.hpp"
#include "async/executor.hpp"
#include "async/future.hpp"
#include "async/packaged_task.hpp"
#include "async/when_all.hpp"
#include "perf/counters.hpp"
#include "perf/sampler.hpp"
#include "sync/barrier.hpp"
#include "sync/channel.hpp"
#include "sync/condition_variable.hpp"
#include "sync/event.hpp"
#include "sync/latch.hpp"
#include "sync/mutex.hpp"
#include "sync/semaphore.hpp"
#include "threads/runtime.hpp"
#include "threads/thread_manager.hpp"
