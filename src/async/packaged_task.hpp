// packaged_task<R(Args...)>: binds a callable to a promise so the call can
// be scheduled anywhere (a task, an external thread, a test harness) and
// observed through the future.
#pragma once

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

#include "async/future.hpp"

namespace gran {

template <typename Signature>
class packaged_task;

template <typename R, typename... Args>
class packaged_task<R(Args...)> {
 public:
  packaged_task() = default;

  template <typename F>
    requires std::is_invocable_r_v<R, std::decay_t<F>&, Args...>
  explicit packaged_task(F&& f)
      : fn_(std::forward<F>(f)), st_(std::make_shared<detail::shared_state<R>>()) {}

  packaged_task(packaged_task&&) noexcept = default;
  packaged_task& operator=(packaged_task&&) noexcept = default;
  packaged_task(const packaged_task&) = delete;
  packaged_task& operator=(const packaged_task&) = delete;

  bool valid() const noexcept { return st_ != nullptr; }

  future<R> get_future() const {
    GRAN_ASSERT_MSG(valid(), "get_future on empty packaged_task");
    return future<R>(st_);
  }

  // Invokes the stored callable, fulfilling the future with its result or
  // exception. A second invocation throws std::future_error.
  void operator()(Args... args) {
    GRAN_ASSERT_MSG(valid(), "call of empty packaged_task");
    detail::fulfill_state<R>(st_, [&]() -> decltype(auto) {
      return fn_(std::forward<Args>(args)...);
    });
  }

 private:
  std::function<R(Args...)> fn_;
  std::shared_ptr<detail::shared_state<R>> st_;
};

}  // namespace gran
