// gran::dataflow — the data-driven task launcher of the benchmark.
//
// dataflow(f, fut...) spawns f(fut...) as a new task as soon as *all* input
// futures are ready (f receives the ready futures themselves, HPX-style).
// If f returns a future it is unwrapped. This is the facility with which
// HPX-Stencil "creates task dependencies that mirror the data dependencies
// described by the original algorithm" (paper §I-C): the returned future is
// a node of the execution tree, the inputs are its incoming edges.
#pragma once

#include <atomic>
#include <memory>
#include <tuple>
#include <type_traits>
#include <vector>

#include "async/future.hpp"

namespace gran {

template <typename F, typename... Ts>
auto dataflow_on(thread_manager& tm, task_priority priority, F&& f,
                 future<Ts>... inputs) {
  using R = std::invoke_result_t<std::decay_t<F>, future<Ts>&...>;
  using U = typename detail::unwrap_result<R>::type;

  auto st = std::make_shared<detail::shared_state<U>>();

  struct control {
    control(std::decay_t<F> fn, std::tuple<future<Ts>...> in, std::size_t n)
        : f(std::move(fn)), inputs(std::move(in)), remaining(n) {}
    std::decay_t<F> f;
    std::tuple<future<Ts>...> inputs;
    std::atomic<std::size_t> remaining;
  };
  auto ctl = std::make_shared<control>(std::forward<F>(f),
                                       std::tuple<future<Ts>...>(inputs...),
                                       sizeof...(Ts));

  const auto fire = [&tm, st, ctl, priority] {
    tm.spawn(
        [st, ctl] {
          auto call = [&]() -> decltype(auto) {
            return std::apply([&](auto&... in) -> decltype(auto) { return ctl->f(in...); },
                              ctl->inputs);
          };
          if constexpr (detail::unwrap_result<R>::is_future) {
            detail::fulfill_state_unwrapped(st, call);
          } else {
            detail::fulfill_state<U>(st, call);
          }
        },
        priority, "dataflow");
  };

  if constexpr (sizeof...(Ts) == 0) {
    fire();
  } else {
    (
        [&] {
          GRAN_ASSERT_MSG(inputs.valid(), "dataflow over an invalid future");
          inputs.on_ready([ctl, fire] {
            if (ctl->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) fire();
          });
        }(),
        ...);
  }
  return future<U>(st);
}

template <typename F, typename... Ts>
auto dataflow(F&& f, future<Ts>... inputs) {
  return dataflow_on(resolve_manager(), task_priority::normal, std::forward<F>(f),
                     std::move(inputs)...);
}

template <typename F, typename... Ts>
auto dataflow(task_priority priority, F&& f, future<Ts>... inputs) {
  return dataflow_on(resolve_manager(), priority, std::forward<F>(f),
                     std::move(inputs)...);
}

// Vector form: f receives const std::vector<future<T>>&. The _on variant
// pins the spawn to an explicit manager (the graph executor futurizes
// whole DAGs on a freshly built pool this way). `worker_hint` >= 0 asks the
// policy to queue the fired task on that worker (NUMA-aware home placement
// — see thread_manager::home_worker_for_block); -1 keeps the default
// spawn-local routing.
template <typename F, typename T>
auto dataflow_all_on(thread_manager& manager, task_priority priority, F&& f,
                     std::vector<future<T>> inputs, int worker_hint = -1) {
  using R = std::invoke_result_t<std::decay_t<F>, const std::vector<future<T>>&>;
  using U = typename detail::unwrap_result<R>::type;

  auto st = std::make_shared<detail::shared_state<U>>();
  thread_manager* tm = &manager;

  struct control {
    control(std::decay_t<F> fn, std::vector<future<T>> in)
        : f(std::move(fn)), inputs(std::move(in)), remaining(inputs.size()) {}
    std::decay_t<F> f;
    std::vector<future<T>> inputs;
    std::atomic<std::size_t> remaining;
  };
  auto ctl = std::make_shared<control>(std::forward<F>(f), std::move(inputs));

  const auto fire = [tm, st, ctl, priority, worker_hint] {
    tm->spawn_on(
        worker_hint,
        [st, ctl] {
          auto call = [&]() -> decltype(auto) { return ctl->f(ctl->inputs); };
          if constexpr (detail::unwrap_result<R>::is_future) {
            detail::fulfill_state_unwrapped(st, call);
          } else {
            detail::fulfill_state<U>(st, call);
          }
        },
        priority, "dataflow");
  };

  if (ctl->inputs.empty()) {
    fire();
    return future<U>(st);
  }
  // ctl->inputs is immutable from here on; continuations only read it.
  for (const auto& in : ctl->inputs) {
    GRAN_ASSERT_MSG(in.valid(), "dataflow over an invalid future");
    in.on_ready([ctl, fire] {
      if (ctl->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) fire();
    });
  }
  return future<U>(st);
}

template <typename F, typename T>
auto dataflow_all(F&& f, std::vector<future<T>> inputs,
                  task_priority priority = task_priority::normal) {
  return dataflow_all_on(resolve_manager(), priority, std::forward<F>(f),
                         std::move(inputs));
}

}  // namespace gran
