// future / promise.
//
// gran::future has *shared-future* semantics (copyable; get() returns a
// const reference) because the paper's benchmark wires each partition's
// future into the dependency tree of up to three consumers per time step —
// exactly how HPX-Stencil uses hpx::shared_future. An alias shared_future
// exists for intent-revealing code.
#pragma once

#include <memory>
#include <type_traits>

#include "async/shared_state.hpp"
#include "threads/runtime.hpp"
#include "threads/thread_manager.hpp"

namespace gran {

template <typename T>
class future;

namespace detail {

// Routes the result of `call` (value, void return, or thrown exception)
// into a shared state. State pointers are copyable, so these helpers can be
// captured in std::function-based continuations and task bodies.
template <typename R, typename F>
void fulfill_state(const std::shared_ptr<shared_state<R>>& st, F&& call) {
  if constexpr (std::is_void_v<R>) {
    try {
      std::forward<F>(call)();
      st->set_value();
    } catch (...) {
      st->set_exception(std::current_exception());
    }
  } else {
    try {
      st->set_value(std::forward<F>(call)());
    } catch (...) {
      st->set_exception(std::current_exception());
    }
  }
}

// `call` returns a future<U>; the outer state adopts its outcome (future
// unwrapping).
template <typename U, typename F>
void fulfill_state_unwrapped(const std::shared_ptr<shared_state<U>>& st, F&& call);

// Result-type unwrapping: future<future<U>> collapses to future<U>.
template <typename R>
struct unwrap_result {
  using type = R;
  static constexpr bool is_future = false;
};
template <typename U>
struct unwrap_result<future<U>> {
  using type = U;
  static constexpr bool is_future = true;
};

}  // namespace detail

template <typename T>
class future {
 public:
  using state_type = detail::shared_state<T>;

  // Default-constructed futures are invalid (valid() == false).
  future() = default;
  explicit future(std::shared_ptr<state_type> state) : state_(std::move(state)) {}

  bool valid() const noexcept { return state_ != nullptr; }
  bool is_ready() const noexcept { return state_ && state_->is_ready(); }
  bool has_exception() const noexcept { return state_ && state_->has_exception(); }

  void wait() const {
    GRAN_ASSERT_MSG(valid(), "wait on invalid future");
    state_->wait();
  }

  // Timed waits (std::future_status::ready or ::timeout). Tasks suspend
  // cooperatively with a timer-armed deadline; external threads park.
  std::future_status wait_until(timer_service::clock::time_point deadline) const {
    GRAN_ASSERT_MSG(valid(), "wait_until on invalid future");
    return state_->wait_until(deadline) ? std::future_status::ready
                                        : std::future_status::timeout;
  }

  template <typename Rep, typename Period>
  std::future_status wait_for(std::chrono::duration<Rep, Period> d) const {
    return wait_until(timer_service::clock::now() + d);
  }

  // Blocks until ready; returns the value (const reference for non-void T —
  // shared semantics) or rethrows the stored exception.
  decltype(auto) get() const {
    GRAN_ASSERT_MSG(valid(), "get on invalid future");
    if constexpr (std::is_void_v<T>) {
      state_->get();
    } else {
      return static_cast<const T&>(state_->get());
    }
  }

  // Attaches a continuation `f(future<T>)` that runs as a new task once
  // this future is ready; returns the continuation's future (unwrapped if
  // `f` itself returns a future). Exceptions from `f` travel into the
  // returned future.
  template <typename F>
  auto then(F&& f, task_priority priority = task_priority::normal) const;

  // Low-level hook used by when_all/dataflow: run `fn` (non-blocking!) when
  // ready, inline if already ready.
  void on_ready(std::function<void()> fn) const {
    GRAN_ASSERT_MSG(valid(), "on_ready on invalid future");
    state_->add_continuation(std::move(fn));
  }

  const std::shared_ptr<state_type>& state() const noexcept { return state_; }

 private:
  std::shared_ptr<state_type> state_;
};

// Intent-revealing alias: every gran::future already has shared semantics.
template <typename T>
using shared_future = future<T>;

template <typename T>
class promise {
 public:
  promise() : state_(std::make_shared<detail::shared_state<T>>()) {}
  promise(promise&&) noexcept = default;
  promise& operator=(promise&&) noexcept = default;
  promise(const promise&) = delete;
  promise& operator=(const promise&) = delete;

  future<T> get_future() const { return future<T>(state_); }

  template <typename... Args>
  void set_value(Args&&... args) {
    state_->set_value(std::forward<Args>(args)...);
  }

  void set_exception(std::exception_ptr error) { state_->set_exception(std::move(error)); }

  const std::shared_ptr<detail::shared_state<T>>& state() const noexcept { return state_; }

 private:
  std::shared_ptr<detail::shared_state<T>> state_;
};

// Ready-made futures.
template <typename T, typename... Args>
future<T> make_ready_future(Args&&... args) {
  promise<T> p;
  p.set_value(std::forward<Args>(args)...);
  return p.get_future();
}

inline future<void> make_ready_future() {
  promise<void> p;
  p.set_value();
  return p.get_future();
}

template <typename T>
future<T> make_exceptional_future(std::exception_ptr error) {
  promise<T> p;
  p.set_exception(std::move(error));
  return p.get_future();
}

namespace detail {

template <typename U, typename F>
void fulfill_state_unwrapped(const std::shared_ptr<shared_state<U>>& st, F&& call) {
  future<U> inner;
  try {
    inner = std::forward<F>(call)();
  } catch (...) {
    st->set_exception(std::current_exception());
    return;
  }
  if (!inner.valid()) {
    st->set_exception(
        std::make_exception_ptr(std::future_error(std::future_errc::no_state)));
    return;
  }
  inner.on_ready([st, inner] {
    if (inner.has_exception()) {
      st->set_exception(inner.state()->exception());
    } else if constexpr (std::is_void_v<U>) {
      st->set_value();
    } else {
      st->set_value(inner.get());
    }
  });
}

}  // namespace detail

template <typename T>
template <typename F>
auto future<T>::then(F&& f, task_priority priority) const {
  GRAN_ASSERT_MSG(valid(), "then on invalid future");
  using R = std::invoke_result_t<std::decay_t<F>, future<T>>;
  using U = typename detail::unwrap_result<R>::type;

  auto st = std::make_shared<detail::shared_state<U>>();
  thread_manager* tm = &resolve_manager();

  future<T> self = *this;
  on_ready([tm, st, f = std::forward<F>(f), self, priority] {
    tm->spawn(
        [st, f, self] {
          if constexpr (detail::unwrap_result<R>::is_future) {
            detail::fulfill_state_unwrapped(st, [&] { return f(self); });
          } else {
            detail::fulfill_state<U>(st, [&]() -> decltype(auto) { return f(self); });
          }
        },
        priority, "future::then");
  });
  return future<U>(st);
}

// Unwraps a future<future<U>> into a future<U>.
template <typename U>
future<U> unwrap(future<future<U>> outer) {
  auto st = std::make_shared<detail::shared_state<U>>();
  outer.on_ready([outer, st] {
    if (outer.has_exception()) {
      st->set_exception(outer.state()->exception());
      return;
    }
    detail::fulfill_state_unwrapped(st, [&] { return outer.get(); });
  });
  return future<U>(st);
}

}  // namespace gran
