#include "topo/affinity.hpp"

#include <pthread.h>
#include <sched.h>

#include <thread>

namespace gran {

bool pin_current_thread(int cpu) {
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

bool unpin_current_thread() {
  cpu_set_t set;
  CPU_ZERO(&set);
  const unsigned n = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned i = 0; i < n && i < CPU_SETSIZE; ++i) CPU_SET(i, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

int current_cpu() {
#if defined(__linux__)
  return sched_getcpu();
#else
  return -1;
#endif
}

std::vector<int> allowed_cpus() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) != 0) return {};
  std::vector<int> out;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu)
    if (CPU_ISSET(static_cast<unsigned>(cpu), &set)) out.push_back(cpu);
  return out;
}

}  // namespace gran
