// CPU-affinity control for worker OS threads. HPX pins one OS thread per
// core by default; the thread manager uses these helpers to do the same.
#pragma once

#include <vector>

namespace gran {

// Pins the calling thread to the given logical CPU. Returns false if the
// kernel rejected the mask (CPU offline / containerized restriction); the
// caller then runs unpinned, which only affects measurement fidelity.
bool pin_current_thread(int cpu);

// Removes any pinning from the calling thread (all-CPUs mask).
bool unpin_current_thread();

// The CPU the calling thread last ran on (-1 if unavailable).
int current_cpu();

// Logical CPUs the calling thread is allowed to run on (sched_getaffinity),
// ascending. In containers/cgroups this is the actually usable cpuset —
// often a strict subset of the CPUs the topology lists. Empty on failure.
std::vector<int> allowed_cpus();

}  // namespace gran
