// Machine-topology discovery.
//
// The thread manager "captures the machine topology at creation time and is
// parameterized with the number of resources it can use" (paper §I-B). This
// module discovers logical CPUs, their NUMA node, SMT siblings and cache
// sizes from Linux sysfs, with conservative fallbacks when sysfs is absent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gran {

struct cpu_info {
  int os_index = 0;          // logical CPU number (sysfs cpuN)
  int numa_node = 0;         // owning NUMA node
  int core_id = 0;           // physical core id (SMT siblings share this)
  int package_id = 0;        // socket
};

struct cache_info {
  int level = 0;             // 1, 2, 3
  std::string type;          // "Data", "Instruction", "Unified"
  std::size_t size_bytes = 0;
  bool shared = false;       // shared by more than one logical CPU
};

// Immutable snapshot of the machine, built once.
class topology {
 public:
  // Discovers the host topology (sysfs; falls back to a flat single-node
  // layout of hardware_concurrency CPUs).
  static const topology& host();

  // Builds a synthetic topology: `cpus` logical CPUs spread evenly over
  // `numa_nodes` nodes. Used by tests and by the simulator's machine models.
  static topology synthetic(int cpus, int numa_nodes);

  // Assembles a topology from explicit parts (discovery and tests).
  static topology from_parts(std::vector<cpu_info> cpus, std::vector<cache_info> caches,
                             int numa_nodes);

  int num_cpus() const noexcept { return static_cast<int>(cpus_.size()); }
  int num_numa_nodes() const noexcept { return num_numa_nodes_; }
  const std::vector<cpu_info>& cpus() const noexcept { return cpus_; }
  const std::vector<cache_info>& caches() const noexcept { return caches_; }

  // NUMA node owning the given logical CPU.
  int numa_node_of(int cpu) const;

  // All logical CPUs of a NUMA node, ascending.
  std::vector<int> cpus_of_node(int node) const;

 private:
  topology() = default;

  std::vector<cpu_info> cpus_;
  std::vector<cache_info> caches_;
  int num_numa_nodes_ = 1;
};

}  // namespace gran
