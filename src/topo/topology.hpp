// Machine-topology discovery.
//
// The thread manager "captures the machine topology at creation time and is
// parameterized with the number of resources it can use" (paper §I-B). This
// module discovers logical CPUs, their NUMA node, SMT siblings and cache
// sizes from Linux sysfs, with conservative fallbacks when sysfs is absent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gran {

struct cpu_info {
  int os_index = 0;          // logical CPU number (sysfs cpuN)
  int numa_node = 0;         // owning NUMA node
  int core_id = 0;           // physical core id (SMT siblings share this)
  int package_id = 0;        // socket
};

struct cache_info {
  int level = 0;             // 1, 2, 3
  std::string type;          // "Data", "Instruction", "Unified"
  std::size_t size_bytes = 0;
  bool shared = false;       // shared by more than one logical CPU
};

// Parses a sysfs cpulist such as "0-3,8-11,16" into ascending CPU ids.
// Malformed ranges are skipped; the empty string yields an empty vector.
std::vector<int> parse_cpulist(const std::string& list);

// Immutable snapshot of the machine, built once.
class topology {
 public:
  // Discovers the host topology (sysfs; falls back to a flat single-node
  // layout of hardware_concurrency CPUs).
  static const topology& host();

  // Discovery against an explicit sysfs cpu directory (the host's
  // /sys/devices/system/cpu, or a fake tree in tests). Honors the `online`
  // cpulist when present — CPU ids need not be contiguous and offline CPUs
  // are excluded — and falls back to 0..hardware_concurrency-1 otherwise.
  static topology discover(const std::string& sysfs_cpu_root);

  // Builds a synthetic topology: `cpus` logical CPUs spread evenly over
  // `numa_nodes` nodes. Used by tests and by the simulator's machine models.
  static topology synthetic(int cpus, int numa_nodes);

  // Assembles a topology from explicit parts (discovery and tests).
  static topology from_parts(std::vector<cpu_info> cpus, std::vector<cache_info> caches,
                             int numa_nodes);

  int num_cpus() const noexcept { return static_cast<int>(cpus_.size()); }
  int num_numa_nodes() const noexcept { return num_numa_nodes_; }
  const std::vector<cpu_info>& cpus() const noexcept { return cpus_; }
  const std::vector<cache_info>& caches() const noexcept { return caches_; }

  // Looks up a logical CPU by its OS index (ids may be non-contiguous);
  // nullptr when the CPU is not part of this topology.
  const cpu_info* find_cpu(int os_index) const;

  // NUMA node owning the given logical CPU (by OS index).
  int numa_node_of(int cpu) const;

  // All logical CPUs of a NUMA node, ascending.
  std::vector<int> cpus_of_node(int node) const;

  // Logical CPUs sharing `cpu`'s physical core (same package + core id),
  // including `cpu` itself, ascending. {cpu} when the CPU is unknown.
  std::vector<int> smt_siblings_of(int cpu) const;

  // Distinct physical cores (package, core_id pairs).
  int num_physical_cores() const;

 private:
  topology() = default;

  std::vector<cpu_info> cpus_;
  std::vector<cache_info> caches_;
  int num_numa_nodes_ = 1;
};

}  // namespace gran
