#include "topo/platform_spec.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "topo/topology.hpp"

namespace gran {

const platform_spec& sandy_bridge_spec() {
  static const platform_spec spec{
      .name = "sandy-bridge",
      .processor = "Intel Xeon E5 2690",
      .microarch = "Sandy Bridge (SB)",
      .clock_ghz = 2.9,
      .turbo_ghz = 3.8,
      .hardware_threads = 1,  // 2-way, deactivated
      .cores = 16,
      .numa_domains = 2,
      .l1d_kb = 32,
      .l1i_kb = 32,
      .l2_kb = 256,
      .shared_cache_mb = 20,
      .ram_gb = 64,
  };
  return spec;
}

const platform_spec& ivy_bridge_spec() {
  static const platform_spec spec{
      .name = "ivy-bridge",
      .processor = "Intel Xeon E5-2679 v3",
      .microarch = "Ivy Bridge (IB)",
      .clock_ghz = 2.3,
      .turbo_ghz = 3.3,
      .hardware_threads = 1,
      .cores = 20,
      .numa_domains = 2,
      .l1d_kb = 32,
      .l1i_kb = 32,
      .l2_kb = 256,
      .shared_cache_mb = 35,
      .ram_gb = 128,
  };
  return spec;
}

const platform_spec& haswell_spec() {
  static const platform_spec spec{
      .name = "haswell",
      .processor = "Intel Xeon E5-2695 v3",
      .microarch = "Haswell (HW)",
      .clock_ghz = 2.3,
      .turbo_ghz = 3.3,
      .hardware_threads = 1,
      .cores = 28,
      .numa_domains = 2,
      .l1d_kb = 32,
      .l1i_kb = 32,
      .l2_kb = 256,
      .shared_cache_mb = 35,
      .ram_gb = 128,
  };
  return spec;
}

const platform_spec& xeon_phi_spec() {
  static const platform_spec spec{
      .name = "xeon-phi",
      .processor = "Intel Xeon Phi",
      .microarch = "Xeon Phi (KNC)",
      .clock_ghz = 1.2,
      .turbo_ghz = 0.0,
      .hardware_threads = 4,
      .cores = 61,
      .numa_domains = 1,
      .l1d_kb = 32,
      .l1i_kb = 32,
      .l2_kb = 512,
      .shared_cache_mb = 0,
      .ram_gb = 8,
  };
  return spec;
}

const std::vector<platform_spec>& paper_platforms() {
  static const std::vector<platform_spec> all{
      sandy_bridge_spec(), ivy_bridge_spec(), haswell_spec(), xeon_phi_spec()};
  return all;
}

const platform_spec* find_platform(const std::string& name) {
  for (const auto& p : paper_platforms())
    if (p.name == name) return &p;
  return nullptr;
}

namespace {

std::string cpuinfo_model_name() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        std::string name = line.substr(colon + 1);
        const auto start = name.find_first_not_of(' ');
        return start == std::string::npos ? name : name.substr(start);
      }
    }
  }
  return "unknown";
}

}  // namespace

platform_spec host_spec() {
  const topology& topo = topology::host();
  platform_spec spec;
  spec.name = "host";
  spec.processor = cpuinfo_model_name();
  spec.microarch = "host";
  // Clock: prefer the marketing name's "@ x.yzGHz" suffix, else cpuinfo MHz.
  const auto at = spec.processor.find('@');
  if (at != std::string::npos) {
    const double ghz = std::atof(spec.processor.c_str() + at + 1);
    if (ghz > 0) spec.clock_ghz = ghz;
  }
  if (spec.clock_ghz == 0.0) {
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("cpu MHz", 0) == 0) {
        const auto colon = line.find(':');
        if (colon != std::string::npos)
          spec.clock_ghz = std::atof(line.c_str() + colon + 1) / 1000.0;
        break;
      }
    }
  }
  spec.cores = topo.num_cpus();
  spec.numa_domains = topo.num_numa_nodes();
  spec.hardware_threads = 1;
  for (const auto& c : topo.caches()) {
    if (c.level == 1 && c.type == "Data") spec.l1d_kb = c.size_bytes / 1024;
    if (c.level == 1 && c.type == "Instruction") spec.l1i_kb = c.size_bytes / 1024;
    if (c.level == 2) spec.l2_kb = c.size_bytes / 1024;
    if (c.level == 3) spec.shared_cache_mb = c.size_bytes / (1024 * 1024);
  }
  return spec;
}

}  // namespace gran
