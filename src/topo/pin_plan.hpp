// Per-worker CPU assignment plan — computed once at thread_manager
// construction, before any worker starts.
//
// The old scheme pinned worker w to logical CPU `w % num_cpus`, which is
// wrong twice over: on SMT hosts whose sysfs numbering interleaves siblings
// it packs two workers onto one physical core while other cores sit empty,
// and in containers it pins to CPUs outside the cgroup cpuset so the pin is
// rejected and the worker silently runs unpinned. The plan fixes both:
//
//   * candidates are the intersection of the discovered topology with the
//     actually-available cpuset (sched_getaffinity);
//   * `compact` fills physical cores first (one worker per core, NUMA node
//     by node) and only then returns for SMT siblings;
//   * `scatter` round-robins across NUMA domains (bandwidth-spreading),
//     still physical-cores-first within each domain;
//   * `none` leaves every worker unpinned.
//
// Alongside the CPU, each worker gets a dense locality *domain* (NUMA node)
// and a dense physical-core id; the scheduling policies derive their
// SMT-sibling / same-domain / remote victim tiers from these.
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace gran {

enum class pin_mode : int { compact, scatter, none };

const char* pin_mode_name(pin_mode m) noexcept;
// Throws std::invalid_argument on unknown names.
pin_mode pin_mode_from_name(const std::string& name);
// Resolution order: explicit `configured` string > GRAN_PIN env > compact.
pin_mode resolve_pin_mode(const std::string& configured);

struct worker_assignment {
  int cpu = -1;     // logical CPU (OS index) to pin to; -1 = run unpinned
  int domain = 0;   // dense NUMA/locality domain id (always valid)
  int core = -1;    // dense physical-core id; SMT siblings share it; -1 = unknown
};

struct pin_plan {
  pin_mode mode = pin_mode::none;
  std::vector<worker_assignment> workers;
  int num_domains = 1;  // distinct domains among workers (≥ 1)
  int num_cores = 0;    // distinct physical cores among pinned workers

  // True when at least one worker has a CPU assignment.
  bool pinned() const noexcept;

  // Builds the plan for `num_workers` workers. `allowed_cpus` restricts the
  // candidate set (empty = no restriction, use the whole topology; CPUs
  // unknown to the topology are ignored). When mode == none, or there are
  // more workers than candidate CPUs (oversubscription — doubling workers
  // up on CPUs only creates noise), every worker stays unpinned and domains
  // fall back to an even spread over the topology's NUMA nodes.
  static pin_plan build(const topology& topo, const std::vector<int>& allowed_cpus,
                        int num_workers, pin_mode mode);
};

}  // namespace gran
