#include "topo/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "util/assert.hpp"

namespace gran {

namespace {

// Reads a small sysfs file; returns empty string when missing.
std::string read_sysfs(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::string content;
  std::getline(in, content);
  return content;
}

int read_sysfs_int(const std::string& path, int def) {
  const std::string s = read_sysfs(path);
  if (s.empty()) return def;
  try {
    return std::stoi(s);
  } catch (...) {
    return def;
  }
}

// Parses sizes like "32K", "256K", "35840K".
std::size_t parse_cache_size(const std::string& s) {
  if (s.empty()) return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  std::size_t mult = 1;
  if (end && *end == 'K') mult = 1024;
  if (end && *end == 'M') mult = 1024 * 1024;
  return static_cast<std::size_t>(v) * mult;
}

}  // namespace

std::vector<int> parse_cpulist(const std::string& list) {
  std::vector<int> out;
  std::stringstream ss(list);
  std::string range;
  while (std::getline(ss, range, ',')) {
    if (range.empty()) continue;
    const auto dash = range.find('-');
    try {
      if (dash == std::string::npos) {
        out.push_back(std::stoi(range));
      } else {
        const int lo = std::stoi(range.substr(0, dash));
        const int hi = std::stoi(range.substr(dash + 1));
        for (int c = lo; c <= hi; ++c) out.push_back(c);
      }
    } catch (...) {
      // Skip malformed entries; sysfs never produces them, fuzzed/fake
      // inputs should degrade instead of throwing.
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

topology topology::discover(const std::string& sysfs_cpu_root) {
  // The `online` cpulist is authoritative: CPU ids may be non-contiguous
  // (offline CPUs, sparse cgroup topologies). Without it, fall back to a
  // dense 0..hardware_concurrency-1 range.
  std::vector<int> ids = parse_cpulist(read_sysfs(sysfs_cpu_root + "/online"));
  if (ids.empty()) {
    const int n = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    for (int cpu = 0; cpu < n; ++cpu) ids.push_back(cpu);
  }

  std::vector<cpu_info> cpus;
  cpus.reserve(ids.size());
  int max_node = 0;
  for (const int cpu : ids) {
    const std::string base = sysfs_cpu_root + "/cpu" + std::to_string(cpu);
    cpu_info info;
    info.os_index = cpu;
    info.core_id = read_sysfs_int(base + "/topology/core_id", cpu);
    info.package_id = read_sysfs_int(base + "/topology/physical_package_id", 0);
    info.numa_node = 0;
    for (int node = 0; node < 64; ++node) {
      std::ifstream probe(base + "/node" + std::to_string(node) + "/cpulist");
      if (probe) {
        info.numa_node = node;
        break;
      }
    }
    max_node = std::max(max_node, info.numa_node);
    cpus.push_back(info);
  }

  std::vector<cache_info> caches;
  const int cpu0 = ids.front();
  for (int idx = 0; idx < 8; ++idx) {
    const std::string base = sysfs_cpu_root + "/cpu" + std::to_string(cpu0) +
                             "/cache/index" + std::to_string(idx);
    const std::string level = read_sysfs(base + "/level");
    if (level.empty()) break;
    cache_info c;
    c.level = std::atoi(level.c_str());
    c.type = read_sysfs(base + "/type");
    c.size_bytes = parse_cache_size(read_sysfs(base + "/size"));
    c.shared = parse_cpulist(read_sysfs(base + "/shared_cpu_list")).size() > 1;
    caches.push_back(c);
  }

  return topology::from_parts(std::move(cpus), std::move(caches), max_node + 1);
}

const topology& topology::host() {
  static const topology instance = discover("/sys/devices/system/cpu");
  return instance;
}

topology topology::synthetic(int cpus, int numa_nodes) {
  GRAN_ASSERT(numa_nodes >= 1);
  topology t;
  t.num_numa_nodes_ = numa_nodes;
  t.cpus_.reserve(static_cast<std::size_t>(std::max(0, cpus)));
  const int per_node = cpus > 0 ? (cpus + numa_nodes - 1) / numa_nodes : 1;
  for (int i = 0; i < cpus; ++i) {
    cpu_info info;
    info.os_index = i;
    info.core_id = i;
    info.package_id = std::min(i / per_node, numa_nodes - 1);
    info.numa_node = std::min(i / per_node, numa_nodes - 1);
    t.cpus_.push_back(info);
  }
  return t;
}

topology topology::from_parts(std::vector<cpu_info> cpus, std::vector<cache_info> caches,
                              int numa_nodes) {
  GRAN_ASSERT(numa_nodes >= 1);
  topology t;
  t.cpus_ = std::move(cpus);
  t.caches_ = std::move(caches);
  t.num_numa_nodes_ = numa_nodes;
  return t;
}

const cpu_info* topology::find_cpu(int os_index) const {
  for (const auto& c : cpus_)
    if (c.os_index == os_index) return &c;
  return nullptr;
}

int topology::numa_node_of(int cpu) const {
  const cpu_info* info = find_cpu(cpu);
  GRAN_ASSERT_MSG(info != nullptr, "numa_node_of: unknown CPU");
  return info->numa_node;
}

std::vector<int> topology::cpus_of_node(int node) const {
  std::vector<int> out;
  for (const auto& c : cpus_)
    if (c.numa_node == node) out.push_back(c.os_index);
  return out;
}

std::vector<int> topology::smt_siblings_of(int cpu) const {
  const cpu_info* info = find_cpu(cpu);
  if (info == nullptr) return {cpu};
  std::vector<int> out;
  for (const auto& c : cpus_)
    if (c.package_id == info->package_id && c.core_id == info->core_id)
      out.push_back(c.os_index);
  return out;
}

int topology::num_physical_cores() const {
  std::set<std::pair<int, int>> cores;
  for (const auto& c : cpus_) cores.emplace(c.package_id, c.core_id);
  return static_cast<int>(cores.size());
}

}  // namespace gran
