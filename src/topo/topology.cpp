#include "topo/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "util/assert.hpp"

namespace gran {

namespace {

// Reads a small sysfs file; returns empty string when missing.
std::string read_sysfs(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::string content;
  std::getline(in, content);
  return content;
}

int read_sysfs_int(const std::string& path, int def) {
  const std::string s = read_sysfs(path);
  if (s.empty()) return def;
  try {
    return std::stoi(s);
  } catch (...) {
    return def;
  }
}

// Parses sizes like "32K", "256K", "35840K".
std::size_t parse_cache_size(const std::string& s) {
  if (s.empty()) return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  std::size_t mult = 1;
  if (end && *end == 'K') mult = 1024;
  if (end && *end == 'M') mult = 1024 * 1024;
  return static_cast<std::size_t>(v) * mult;
}

// Counts CPUs in a cpulist such as "0-3,8-11".
int count_cpulist(const std::string& list) {
  int count = 0;
  std::stringstream ss(list);
  std::string range;
  while (std::getline(ss, range, ',')) {
    const auto dash = range.find('-');
    if (dash == std::string::npos) {
      if (!range.empty()) ++count;
    } else {
      const int lo = std::atoi(range.substr(0, dash).c_str());
      const int hi = std::atoi(range.substr(dash + 1).c_str());
      count += hi - lo + 1;
    }
  }
  return count;
}

topology discover_host() {
  const int n = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));

  std::vector<cpu_info> cpus;
  cpus.reserve(static_cast<std::size_t>(n));
  int max_node = 0;
  for (int cpu = 0; cpu < n; ++cpu) {
    const std::string base = "/sys/devices/system/cpu/cpu" + std::to_string(cpu);
    cpu_info info;
    info.os_index = cpu;
    info.core_id = read_sysfs_int(base + "/topology/core_id", cpu);
    info.package_id = read_sysfs_int(base + "/topology/physical_package_id", 0);
    info.numa_node = 0;
    for (int node = 0; node < 64; ++node) {
      std::ifstream probe(base + "/node" + std::to_string(node) + "/cpulist");
      if (probe) {
        info.numa_node = node;
        break;
      }
    }
    max_node = std::max(max_node, info.numa_node);
    cpus.push_back(info);
  }

  std::vector<cache_info> caches;
  for (int idx = 0; idx < 8; ++idx) {
    const std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(idx);
    const std::string level = read_sysfs(base + "/level");
    if (level.empty()) break;
    cache_info c;
    c.level = std::atoi(level.c_str());
    c.type = read_sysfs(base + "/type");
    c.size_bytes = parse_cache_size(read_sysfs(base + "/size"));
    c.shared = count_cpulist(read_sysfs(base + "/shared_cpu_list")) > 1;
    caches.push_back(c);
  }

  return topology::from_parts(std::move(cpus), std::move(caches), max_node + 1);
}

}  // namespace

const topology& topology::host() {
  static const topology instance = discover_host();
  return instance;
}

topology topology::synthetic(int cpus, int numa_nodes) {
  GRAN_ASSERT(numa_nodes >= 1);
  topology t;
  t.num_numa_nodes_ = numa_nodes;
  t.cpus_.reserve(static_cast<std::size_t>(std::max(0, cpus)));
  const int per_node = cpus > 0 ? (cpus + numa_nodes - 1) / numa_nodes : 1;
  for (int i = 0; i < cpus; ++i) {
    cpu_info info;
    info.os_index = i;
    info.core_id = i;
    info.package_id = std::min(i / per_node, numa_nodes - 1);
    info.numa_node = std::min(i / per_node, numa_nodes - 1);
    t.cpus_.push_back(info);
  }
  return t;
}

topology topology::from_parts(std::vector<cpu_info> cpus, std::vector<cache_info> caches,
                              int numa_nodes) {
  GRAN_ASSERT(numa_nodes >= 1);
  topology t;
  t.cpus_ = std::move(cpus);
  t.caches_ = std::move(caches);
  t.num_numa_nodes_ = numa_nodes;
  return t;
}

int topology::numa_node_of(int cpu) const {
  GRAN_ASSERT(cpu >= 0 && cpu < num_cpus());
  return cpus_[static_cast<std::size_t>(cpu)].numa_node;
}

std::vector<int> topology::cpus_of_node(int node) const {
  std::vector<int> out;
  for (const auto& c : cpus_)
    if (c.numa_node == node) out.push_back(c.os_index);
  return out;
}

}  // namespace gran
