#include "topo/pin_plan.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/env.hpp"

namespace gran {

const char* pin_mode_name(pin_mode m) noexcept {
  switch (m) {
    case pin_mode::compact: return "compact";
    case pin_mode::scatter: return "scatter";
    case pin_mode::none: return "none";
  }
  return "?";
}

pin_mode pin_mode_from_name(const std::string& name) {
  if (name == "compact") return pin_mode::compact;
  if (name == "scatter") return pin_mode::scatter;
  if (name == "none") return pin_mode::none;
  throw std::invalid_argument("unknown pin mode: " + name +
                              " (compact|scatter|none)");
}

pin_mode resolve_pin_mode(const std::string& configured) {
  if (!configured.empty()) return pin_mode_from_name(configured);
  const std::string env = env_string("GRAN_PIN", "");
  if (!env.empty()) return pin_mode_from_name(env);
  return pin_mode::compact;
}

bool pin_plan::pinned() const noexcept {
  for (const auto& w : workers)
    if (w.cpu >= 0) return true;
  return false;
}

namespace {

// One physical core: its NUMA node and SMT siblings in OS-index order.
struct core_entry {
  int node = 0;
  std::vector<int> cpus;
};

// Unpinned fallback: spread workers evenly over the NUMA domains, first
// domains first — the pre-plan behavior, matching how HPX fills sockets.
pin_plan unpinned_plan(const topology& topo, int num_workers, pin_mode mode) {
  pin_plan plan;
  plan.mode = mode;
  std::set<int> nodes;
  for (const auto& c : topo.cpus()) nodes.insert(c.numa_node);
  const int domains =
      std::min(std::max(1, static_cast<int>(nodes.size())), num_workers);
  plan.num_domains = domains;
  plan.workers.resize(static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w)
    plan.workers[static_cast<std::size_t>(w)].domain = w * domains / num_workers;
  return plan;
}

}  // namespace

pin_plan pin_plan::build(const topology& topo, const std::vector<int>& allowed_cpus,
                         int num_workers, pin_mode mode) {
  GRAN_ASSERT(num_workers >= 1);

  // Candidate CPUs: the topology restricted to the allowed cpuset.
  std::vector<const cpu_info*> candidates;
  if (allowed_cpus.empty()) {
    for (const auto& c : topo.cpus()) candidates.push_back(&c);
  } else {
    for (const int cpu : allowed_cpus)
      if (const cpu_info* info = topo.find_cpu(cpu)) candidates.push_back(info);
  }
  if (mode == pin_mode::none || candidates.empty() ||
      num_workers > static_cast<int>(candidates.size()))
    return unpinned_plan(topo, num_workers, mode);

  // Group candidates into physical cores, ordered node-major so compact
  // filling completes one NUMA domain before starting the next.
  std::map<std::tuple<int, int, int>, core_entry> by_core;  // (node, pkg, core)
  for (const cpu_info* c : candidates) {
    core_entry& entry = by_core[{c->numa_node, c->package_id, c->core_id}];
    entry.node = c->numa_node;
    entry.cpus.push_back(c->os_index);
  }
  std::vector<core_entry> cores;
  cores.reserve(by_core.size());
  for (auto& [key, entry] : by_core) {
    std::sort(entry.cpus.begin(), entry.cpus.end());
    cores.push_back(std::move(entry));
  }

  // Emit (cpu, core-index) in pin order: SMT round r takes the r-th sibling
  // of each core, so every physical core is used once before any sibling —
  // exactly the "cores first, hyperthreads last" binding HPX computes from
  // hwloc. `scatter` additionally interleaves the cores of round r across
  // NUMA domains instead of finishing one domain first.
  std::size_t max_siblings = 0;
  for (const auto& c : cores) max_siblings = std::max(max_siblings, c.cpus.size());

  std::vector<std::pair<int, int>> order;  // (os cpu, dense core id)
  order.reserve(candidates.size());
  for (std::size_t r = 0; r < max_siblings; ++r) {
    std::vector<std::pair<int, int>> round;
    for (std::size_t i = 0; i < cores.size(); ++i)
      if (r < cores[i].cpus.size())
        round.emplace_back(cores[i].cpus[r], static_cast<int>(i));
    if (mode == pin_mode::scatter) {
      // Deal the node-major round out across domains: node0.core0,
      // node1.core0, node0.core1, ... Preserves physical-first within the
      // round while spreading consecutive workers over memory controllers.
      std::map<int, std::vector<std::pair<int, int>>> per_node;
      for (const auto& [cpu, core] : round)
        per_node[cores[static_cast<std::size_t>(core)].node].push_back({cpu, core});
      bool more = true;
      for (std::size_t k = 0; more; ++k) {
        more = false;
        for (auto& [node, list] : per_node)
          if (k < list.size()) {
            order.push_back(list[k]);
            more = true;
          }
      }
    } else {
      order.insert(order.end(), round.begin(), round.end());
    }
  }
  GRAN_ASSERT(static_cast<int>(order.size()) >= num_workers);

  pin_plan plan;
  plan.mode = mode;
  plan.workers.resize(static_cast<std::size_t>(num_workers));

  // Dense domain ids over the nodes actually assigned, ascending node order.
  std::set<int> assigned_nodes;
  for (int w = 0; w < num_workers; ++w) {
    const int core = order[static_cast<std::size_t>(w)].second;
    assigned_nodes.insert(cores[static_cast<std::size_t>(core)].node);
  }
  std::map<int, int> dense_node;
  for (const int node : assigned_nodes)
    dense_node.emplace(node, static_cast<int>(dense_node.size()));

  std::set<int> assigned_cores;
  for (int w = 0; w < num_workers; ++w) {
    const auto [cpu, core] = order[static_cast<std::size_t>(w)];
    worker_assignment& a = plan.workers[static_cast<std::size_t>(w)];
    a.cpu = cpu;
    a.core = core;
    a.domain = dense_node.at(cores[static_cast<std::size_t>(core)].node);
    assigned_cores.insert(core);
  }
  plan.num_domains = static_cast<int>(assigned_nodes.size());
  plan.num_cores = static_cast<int>(assigned_cores.size());
  return plan;
}

}  // namespace gran
