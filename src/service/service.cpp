#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "perf/counters.hpp"
#include "threads/thread_manager.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace gran::service {

const char* to_string(admission_policy p) noexcept {
  switch (p) {
    case admission_policy::block: return "block";
    case admission_policy::reject: return "reject";
    case admission_policy::shed_oldest: return "shed-oldest";
  }
  return "?";
}

admission_policy policy_from_string(const std::string& text, admission_policy def) {
  if (text == "block") return admission_policy::block;
  if (text == "reject") return admission_policy::reject;
  if (text == "shed-oldest" || text == "shed_oldest" || text == "shed")
    return admission_policy::shed_oldest;
  return def;
}

service_config service_config::from_env(service_config base) {
  base.shards = static_cast<int>(env_int("GRAN_SERVICE_SHARDS", base.shards));
  base.shard_capacity = static_cast<std::size_t>(env_int(
      "GRAN_SERVICE_SHARD_CAP", static_cast<std::int64_t>(base.shard_capacity)));
  base.backlog_bound = env_int("GRAN_SERVICE_BACKLOG", base.backlog_bound);
  base.policy = policy_from_string(env_string("GRAN_SERVICE_POLICY", ""), base.policy);
  base.drain_batch = static_cast<int>(env_int("GRAN_SERVICE_BATCH", base.drain_batch));
  return base;
}

struct task_service::request {
  task::body_fn body;
  std::uint64_t submit_ticks = 0;  // stamped at admission (tsc_clock)
};

struct task_service::shard {
  explicit shard(std::size_t capacity) : ring(capacity) {}
  mpmc_bounded<request*> ring;
  // True while a drainer task owns this shard. Producers arm it after
  // pushing (a seq_cst fence in between); the drainer disarms on empty and
  // re-checks through the mirrored fence — Dekker, no lost wakeups.
  alignas(cache_line_size) std::atomic<bool> drainer_armed{false};
};

task_service::task_service(thread_manager& tm, service_config cfg)
    : tm_(tm), cfg_(cfg) {
  if (cfg_.shards <= 0) cfg_.shards = std::max(1, tm_.num_workers());
  if (cfg_.shard_capacity < 2) cfg_.shard_capacity = 2;
  if (cfg_.backlog_bound < 1) cfg_.backlog_bound = 1;
  if (cfg_.drain_batch < 1) cfg_.drain_batch = 1;
  shards_.reserve(static_cast<std::size_t>(cfg_.shards));
  for (int i = 0; i < cfg_.shards; ++i)
    shards_.push_back(std::make_unique<shard>(cfg_.shard_capacity));
  if (cfg_.register_counters) register_perf_counters();
}

task_service::~task_service() {
  quiesce();
  shutdown();
  if (counters_registered_) unregister_perf_counters();
}

std::int64_t task_service::backlog() const noexcept {
  // Read completions first: a stale (low) completed_ only over-estimates
  // the backlog, which errs toward admitting less, never more.
  const auto completed = completed_.load(std::memory_order_acquire);
  const auto shed = shed_.load(std::memory_order_relaxed);
  const auto accepted = accepted_.load(std::memory_order_relaxed);
  return static_cast<std::int64_t>(accepted) -
         static_cast<std::int64_t>(completed) - static_cast<std::int64_t>(shed);
}

task_service::stats task_service::snapshot() const noexcept {
  stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.backlog = backlog();
  s.backlog_peak = backlog_peak_.load(std::memory_order_relaxed);
  return s;
}

submit_status task_service::admit(int shard_index) {
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) return submit_status::shutdown;
    if (backlog() < cfg_.backlog_bound) return submit_status::accepted;
    switch (cfg_.policy) {
      case admission_policy::reject:
        rejected_.fetch_add(1, std::memory_order_relaxed);
        tm_.note_external_rejected();
        return submit_status::rejected;
      case admission_policy::shed_oldest: {
        // Drop the oldest still-queued request of this shard. An empty ring
        // means everything was already handed to the runtime — nothing
        // sheddable, so admit anyway (bounded overshoot, see header).
        if (auto victim = shards_[static_cast<std::size_t>(shard_index)]->ring.pop()) {
          shed_.fetch_add(1, std::memory_order_relaxed);
          delete *victim;
        }
        return submit_status::accepted;
      }
      case admission_policy::block: {
        std::unique_lock<std::mutex> lock(block_mutex_);
        waiters_.fetch_add(1, std::memory_order_seq_cst);
        block_cv_.wait(lock, [this] {
          return stopping_.load(std::memory_order_acquire) ||
                 backlog() < cfg_.backlog_bound;
        });
        waiters_.fetch_sub(1, std::memory_order_relaxed);
        break;  // re-run the admission check
      }
    }
  }
}

submit_status task_service::submit(task::body_fn body) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const int si = static_cast<int>(next_shard_.fetch_add(1, std::memory_order_relaxed) %
                                  static_cast<std::uint64_t>(shards_.size()));
  const submit_status admission = admit(si);
  if (admission != submit_status::accepted) return admission;

  shard& s = *shards_[static_cast<std::size_t>(si)];
  auto* r = new request{std::move(body), tsc_clock::now()};
  accepted_.fetch_add(1, std::memory_order_relaxed);

  while (!s.ring.push(r)) {
    // Ring full: the admission bound normally prevents this, but a small
    // ring (or many shards behind one bound) can still fill. Resolve it
    // with the same policy semantics as the bound itself.
    switch (cfg_.policy) {
      case admission_policy::reject:
        accepted_.fetch_sub(1, std::memory_order_relaxed);
        rejected_.fetch_add(1, std::memory_order_relaxed);
        tm_.note_external_rejected();
        delete r;
        return submit_status::rejected;
      case admission_policy::shed_oldest:
        if (auto victim = s.ring.pop()) {
          shed_.fetch_add(1, std::memory_order_relaxed);
          delete *victim;
        }
        break;
      case admission_policy::block:
        if (stopping_.load(std::memory_order_acquire)) {
          accepted_.fetch_sub(1, std::memory_order_relaxed);
          delete r;
          return submit_status::shutdown;
        }
        // Make sure a consumer exists, then let it make room.
        arm_drainer(s, si);
        std::this_thread::yield();
        break;
    }
  }

  // Publish-then-arm (the producer half of the Dekker pair): the fence
  // orders the ring push against the armed read, so either this exchange
  // spawns a drainer or the active drainer's post-disarm re-check sees the
  // item.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  arm_drainer(s, si);

  const std::int64_t b = backlog();
  std::int64_t peak = backlog_peak_.load(std::memory_order_relaxed);
  while (b > peak &&
         !backlog_peak_.compare_exchange_weak(peak, b, std::memory_order_relaxed)) {
  }
  return submit_status::accepted;
}

void task_service::arm_drainer(shard& s, int shard_index) {
  if (s.drainer_armed.exchange(true, std::memory_order_seq_cst)) return;
  tm_.spawn([this, shard_index] { drain(shard_index); }, task_priority::normal,
            "service-drain");
}

void task_service::drain(int shard_index) {
  shard& s = *shards_[static_cast<std::size_t>(shard_index)];
  for (;;) {
    int n = 0;
    while (n < cfg_.drain_batch) {
      auto r = s.ring.pop();
      if (!r) break;
      dispatch(*r);
      ++n;
    }
    if (n == cfg_.drain_batch) {
      // Full batch: there may be more. Yield so this worker can also run
      // the tasks being spawned, then continue draining.
      this_task::yield();
      continue;
    }
    // Ring observed empty: disarm, then re-check through the fence (the
    // consumer half of the Dekker pair — see submit()).
    s.drainer_armed.store(false, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (s.ring.empty_approx()) return;
    if (s.drainer_armed.exchange(true, std::memory_order_seq_cst))
      return;  // a producer re-armed and spawned its own drainer
    // Re-armed ourselves; keep draining (covers producers caught mid-push).
  }
}

void task_service::dispatch(request* r) {
  tm_.spawn(
      [this, r] {
        const std::uint64_t first = tsc_clock::now();
        hist_queue_wait_.record(first > r->submit_ticks
                                    ? static_cast<std::uint64_t>(
                                          tsc_clock::to_ns(first - r->submit_ticks))
                                    : 0);
        r->body();
        const std::uint64_t done = tsc_clock::now();
        hist_sojourn_.record(done > r->submit_ticks
                                 ? static_cast<std::uint64_t>(
                                       tsc_clock::to_ns(done - r->submit_ticks))
                                 : 0);
        delete r;
        note_completed();
      },
      task_priority::normal, "service-request");
}

void task_service::note_completed() noexcept {
  completed_.fetch_add(1, std::memory_order_seq_cst);
  // Dekker against admit(): the waiter registers (seq_cst RMW) before
  // re-reading the backlog; we bump completions before reading waiters —
  // one of the two must observe the other.
  if (waiters_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock(block_mutex_);
    block_cv_.notify_all();
  }
}

void task_service::quiesce() {
  while (backlog() > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(50));
}

void task_service::shutdown() {
  stopping_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(block_mutex_);
  block_cv_.notify_all();
}

void task_service::register_perf_counters() {
  auto& reg = perf::registry::instance();
  using perf::counter_kind;
  reg.remove_prefix("/service");

  reg.add("/service/count/submitted", counter_kind::monotonic,
          "submit() calls (accepted + rejected + still-negotiating)",
          [this] { return static_cast<double>(submitted_.load(std::memory_order_relaxed)); });
  reg.add("/service/count/accepted", counter_kind::monotonic,
          "requests admitted into a shard ring",
          [this] { return static_cast<double>(accepted_.load(std::memory_order_relaxed)); });
  reg.add("/service/count/rejected", counter_kind::monotonic,
          "requests dropped by the reject admission policy",
          [this] { return static_cast<double>(rejected_.load(std::memory_order_relaxed)); });
  reg.add("/service/count/shed", counter_kind::monotonic,
          "queued requests dropped by the shed-oldest admission policy",
          [this] { return static_cast<double>(shed_.load(std::memory_order_relaxed)); });
  reg.add("/service/count/completed", counter_kind::monotonic,
          "request bodies run to completion",
          [this] { return static_cast<double>(completed_.load(std::memory_order_relaxed)); });
  reg.add("/service/backlog", counter_kind::gauge,
          "requests accepted and not yet completed (admission signal)",
          [this] { return static_cast<double>(std::max<std::int64_t>(0, backlog())); });
  reg.add("/service/backlog-peak", counter_kind::gauge,
          "maximum backlog observed at admission since construction",
          [this] {
            return static_cast<double>(backlog_peak_.load(std::memory_order_relaxed));
          });

  struct histogram_registration {
    const char* base;
    const perf::log2_histogram* hist;
    const char* what;
  };
  const histogram_registration histograms[] = {
      {"/service/histogram/sojourn", &hist_sojourn_,
       "request sojourn (submit -> completion)"},
      {"/service/histogram/queue-wait", &hist_queue_wait_,
       "request queue wait (submit -> first run)"},
  };
  auto& hreg = perf::histogram_registry::instance();
  hreg.remove_prefix("/service");
  for (const auto& h : histograms) {
    const std::string base = h.base;
    const std::string what = h.what;
    const perf::log2_histogram* hist = h.hist;
    for (const double p : {50.0, 95.0, 99.0}) {
      const std::string tag = "p" + std::to_string(static_cast<int>(p));
      reg.add(base + "/" + tag, counter_kind::gauge, tag + " " + what + ", ns",
              [hist, p] { return hist->snap().percentile(p); });
    }
    reg.add(base + "/mean", counter_kind::gauge, "mean " + what + ", ns",
            [hist] { return hist->snap().mean(); });
    reg.add(base + "/count", counter_kind::monotonic, "samples in " + what,
            [hist] { return static_cast<double>(hist->count()); });
    hreg.add(base, [hist] { return hist->snap(); });
  }
  counters_registered_ = true;
}

void task_service::unregister_perf_counters() {
  perf::registry::instance().remove_prefix("/service");
  perf::histogram_registry::instance().remove_prefix("/service");
  counters_registered_ = false;
}

}  // namespace gran::service
