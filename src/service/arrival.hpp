// Deterministic open-loop arrival processes for the service ingress.
//
// The paper's benchmarks are batch-shaped (spawn N, join); a service is
// driven by an *arrival process*, and the grain/overhead trade-off then
// shows up as sojourn latency under load rather than makespan ("The
// Tiny-Tasks Granularity Trade-Off", PAPERS.md). This header generates the
// same request stream for every consumer — the native load generator
// (bench/service_load), the discrete-event mirror (sim/service_sim.hpp),
// and the tests — from one seeded counter-based RNG (util/rng.hpp), so
// native and simulated runs see the *identical* sequence of (time, grain)
// pairs and accepted-count identities can hold by construction.
//
// Two processes:
//   * poisson — exponential inter-arrival times at `rate_per_s`
//     (inverse-CDF over mix64 draws);
//   * mmpp    — a 2-state Markov-modulated Poisson process: a background
//     state and a burst state whose rate is `burst_factor`× higher. State
//     dwell times are exponential; the background rate is derated so the
//     long-run mean rate still equals `rate_per_s`. This is the standard
//     bursty-traffic model — same mean load, much worse tail behaviour.
//
// Per-request service demand ("grain") is sampled log-uniformly in
// [grain_min_ns, grain_max_ns]; equal bounds give a fixed grain.
//
// Header-only on purpose: gran_sim consumes it without linking the service
// library.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace gran::service {

enum class arrival_kind { poisson, mmpp };

inline const char* to_string(arrival_kind k) noexcept {
  return k == arrival_kind::poisson ? "poisson" : "mmpp";
}

struct arrival_config {
  arrival_kind kind = arrival_kind::poisson;
  double rate_per_s = 10'000;    // long-run mean arrival rate
  std::uint64_t seed = 1;

  // Grain mix: per-request service demand, log-uniform in [min, max] ns.
  double grain_min_ns = 2'000;
  double grain_max_ns = 2'000;

  // MMPP shape (ignored for poisson): the burst state runs at
  // burst_factor × the background rate, occupies burst_fraction of time in
  // the long run, and has exponentially distributed dwells with mean
  // burst_dwell_s.
  double burst_factor = 8.0;
  double burst_fraction = 0.1;
  double burst_dwell_s = 0.01;
};

struct arrival_event {
  double t_s = 0;               // arrival time from stream start
  std::uint64_t grain_ns = 0;   // requested service demand
  std::uint64_t seq = 0;        // 0-based position in the stream
};

namespace detail {

// n-th unit draw of stream `stream` under `seed`; stateless and
// order-insensitive, so generation is reproducible across consumers.
inline double unit_draw(std::uint64_t seed, std::uint64_t stream,
                        std::uint64_t n) noexcept {
  return mix64_to_unit(mix64_combine(mix64_combine(seed, stream), n));
}

// Exponential variate with mean 1/rate; u is clamped away from 0 so the
// log never overflows.
inline double exponential(double u, double rate) noexcept {
  if (u < 1e-12) u = 1e-12;
  return -std::log(u) / rate;
}

}  // namespace detail

// Generates every arrival with t_s < horizon_s, in time order. Complexity
// and memory are O(arrivals); callers pick horizons accordingly.
inline std::vector<arrival_event> generate_arrivals(const arrival_config& cfg,
                                                    double horizon_s) {
  std::vector<arrival_event> out;
  if (cfg.rate_per_s <= 0 || horizon_s <= 0) return out;
  out.reserve(static_cast<std::size_t>(cfg.rate_per_s * horizon_s * 1.1) + 16);

  // Background/burst rates chosen so the long-run mean equals rate_per_s:
  // mean = (1 - f) * r_bg + f * burst_factor * r_bg.
  const double f =
      cfg.kind == arrival_kind::mmpp
          ? std::min(0.95, std::max(0.0, cfg.burst_fraction))
          : 0.0;
  const double bg_rate =
      cfg.kind == arrival_kind::mmpp
          ? cfg.rate_per_s / (1.0 - f + f * std::max(1.0, cfg.burst_factor))
          : cfg.rate_per_s;
  const double burst_rate = bg_rate * std::max(1.0, cfg.burst_factor);
  // Dwell means consistent with the stationary fraction f.
  const double burst_dwell = std::max(1e-6, cfg.burst_dwell_s);
  const double bg_dwell = f > 0 ? burst_dwell * (1.0 - f) / f : horizon_s * 2;

  const double log_ratio =
      cfg.grain_max_ns > cfg.grain_min_ns && cfg.grain_min_ns > 0
          ? std::log(cfg.grain_max_ns / cfg.grain_min_ns)
          : 0.0;

  double t = 0;
  bool burst = false;
  double state_end = horizon_s;  // poisson: one background "state"
  std::uint64_t n_arrival = 0, n_grain = 0, n_state = 0;
  if (cfg.kind == arrival_kind::mmpp)
    state_end = detail::exponential(detail::unit_draw(cfg.seed, 2, n_state++),
                                    1.0 / bg_dwell);

  while (t < horizon_s) {
    const double rate = burst ? burst_rate : bg_rate;
    const double dt =
        detail::exponential(detail::unit_draw(cfg.seed, 0, n_arrival++), rate);
    // State change before the candidate arrival: move to the boundary and
    // resample there (exponentials are memoryless, so discarding the
    // partial inter-arrival is exact).
    if (cfg.kind == arrival_kind::mmpp && t + dt >= state_end) {
      t = state_end;
      burst = !burst;
      state_end =
          t + detail::exponential(detail::unit_draw(cfg.seed, 2, n_state++),
                                  1.0 / (burst ? burst_dwell : bg_dwell));
      continue;
    }
    t += dt;
    if (t >= horizon_s) break;

    arrival_event ev;
    ev.t_s = t;
    ev.seq = out.size();
    const double u = detail::unit_draw(cfg.seed, 1, n_grain++);
    ev.grain_ns = static_cast<std::uint64_t>(
        log_ratio > 0 ? cfg.grain_min_ns * std::exp(u * log_ratio)
                      : cfg.grain_min_ns);
    out.push_back(ev);
  }
  return out;
}

}  // namespace gran::service
