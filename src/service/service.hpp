// Task-service ingress: sustained external load with admission control and
// latency SLOs.
//
// Every other entry point into the runtime is batch-shaped; `task_service`
// turns a thread_manager into a *server*: outside (non-worker) threads
// submit requests at high rate, and the service keeps the runtime's
// runnable backlog bounded while tracking each request's sojourn time.
//
//   client threads ──submit()──► shard rings (MPSC, Vyukov bounded)
//                                     │ one drainer task per armed shard
//                                     ▼
//                               thread_manager::spawn (worker-local)
//                                     │
//                                     ▼            submit ─► first-run ─► done
//                               request body runs;  queue-wait  sojourn
//                               histograms record    histogram  histogram
//
// Why a sharded ingress instead of calling tm.spawn from the clients?
// A spawn from a non-worker thread takes the external lane: round-robin
// placement into a per-worker inbox plus a possible park/wake handshake per
// task. Under sustained submission from several clients that serializes on
// shared queue tails. Here clients only push a pointer into one of
// `shards` bounded MPSC rings (one CAS + one store) and workers pull whole
// batches out: the expensive part of ingestion — task construction,
// enqueueing, wakeups — happens *on* a worker, where spawn is local and
// cheap. Each shard has at most one drainer task in flight (the
// `drainer_armed` flag); a submitter that finds the flag clear spawns one.
// The drainer pops in batches, spawns a runtime task per request, yields
// between batches so it cannot monopolize its worker, and on an empty ring
// disarms and re-checks (the disarm/re-check handshake makes lost wakeups
// impossible: the producer's push is an acquire-visible ring write and the
// arm is an RMW, so either the drainer re-check sees the item or the
// producer's exchange sees the disarm).
//
// Admission control bounds the *runnable backlog* — requests accepted but
// not yet completed (the same signal the stall watchdog estimates as
// spawned-minus-completed). When backlog ≥ backlog_bound, submit() applies
// one of three policies:
//   * block      — the submitting thread waits until completions make room
//                  (backpressure; the default);
//   * reject     — submit returns submit_status::rejected immediately and
//                  the drop is counted (/service/count/rejected and
//                  /threads/count/external-rejected);
//   * shed_oldest— the oldest *still-queued* request of the submitter's
//                  shard is dropped to make room for the new one (bounded
//                  staleness: under overload you serve the freshest work).
//                  When the shard ring is already empty (everything was
//                  handed to the runtime), the request is admitted anyway —
//                  backlog can overshoot by at most the in-flight window.
//
// Sojourn tracking is always on (same budget class as the task-duration
// histogram): submit() stamps the request, the first phase records
// queue-wait (submit → first run), completion records sojourn (submit →
// done) into /service/histogram/{queue-wait,sojourn}, which the window
// aggregator and both exporters surface as interval p50/p95/p99.
//
// Knobs (service_config::from_env): GRAN_SERVICE_SHARDS,
// GRAN_SERVICE_SHARD_CAP, GRAN_SERVICE_BACKLOG, GRAN_SERVICE_POLICY,
// GRAN_SERVICE_BATCH. See docs/SERVICE.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "perf/histogram.hpp"
#include "queues/mpmc_bounded.hpp"
#include "threads/task.hpp"
#include "util/cacheline.hpp"

namespace gran {

class thread_manager;

namespace service {

enum class admission_policy { block, reject, shed_oldest };

const char* to_string(admission_policy p) noexcept;
// Parses "block" / "reject" / "shed-oldest" (also "shed", "shed_oldest").
// Falls back to `def` on unknown text.
admission_policy policy_from_string(const std::string& text,
                                    admission_policy def = admission_policy::block);

enum class submit_status {
  accepted,   // the request is in; it will run
  rejected,   // admission bound hit under the reject policy
  shutdown,   // the service is stopping; nothing was enqueued
};

struct service_config {
  int shards = 0;                  // 0 = one per worker
  std::size_t shard_capacity = 1024;  // ring slots per shard (rounded up to 2^k)
  std::int64_t backlog_bound = 4096;  // admission bound on accepted − completed
  admission_policy policy = admission_policy::block;
  int drain_batch = 64;            // requests a drainer spawns before yielding
  bool register_counters = true;   // /service/... registry + histogram sources

  // Environment overlay: GRAN_SERVICE_SHARDS, GRAN_SERVICE_SHARD_CAP,
  // GRAN_SERVICE_BACKLOG, GRAN_SERVICE_POLICY, GRAN_SERVICE_BATCH.
  static service_config from_env(service_config base);
  static service_config from_env() { return from_env(service_config{}); }
};

class task_service {
 public:
  // The manager must outlive the service; the destructor quiesces (waits
  // for every accepted request to complete), so destroy the service while
  // the manager still runs.
  explicit task_service(thread_manager& tm, service_config cfg = {});
  ~task_service();

  task_service(const task_service&) = delete;
  task_service& operator=(const task_service&) = delete;

  // Submits one request from any thread. Applies the admission policy;
  // stamps the submit timestamp at admission (block-policy wait is
  // client-side backpressure, not part of the request's sojourn).
  submit_status submit(task::body_fn body);

  // Requests accepted and not yet completed (includes shard-queued and
  // running requests). The admission-control signal.
  std::int64_t backlog() const noexcept;

  // Blocks the calling (non-worker) thread until the backlog is zero.
  void quiesce();

  // Stops accepting: subsequent submits (and submitters blocked on
  // backpressure) return submit_status::shutdown. Idempotent; the
  // destructor calls it after quiescing.
  void shutdown();

  struct stats {
    std::uint64_t submitted = 0;   // submit() calls
    std::uint64_t accepted = 0;    // admitted into a shard ring
    std::uint64_t rejected = 0;    // reject policy drops
    std::uint64_t shed = 0;        // shed_oldest policy drops
    std::uint64_t completed = 0;   // request bodies finished
    std::int64_t backlog = 0;      // accepted − completed − shed
    std::int64_t backlog_peak = 0; // max backlog observed at admission
  };
  stats snapshot() const noexcept;

  // Cumulative distribution views (always on, ~2 ns per record).
  perf::histogram_snapshot sojourn_snapshot() const { return hist_sojourn_.snap(); }
  perf::histogram_snapshot queue_wait_snapshot() const {
    return hist_queue_wait_.snap();
  }

  const service_config& config() const noexcept { return cfg_; }
  int num_shards() const noexcept { return static_cast<int>(shards_.size()); }

 private:
  struct request;
  struct shard;

  submit_status admit(int shard_index);
  void dispatch(request* r);       // worker-side: wrap a request in a task
  void drain(int shard_index);     // drainer task body
  void arm_drainer(shard& s, int shard_index);
  void note_completed() noexcept;
  void register_perf_counters();
  void unregister_perf_counters();

  thread_manager& tm_;
  service_config cfg_;
  std::vector<std::unique_ptr<shard>> shards_;

  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_shard_{0};  // round-robin submit placement

  // Admission accounting. accepted/completed/shed are the backlog inputs;
  // each on its own line — accepted is bumped by clients, completed by
  // workers.
  alignas(cache_line_size) std::atomic<std::uint64_t> submitted_{0};
  alignas(cache_line_size) std::atomic<std::uint64_t> accepted_{0};
  alignas(cache_line_size) std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::int64_t> backlog_peak_{0};

  // Block-policy backpressure: submitters park here; completions that see
  // waiters notify. waiters_ is read with a seq_cst fence against the
  // completed_ bump (Dekker, same idiom as the manager's idle parking).
  alignas(cache_line_size) std::atomic<int> waiters_{0};
  std::mutex block_mutex_;
  std::condition_variable block_cv_;

  perf::log2_histogram hist_sojourn_;
  perf::log2_histogram hist_queue_wait_;
  bool counters_registered_ = false;
};

}  // namespace service
}  // namespace gran
