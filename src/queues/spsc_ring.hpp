// Bounded lock-free single-producer/single-consumer ring buffer.
//
// Used where exactly one thread produces and one consumes (e.g. per-worker
// deferred-wakeup lanes). Capacity is rounded up to a power of two; one slot
// is sacrificed to distinguish full from empty.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <optional>
#include <vector>

#include "util/assert.hpp"
#include "util/cacheline.hpp"

namespace gran {

template <typename T>
class spsc_ring {
 public:
  explicit spsc_ring(std::size_t capacity)
      : mask_(std::bit_ceil(capacity + 1) - 1), slots_(mask_ + 1) {
    GRAN_ASSERT(capacity >= 1);
  }

  spsc_ring(const spsc_ring&) = delete;
  spsc_ring& operator=(const spsc_ring&) = delete;

  // Producer side. Returns false when full.
  bool push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    slots_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  // Consumer side. Empty optional when no element is available.
  std::optional<T> pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T value = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return mask_; }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;
  alignas(cache_line_size) std::atomic<std::size_t> head_{0};
  alignas(cache_line_size) std::atomic<std::size_t> tail_{0};
};

}  // namespace gran
