// Bounded lock-free single-producer/single-consumer ring buffer.
//
// Used where exactly one thread produces and one consumes at any point in
// time (per-worker steal-request and task-delivery channels of the
// channel-steal policy, deferred-wakeup lanes). Capacity is rounded up to a
// power of two; one slot is sacrificed to distinguish full from empty.
//
// Storage is *uninitialized*: elements are placement-new constructed by
// push and destroyed by pop, so T needs neither a default constructor nor
// copy assignment — move-only payloads (std::unique_ptr, tasks) work.
//
// Ownership contract on a full ring: push returns false WITHOUT consuming
// the argument. A caller that retries (`while (!ring.push(std::move(v)))`)
// therefore still owns a valid `v` after every failed attempt — there is no
// double-move. On success the ring owns the element until pop moves it out;
// elements still queued when the ring is destroyed are drained (their
// destructors run, so RAII payloads release their resources). For non-RAII
// owning payloads (raw `task*`), the producer/consumer pair must drain the
// ring before destruction — the destructor can only destroy the pointer,
// not the pointee.
//
// The producer side may migrate between threads as long as successive
// producers are serialized by a happens-before chain (e.g. a token passed
// through another channel); the same holds for the consumer side. All
// cross-thread publication happens through the release/acquire pair on
// head_/tail_.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <new>
#include <optional>
#include <utility>

#include "util/assert.hpp"
#include "util/cacheline.hpp"

namespace gran {

template <typename T>
class spsc_ring {
 public:
  explicit spsc_ring(std::size_t capacity)
      : mask_(std::bit_ceil(capacity + 1) - 1),
        slots_(static_cast<T*>(::operator new[]((mask_ + 1) * sizeof(T),
                                                std::align_val_t{alignof(T)}))) {
    GRAN_ASSERT(capacity >= 1);
  }

  spsc_ring(const spsc_ring&) = delete;
  spsc_ring& operator=(const spsc_ring&) = delete;

  // Drains (destroys) any unconsumed elements, then frees the storage.
  // RAII payloads therefore never leak at shutdown; see the ownership
  // contract above for raw owning pointers.
  ~spsc_ring() {
    std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    while (tail != head) {
      slots_[tail].~T();
      tail = (tail + 1) & mask_;
    }
    ::operator delete[](static_cast<void*>(slots_), std::align_val_t{alignof(T)});
  }

  // Producer side. Returns false when full; the argument is NOT consumed on
  // failure (the caller still owns it and may retry or dispose of it).
  bool push(T&& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    ::new (static_cast<void*>(&slots_[head])) T(std::move(value));
    head_.store(next, std::memory_order_release);
    return true;
  }
  bool push(const T& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    ::new (static_cast<void*>(&slots_[head])) T(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  // Consumer side. Empty optional when no element is available.
  std::optional<T> pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T& slot = slots_[tail];
    std::optional<T> value{std::move(slot)};
    slot.~T();
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }

  // Approximate (racy by nature); exact when producer and consumer are
  // quiescent.
  std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  std::size_t capacity() const { return mask_; }

 private:
  const std::size_t mask_;
  T* const slots_;
  alignas(cache_line_size) std::atomic<std::size_t> head_{0};
  alignas(cache_line_size) std::atomic<std::size_t> tail_{0};
};

}  // namespace gran
