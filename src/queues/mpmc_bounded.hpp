// Bounded lock-free multi-producer/multi-consumer FIFO (Vyukov's
// sequence-numbered ring). Each slot carries a sequence counter that encodes
// whether it is ready for the next producer or consumer, avoiding ABA
// without any memory reclamation machinery.
//
// This is the lock-free fast path of the scheduler's task queues; overflow
// beyond the fixed capacity is handled by the unbounded concurrent_fifo.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <optional>
#include <vector>

#include "util/assert.hpp"
#include "util/cacheline.hpp"

namespace gran {

template <typename T>
class mpmc_bounded {
 public:
  explicit mpmc_bounded(std::size_t capacity)
      : mask_(std::bit_ceil(std::max<std::size_t>(capacity, 2)) - 1),
        slots_(mask_ + 1) {
    for (std::size_t i = 0; i <= mask_; ++i)
      slots_[i].sequence.store(i, std::memory_order_relaxed);
  }

  mpmc_bounded(const mpmc_bounded&) = delete;
  mpmc_bounded& operator=(const mpmc_bounded&) = delete;

  // Returns false when the ring is full.
  bool push(T value) {
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      slot& s = slots_[pos & mask_];
      const std::size_t seq = s.sequence.load(std::memory_order_acquire);
      const std::intptr_t diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    slot& s = slots_[pos & mask_];
    s.value = std::move(value);
    s.sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  // Empty optional when no element is available.
  std::optional<T> pop() {
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      slot& s = slots_[pos & mask_];
      const std::size_t seq = s.sequence.load(std::memory_order_acquire);
      const std::intptr_t diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    slot& s = slots_[pos & mask_];
    T value = std::move(s.value);
    s.sequence.store(pos + mask_ + 1, std::memory_order_release);
    return value;
  }

  // Approximate size (safe to call concurrently; may be stale).
  std::size_t size_approx() const {
    const std::size_t enq = enqueue_pos_.load(std::memory_order_relaxed);
    const std::size_t deq = dequeue_pos_.load(std::memory_order_relaxed);
    return enq >= deq ? enq - deq : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  struct slot {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  const std::size_t mask_;
  std::vector<slot> slots_;
  alignas(cache_line_size) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(cache_line_size) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace gran
