// Unbounded multi-producer/multi-consumer FIFO.
//
// Fast path is a lock-free Vyukov ring (mpmc_bounded); when the ring fills,
// producers spill into a mutex-protected overflow deque. Consumers drain the
// ring first and refill it from the overflow, preserving FIFO order between
// the two stages. Under the scheduler's normal operating point the overflow
// is empty and every operation is lock-free.
#pragma once

#include <deque>
#include <mutex>
#include <optional>

#include "queues/mpmc_bounded.hpp"

namespace gran {

template <typename T>
class concurrent_fifo {
 public:
  explicit concurrent_fifo(std::size_t ring_capacity = 1024) : ring_(ring_capacity) {}

  void push(T value) {
    // Once anything has spilled we must keep pushing to the overflow until a
    // consumer migrates it back, or FIFO order between stages would break.
    if (overflow_nonempty_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(overflow_mutex_);
      if (!overflow_.empty()) {
        overflow_.push_back(std::move(value));
        return;
      }
      // Overflow drained between the check and the lock; fall through.
    }
    if (!ring_.push(std::move(value))) {
      std::lock_guard<std::mutex> lock(overflow_mutex_);
      overflow_.push_back(std::move(value));
      overflow_nonempty_.store(true, std::memory_order_release);
    }
  }

  std::optional<T> pop() {
    if (auto v = ring_.pop()) return v;
    if (!overflow_nonempty_.load(std::memory_order_acquire)) return std::nullopt;
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    if (overflow_.empty()) return std::nullopt;
    T value = std::move(overflow_.front());
    overflow_.pop_front();
    // Migrate a batch back to the ring to restore the lock-free path.
    while (!overflow_.empty()) {
      if (!ring_.push(std::move(overflow_.front()))) break;
      overflow_.pop_front();
    }
    if (overflow_.empty()) overflow_nonempty_.store(false, std::memory_order_release);
    return value;
  }

  // Approximate; for scheduling heuristics and tests only.
  std::size_t size_approx() const {
    std::size_t n = ring_.size_approx();
    if (overflow_nonempty_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(overflow_mutex_);
      n += overflow_.size();
    }
    return n;
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  mpmc_bounded<T> ring_;
  mutable std::mutex overflow_mutex_;
  std::deque<T> overflow_;
  std::atomic<bool> overflow_nonempty_{false};
};

}  // namespace gran
