// Lock-free Chase–Lev work-stealing deque with dynamic circular-array growth.
//
// Chase & Lev, "Dynamic Circular Work-Stealing Deque" (SPAA 2005), with the
// C11 memory orderings of Lê, Pop, Cohen & Zappa Nardelli, "Correct and
// Efficient Work-Stealing for Weak Memory Models" (PPoPP 2013).
//
// One owner thread pushes and pops at the *bottom*; any number of thief
// threads steal from the *top*:
//   * push:  no CAS, one release store of `bottom` — a handful of ns;
//   * pop:   no CAS on the common path; a single seq_cst CAS only when
//            racing thieves for the last element;
//   * steal: one seq_cst CAS per successful (or contended) attempt.
//
// The ring grows geometrically when full, so a push never fails and no task
// is ever dropped. Retired rings are kept on a chain until the deque is
// destroyed: a thief may still hold a pointer to an old ring, and the chain
// (≤ 2× the largest ring, summed) is the simplest safe reclamation. See
// DESIGN.md §5 "Chase–Lev memory ordering" for the fence argument.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "util/assert.hpp"
#include "util/cacheline.hpp"

namespace gran {

template <typename T>
class chase_lev_deque {
  static_assert(std::is_trivially_copyable_v<T>,
                "slots are relaxed atomics; T must be trivially copyable");

 public:
  explicit chase_lev_deque(std::size_t initial_capacity = 256)
      : array_(ring::make(std::bit_ceil(initial_capacity < 2 ? 2 : initial_capacity),
                          nullptr)) {}

  chase_lev_deque(const chase_lev_deque&) = delete;
  chase_lev_deque& operator=(const chase_lev_deque&) = delete;

  ~chase_lev_deque() {
    ring* a = array_.load(std::memory_order_relaxed);
    while (a != nullptr) {
      ring* prev = a->retired;
      ring::destroy(a);
      a = prev;
    }
  }

  // Owner only. Never fails: grows the ring when full.
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    ring* a = array_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) a = grow(a, t, b);
    a->put(b, value);
    // Publish the slot before the new bottom so a thief that reads the
    // incremented bottom also sees the element.
    bottom_.store(b + 1, std::memory_order_release);
  }

  // Owner only. LIFO pop from the bottom.
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    ring* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    // The seq_cst fence orders the bottom store before the top load: either
    // this pop sees a concurrent thief's top increment, or the thief sees
    // the decremented bottom and aborts — never both taking the same slot.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T value = a->get(b);
    if (t == b) {
      // Last element: race thieves for it with one CAS.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      if (!won) return std::nullopt;
    }
    return value;
  }

  // Thieves (any thread). FIFO steal from the top. Empty optional when the
  // deque looks empty or the attempt lost a race (the caller treats both as
  // a probe miss and moves on to the next victim).
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    // Order the top load before the bottom load (see pop()'s fence).
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;
    // The acquire load of array_ pairs with grow()'s release store, so the
    // copied slots are visible before the new ring is used.
    ring* a = array_.load(std::memory_order_acquire);
    T value = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return std::nullopt;  // lost to the owner or another thief
    return value;
  }

  // Approximate: exact for the owner, racy-but-monotone hints for others.
  bool empty_approx() const {
    return bottom_.load(std::memory_order_relaxed) -
               top_.load(std::memory_order_relaxed) <=
           0;
  }
  std::size_t size_approx() const {
    const std::int64_t d = bottom_.load(std::memory_order_relaxed) -
                           top_.load(std::memory_order_relaxed);
    return d > 0 ? static_cast<std::size_t>(d) : 0;
  }
  std::size_t capacity() const {
    return array_.load(std::memory_order_relaxed)->capacity;
  }

 private:
  struct ring {
    std::size_t capacity;  // power of two
    std::size_t mask;
    ring* retired;  // previous (smaller) ring, freed with the deque
    std::atomic<T> slots[1];  // flexible tail, allocated with the header

    static ring* make(std::size_t capacity, ring* retired) {
      const std::size_t bytes =
          sizeof(ring) + (capacity - 1) * sizeof(std::atomic<T>);
      ring* r = static_cast<ring*>(::operator new(bytes));
      r->capacity = capacity;
      r->mask = capacity - 1;
      r->retired = retired;
      for (std::size_t i = 0; i < capacity; ++i)
        new (&r->slots[i]) std::atomic<T>();
      return r;
    }
    static void destroy(ring* r) { ::operator delete(r); }

    T get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) {
      slots[static_cast<std::size_t>(i) & mask].store(v,
                                                      std::memory_order_relaxed);
    }
  };

  // Owner only: doubles the ring, copying the live range [top, bottom).
  ring* grow(ring* a, std::int64_t t, std::int64_t b) {
    ring* bigger = ring::make(a->capacity * 2, a);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, a->get(i));
    array_.store(bigger, std::memory_order_release);
    return bigger;
  }

  alignas(cache_line_size) std::atomic<std::int64_t> top_{0};
  alignas(cache_line_size) std::atomic<std::int64_t> bottom_{0};
  alignas(cache_line_size) std::atomic<ring*> array_;
};

}  // namespace gran
