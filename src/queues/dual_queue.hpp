// The per-worker dual-queue of the HPX scheduler (paper §I-B).
//
// Every worker owns one *staged* queue (thread descriptions that have not
// yet been given a context — cheap to create and cheap to move across NUMA
// domains) and one *pending* queue (threads with a context, ready to run).
//
// The queue records the instrumentation the paper's §II-A "Thread Pending
// Queue Metrics" relies on: every scheduler look-up of a queue counts as an
// access, every failed look-up as a miss. These feed the
// /threads/count/pending-accesses and -misses performance counters
// (Figs. 9, 10), and their staged equivalents.
#pragma once

#include <atomic>
#include <cstdint>

#include "queues/concurrent_fifo.hpp"
#include "util/cacheline.hpp"

namespace gran {

struct queue_access_counts {
  std::uint64_t pending_accesses = 0;
  std::uint64_t pending_misses = 0;
  std::uint64_t staged_accesses = 0;
  std::uint64_t staged_misses = 0;
};

template <typename Staged, typename Pending>
class dual_queue {
 public:
  explicit dual_queue(std::size_t ring_capacity = 1024)
      : staged_(ring_capacity), pending_(ring_capacity) {}

  // --- producer side -------------------------------------------------
  void push_staged(Staged item) { staged_.push(std::move(item)); }
  void push_pending(Pending item) { pending_.push(std::move(item)); }

  // --- consumer side (instrumented) ----------------------------------
  std::optional<Pending> pop_pending() {
    counts_.pending_accesses.fetch_add(1, std::memory_order_relaxed);
    auto v = pending_.pop();
    if (!v) counts_.pending_misses.fetch_add(1, std::memory_order_relaxed);
    return v;
  }

  std::optional<Staged> pop_staged() {
    counts_.staged_accesses.fetch_add(1, std::memory_order_relaxed);
    auto v = staged_.pop();
    if (!v) counts_.staged_misses.fetch_add(1, std::memory_order_relaxed);
    return v;
  }

  // --- introspection ---------------------------------------------------
  std::size_t pending_size_approx() const { return pending_.size_approx(); }
  std::size_t staged_size_approx() const { return staged_.size_approx(); }
  bool empty_approx() const {
    return pending_.empty_approx() && staged_.empty_approx();
  }

  queue_access_counts counts() const {
    return {counts_.pending_accesses.load(std::memory_order_relaxed),
            counts_.pending_misses.load(std::memory_order_relaxed),
            counts_.staged_accesses.load(std::memory_order_relaxed),
            counts_.staged_misses.load(std::memory_order_relaxed)};
  }

  void reset_counts() {
    counts_.pending_accesses.store(0, std::memory_order_relaxed);
    counts_.pending_misses.store(0, std::memory_order_relaxed);
    counts_.staged_accesses.store(0, std::memory_order_relaxed);
    counts_.staged_misses.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(cache_line_size) counter_block {
    std::atomic<std::uint64_t> pending_accesses{0};
    std::atomic<std::uint64_t> pending_misses{0};
    std::atomic<std::uint64_t> staged_accesses{0};
    std::atomic<std::uint64_t> staged_misses{0};
  };

  concurrent_fifo<Staged> staged_;
  concurrent_fifo<Pending> pending_;
  counter_block counts_;
};

}  // namespace gran
