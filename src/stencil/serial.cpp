#include "stencil/serial.hpp"

namespace gran::stencil {

std::vector<double> initial_state(const params& p) {
  std::vector<double> u(p.total_points);
  for (std::size_t i = 0; i < u.size(); ++i) u[i] = static_cast<double>(i);
  return u;
}

void step_serial(const params& p, const std::vector<double>& current,
                 std::vector<double>& next) {
  const std::size_t n = current.size();
  GRAN_ASSERT(next.size() == n && n >= 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double left = current[i == 0 ? n - 1 : i - 1];
    const double right = current[i == n - 1 ? 0 : i + 1];
    next[i] = p.heat(left, current[i], right);
  }
}

std::vector<double> run_serial(const params& p) {
  std::vector<double> current = initial_state(p);
  std::vector<double> next(current.size());
  for (std::size_t t = 0; t < p.time_steps; ++t) {
    step_serial(p, current, next);
    current.swap(next);
  }
  return current;
}

}  // namespace gran::stencil
