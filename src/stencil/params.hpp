// Parameters of the 1-D heat-diffusion benchmark (HPX-Stencil /
// 1d_stencil_4, paper §I-C).
//
// The ring of `total_points` grid points is split into partitions of
// `partition_size` points; each partition's update for one time step is one
// task. Varying partition_size at fixed total_points is how the paper
// controls task granularity: small partitions => many fine-grained tasks,
// large partitions => few coarse-grained tasks.
#pragma once

#include <cstddef>

#include "util/assert.hpp"

namespace gran::stencil {

struct params {
  std::size_t total_points = 1'000'000;  // grid points in the ring
  std::size_t partition_size = 10'000;   // grid points per partition
  std::size_t time_steps = 50;           // diffusion steps to compute

  // Bounds how many time steps of dataflow nodes may exist concurrently
  // during the futurized run (0 = unbounded, like HPX's 1d_stencil_4).
  // At paper scale with fine partitions the full tree is tens of millions
  // of nodes; a window of a few steps caps memory at O(window · partitions)
  // while leaving enough lookahead for the wavefront to pipeline.
  std::size_t max_steps_in_flight = 0;

  // Physics constants (HPX's 1d_stencil defaults).
  double k = 0.5;   // heat-transfer coefficient
  double dt = 1.0;  // time-step width
  double dx = 1.0;  // grid spacing

  std::size_t num_partitions() const {
    GRAN_ASSERT_MSG(partition_size >= 1 && total_points >= partition_size,
                    "partition size must divide a positive grid");
    return total_points / partition_size;
  }

  // Clamps partition_size so it divides total_points exactly (the paper
  // adjusts the partition count to keep the grid size fixed).
  void normalize() {
    if (partition_size < 1) partition_size = 1;
    if (partition_size > total_points) partition_size = total_points;
    while (total_points % partition_size != 0) --partition_size;
  }

  // Single-point update (identical in the serial reference, the futurized
  // runtime version, and as the simulator's per-point cost anchor):
  //   u'_m = u_m + k*dt/dx^2 * (u_l - 2 u_m + u_r)
  double heat(double left, double middle, double right) const {
    return middle + (k * dt / (dx * dx)) * (left - 2.0 * middle + right);
  }

  // Number of tasks the futurized run creates: one per partition per step.
  std::size_t num_tasks() const { return num_partitions() * time_steps; }
};

}  // namespace gran::stencil
