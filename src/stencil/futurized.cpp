#include "stencil/futurized.hpp"

#include "graph/futurize.hpp"
#include "graph/spec.hpp"
#include "util/timer.hpp"

namespace gran::stencil {

std::vector<double> partition_step(const params& p, const std::vector<double>& left,
                                   const std::vector<double>& mid,
                                   const std::vector<double>& right) {
  const std::size_t n = mid.size();
  GRAN_ASSERT(n >= 1 && !left.empty() && !right.empty());
  std::vector<double> next(n);
  if (n == 1) {
    next[0] = p.heat(left.back(), mid[0], right.front());
    return next;
  }
  next[0] = p.heat(left.back(), mid[0], mid[1]);
  for (std::size_t i = 1; i + 1 < n; ++i) next[i] = p.heat(mid[i - 1], mid[i], mid[i + 1]);
  next[n - 1] = p.heat(mid[n - 2], mid[n - 1], right.front());
  return next;
}

run_result run_futurized(thread_manager& tm, const params& p) {
  const std::size_t np = p.num_partitions();
  GRAN_ASSERT_MSG(p.total_points % p.partition_size == 0,
                  "partition size must divide the grid (call params::normalize)");

  using partition_future = future<partition_data>;

  // The heat ring is the `nearest` pattern with radius 1 (paper Fig. 2):
  // one task per partition per step, consuming the three closest partitions
  // of the previous step. The initial partitions enter as a seed row of
  // ready futures (not tasks), so steps 1..time_steps of the spec are the
  // p.time_steps computed rows.
  graph::graph_spec g;
  g.kind = graph::pattern::nearest;
  g.width = static_cast<std::uint32_t>(np);
  g.steps = static_cast<std::uint32_t>(p.time_steps + 1);
  g.radius = 1;

  // Initial partitions: u_i = i, split into np blocks.
  std::vector<partition_future> seed;
  seed.reserve(np);
  for (std::size_t b = 0; b < np; ++b) {
    auto block = std::make_shared<std::vector<double>>(p.partition_size);
    for (std::size_t i = 0; i < p.partition_size; ++i)
      (*block)[i] = static_cast<double>(b * p.partition_size + i);
    seed.push_back(make_ready_future<partition_data>(partition_data(std::move(block))));
  }

  stopwatch clock;

  // Inputs arrive in the spec's ascending-point order; recover the ring
  // roles (left / mid / right neighbour of partition b) positionally.
  auto dag = graph::futurize_dag_seeded<partition_data>(
      tm, g,
      [&p, np](std::uint32_t /*t*/, std::uint32_t b,
               const std::vector<partition_future>& in) {
        const std::vector<double>*left, *mid, *right;
        if (np == 1) {
          left = mid = right = in[0].get().get();
        } else if (np == 2) {
          mid = in[b].get().get();
          left = right = in[1 - b].get().get();
        } else if (b == 0) {  // deps sorted: {0, 1, np-1}
          mid = in[0].get().get();
          right = in[1].get().get();
          left = in[2].get().get();
        } else if (b == np - 1) {  // deps sorted: {0, np-2, np-1}
          right = in[0].get().get();
          left = in[1].get().get();
          mid = in[2].get().get();
        } else {  // deps sorted: {b-1, b, b+1}
          left = in[0].get().get();
          mid = in[1].get().get();
          right = in[2].get().get();
        }
        return partition_data(std::make_shared<const std::vector<double>>(
            partition_step(p, *left, *mid, *right)));
      },
      std::move(seed), p.max_steps_in_flight);

  run_result result;
  result.elapsed_s = clock.elapsed_s();

  result.state.reserve(p.total_points);
  for (auto& f : dag.last_row) {
    const auto& block = *f.get();
    result.state.insert(result.state.end(), block.begin(), block.end());
  }
  return result;
}

}  // namespace gran::stencil
