#include "stencil/futurized.hpp"

#include "util/timer.hpp"

namespace gran::stencil {

std::vector<double> partition_step(const params& p, const std::vector<double>& left,
                                   const std::vector<double>& mid,
                                   const std::vector<double>& right) {
  const std::size_t n = mid.size();
  GRAN_ASSERT(n >= 1 && !left.empty() && !right.empty());
  std::vector<double> next(n);
  if (n == 1) {
    next[0] = p.heat(left.back(), mid[0], right.front());
    return next;
  }
  next[0] = p.heat(left.back(), mid[0], mid[1]);
  for (std::size_t i = 1; i + 1 < n; ++i) next[i] = p.heat(mid[i - 1], mid[i], mid[i + 1]);
  next[n - 1] = p.heat(mid[n - 2], mid[n - 1], right.front());
  return next;
}

run_result run_futurized(thread_manager& tm, const params& p) {
  const std::size_t np = p.num_partitions();
  GRAN_ASSERT_MSG(p.total_points % p.partition_size == 0,
                  "partition size must divide the grid (call params::normalize)");

  using partition_future = future<partition_data>;

  // Initial partitions: u_i = i, split into np blocks.
  std::vector<partition_future> current;
  current.reserve(np);
  for (std::size_t b = 0; b < np; ++b) {
    auto block = std::make_shared<std::vector<double>>(p.partition_size);
    for (std::size_t i = 0; i < p.partition_size; ++i)
      (*block)[i] = static_cast<double>(b * p.partition_size + i);
    current.push_back(make_ready_future<partition_data>(partition_data(std::move(block))));
  }

  stopwatch clock;

  // Build the dependency tree: one dataflow task per partition per step,
  // consuming the three closest partitions of the previous step (Fig. 2).
  // With a construction window, rows older than the window are awaited
  // before building further — bounding live dataflow nodes without adding
  // any global barrier to the *execution* (the wavefront keeps pipelining
  // within the window).
  const std::size_t window = p.max_steps_in_flight;
  std::vector<std::vector<partition_future>> history;  // rows awaiting retirement
  std::vector<partition_future> next(np);
  for (std::size_t t = 0; t < p.time_steps; ++t) {
    if (window > 0) {
      history.push_back(current);
      if (history.size() > window) {
        when_all(history.front()).wait();
        history.erase(history.begin());
      }
    }
    for (std::size_t b = 0; b < np; ++b) {
      const std::size_t l = b == 0 ? np - 1 : b - 1;
      const std::size_t r = b == np - 1 ? 0 : b + 1;
      next[b] = dataflow_on(
          tm, task_priority::normal,
          [&p](partition_future& left, partition_future& mid, partition_future& right) {
            return partition_data(std::make_shared<const std::vector<double>>(
                partition_step(p, *left.get(), *mid.get(), *right.get())));
          },
          current[l], current[b], current[r]);
    }
    current.swap(next);
  }

  // Wait for the whole tree to complete.
  when_all(current).wait();
  run_result result;
  result.elapsed_s = clock.elapsed_s();

  result.state.reserve(p.total_points);
  for (auto& f : current) {
    const auto& block = *f.get();
    result.state.insert(result.state.end(), block.begin(), block.end());
  }
  return result;
}

}  // namespace gran::stencil
