// Futurized heat ring on the gran runtime — the reproduction of
// HPX-Stencil (1d_stencil_4).
//
// Each partition is represented by a shared future of an immutable data
// block. For every time step, every partition's next value is produced by
// dataflow() over the three closest partitions of the previous step — the
// dependency graph of paper Fig. 2, generated at runtime as an execution
// tree. No global barriers exist anywhere: a partition may run several
// steps ahead of a distant one as long as its own neighbours are done.
#pragma once

#include <memory>
#include <vector>

#include "async/gran.hpp"
#include "stencil/params.hpp"

namespace gran::stencil {

// Immutable partition payload; shared futures hand out references, so the
// block itself is never copied between tasks.
using partition_data = std::shared_ptr<const std::vector<double>>;

struct run_result {
  std::vector<double> state;   // final grid (concatenated partitions)
  double elapsed_s = 0.0;      // wall time of the futurized section
};

// Runs p.time_steps of the futurized stencil on `tm`. The measured section
// covers task creation through completion of every partition (matching the
// paper's execution-time metric).
run_result run_futurized(thread_manager& tm, const params& p);

// One partition update: produces the next values of the `mid` partition
// from its ring neighbours (exposed for unit tests).
std::vector<double> partition_step(const params& p, const std::vector<double>& left,
                                   const std::vector<double>& mid,
                                   const std::vector<double>& right);

}  // namespace gran::stencil
