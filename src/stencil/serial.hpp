// Serial reference implementation of the heat ring — the correctness oracle
// for the futurized version (bit-identical results) and the single-stream
// cost anchor for simulator calibration.
#pragma once

#include <vector>

#include "stencil/params.hpp"

namespace gran::stencil {

// Initial condition: u_i = i (HPX 1d_stencil's choice — any non-constant
// profile works; this one makes indexing errors visible).
std::vector<double> initial_state(const params& p);

// Advances `state` by p.time_steps steps of the 3-point kernel on a ring.
std::vector<double> run_serial(const params& p);

// One step over a full ring (exposed for tests).
void step_serial(const params& p, const std::vector<double>& current,
                 std::vector<double>& next);

}  // namespace gran::stencil
