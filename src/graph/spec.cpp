#include "graph/spec.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace gran::graph {

namespace {

const char* const k_pattern_names[num_patterns] = {
    "trivial", "serial_chain", "stencil1d", "fft",
    "binary_tree", "nearest", "spread", "random",
};

// floor(log2(w)) for w >= 1.
std::uint32_t log2_floor(std::uint32_t w) noexcept {
  std::uint32_t l = 0;
  while (w >>= 1) ++l;
  return l;
}

void push_unique_sorted(std::vector<std::uint32_t>& out, std::uint32_t v) {
  const auto it = std::lower_bound(out.begin(), out.end(), v);
  if (it == out.end() || *it != v) out.insert(it, v);
}

}  // namespace

const char* pattern_name(pattern p) noexcept {
  return k_pattern_names[static_cast<int>(p)];
}

pattern pattern_from_name(const std::string& name) {
  for (int i = 0; i < num_patterns; ++i)
    if (name == k_pattern_names[i]) return static_cast<pattern>(i);
  throw std::invalid_argument("unknown graph pattern: " + name);
}

void graph_spec::dependencies(std::uint32_t step, std::uint32_t point,
                              std::vector<std::uint32_t>& out) const {
  out.clear();
  GRAN_ASSERT(point < width && step < steps);
  if (step == 0) return;  // roots: created directly, no inputs

  switch (kind) {
    case pattern::trivial:
      return;

    case pattern::serial_chain:
      out.push_back(point);
      return;

    case pattern::stencil1d: {
      // Clipped window [point-radius, point+radius] ∩ [0, width).
      const std::uint32_t lo = point > radius ? point - radius : 0;
      const std::uint32_t hi = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(point) + radius, width - 1);
      for (std::uint32_t q = lo; q <= hi; ++q) out.push_back(q);
      return;
    }

    case pattern::fft: {
      // Butterfly exchange at distance 2^((step-1) mod log2 W); width 1
      // degenerates to a serial chain.
      const std::uint32_t levels = std::max<std::uint32_t>(1, log2_floor(width));
      const std::uint32_t d = 1u << ((step - 1) % levels);
      if (point >= d) out.push_back(point - d);
      push_unique_sorted(out, point);
      if (static_cast<std::uint64_t>(point) + d < width)
        out.push_back(point + d);
      return;
    }

    case pattern::binary_tree: {
      // Reduction fold on a fixed-width grid: consume children 2p, 2p+1
      // while they exist; points past the fold carry their own column.
      const std::uint64_t c0 = 2ull * point;
      if (c0 < width) {
        out.push_back(static_cast<std::uint32_t>(c0));
        if (c0 + 1 < width) out.push_back(static_cast<std::uint32_t>(c0 + 1));
      } else {
        out.push_back(point);
      }
      return;
    }

    case pattern::nearest: {
      // Periodic ring of the 2r+1 closest points (this is the heat-ring
      // dependence of stencil::run_futurized at radius 1): offsets -r..+r
      // mod width, deduplicated when the window wraps onto itself.
      if (2ull * radius + 1 >= width) {  // window covers the whole row
        for (std::uint32_t q = 0; q < width; ++q) out.push_back(q);
        return;
      }
      const std::uint32_t r = radius;
      for (std::int64_t off = -static_cast<std::int64_t>(r);
           off <= static_cast<std::int64_t>(r); ++off) {
        const std::uint32_t q = static_cast<std::uint32_t>(
            ((static_cast<std::int64_t>(point) + off) % width + width) % width);
        push_unique_sorted(out, q);
      }
      return;
    }

    case pattern::spread: {
      // K = max(1, radius) dependencies fanned evenly across the row, the
      // whole comb shifting by one point per step (Task Bench "spread").
      const std::uint32_t k_deps = std::min<std::uint32_t>(
          std::max<std::uint32_t>(1, radius), width);
      for (std::uint32_t j = 0; j < k_deps; ++j) {
        const std::uint64_t q =
            (static_cast<std::uint64_t>(point) + step +
             static_cast<std::uint64_t>(j) * width / k_deps) %
            width;
        push_unique_sorted(out, static_cast<std::uint32_t>(q));
      }
      return;
    }

    case pattern::random: {
      // Each candidate edge inside the periodic window of `radius` around
      // the point is present with probability `fraction`, decided by a
      // stateless hash of (seed, step, point, candidate) — O(window) to
      // query, identical for every executor, reproducible per seed. Tasks
      // whose window draws no edge become mid-graph roots (valid: they are
      // simply created by the main thread like step-0 tasks).
      const std::uint32_t r = std::min(radius, width - 1);
      for (std::int64_t off = -static_cast<std::int64_t>(r);
           off <= static_cast<std::int64_t>(r); ++off) {
        const std::uint32_t q = static_cast<std::uint32_t>(
            ((static_cast<std::int64_t>(point) + off) % width + width) % width);
        const std::uint64_t h = mix64_combine(
            mix64_combine(seed, step), mix64_combine(point, q));
        if (mix64_to_unit(mix64(h)) < fraction) push_unique_sorted(out, q);
      }
      return;
    }
  }
  GRAN_ASSERT_MSG(false, "unhandled graph pattern");
}

std::uint32_t graph_spec::max_fanin() const noexcept {
  switch (kind) {
    case pattern::trivial: return 0;
    case pattern::serial_chain: return 1;
    case pattern::stencil1d:
    case pattern::nearest:
    case pattern::random: return std::min<std::uint64_t>(2ull * radius + 1, width);
    case pattern::fft: return 3;
    case pattern::binary_tree: return 2;
    case pattern::spread: return std::min(std::max<std::uint32_t>(1, radius), width);
  }
  return 0;
}

std::uint64_t graph_spec::total_edges() const {
  std::uint64_t edges = 0;
  std::vector<std::uint32_t> deps;
  deps.reserve(max_fanin());
  for (std::uint32_t t = 1; t < steps; ++t)
    for (std::uint32_t p = 0; p < width; ++p) {
      dependencies(t, p, deps);
      edges += deps.size();
    }
  return edges;
}

std::string graph_spec::validate() const {
  if (width < 1) return "width must be >= 1";
  if (steps < 1) return "steps must be >= 1";
  if (fraction < 0.0 || fraction > 1.0) return "fraction must be in [0, 1]";

  std::vector<std::uint32_t> deps;
  deps.reserve(max_fanin());
  const auto at = [](std::uint32_t t, std::uint32_t p) {
    return "task (" + std::to_string(t) + ", " + std::to_string(p) + ")";
  };
  for (std::uint32_t t = 0; t < steps; ++t)
    for (std::uint32_t p = 0; p < width; ++p) {
      dependencies(t, p, deps);
      if (t == 0 && !deps.empty())
        return at(t, p) + ": step-0 tasks must have no dependencies";
      if (deps.size() > max_fanin())
        return at(t, p) + ": fanin exceeds max_fanin()";
      for (std::size_t i = 0; i < deps.size(); ++i) {
        if (deps[i] >= width)
          return at(t, p) + ": dependence on out-of-range point " +
                 std::to_string(deps[i]);
        if (i > 0 && deps[i] <= deps[i - 1])
          return at(t, p) + ": dependence set not strictly ascending";
      }
    }
  return {};
}

std::string graph_spec::describe() const {
  std::string s = pattern_name(kind);
  s += "(w=" + std::to_string(width) + ",s=" + std::to_string(steps);
  if (kind == pattern::stencil1d || kind == pattern::nearest ||
      kind == pattern::spread || kind == pattern::random)
    s += ",r=" + std::to_string(radius);
  if (kind == pattern::random) {
    s += ",f=" + std::to_string(fraction);
    s += ",seed=" + std::to_string(seed);
  }
  s += ")";
  return s;
}

}  // namespace gran::graph
