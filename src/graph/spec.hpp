// Parameterized task-graph workloads (Task-Bench-style).
//
// A graph_spec describes a family of dependence patterns over a fixed
// (width × steps) grid of tasks: task (step, point) may depend only on
// tasks of step-1, and the dependence set of any task is computable in
// O(fanin) without materializing the graph — exactly Task Bench's
// "parameterized task graph" idea ("Task Bench: A Parameterized Benchmark
// for Evaluating Parallel Runtime Performance"). One spec drives both the
// native futurized executor (graph/executor.hpp) and the discrete-event
// simulator (sim/graph_sim.hpp), so every pattern can be characterized
// with the paper's Eq. 1–6 methodology on the real runtime and on all four
// modeled platforms.
//
// The 1-D heat stencil the paper measures is the `nearest` pattern with
// radius 1 (periodic 3-point ring); the paper's "micro benchmarks" of
// independent tasks are `trivial`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gran::graph {

// Dependence patterns. Names follow Task Bench terminology where one
// exists (see docs/WORKLOADS.md for the full catalog and mapping).
enum class pattern : int {
  trivial,       // no edges: width independent tasks per step
  serial_chain,  // (t,p) <- (t-1,p): width independent chains
  stencil1d,     // (t,p) <- (t-1, p-r .. p+r), clipped at the boundaries
  fft,           // butterfly: (t,p) <- (t-1, {p, p±2^((t-1) mod log2 W)})
  binary_tree,   // reduction fold: (t,p) <- (t-1, {2p, 2p+1}), else carry self
  nearest,       // periodic ring of the 2r+1 closest points (the heat ring)
  spread,        // K deps fanned across the row, shifting by one each step
  random,        // each in-window edge present with probability `fraction`
};

inline constexpr pattern all_patterns[] = {
    pattern::trivial, pattern::serial_chain, pattern::stencil1d, pattern::fft,
    pattern::binary_tree, pattern::nearest,  pattern::spread,    pattern::random,
};
inline constexpr int num_patterns = 8;

// "stencil1d" <-> pattern::stencil1d etc. pattern_from_name throws
// std::invalid_argument on unknown names.
const char* pattern_name(pattern p) noexcept;
pattern pattern_from_name(const std::string& name);

struct graph_spec {
  pattern kind = pattern::stencil1d;
  std::uint32_t width = 64;   // tasks per step (points)
  std::uint32_t steps = 16;   // time steps (>= 1); total tasks = width*steps
  std::uint32_t radius = 1;   // stencil1d/nearest window; spread fan count
  double fraction = 0.25;     // random: per-candidate edge probability
  std::uint64_t seed = 1;     // random: structure seed (same seed = same DAG)

  // Appends the dependence set of task (step, point) to `out` (cleared
  // first): the points of step-1 this task consumes, in ascending point
  // order, without duplicates. Step 0 never has dependencies. O(fanin);
  // deterministic for a fixed spec.
  void dependencies(std::uint32_t step, std::uint32_t point,
                    std::vector<std::uint32_t>& out) const;

  // Upper bound on any task's fanin (scratch-buffer sizing).
  std::uint32_t max_fanin() const noexcept;

  std::uint64_t total_tasks() const noexcept {
    return static_cast<std::uint64_t>(width) * steps;
  }

  // Total dependence-edge count, by walking every task's set: O(V + E).
  std::uint64_t total_edges() const;

  // Validation pass: walks the whole graph and checks structural invariants
  // (positive dimensions, fraction in [0,1], every dependence inside
  // [0, width), ascending and duplicate-free — which together rule out
  // self and forward edges, since dependencies only ever name step-1).
  // Returns an empty string when the spec is valid, else a description of
  // the first violation.
  std::string validate() const;

  // One-line human-readable description ("random(w=64,s=16,r=1,f=0.25,seed=1)").
  std::string describe() const;
};

}  // namespace gran::graph
