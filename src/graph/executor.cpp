#include "graph/executor.hpp"

#include "graph/futurize.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace gran::graph {

run_stats run_graph(thread_manager& tm, const graph_spec& g,
                    const kernel_spec& k, std::size_t window) {
  GRAN_ASSERT_MSG(g.validate().empty(), "invalid graph spec");

  // Force calibration outside the measured section.
  (void)calibrated_rates();

  // Memory-bound kernels default to NUMA-block placement: task (t, p)
  // streams over a per-point buffer, so it belongs on the domain that owns
  // block p. Compute-bound kernels keep the spawn-local default (their state
  // is whatever the inputs left in cache).
  const placement place = k.kind == kernel_kind::memory_stream
                              ? placement::numa_block
                              : placement::spawn_local;

  stopwatch clock;
  auto dag = futurize_dag<std::uint64_t>(
      tm, g,
      [&k](std::uint32_t t, std::uint32_t p,
           const std::vector<future<std::uint64_t>>& in) {
        std::uint64_t acc = mix64_combine(t, p);
        for (const auto& f : in) acc = mix64_combine(acc, f.get());
        return mix64_combine(acc, run_kernel(k, t, p));
      },
      window, task_priority::normal, place);

  run_stats stats;
  stats.elapsed_s = clock.elapsed_s();
  stats.tasks = dag.tasks;
  stats.edges = dag.edges;
  for (auto& f : dag.last_row) stats.checksum = mix64_combine(stats.checksum, f.get());
  return stats;
}

}  // namespace gran::graph
