#include "graph/executor.hpp"

#include <atomic>

#include "algo/splittable.hpp"
#include "core/split_controller.hpp"
#include "graph/futurize.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace gran::graph {

run_stats run_graph(thread_manager& tm, const graph_spec& g,
                    const kernel_spec& k, std::size_t window) {
  GRAN_ASSERT_MSG(g.validate().empty(), "invalid graph spec");

  // Force calibration outside the measured section.
  (void)calibrated_rates();

  // Memory-bound kernels default to NUMA-block placement: task (t, p)
  // streams over a per-point buffer, so it belongs on the domain that owns
  // block p. Compute-bound kernels keep the spawn-local default (their state
  // is whatever the inputs left in cache).
  const placement place = k.kind == kernel_kind::memory_stream
                              ? placement::numa_block
                              : placement::spawn_local;

  // Splittable kernels (split_units > 1) share one controller across every
  // node of the run: the node's task executes its units inline and gives
  // away trailing units only when the controller reports demand. The
  // additive unit checksum makes the node's value independent of how (or
  // whether) it was split, so split and unsplit runs stay bit-identical.
  core::split_controller ctl;

  stopwatch clock;
  auto dag = futurize_dag<std::uint64_t>(
      tm, g,
      [&k, &ctl, &tm](std::uint32_t t, std::uint32_t p,
                      const std::vector<future<std::uint64_t>>& in) {
        std::uint64_t acc = mix64_combine(t, p);
        for (const auto& f : in) acc = mix64_combine(acc, f.get());
        std::uint64_t kbits;
        if (k.split_units > 1) {
          std::atomic<std::uint64_t> sum{0};
          algo::splittable_run_inline(
              tm, ctl, 0, k.split_units, [&](std::size_t u) {
                sum.fetch_add(
                    run_kernel_units(k, t, p, static_cast<std::uint32_t>(u),
                                     static_cast<std::uint32_t>(u + 1)),
                    std::memory_order_relaxed);
              });
          kbits = sum.load(std::memory_order_relaxed);
        } else {
          kbits = run_kernel(k, t, p);
        }
        return mix64_combine(acc, kbits);
      },
      window, task_priority::normal, place);

  run_stats stats;
  stats.elapsed_s = clock.elapsed_s();
  stats.tasks = dag.tasks;
  stats.edges = dag.edges;
  for (auto& f : dag.last_row) stats.checksum = mix64_combine(stats.checksum, f.get());
  return stats;
}

}  // namespace gran::graph
