// Native execution of a graph workload: futurize the DAG, run the kernel
// in every task, and report what actually executed.
#pragma once

#include <cstdint>

#include "graph/kernels.hpp"
#include "graph/spec.hpp"

namespace gran {
class thread_manager;
}

namespace gran::graph {

struct run_stats {
  double elapsed_s = 0.0;     // construction through completion of all tasks
  std::uint64_t tasks = 0;    // dataflow nodes constructed (== spec tasks)
  std::uint64_t edges = 0;    // dependence inputs wired (== spec edges)
  std::uint64_t checksum = 0; // combined kernel results (defeats DCE)
};

// Runs `g` with kernel `k` on `tm`; every task executes run_kernel and
// folds its inputs' checksums (so a dependence violation or lost task
// changes the result). `window` bounds live dataflow rows as in
// futurize_dag. Asserts that the spec validates.
run_stats run_graph(thread_manager& tm, const graph_spec& g,
                    const kernel_spec& k, std::size_t window = 0);

}  // namespace gran::graph
