// Futurizes a parameterized task graph on the real runtime.
//
// One dataflow() node is constructed per task, consuming the futures of
// its step-1 dependence set — the generalization of the pattern
// stencil::run_futurized uses for the heat ring (which now calls this with
// the `nearest` spec and a partition payload). The main thread builds the
// tree serially, step-major, while workers already execute it; an optional
// construction window bounds live nodes exactly like
// stencil::params::max_steps_in_flight.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "async/dataflow.hpp"
#include "async/when_all.hpp"
#include "graph/spec.hpp"
#include "perf/trace.hpp"

namespace gran::graph {

// Tags the currently running task with its DAG coordinate so the trace
// analyzer can map task ids back to graph nodes (perf/analysis.hpp). Called
// from inside the task body — one relaxed load + branch when tracing is off.
inline void trace_graph_node(std::uint32_t step, std::uint32_t point) noexcept {
  if (!perf::tracer::enabled()) return;
  thread_manager* tm = thread_manager::current();
  const int w = thread_manager::current_worker();
  const task* t = thread_manager::current_task();
  if (tm == nullptr || w < 0 || t == nullptr) return;
  perf::trace_emit(tm->worker(w).trace, perf::trace_kind::graph_node, w, t->id(),
                   perf::pack_graph_node(step, point));
}

template <typename T>
struct futurized_dag {
  std::vector<future<T>> last_row;  // ready futures of the final step
  std::uint64_t tasks = 0;          // dataflow nodes constructed
  std::uint64_t edges = 0;          // input futures wired
};

// Where graph tasks are queued when they fire:
//   spawn_local — wherever the last input completed (the dataflow default;
//     best for cache-hot compute kernels);
//   numa_block  — point p of a width-W row goes to
//     thread_manager::home_worker_for_block(p, W), so a task touching the
//     p-th block of node-interleaved data runs on a worker of the node that
//     owns the block (best for memory-bound kernels).
enum class placement { spawn_local, numa_block };

namespace detail {

// Shared construction loop: builds rows `first_step` .. steps-1 over an
// existing `prev` row (empty when first_step == 0 — roots take no inputs).
template <typename T, typename Fn>
futurized_dag<T> futurize_rows(thread_manager& tm, const graph_spec& g,
                               std::shared_ptr<Fn> body,
                               std::vector<future<T>> prev,
                               std::uint32_t first_step, std::size_t window,
                               task_priority priority, placement place) {
  futurized_dag<T> result;
  std::vector<std::vector<future<T>>> retired;  // rows awaiting the window
  std::vector<std::uint32_t> deps;
  deps.reserve(g.max_fanin());

  for (std::uint32_t t = first_step; t < g.steps; ++t) {
    std::vector<future<T>> cur(g.width);
    for (std::uint32_t p = 0; p < g.width; ++p) {
      g.dependencies(t, p, deps);
      std::vector<future<T>> inputs;
      inputs.reserve(deps.size());
      for (const std::uint32_t d : deps) inputs.push_back(prev[d]);
      result.edges += deps.size();
      ++result.tasks;
      const int hint = place == placement::numa_block
                           ? tm.home_worker_for_block(p, g.width)
                           : -1;
      cur[p] = dataflow_all_on(
          tm, priority,
          [body, t, p](const std::vector<future<T>>& in) {
            trace_graph_node(t, p);
            return (*body)(t, p, in);
          },
          std::move(inputs), hint);
    }
    if (!prev.empty()) {
      retired.push_back(std::move(prev));
      if (window > 0 && retired.size() > window) {
        when_all(retired.front()).wait();
        retired.erase(retired.begin());
      }
    }
    prev = std::move(cur);
  }

  // Wait for *every* task: rows of a disconnected pattern (trivial, some
  // random roots) may outlive the final row's completion.
  for (auto& row : retired) when_all(row).wait();
  when_all(prev).wait();
  result.last_row = std::move(prev);
  return result;
}

}  // namespace detail

// Builds and executes graph `g` on `tm`. `fn` is the task body:
//
//   T fn(std::uint32_t step, std::uint32_t point,
//        const std::vector<future<T>>& inputs)
//
// where `inputs` are the ready futures of dependencies(step, point) in the
// spec's (ascending) order — empty for roots. Every task has completed
// when this returns; the spec should be validate()d beforehand.
//
// `window` > 0 bounds live dataflow rows: construction of row t waits for
// row t-window-1 to finish (no barrier in the *execution* — the wavefront
// keeps pipelining inside the window).
template <typename T, typename Fn>
futurized_dag<T> futurize_dag(thread_manager& tm, const graph_spec& g, Fn fn,
                              std::size_t window = 0,
                              task_priority priority = task_priority::normal,
                              placement place = placement::spawn_local) {
  // Tasks may still be running when construction finishes; they share
  // ownership of the body instead of referencing this frame.
  auto body = std::make_shared<Fn>(std::move(fn));
  return detail::futurize_rows<T>(tm, g, std::move(body), std::vector<future<T>>{},
                                  /*first_step=*/0, window, priority, place);
}

// Variant with a seed row: `seed` (size == g.width) stands in for step 0 —
// its futures are consumed by step 1's dependence sets, and only steps
// 1 .. steps-1 become tasks (result.tasks == width * (steps - 1)). This is
// how the heat stencil runs on the shared executor: the initial partitions
// are ready futures, not tasks, exactly like HPX-Stencil.
template <typename T, typename Fn>
futurized_dag<T> futurize_dag_seeded(thread_manager& tm, const graph_spec& g,
                                     Fn fn, std::vector<future<T>> seed,
                                     std::size_t window = 0,
                                     task_priority priority = task_priority::normal,
                                     placement place = placement::spawn_local) {
  auto body = std::make_shared<Fn>(std::move(fn));
  return detail::futurize_rows<T>(tm, g, std::move(body), std::move(seed),
                                  /*first_step=*/1, window, priority, place);
}

}  // namespace gran::graph
