#include "graph/kernels.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "util/timer.hpp"

namespace gran::graph {

namespace {

const char* const k_kernel_names[] = {"busy_spin", "memory_stream", "dgemm_like"};

// --- the work loops --------------------------------------------------------

// Floating-point spin; `volatile` keeps the loop honest under -O2.
std::uint64_t spin_loop(long iters) noexcept {
  volatile double acc = 1.0;
  for (long i = 0; i < iters; ++i) acc = acc * 1.0000001 + 0.1;
  std::uint64_t bits;
  const double v = acc;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

// Read-modify-write pass over `bytes` of a thread-local buffer (capped so
// wild grains cannot exhaust memory; larger targets loop the buffer).
constexpr std::size_t k_stream_cap_bytes = 8u << 20;

std::uint64_t stream_loop(std::size_t bytes) noexcept {
  thread_local std::vector<std::uint64_t> buf;
  const std::size_t want_words =
      std::max<std::size_t>(64, std::min(bytes, k_stream_cap_bytes) / 8);
  if (buf.size() < want_words) buf.resize(want_words, 0x9e3779b97f4a7c15ull);
  std::uint64_t acc = 0;
  std::size_t remaining_words = bytes / 8;
  while (remaining_words > 0) {
    const std::size_t n = std::min(remaining_words, want_words);
    for (std::size_t i = 0; i < n; ++i) {
      acc += buf[i];
      buf[i] = acc ^ (buf[i] >> 1);
    }
    remaining_words -= n;
  }
  return acc;
}

// One blocked 8x8 matrix multiply = 2*8^3 = 1024 flops.
constexpr int k_dgemm_n = 8;
constexpr double k_dgemm_block_flops = 2.0 * k_dgemm_n * k_dgemm_n * k_dgemm_n;

std::uint64_t dgemm_loop(long blocks) noexcept {
  thread_local double a[k_dgemm_n][k_dgemm_n], b[k_dgemm_n][k_dgemm_n],
      c[k_dgemm_n][k_dgemm_n];
  thread_local bool init = false;
  if (!init) {
    for (int i = 0; i < k_dgemm_n; ++i)
      for (int j = 0; j < k_dgemm_n; ++j) {
        a[i][j] = 1.0 + 0.01 * i + 0.001 * j;
        b[i][j] = 1.0 - 0.01 * j + 0.001 * i;
        c[i][j] = 0.0;
      }
    init = true;
  }
  for (long r = 0; r < blocks; ++r)
    for (int i = 0; i < k_dgemm_n; ++i)
      for (int j = 0; j < k_dgemm_n; ++j) {
        double s = c[i][j] * 1e-9;  // feed back so blocks cannot be hoisted
        for (int k = 0; k < k_dgemm_n; ++k) s += a[i][k] * b[k][j];
        c[i][j] = s;
      }
  std::uint64_t bits;
  std::memcpy(&bits, &c[0][0], sizeof bits);
  return bits;
}

// --- calibration -----------------------------------------------------------

template <typename F>
double rate_per_ns(F&& body, double units_per_call) {
  // One warmup, then measure; calibration runs once per process so a few
  // milliseconds of probing is fine.
  body();
  const std::uint64_t t0 = tsc_clock::now();
  body();
  const double ns =
      std::max(1.0, static_cast<double>(tsc_clock::to_ns(tsc_clock::now() - t0)));
  return units_per_call / ns;
}

kernel_rates measure_rates() {
  kernel_rates r;
  constexpr long spin_probe = 2'000'000;
  r.spin_iters_per_ns = rate_per_ns([] { spin_loop(spin_probe); },
                                    static_cast<double>(spin_probe));
  constexpr std::size_t stream_probe = 4u << 20;
  r.stream_bytes_per_ns = rate_per_ns([] { stream_loop(stream_probe); },
                                      static_cast<double>(stream_probe));
  constexpr long dgemm_probe = 20'000;
  r.dgemm_flops_per_ns = rate_per_ns([] { dgemm_loop(dgemm_probe); },
                                     dgemm_probe * k_dgemm_block_flops);
  return r;
}

}  // namespace

const char* kernel_name(kernel_kind k) noexcept {
  return k_kernel_names[static_cast<int>(k)];
}

kernel_kind kernel_from_name(const std::string& name) {
  for (int i = 0; i < 3; ++i)
    if (name == k_kernel_names[i]) return static_cast<kernel_kind>(i);
  throw std::invalid_argument("unknown kernel: " + name);
}

const kernel_rates& calibrated_rates() {
  static const kernel_rates rates = measure_rates();
  return rates;
}

namespace {

// One calibrated work slice of `target_ns` on the calling thread.
std::uint64_t run_slice(kernel_kind kind, double target_ns) {
  const kernel_rates& r = calibrated_rates();
  switch (kind) {
    case kernel_kind::busy_spin:
      return spin_loop(static_cast<long>(target_ns * r.spin_iters_per_ns));
    case kernel_kind::memory_stream:
      return stream_loop(
          static_cast<std::size_t>(target_ns * r.stream_bytes_per_ns));
    case kernel_kind::dgemm_like:
      // Quantized to whole 8x8 blocks (~1 Kflop each); busy_spin is the
      // precise dial for sub-block grains.
      return dgemm_loop(std::max<long>(
          1, static_cast<long>(target_ns * r.dgemm_flops_per_ns /
                               k_dgemm_block_flops)));
  }
  return 0;
}

}  // namespace

std::uint64_t run_kernel(const kernel_spec& k, std::uint32_t step,
                         std::uint32_t point) {
  const double target_ns = std::max(0.0, task_grain_ns(k, step, point));
  return run_slice(k.kind, target_ns);
}

std::uint64_t run_kernel_units(const kernel_spec& k, std::uint32_t step,
                               std::uint32_t point, std::uint32_t unit_lo,
                               std::uint32_t unit_hi) {
  const std::uint32_t units = std::max<std::uint32_t>(1, k.split_units);
  const double target_ns = std::max(0.0, task_grain_ns(k, step, point));
  const double unit_ns = target_ns / static_cast<double>(units);
  const std::uint64_t node_key =
      mix64_combine(mix64_combine(k.seed, step), point);
  std::uint64_t acc = 0;
  for (std::uint32_t u = unit_lo; u < unit_hi; ++u) {
    const std::uint64_t bits = run_slice(k.kind, unit_ns);
    // Wrapping add commutes: the node checksum is invariant under any
    // partition of its units across split-off tasks. Each term still folds
    // the slice's computed bits so the work cannot be dead-code-eliminated.
    acc += mix64_combine(mix64_combine(node_key, u), bits);
  }
  return acc;
}

}  // namespace gran::graph
