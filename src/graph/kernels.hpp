// Pluggable per-task work for the graph workloads.
//
// The dependence pattern (graph/spec.hpp) and the task grain are
// independent dials: a kernel_spec fixes *what one task costs* — a target
// duration, a work kind, and an imbalance knob — so a granularity sweep
// (the paper's td axis) can be run against any pattern. Kernels are
// calibrated once per process against this host's measured rates; the
// simulator charges the same target durations in virtual time instead
// (sim/graph_sim.hpp), so both executors agree on the intended grain.
#pragma once

#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace gran::graph {

enum class kernel_kind : int {
  busy_spin,      // pure compute: calibrated floating-point loop
  memory_stream,  // read-modify-write pass over a buffer (bandwidth-bound)
  dgemm_like,     // blocked 8x8 matrix-multiply loop (FLOP-bound)
};

const char* kernel_name(kernel_kind k) noexcept;
// Throws std::invalid_argument on unknown names.
kernel_kind kernel_from_name(const std::string& name);

struct kernel_spec {
  kernel_kind kind = kernel_kind::busy_spin;
  double grain_ns = 2'000.0;  // target duration of one task (the td dial)
  // Per-task grain spread: task (t,p) targets grain_ns * (1 + imbalance*u),
  // u deterministic in [-1, 1) from (seed, t, p). 0 = homogeneous tasks.
  double imbalance = 0.0;
  std::uint64_t seed = 1;
  // > 1 declares the kernel *splittable*: the task's work divides into this
  // many equal-cost units, and the executor may run a node coarse and give
  // away trailing units on demand (run_kernel_units + algo/splittable.hpp).
  // 1 = monolithic (run_kernel), the default.
  std::uint32_t split_units = 1;
};

// Deterministic target duration of task (step, point) — the imbalance dial
// applied to the base grain. Both executors use this same value.
inline double task_grain_ns(const kernel_spec& k, std::uint32_t step,
                            std::uint32_t point) noexcept {
  if (k.imbalance == 0.0) return k.grain_ns;
  const std::uint64_t h =
      mix64(mix64_combine(mix64_combine(k.seed, step), point));
  return k.grain_ns * (1.0 + k.imbalance * (2.0 * mix64_to_unit(h) - 1.0));
}

// Executes the work of task (step, point) on the calling thread for
// approximately task_grain_ns(...) nanoseconds; returns a checksum that
// depends on the computed values (defeats dead-code elimination and feeds
// the executors' result hashes). Calibrates lazily on first use per kind;
// thread-safe.
std::uint64_t run_kernel(const kernel_spec& k, std::uint32_t step,
                         std::uint32_t point);

// Executes units [unit_lo, unit_hi) of task (step, point)'s work: the
// task's target duration divided into k.split_units equal-cost slices.
// Returns an *additive* (order-independent) checksum contribution, so any
// partition of [0, split_units) — however the lazy splitter carved it —
// sums to the same per-node checksum as one unsplit pass. Requires
// unit_hi <= k.split_units.
std::uint64_t run_kernel_units(const kernel_spec& k, std::uint32_t step,
                               std::uint32_t point, std::uint32_t unit_lo,
                               std::uint32_t unit_hi);

// Measured calibration rates of this host (exposed for tests/benches).
struct kernel_rates {
  double spin_iters_per_ns = 0.0;    // busy_spin loop iterations
  double stream_bytes_per_ns = 0.0;  // memory_stream traversal
  double dgemm_flops_per_ns = 0.0;   // dgemm_like arithmetic
};
const kernel_rates& calibrated_rates();

}  // namespace gran::graph
