// The thread manager: a pool of worker OS threads (one per core by default,
// pinned) cooperatively scheduling lightweight tasks — the M:N hybrid
// threading model of paper §I-B.
//
// Responsibilities:
//   * owns the per-worker dual queues and the global low-priority queue;
//   * drives the scheduling policy's search loop on every worker;
//   * accounts Σt_exec / Σt_func / task & phase counts per worker and
//     registers them as named performance counters (perf/counters.hpp);
//   * implements the suspend/wake handshake used by futures and
//     synchronization primitives.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fiber/stack.hpp"
#include "perf/counters.hpp"
#include "queues/dual_queue.hpp"
#include "threads/config.hpp"
#include "threads/policy.hpp"
#include "threads/task.hpp"
#include "threads/worker.hpp"
#include "topo/pin_plan.hpp"
#include "util/cacheline.hpp"

namespace gran {

class thread_manager {
 public:
  // Builds the pool and starts the workers immediately.
  explicit thread_manager(scheduler_config cfg = {});

  // Drains all remaining work, then stops and joins the workers.
  ~thread_manager();

  thread_manager(const thread_manager&) = delete;
  thread_manager& operator=(const thread_manager&) = delete;

  // --- task creation ----------------------------------------------------

  // Schedules `body` as a new task; returns its id. The task is created as
  // a staged description (no stack) and converted on first schedule.
  std::uint64_t spawn(task::body_fn body,
                      task_priority priority = task_priority::normal,
                      const char* description = "<task>");

  // spawn with a placement hint: prefer queuing on worker `worker_hint`
  // (e.g. the worker whose NUMA domain owns the task's data — see
  // home_worker_for_block). A hint, not a binding: any worker may still
  // steal the task. Out-of-range hints fall back to plain spawn.
  std::uint64_t spawn_on(int worker_hint, task::body_fn body,
                         task_priority priority = task_priority::normal,
                         const char* description = "<task>");

  // --- used by synchronization primitives --------------------------------

  // Manager whose worker is executing the calling code (nullptr outside any
  // worker of any manager).
  static thread_manager* current() noexcept;
  // Task executing on the calling OS thread (nullptr outside tasks).
  static task* current_task() noexcept;
  // Worker index on the calling OS thread (-1 outside workers).
  static int current_worker() noexcept;

  // Wakes a suspended/suspending task (see task::wake) and re-queues it if
  // the caller won the transition. Safe from any thread, BUT: waking a task
  // parked inside a library primitive (mutex, latch, future, ...) is
  // reserved to that primitive — it owns the task's waiter-list entry.
  // External wake() is for tasks parked via bare this_task::suspend(),
  // whose wake-up the caller arranged itself. The caller must also
  // guarantee the task object is still alive (a terminated task is deleted
  // by the runtime).
  void wake(task* t);

  // Re-queues a pending task (used internally and by tests).
  void schedule_ready(task* t);

  // Attaches a context to a staged task (stack from this manager's pool).
  void convert(task* t);
  // Returns a terminated task's stack to the pool and deletes the task.
  void retire(task* t);

  // --- lifecycle ----------------------------------------------------------

  // Blocks the calling (non-worker) thread until no task is alive.
  void wait_idle();

  // Signals shutdown; workers exit once all work has drained. Idempotent;
  // called by the destructor.
  void stop();

  // --- introspection -----------------------------------------------------

  int num_workers() const noexcept { return static_cast<int>(workers_.size()); }
  int num_numa_domains() const noexcept { return num_numa_domains_; }
  const scheduler_config& config() const noexcept { return cfg_; }
  scheduling_policy& policy() noexcept { return *policy_; }

  // The topology-aware CPU assignment plan computed at construction.
  const pin_plan& plan() const noexcept { return plan_; }
  // Worker pins the kernel rejected (CPU offline / outside the cpuset);
  // counts since construction, not cleared by reset_counters().
  std::uint64_t pins_rejected() const noexcept {
    return pins_rejected_.load(std::memory_order_relaxed);
  }

  // Topology distance from `thief` to `victim`: 0 = SMT siblings (same
  // physical core), 1 = same NUMA/locality domain, 2 = remote domain.
  int steal_distance(int thief, int victim) const noexcept;

  // --- in-flight handoff accounting ---------------------------------------
  // A task mid-transfer between two queue structures (staged-steal convert,
  // channel delivery) is momentarily in *neither*, so a concurrent
  // queues_empty scan would under-count. Transfers bracket themselves with
  // begin/end; every policy's queues_empty treats a non-zero in-flight count
  // as non-empty. seq_cst pairs with the scan: either the scanner sees the
  // count, or the transfer's enqueue is already visible to it.
  void note_handoff_begin() noexcept {
    handoffs_.fetch_add(1, std::memory_order_seq_cst);
  }
  void note_handoff_end() noexcept {
    handoffs_.fetch_sub(1, std::memory_order_seq_cst);
  }
  std::uint64_t handoffs_in_flight() const noexcept {
    return handoffs_.load(std::memory_order_seq_cst);
  }

  // Wakes parked workers (all=false: one). Public so message-passing
  // policies can signal after pushing work into another worker's channel —
  // the same Dekker protocol as the enqueue paths (see the private section).
  void notify_work_available(bool all = false) { notify_work(all); }

  // Preferred worker for block `index` of `total` equally sized data blocks:
  // block distribution over the NUMA domains, round-robin among each
  // domain's workers. Deterministic; used for NUMA-aware home placement of
  // data-parallel tasks (graph/futurize.hpp, algo/parallel_for.hpp).
  int home_worker_for_block(std::uint64_t index, std::uint64_t total) const noexcept;

  worker_data& worker(int w) { return *workers_[static_cast<std::size_t>(w)]; }
  const worker_data& worker(int w) const { return *workers_[static_cast<std::size_t>(w)]; }
  const std::vector<int>& workers_of_node(int node) const {
    return workers_by_node_[static_cast<std::size_t>(node)];
  }

  dual_queue<task*, task*>& low_priority_queue() noexcept { return low_queue_; }
  const dual_queue<task*, task*>& low_priority_queue() const noexcept { return low_queue_; }

  std::uint64_t tasks_alive() const noexcept {
    return tasks_alive_.load(std::memory_order_acquire);
  }

  // Workers currently starving (their scheduler round found no work and they
  // have not found any since) — maintained edge-triggered off the same
  // had_work transition that emits the pending_miss trace event. This is the
  // instantaneous demand signal the split controller polls
  // (core/split_controller.hpp): > 0 means a split-off back half would be
  // picked up immediately.
  int starving_workers() const noexcept {
    return starving_.load(std::memory_order_relaxed);
  }

  // Tasks currently sitting in a queue (enqueued — spawned, woken, or
  // re-queued after a yield — and not yet picked up by a worker). Advisory
  // and momentarily stale; the split controller subtracts it from the
  // starving count so workers that are merely slow to wake up to *existing*
  // supply do not read as demand for more.
  std::int64_t queued_tasks() const noexcept {
    return queued_.load(std::memory_order_relaxed);
  }

  // Spawns that arrived through the external lane (spawn/spawn_on from a
  // non-worker thread) and external submissions an admission controller
  // turned away before they became tasks (service/service.hpp). Exposed as
  // /threads/count/external-{spawns,rejected}.
  std::uint64_t external_spawns() const noexcept {
    return external_spawns_.load(std::memory_order_relaxed);
  }
  std::uint64_t external_rejected() const noexcept {
    return external_rejected_.load(std::memory_order_relaxed);
  }
  // Called by the ingress layer when admission control refuses an external
  // submission (the request never reaches spawn).
  void note_external_rejected() noexcept {
    external_rejected_.fetch_add(1, std::memory_order_relaxed);
  }

  // Split bookkeeping (algo/splittable.hpp): bumps the calling worker's
  // tasks_split cell and emits the task_split trace event (arg = the parent
  // task's id, arg2 = the split point, saturated to 32 bits). The runner
  // calls this immediately before spawn_on of the back half, so on the
  // parent's trace lane the task_split event directly precedes the child's
  // task_enqueue — the pairing perf/analysis.cpp uses for provenance.
  void record_split(std::uint64_t parent_id, std::uint64_t split_point) noexcept;
  // Split demand observed but the remaining range was below 2×min_chunk.
  void record_split_denied() noexcept;

  // Aggregated raw counter values across all workers.
  struct totals {
    std::uint64_t tasks_executed = 0;
    std::uint64_t phases_executed = 0;
    std::uint64_t exec_ns = 0;   // Σ t_exec
    std::uint64_t func_ns = 0;   // Σ t_func (worker loop time, ⊇ exec)
    std::uint64_t tasks_stolen = 0;
    std::uint64_t tasks_stolen_remote = 0;  // subset of stolen: cross-domain
    std::uint64_t tasks_converted = 0;
    std::uint64_t tasks_spawned = 0;  // spawn/spawn_on calls, incl. external
    std::uint64_t tasks_split = 0;    // lazy splits (back half re-enqueued)
    std::uint64_t splits_denied = 0;  // demand seen, range below 2×min_chunk
    std::uint64_t steal_req_sent = 0;       // channel-steal requests originated
    std::uint64_t steal_req_forwarded = 0;  // passed on by an empty victim
    std::uint64_t steal_req_declined = 0;   // returned unserved (full circuit)
    // PMU-plane sums (perf/pmu.hpp); zero while GRAN_PMU is off. task vs
    // sched is the kernel/scheduler split of the overhead decomposition,
    // in hardware units.
    std::uint64_t pmu_cycles_task = 0;
    std::uint64_t pmu_cycles_sched = 0;
    std::uint64_t pmu_instructions_task = 0;
    std::uint64_t pmu_instructions_sched = 0;
    std::uint64_t pmu_llc_misses = 0;
    std::uint64_t pmu_branch_misses = 0;
    std::uint64_t pmu_stalled_backend = 0;
    std::uint64_t pmu_ctx_switches = 0;
    queue_access_counts queues;  // summed over every dual queue
  };
  totals counter_totals() const;

  // Resets every software counter (start of a measurement region).
  void reset_counters();

  // Registers/unregisters the /threads/... counters with the global
  // registry. Called by the constructor/destructor when
  // cfg.num_workers >= 0 (always); concurrent managers overwrite each
  // other's registrations — run one instrumented manager at a time.
  void register_counters();
  void unregister_counters();

 private:
  friend struct this_task_access;

  void worker_main(int w);
  // Runs one thread-phase of `t` on worker `w`; handles termination,
  // yield re-queueing, and suspension finalization.
  void run_phase(int w, task* t);

  // Spawn bookkeeping shared by spawn/spawn_on: bumps the spawned counter
  // and emits the task_enqueue provenance event. `spawner` is the calling
  // worker's index, or -1 for a non-worker thread (external lane).
  void record_spawn(int spawner, std::uint64_t id) noexcept;

  // --- event-based idle parking ------------------------------------------
  // Starved workers park on a condition variable; every enqueue signals it.
  // The sleeper count lets producers skip the mutex entirely when nobody is
  // parked (the common case under load). Missed-wakeup freedom: a worker
  // registers as a sleeper with a seq_cst RMW, *then* re-probes the queues;
  // a producer publishes its push, issues a seq_cst fence, *then* reads the
  // sleeper count — one of the two must observe the other (Dekker).
  void notify_work(bool all = false);
  // Parks worker `w` (the caller) for at most cfg_.idle_park_us. Returns
  // false when the re-probe found work and the park was skipped.
  bool park_idle(int w);

  scheduler_config cfg_;
  std::unique_ptr<scheduling_policy> policy_;
  std::vector<std::unique_ptr<worker_data>> workers_;
  std::vector<std::vector<int>> workers_by_node_;
  int num_numa_domains_ = 1;
  pin_plan plan_;
  std::atomic<std::uint64_t> pins_rejected_{0};

  dual_queue<task*, task*> low_queue_;
  stack_pool stacks_;

  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> tasks_alive_{0};
  std::atomic<std::uint64_t> next_home_{0};  // round-robin for external spawns
  // Spawns from non-worker threads (worker spawns use the per-worker cell).
  std::atomic<std::uint64_t> external_spawns_{0};
  // External submissions refused by admission control (note_external_rejected).
  std::atomic<std::uint64_t> external_rejected_{0};

  // Workers in the starving state (see starving_workers()). Own line: bumped
  // on starvation edges, read from the splittable hot loop on every poll.
  alignas(cache_line_size) std::atomic<int> starving_{0};
  // Tasks enqueued but not yet dequeued (see queued_tasks()). Own line:
  // bumped at every enqueue/dequeue, polled from split candidates' hot loop.
  alignas(cache_line_size) std::atomic<std::int64_t> queued_{0};
  // Tasks mid-transfer between queue structures (see note_handoff_begin).
  alignas(cache_line_size) std::atomic<std::uint64_t> handoffs_{0};

  alignas(cache_line_size) std::atomic<int> sleepers_{0};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::uint64_t park_epoch_ = 0;  // guarded by park_mutex_; bumped per wakeup
};

// --- API available inside tasks -------------------------------------------

namespace this_task {

// The current task (nullptr when not running inside one).
task* current() noexcept;

// Cooperatively yields: ends the current thread-phase and re-queues the
// task at the back of its worker's pending queue. No-op outside a task.
void yield();

// Suspends the current task until someone calls thread_manager::wake on it.
// The caller must have arranged for that wake (sync primitives do). See
// task::cancel_suspend for the full race-free protocol.
void suspend();

// Granular suspension for synchronization primitives, whose protocol is:
//     prepare_suspend();
//     { lock; register waiter; if (already ready) { deregister;
//       cancel_suspend(); return; } }
//     commit_suspend();   // context-switches away
// Wakers observing the task after prepare_suspend interact correctly with
// it through thread_manager::wake.
void prepare_suspend();   // task::mark_suspending
void cancel_suspend();    // task::cancel_suspend
void commit_suspend();    // switch back to the worker; returns when woken

// Identifier helpers.
std::uint64_t id() noexcept;          // 0 outside a task
int worker_index() noexcept;          // -1 outside a worker

}  // namespace this_task

}  // namespace gran
