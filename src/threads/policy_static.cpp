#include "threads/policy_static.hpp"

#include "threads/thread_manager.hpp"

namespace gran {

void static_fifo_policy::init(thread_manager&) {}

void static_fifo_policy::enqueue_new(thread_manager& tm, int /*home*/, task* t) {
  if (t->priority() == task_priority::low) {
    tm.low_priority_queue().push_staged(t);
    return;
  }
  // Always round-robin: static placement spreads work without regard to the
  // spawner, which is the policy's only load-balancing mechanism.
  const int target = static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) %
                                      static_cast<std::uint64_t>(tm.num_workers()));
  worker_data& wd = tm.worker(target);
  if (t->priority() == task_priority::high && wd.owns_high_queue)
    wd.high_queue.push_staged(t);
  else
    wd.queue.push_staged(t);
}

void static_fifo_policy::enqueue_hinted(thread_manager& tm, int target, task* t) {
  // With no stealing the hint is binding: the task runs where it is staged.
  if (t->priority() == task_priority::low) {
    tm.low_priority_queue().push_staged(t);
    return;
  }
  worker_data& wd = tm.worker(target);
  if (t->priority() == task_priority::high && wd.owns_high_queue)
    wd.high_queue.push_staged(t);
  else
    wd.queue.push_staged(t);
}

void static_fifo_policy::enqueue_ready(thread_manager& tm, int home, task* t) {
  if (t->priority() == task_priority::low) {
    tm.low_priority_queue().push_pending(t);
    return;
  }
  int target = t->last_worker();
  if (target < 0) target = home;
  if (target < 0)
    target = static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) %
                              static_cast<std::uint64_t>(tm.num_workers()));
  worker_data& wd = tm.worker(target);
  if (t->priority() == task_priority::high && wd.owns_high_queue)
    wd.high_queue.push_pending(t);
  else
    wd.queue.push_pending(t);
}

task* static_fifo_policy::get_next(thread_manager& tm, int w) {
  worker_data& me = tm.worker(w);
  if (me.owns_high_queue)
    if (auto t = me.high_queue.pop_pending()) return *t;
  if (auto t = me.queue.pop_pending()) return *t;
  // Between pop_staged and push_pending the task is in neither queue; the
  // handoff bracket keeps it visible to concurrent queues_empty scans
  // (shutdown, parking).
  if (me.owns_high_queue) {
    if (auto d = me.high_queue.pop_staged()) {
      tm.note_handoff_begin();
      tm.convert(*d);
      me.high_queue.push_pending(*d);
      tm.note_handoff_end();
      if (auto t = me.high_queue.pop_pending()) return *t;
      return nullptr;
    }
  }
  if (auto d = me.queue.pop_staged()) {
    tm.note_handoff_begin();
    tm.convert(*d);
    me.queue.push_pending(*d);
    tm.note_handoff_end();
    if (auto t = me.queue.pop_pending()) return *t;
    return nullptr;
  }
  if (auto t = tm.low_priority_queue().pop_pending()) return *t;
  if (auto d = tm.low_priority_queue().pop_staged()) {
    tm.convert(*d);
    return *d;
  }
  return nullptr;
}

bool static_fifo_policy::queues_empty(const thread_manager& tm) const {
  for (int w = 0; w < tm.num_workers(); ++w) {
    const worker_data& wd = tm.worker(w);
    if (!wd.queue.empty_approx() || !wd.high_queue.empty_approx()) return false;
  }
  if (tm.handoffs_in_flight() != 0) return false;
  return tm.low_priority_queue().empty_approx();
}

}  // namespace gran
