#include "threads/thread_manager.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <iostream>

#include "perf/heartbeat.hpp"
#include "perf/report.hpp"
#include "perf/telemetry.hpp"
#include "perf/trace.hpp"
#include "perf/watchdog.hpp"
#include "threads/runtime.hpp"
#include "topo/affinity.hpp"
#include "util/env.hpp"
#include "topo/topology.hpp"
#include "util/assert.hpp"
#include "util/backoff.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace gran {

namespace {

// Worker identity of the calling OS thread.
thread_local thread_manager* tl_manager = nullptr;
thread_local int tl_worker = -1;
thread_local task* tl_task = nullptr;

}  // namespace

thread_manager::thread_manager(scheduler_config cfg)
    : cfg_(std::move(cfg)),
      low_queue_(cfg_.queue_ring_capacity),
      stacks_(cfg_.stack_size ? cfg_.stack_size : stack_pool::default_stack_size()) {
  const topology& topo = topology::host();
  const std::vector<int> allowed = allowed_cpus();

  // Worker count: explicit config > GRAN_WORKERS env > one per *available*
  // logical CPU. In a container the cgroup cpuset is often a strict subset
  // of the CPUs sysfs lists; spawning a worker per listed CPU would
  // oversubscribe the granted ones.
  int workers = cfg_.num_workers;
  if (workers <= 0)
    workers = static_cast<int>(env_int("GRAN_WORKERS", 0));
  if (workers <= 0) {
    int available = 0;
    for (const int cpu : allowed)
      if (topo.find_cpu(cpu) != nullptr) ++available;
    workers = available > 0 ? available : topo.num_cpus();
  }
  GRAN_ASSERT(workers >= 1);

  // CPU assignment plan: physical cores first, SMT siblings last, restricted
  // to the allowed cpuset (topo/pin_plan.hpp). pin_workers=false forces the
  // unpinned plan, which still yields the domain spread the policies need.
  plan_ = pin_plan::build(topo, allowed, workers,
                          cfg_.pin_workers ? resolve_pin_mode(cfg_.pin)
                                           : pin_mode::none);

  // Domain count: explicit config override (simulation ablations pretend a
  // multi-node machine) keeps the pre-plan even spread; otherwise the plan's
  // dense domains are authoritative.
  const bool domains_overridden = cfg_.numa_domains > 0;
  num_numa_domains_ = domains_overridden ? cfg_.numa_domains
                                         : std::max(1, plan_.num_domains);
  num_numa_domains_ = std::min(num_numa_domains_, workers);

  const int high_queues =
      cfg_.high_priority_queues > 0 ? std::min(cfg_.high_priority_queues, workers) : workers;

  workers_.reserve(static_cast<std::size_t>(workers));
  workers_by_node_.resize(static_cast<std::size_t>(num_numa_domains_));
  for (int w = 0; w < workers; ++w) {
    auto wd = std::make_unique<worker_data>(cfg_.queue_ring_capacity);
    wd->index = w;
    const worker_assignment& a = plan_.workers[static_cast<std::size_t>(w)];
    // Domain from the plan, unless overridden: then spread workers evenly,
    // first domains first — matches how HPX fills sockets.
    wd->numa_node = domains_overridden ? w * num_numa_domains_ / workers
                                       : std::min(a.domain, num_numa_domains_ - 1);
    wd->core = a.core;
    wd->cpu = a.cpu;
    wd->owns_high_queue = w < high_queues;
    workers_by_node_[static_cast<std::size_t>(wd->numa_node)].push_back(w);
    workers_.push_back(std::move(wd));
  }

  // Live telemetry: GRAN_METRICS / GRAN_METRICS_PROM / GRAN_FLIGHT start a
  // process-lifetime session in any program, mirroring GRAN_TRACE below.
  // Must run before the tracer ring handout: GRAN_FLIGHT force-enables
  // tracing and the workers need their rings.
  perf::telemetry_autostart_from_env();

  // Task-lifecycle tracing: GRAN_TRACE=path (or a tool calling
  // perf::tracer::enable() before constructing the manager) turns it on;
  // each worker caches its ring pointer so the hot-path check is one
  // relaxed atomic load plus a predictable branch (perf/trace.hpp).
  perf::tracer::instance().init_from_env();
  if (perf::tracer::enabled())
    for (int w = 0; w < workers; ++w)
      workers_[static_cast<std::size_t>(w)]->trace = perf::tracer::instance().ring(w);

  // Hardware-counter attribution: GRAN_PMU=1 (or a tool calling
  // perf::pmu_plane::configure before construction) turns it on; each
  // worker opens its own counter group from worker_main so the events
  // self-attach to the right thread (perf/pmu.hpp).
  perf::pmu_plane::instance().init_from_env();

  // Liveness monitoring: publish this pool on the heartbeat board so the
  // stall watchdog (perf/watchdog.hpp) can observe the workers without a
  // dependency on this class. Like the counter registry, the board belongs
  // to the most recent manager.
  perf::heartbeat_board::instance().attach(workers);
  for (int w = 0; w < workers; ++w)
    workers_[static_cast<std::size_t>(w)]->heartbeat =
        perf::heartbeat_board::instance().slot(w);

  // Normalize so config().policy names the backend actually running even
  // when it came from the GRAN_POLICY environment variable.
  cfg_.policy = resolve_policy_name(cfg_.policy);
  policy_ = make_policy(cfg_.policy);
  policy_->init(*this);

  register_counters();
  if (default_manager() == nullptr) set_default_manager(this);

  running_.store(true, std::memory_order_release);
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w)
    threads_.emplace_back([this, w] { worker_main(w); });
}

thread_manager::~thread_manager() {
  stop();
  unregister_counters();
  if (default_manager() == this) set_default_manager(nullptr);
}

std::uint64_t thread_manager::spawn(task::body_fn body, task_priority priority,
                                    const char* description) {
  GRAN_ASSERT_MSG(running_.load(std::memory_order_acquire),
                  "spawn on a stopped thread_manager");
  auto* t = new task(std::move(body), priority, description);
  t->set_owner(this);
  const std::uint64_t id = t->id();
  tasks_alive_.fetch_add(1, std::memory_order_acq_rel);
  const int home = tl_manager == this ? tl_worker : -1;
  // Provenance is recorded before the enqueue so the spawn timestamp can
  // never trail the child's first task_begin.
  record_spawn(home, id);
  queued_.fetch_add(1, std::memory_order_relaxed);
  policy_->enqueue_new(*this, home, t);
  notify_work();
  // Cooperation point: a spawning worker is responsive by definition, so a
  // message-passing policy can service steal requests that piled up while
  // the task body ran (tasking-2.0's check-for-requests-on-spawn idiom).
  if (home >= 0) policy_->cooperate(*this, home);
  return id;
}

std::uint64_t thread_manager::spawn_on(int worker_hint, task::body_fn body,
                                       task_priority priority,
                                       const char* description) {
  if (worker_hint < 0 || worker_hint >= num_workers())
    return spawn(std::move(body), priority, description);
  GRAN_ASSERT_MSG(running_.load(std::memory_order_acquire),
                  "spawn_on a stopped thread_manager");
  auto* t = new task(std::move(body), priority, description);
  t->set_owner(this);
  const std::uint64_t id = t->id();
  tasks_alive_.fetch_add(1, std::memory_order_acq_rel);
  // The spawner (for provenance) is the calling worker, not the hint's
  // target — the hint only picks the child's home queue.
  record_spawn(tl_manager == this ? tl_worker : -1, id);
  queued_.fetch_add(1, std::memory_order_relaxed);
  policy_->enqueue_hinted(*this, worker_hint, t);
  notify_work();
  const int home = tl_manager == this ? tl_worker : -1;
  if (home >= 0) policy_->cooperate(*this, home);
  return id;
}

void thread_manager::record_spawn(int spawner, std::uint64_t id) noexcept {
  if (spawner >= 0) {
    worker_data& wd = worker(spawner);
    wd.counters.tasks_spawned.fetch_add(1, std::memory_order_relaxed);
    perf::trace_emit(wd.trace, perf::trace_kind::task_enqueue, spawner, id,
                     static_cast<std::uint32_t>(spawner));
  } else {
    external_spawns_.fetch_add(1, std::memory_order_relaxed);
    if (perf::tracer::enabled())
      perf::tracer::instance().emit_external(perf::trace_kind::task_enqueue, id,
                                             perf::external_worker);
  }
}

void thread_manager::record_split(std::uint64_t parent_id,
                                  std::uint64_t split_point) noexcept {
  const int w = tl_manager == this ? tl_worker : -1;
  if (w < 0) return;  // splits only happen inside tasks, i.e. on workers
  worker_data& wd = worker(w);
  wd.counters.tasks_split.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t point = split_point > 0xffffffffull
                                  ? 0xffffffffu
                                  : static_cast<std::uint32_t>(split_point);
  perf::trace_emit(wd.trace, perf::trace_kind::task_split, w, parent_id, point);
}

void thread_manager::record_split_denied() noexcept {
  const int w = tl_manager == this ? tl_worker : -1;
  if (w < 0) return;
  worker(w).counters.splits_denied.fetch_add(1, std::memory_order_relaxed);
}

int thread_manager::steal_distance(int thief, int victim) const noexcept {
  const worker_data& a = worker(thief);
  const worker_data& b = worker(victim);
  if (a.core >= 0 && a.core == b.core) return 0;
  if (a.numa_node == b.numa_node) return 1;
  return 2;
}

int thread_manager::home_worker_for_block(std::uint64_t index,
                                          std::uint64_t total) const noexcept {
  const auto n = static_cast<std::uint64_t>(num_workers());
  if (total == 0) return static_cast<int>(index % n);
  if (index >= total) index = total - 1;
  // Block distribution over the domains (block b of N lives on domain
  // b*D/N), then round-robin among that domain's workers.
  const auto domains = static_cast<std::uint64_t>(num_numa_domains_);
  const auto d = static_cast<std::size_t>(index * domains / total);
  const std::vector<int>& ws = workers_by_node_[d];
  if (ws.empty()) return static_cast<int>(index % n);
  return ws[static_cast<std::size_t>(index % ws.size())];
}

thread_manager* thread_manager::current() noexcept { return tl_manager; }
task* thread_manager::current_task() noexcept { return tl_task; }
int thread_manager::current_worker() noexcept { return tl_worker; }

void thread_manager::wake(task* t) {
  GRAN_ASSERT(t != nullptr);
  if (t->wake()) schedule_ready(t);
}

void thread_manager::schedule_ready(task* t) {
  GRAN_DEBUG_ASSERT(t->state() == task_state::pending);
  const int home = tl_manager == this ? tl_worker : -1;
  queued_.fetch_add(1, std::memory_order_relaxed);
  policy_->enqueue_ready(*this, home, t);
  notify_work();
}

void thread_manager::convert(task* t) {
  t->convert_to_pending(stacks_.acquire());
  const int w = tl_manager == this ? tl_worker : 0;
  if (w >= 0)
    worker(w).counters.tasks_converted.fetch_add(1, std::memory_order_relaxed);
}

void thread_manager::retire(task* t) {
  stacks_.release(t->take_stack());
  delete t;
  tasks_alive_.fetch_sub(1, std::memory_order_acq_rel);
}

void thread_manager::wait_idle() {
  GRAN_ASSERT_MSG(tl_manager != this, "wait_idle from a worker would deadlock");
  backoff bo;
  while (tasks_alive_.load(std::memory_order_acquire) != 0) bo.pause();
}

void thread_manager::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false, std::memory_order_acq_rel))
    return;  // already stopped
  notify_work(/*all=*/true);  // release parked workers so they observe stop
  for (auto& th : threads_)
    if (th.joinable()) th.join();
  threads_.clear();
  perf::heartbeat_board::instance().detach();

  // GRAN_PRINT_COUNTERS=<prefix> dumps the counters at shutdown — the
  // equivalent of HPX's --hpx:print-counter post-processing interface.
  const std::string prefix = env_string("GRAN_PRINT_COUNTERS", "");
  if (!prefix.empty()) {
    std::cerr << "[gran] counters at shutdown (" << prefix << "):\n";
    perf::dump_table(std::cerr, prefix == "all" ? "/" : prefix);
  }

  // Auto-export the trace once the workers are quiescent (ring snapshots
  // are only valid then). Sequential managers re-export cumulatively; the
  // last writer includes everything.
  if (perf::tracer::enabled()) {
    const std::string trace_path = perf::tracer::instance().export_path();
    if (!trace_path.empty()) perf::tracer::instance().export_chrome_json(trace_path);
  }
}

void thread_manager::worker_main(int w) {
  tl_manager = this;
  tl_worker = w;

  worker_data& me = worker(w);

  // Pin to the planned CPU (-1 = the plan left this worker unpinned). A
  // rejected pin (CPU went offline, cpuset shrank after planning) is not
  // silent: it perturbs every measurement taken on this worker.
  if (me.cpu >= 0 && !pin_current_thread(me.cpu)) {
    pins_rejected_.fetch_add(1, std::memory_order_relaxed);
    perf::trace_emit(me.trace, perf::trace_kind::pin_rejected, w,
                     static_cast<std::uint64_t>(me.cpu));
    GRAN_LOG_WARN("worker %d: kernel rejected pin to cpu %d; running unpinned",
                  w, me.cpu);
  }

  // Open this worker's counter group after pinning (perf_event_open
  // self-attaches to the calling thread). Null when the plane is off — the
  // run_phase hot path checks exactly that.
  if (perf::pmu_plane::instance().enabled())
    me.pmu = perf::pmu_plane::instance().create_reader();

  std::uint64_t stamp = tsc_clock::now();
  idle_backoff idler(cfg_.idle_spin_limit, cfg_.idle_yield_limit);

  const auto accumulate_func = [&] {
    const std::uint64_t now = tsc_clock::now();
    me.counters.func_ticks.fetch_add(now - stamp, std::memory_order_relaxed);
    stamp = now;
    // Heartbeat: reuses the tsc read above, so liveness costs one relaxed
    // store per scheduler round. Parked workers still beat every
    // idle_park_us.
    if (me.heartbeat != nullptr)
      me.heartbeat->beat_ticks.store(now, std::memory_order_relaxed);
  };

  bool had_work = true;
  for (;;) {
    task* t = policy_->get_next(*this, w);
    accumulate_func();
    if (t != nullptr) {
      if (!had_work) {
        had_work = true;
        starving_.fetch_sub(1, std::memory_order_relaxed);
      }
      idler.reset();
      run_phase(w, t);
      accumulate_func();
      continue;
    }

    // One pending-miss trace event per starvation episode (the first
    // fruitless scheduler round after useful work), not per probe — the
    // pending-misses *counter* carries the raw frequency; the event marks
    // when starvation set in without flooding the ring. The same edge
    // maintains starving_, the split controller's instantaneous demand
    // signal.
    if (had_work) {
      had_work = false;
      starving_.fetch_add(1, std::memory_order_relaxed);
      perf::trace_emit(me.trace, perf::trace_kind::pending_miss, w);
    }

    // Nothing anywhere: shut down once the manager stopped and no task can
    // produce more work.
    if (!running_.load(std::memory_order_acquire) &&
        tasks_alive_.load(std::memory_order_acquire) == 0)
      break;

    // Long starvation escalates spin -> yield -> park. Parked (or slept)
    // time still counts into Σt_func, which is what makes starvation
    // visible as idle-rate.
    if (idler.pause()) {
      if (cfg_.idle_park)
        park_idle(w);
      else
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    accumulate_func();
  }

  // The loop only exits from the starving branch; withdraw this worker's
  // contribution so starving_ drains to zero at shutdown.
  if (!had_work) starving_.fetch_sub(1, std::memory_order_relaxed);

  tl_manager = nullptr;
  tl_worker = -1;
}

void thread_manager::notify_work(bool all) {
  // Publish-then-check: the enqueue's stores must be ordered before the
  // sleeper-count load (x86-TSO reorders store->load, hence the fence).
  // Pairs with the seq_cst sleeper registration in park_idle.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_relaxed) == 0) return;  // fast path
  {
    std::lock_guard<std::mutex> lock(park_mutex_);
    ++park_epoch_;
  }
  if (all)
    park_cv_.notify_all();
  else
    park_cv_.notify_one();
}

bool thread_manager::park_idle(int w) {
  perf::trace_ring* const trace = worker(w).trace;
  sleepers_.fetch_add(1, std::memory_order_seq_cst);
  bool parked = false;
  {
    std::unique_lock<std::mutex> lock(park_mutex_);
    // Re-probe under the lock, after registering as a sleeper: any enqueue
    // that our caller's fruitless search missed either bumped park_epoch_
    // before we read it (producer unlocked first, so its push is visible
    // here) or will see sleepers_ > 0 and signal us. Either way no wakeup
    // is lost; idle_park_us bounds the damage of the impossible case.
    if (running_.load(std::memory_order_acquire) && policy_->queues_empty(*this)) {
      const std::uint64_t observed = park_epoch_;
      parked = true;
      perf::trace_emit(trace, perf::trace_kind::park, w);
      park_cv_.wait_for(lock, std::chrono::microseconds(cfg_.idle_park_us),
                        [&] {
                          return park_epoch_ != observed ||
                                 !running_.load(std::memory_order_acquire);
                        });
    }
  }
  sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  if (parked) perf::trace_emit(trace, perf::trace_kind::unpark, w);
  return parked;
}

void thread_manager::run_phase(int w, task* t) {
  worker_data& me = worker(w);
  queued_.fetch_sub(1, std::memory_order_relaxed);
  t->begin_phase(w);

  tl_task = t;
  const std::uint64_t t0 = tsc_clock::now();

  // Publish the in-flight phase for the stall watchdog: task id first, then
  // the start stamp that marks the slot occupied (readers treat
  // phase_start_ticks != 0 as "task_id is valid").
  if (me.heartbeat != nullptr) {
    me.heartbeat->task_id.store(t->id(), std::memory_order_relaxed);
    me.heartbeat->phase_start_ticks.store(t0, std::memory_order_release);
  }

  // The gap since the previous phase on this worker is that slot's
  // management overhead (scheduling, queue operations, idle/park time) —
  // the distribution behind Eq. 3's mean.
  const std::uint64_t prev_end =
      me.last_phase_end_ticks.load(std::memory_order_relaxed);
  if (prev_end != 0 && t0 > prev_end)
    me.hist_task_overhead.record(
        static_cast<std::uint64_t>(tsc_clock::to_ns(t0 - prev_end)));

  perf::trace_emit_at(me.trace, t0,
                      t->phases() == 0 ? perf::trace_kind::task_begin
                                       : perf::trace_kind::phase_begin,
                      w, t->id(), 0, t->description());

  // PMU begin hook: one batched counter read per phase. The delta since the
  // previous phase end on this lane is the scheduler gap in hardware units;
  // its task_pmu record rides directly after the begin event (same
  // timestamp) — the adjacency the analyzer pairs on.
  perf::pmu_sample pmu_begin;
  if (me.pmu != nullptr) {
    me.pmu->sample(pmu_begin);
    if (me.pmu_last_valid.load(std::memory_order_relaxed)) {
      const perf::pmu_sample gap = pmu_begin - me.pmu_last_end;
      me.counters.pmu_cycles_sched.fetch_add(gap.cycles,
                                             std::memory_order_relaxed);
      me.counters.pmu_instructions_sched.fetch_add(gap.instructions,
                                                   std::memory_order_relaxed);
      me.counters.pmu_ctx_switches.fetch_add(gap.ctx_switches,
                                             std::memory_order_relaxed);
      perf::trace_emit_at(me.trace, t0, perf::trace_kind::task_pmu, w,
                          perf::pack_pmu_arg(gap.cycles, gap.instructions),
                          gap.llc_misses >= 0xffffffffull
                              ? 0xffffffffu
                              : static_cast<std::uint32_t>(gap.llc_misses));
    }
  }

  t->context().resume();
  const std::uint64_t t1 = tsc_clock::now();
  const std::uint64_t dt = t1 - t0;
  tl_task = nullptr;
  me.last_phase_end_ticks.store(t1, std::memory_order_relaxed);
  if (me.heartbeat != nullptr) {
    me.heartbeat->phase_start_ticks.store(0, std::memory_order_release);
    me.heartbeat->beat_ticks.store(t1, std::memory_order_relaxed);
  }

  me.counters.exec_ticks.fetch_add(dt, std::memory_order_relaxed);
  me.counters.phases_executed.fetch_add(1, std::memory_order_relaxed);
  t->count_phase();
  t->add_exec_ticks(dt);

  // PMU end hook, called right after each end-of-phase trace event so the
  // kernel-delta task_pmu record is lane-adjacent to it at t1. Also feeds
  // the always-on histograms and counter cells, and leaves the end sample
  // as the base for the next scheduler-gap delta.
  const auto pmu_end_emit = [&] {
    if (me.pmu == nullptr) return;
    perf::pmu_sample now;
    me.pmu->sample(now);
    const perf::pmu_sample d = now - pmu_begin;
    me.counters.pmu_cycles_task.fetch_add(d.cycles, std::memory_order_relaxed);
    me.counters.pmu_instructions_task.fetch_add(d.instructions,
                                                std::memory_order_relaxed);
    me.counters.pmu_llc_misses.fetch_add(d.llc_misses,
                                         std::memory_order_relaxed);
    me.counters.pmu_branch_misses.fetch_add(d.branch_misses,
                                            std::memory_order_relaxed);
    me.counters.pmu_stalled_backend.fetch_add(d.stalled_backend,
                                              std::memory_order_relaxed);
    me.counters.pmu_ctx_switches.fetch_add(d.ctx_switches,
                                           std::memory_order_relaxed);
    // IPC/instructions only when the instructions event is live (software
    // mode reads 0), LLC only on rungs that still carry the event — zeros
    // from a degraded reader would poison the distributions.
    if (d.instructions > 0) {
      me.hist_task_instructions.record(d.instructions);
      if (d.cycles > 0)
        me.hist_task_ipc.record(d.instructions * 1000 / d.cycles);
    }
    const perf::pmu_mode m = me.pmu->mode();
    if (m == perf::pmu_mode::full || m == perf::pmu_mode::reduced)
      me.hist_task_llc.record(d.llc_misses);
    perf::trace_emit_at(me.trace, t1, perf::trace_kind::task_pmu, w,
                        perf::pack_pmu_arg(d.cycles, d.instructions),
                        d.llc_misses >= 0xffffffffull
                            ? 0xffffffffu
                            : static_cast<std::uint32_t>(d.llc_misses));
    me.pmu_last_end = now;
    me.pmu_last_valid.store(true, std::memory_order_relaxed);
  };

  if (t->context().finished()) {
    perf::trace_emit_at(me.trace, t1, perf::trace_kind::task_end, w, t->id());
    pmu_end_emit();
    me.hist_task_duration.record(
        static_cast<std::uint64_t>(tsc_clock::to_ns(t->exec_ticks())));
    t->finish();
    me.counters.tasks_executed.fetch_add(1, std::memory_order_relaxed);
    retire(t);
    return;
  }
  if (t->consume_yield_request()) {
    perf::trace_emit_at(me.trace, t1, perf::trace_kind::phase_end, w, t->id(), 1);
    pmu_end_emit();
    t->requeue_after_yield();
    queued_.fetch_add(1, std::memory_order_relaxed);
    policy_->enqueue_ready(*this, w, t);
    return;
  }
  perf::trace_emit_at(me.trace, t1, perf::trace_kind::phase_end, w, t->id(), 2);
  pmu_end_emit();
  if (!t->finalize_suspend()) {
    // A wake arrived while the task was switching away.
    queued_.fetch_add(1, std::memory_order_relaxed);
    policy_->enqueue_ready(*this, w, t);
  }
}

thread_manager::totals thread_manager::counter_totals() const {
  totals sum;
  const double ns_per_tick = tsc_clock::ns_per_tick();
  std::uint64_t exec_ticks = 0;
  std::uint64_t func_ticks = 0;
  for (const auto& wd : workers_) {
    const worker_counters& c = wd->counters;
    sum.tasks_executed += c.tasks_executed.load(std::memory_order_relaxed);
    sum.phases_executed += c.phases_executed.load(std::memory_order_relaxed);
    exec_ticks += c.exec_ticks.load(std::memory_order_relaxed);
    func_ticks += c.func_ticks.load(std::memory_order_relaxed);
    sum.tasks_stolen += c.tasks_stolen.load(std::memory_order_relaxed);
    sum.tasks_stolen_remote +=
        c.tasks_stolen_remote.load(std::memory_order_relaxed);
    sum.tasks_converted += c.tasks_converted.load(std::memory_order_relaxed);
    sum.tasks_spawned += c.tasks_spawned.load(std::memory_order_relaxed);
    sum.tasks_split += c.tasks_split.load(std::memory_order_relaxed);
    sum.splits_denied += c.splits_denied.load(std::memory_order_relaxed);
    sum.steal_req_sent += c.steal_req_sent.load(std::memory_order_relaxed);
    sum.steal_req_forwarded +=
        c.steal_req_forwarded.load(std::memory_order_relaxed);
    sum.steal_req_declined +=
        c.steal_req_declined.load(std::memory_order_relaxed);
    sum.pmu_cycles_task += c.pmu_cycles_task.load(std::memory_order_relaxed);
    sum.pmu_cycles_sched += c.pmu_cycles_sched.load(std::memory_order_relaxed);
    sum.pmu_instructions_task +=
        c.pmu_instructions_task.load(std::memory_order_relaxed);
    sum.pmu_instructions_sched +=
        c.pmu_instructions_sched.load(std::memory_order_relaxed);
    sum.pmu_llc_misses += c.pmu_llc_misses.load(std::memory_order_relaxed);
    sum.pmu_branch_misses +=
        c.pmu_branch_misses.load(std::memory_order_relaxed);
    sum.pmu_stalled_backend +=
        c.pmu_stalled_backend.load(std::memory_order_relaxed);
    sum.pmu_ctx_switches +=
        c.pmu_ctx_switches.load(std::memory_order_relaxed);

    const queue_access_counts q = wd->queue.counts();
    const queue_access_counts h = wd->high_queue.counts();
    sum.queues.pending_accesses +=
        q.pending_accesses + h.pending_accesses +
        c.extra_pending_accesses.load(std::memory_order_relaxed);
    sum.queues.pending_misses += q.pending_misses + h.pending_misses +
                                 c.extra_pending_misses.load(std::memory_order_relaxed);
    sum.queues.staged_accesses += q.staged_accesses + h.staged_accesses;
    sum.queues.staged_misses += q.staged_misses + h.staged_misses;
  }
  const queue_access_counts low = low_queue_.counts();
  sum.queues.pending_accesses += low.pending_accesses;
  sum.queues.pending_misses += low.pending_misses;
  sum.queues.staged_accesses += low.staged_accesses;
  sum.queues.staged_misses += low.staged_misses;
  sum.tasks_spawned += external_spawns_.load(std::memory_order_relaxed);

  sum.exec_ns = static_cast<std::uint64_t>(static_cast<double>(exec_ticks) * ns_per_tick);
  sum.func_ns = static_cast<std::uint64_t>(static_cast<double>(func_ticks) * ns_per_tick);
  return sum;
}

void thread_manager::reset_counters() {
  for (auto& wd : workers_) {
    wd->counters.reset();
    wd->queue.reset_counts();
    wd->high_queue.reset_counts();
    wd->hist_task_duration.reset();
    wd->hist_task_overhead.reset();
    wd->hist_task_ipc.reset();
    wd->hist_task_llc.reset();
    wd->hist_task_instructions.reset();
    wd->last_phase_end_ticks.store(0, std::memory_order_relaxed);
    wd->pmu_last_valid.store(false, std::memory_order_relaxed);
  }
  low_queue_.reset_counts();
  external_spawns_.store(0, std::memory_order_relaxed);
  external_rejected_.store(0, std::memory_order_relaxed);
}

void thread_manager::register_counters() {
  auto& reg = perf::registry::instance();
  reg.remove_prefix("/threads");

  const auto tot = [this] { return counter_totals(); };
  using perf::counter_kind;

  reg.add("/threads/count/cumulative", counter_kind::monotonic,
          "number of HPX-threads (tasks) executed to completion (nt)",
          [tot] { return static_cast<double>(tot().tasks_executed); });
  reg.add("/threads/count/cumulative-phases", counter_kind::monotonic,
          "number of thread phases (activations) executed",
          [tot] { return static_cast<double>(tot().phases_executed); });
  reg.add("/threads/time/cumulative", counter_kind::monotonic,
          "sum of task execution time (Σt_exec), ns",
          [tot] { return static_cast<double>(tot().exec_ns); });
  reg.add("/threads/time/overall", counter_kind::monotonic,
          "sum of worker-loop time (Σt_func), ns",
          [tot] { return static_cast<double>(tot().func_ns); });
  reg.add("/threads/time/cumulative-overhead", counter_kind::monotonic,
          "sum of thread-management time (Σt_func − Σt_exec), ns", [tot] {
            const auto s = tot();
            return static_cast<double>(s.func_ns - std::min(s.func_ns, s.exec_ns));
          });
  reg.add("/threads/time/average", counter_kind::gauge,
          "average task duration td = Σt_exec / nt, ns (Eq. 2)", [tot] {
            const auto s = tot();
            return s.tasks_executed
                       ? static_cast<double>(s.exec_ns) /
                             static_cast<double>(s.tasks_executed)
                       : 0.0;
          });
  reg.add("/threads/time/average-overhead", counter_kind::gauge,
          "average task overhead to = (Σt_func − Σt_exec) / nt, ns (Eq. 3)", [tot] {
            const auto s = tot();
            if (!s.tasks_executed) return 0.0;
            const double overhead =
                static_cast<double>(s.func_ns) - static_cast<double>(s.exec_ns);
            return std::max(0.0, overhead) / static_cast<double>(s.tasks_executed);
          });
  reg.add("/threads/time/average-phase", counter_kind::gauge,
          "average phase duration = Σt_exec / phases, ns", [tot] {
            const auto s = tot();
            return s.phases_executed
                       ? static_cast<double>(s.exec_ns) /
                             static_cast<double>(s.phases_executed)
                       : 0.0;
          });
  reg.add("/threads/time/average-phase-overhead", counter_kind::gauge,
          "average phase overhead = (Σt_func − Σt_exec) / phases, ns", [tot] {
            const auto s = tot();
            if (!s.phases_executed) return 0.0;
            const double overhead =
                static_cast<double>(s.func_ns) - static_cast<double>(s.exec_ns);
            return std::max(0.0, overhead) / static_cast<double>(s.phases_executed);
          });
  reg.add("/threads/idle-rate", counter_kind::rate,
          "(Σt_func − Σt_exec) / Σt_func (Eq. 1)", [tot] {
            const auto s = tot();
            if (!s.func_ns) return 0.0;
            const double overhead =
                static_cast<double>(s.func_ns) - static_cast<double>(s.exec_ns);
            return std::max(0.0, overhead) / static_cast<double>(s.func_ns);
          });
  reg.add("/threads/count/pending-accesses", counter_kind::monotonic,
          "scheduler look-ups into pending queues",
          [tot] { return static_cast<double>(tot().queues.pending_accesses); });
  reg.add("/threads/count/pending-misses", counter_kind::monotonic,
          "pending-queue look-ups that found no work",
          [tot] { return static_cast<double>(tot().queues.pending_misses); });
  reg.add("/threads/count/staged-accesses", counter_kind::monotonic,
          "scheduler look-ups into staged queues",
          [tot] { return static_cast<double>(tot().queues.staged_accesses); });
  reg.add("/threads/count/staged-misses", counter_kind::monotonic,
          "staged-queue look-ups that found no work",
          [tot] { return static_cast<double>(tot().queues.staged_misses); });
  reg.add("/threads/count/stolen", counter_kind::monotonic,
          "tasks obtained from another worker's queues",
          [tot] { return static_cast<double>(tot().tasks_stolen); });
  // Locality split of /threads/count/stolen. Writers bump `stolen` before
  // `stolen-remote`, and local is derived as the guarded difference, so
  // stolen-local + stolen-remote == stolen even against in-flight updates.
  reg.add("/threads/count/stolen-local", counter_kind::monotonic,
          "stolen tasks whose victim shares the thief's NUMA domain",
          [tot] {
            const auto s = tot();
            return static_cast<double>(
                s.tasks_stolen - std::min(s.tasks_stolen, s.tasks_stolen_remote));
          });
  reg.add("/threads/count/stolen-remote", counter_kind::monotonic,
          "stolen tasks whose victim lives in a different NUMA domain",
          [tot] { return static_cast<double>(tot().tasks_stolen_remote); });
  reg.add("/threads/count/pin-rejected", counter_kind::monotonic,
          "worker CPU pins the kernel rejected (lifetime total; not cleared "
          "by reset_counters)",
          [this] { return static_cast<double>(pins_rejected()); });
  reg.add("/threads/count/converted", counter_kind::monotonic,
          "staged->pending conversions",
          [tot] { return static_cast<double>(tot().tasks_converted); });
  reg.add("/threads/count/spawned", counter_kind::monotonic,
          "tasks created via spawn/spawn_on (worker + external threads); "
          "cross-checks the trace's task_enqueue event count",
          [tot] { return static_cast<double>(tot().tasks_spawned); });
  // The external-spawn lane's own counters: spawned already folds external
  // spawns into its total, but saturation analysis of a service ingress
  // needs the lane isolated (and rejected never reaches spawn at all).
  reg.add("/threads/count/external-spawns", counter_kind::monotonic,
          "spawn/spawn_on calls from non-worker threads (the external lane)",
          [this] { return static_cast<double>(external_spawns()); });
  reg.add("/threads/count/external-rejected", counter_kind::monotonic,
          "external submissions refused by admission control before spawn "
          "(service/service.hpp reject policy)",
          [this] { return static_cast<double>(external_rejected()); });
  reg.add("/threads/count/splits", counter_kind::monotonic,
          "lazy splittable-range splits (back half re-enqueued as a new task)",
          [tot] { return static_cast<double>(tot().tasks_split); });
  reg.add("/threads/count/split-denied", counter_kind::monotonic,
          "split demands denied because the remaining range was below "
          "2×GRAN_SPLIT_MIN",
          [tot] { return static_cast<double>(tot().splits_denied); });
  // Channel-steal request traffic (policy_channel_steal.hpp); zero under
  // the queue-based policies. sent == handoffs + declined at quiescence.
  reg.add("/threads/count/steal-req-sent", counter_kind::monotonic,
          "steal requests originated by idle workers (channel-steal)",
          [tot] { return static_cast<double>(tot().steal_req_sent); });
  reg.add("/threads/count/steal-req-forwarded", counter_kind::monotonic,
          "steal requests passed on by a victim with an empty deque "
          "(channel-steal)",
          [tot] { return static_cast<double>(tot().steal_req_forwarded); });
  reg.add("/threads/count/steal-req-declined", counter_kind::monotonic,
          "steal requests returned to the thief unserved after a full "
          "circuit (channel-steal)",
          [tot] { return static_cast<double>(tot().steal_req_declined); });
  reg.add("/threads/count/instantaneous/alive", counter_kind::gauge,
          "tasks spawned and not yet terminated",
          [this] { return static_cast<double>(tasks_alive()); });
  reg.add("/threads/count/instantaneous/pending", counter_kind::gauge,
          "tasks currently queued as pending across all workers", [this] {
            std::size_t n = low_priority_queue().pending_size_approx();
            for (int w = 0; w < num_workers(); ++w)
              n += worker(w).queue.pending_size_approx() +
                   worker(w).high_queue.pending_size_approx();
            return static_cast<double>(n);
          });
  reg.add("/threads/count/instantaneous/staged", counter_kind::gauge,
          "tasks currently queued as staged across all workers", [this] {
            std::size_t n = low_priority_queue().staged_size_approx();
            for (int w = 0; w < num_workers(); ++w)
              n += worker(w).queue.staged_size_approx() +
                   worker(w).high_queue.staged_size_approx();
            return static_cast<double>(n);
          });
  reg.add("/threads/count/trace-dropped", counter_kind::monotonic,
          "trace events overwritten by ring wraparound (0 unless tracing "
          "outran GRAN_TRACE_BUF)",
          [] { return static_cast<double>(perf::tracer::instance().total_dropped()); });
  reg.add("/threads/count/instantaneous/starving", counter_kind::gauge,
          "workers whose last scheduler round found no work",
          [this] { return static_cast<double>(starving_workers()); });
  reg.add("/threads/count/instantaneous/queued", counter_kind::gauge,
          "tasks enqueued and not yet picked up by a worker", [this] {
            return static_cast<double>(std::max<std::int64_t>(0, queued_tasks()));
          });

  // Stall-watchdog incident totals (perf/watchdog.hpp). Process-global so a
  // stall detected in one measurement region stays visible after the
  // telemetry session restarts; not cleared by reset_counters.
  reg.add("/threads/count/stall-stuck", counter_kind::monotonic,
          "watchdog incidents: a phase exceeded the stuck threshold", [] {
            return static_cast<double>(
                perf::stall_stats::instance().stuck.load(std::memory_order_relaxed));
          });
  reg.add("/threads/count/stall-starved", counter_kind::monotonic,
          "watchdog incidents: starving workers with queued work not flowing",
          [] {
            return static_cast<double>(perf::stall_stats::instance().starved.load(
                std::memory_order_relaxed));
          });
  reg.add("/threads/count/stall-flatline", counter_kind::monotonic,
          "watchdog incidents: tasks alive but nothing executing (suspected "
          "deadlock)",
          [] {
            return static_cast<double>(perf::stall_stats::instance().flatline.load(
                std::memory_order_relaxed));
          });
  reg.add("/threads/watchdog/heartbeat-age-max-ns", counter_kind::gauge,
          "age of the stalest worker heartbeat, ns", [this] {
            auto& board = perf::heartbeat_board::instance();
            const std::uint64_t now = tsc_clock::now();
            double max_age = 0;
            for (int w = 0; w < num_workers(); ++w) {
              const perf::heartbeat_slot* slot = board.slot(w);
              if (slot == nullptr) break;
              const std::uint64_t beat =
                  slot->beat_ticks.load(std::memory_order_relaxed);
              if (beat == 0 || now <= beat) continue;
              max_age = std::max(
                  max_age, static_cast<double>(tsc_clock::to_ns(now - beat)));
            }
            return max_age;
          });

  // PMU plane (perf/pmu.hpp): negotiated capability plus the cumulative
  // hardware-unit sums, split kernel-vs-scheduler like the wall-clock
  // decomposition. All zero while GRAN_PMU is off (mode reads 0 = off).
  reg.add("/threads/pmu/mode", counter_kind::gauge,
          "PMU capability rung: 0 off, 1 full, 2 reduced, 3 minimal, "
          "4 software-only",
          [] {
            return static_cast<double>(
                static_cast<int>(perf::pmu_plane::instance().mode()));
          });
  reg.add("/threads/pmu/events-unavailable", counter_kind::gauge,
          "hardware events the negotiated PMU mode cannot deliver (of 4 "
          "beyond cycles)",
          [] {
            return static_cast<double>(
                perf::pmu_plane::instance().events_unavailable());
          });
  reg.add("/threads/pmu/cycles-task", counter_kind::monotonic,
          "PMU cycles spent inside task phases (kernel work)",
          [tot] { return static_cast<double>(tot().pmu_cycles_task); });
  reg.add("/threads/pmu/cycles-sched", counter_kind::monotonic,
          "PMU cycles spent in inter-phase gaps (scheduler overhead)",
          [tot] { return static_cast<double>(tot().pmu_cycles_sched); });
  reg.add("/threads/pmu/instructions-task", counter_kind::monotonic,
          "instructions retired inside task phases",
          [tot] { return static_cast<double>(tot().pmu_instructions_task); });
  reg.add("/threads/pmu/instructions-sched", counter_kind::monotonic,
          "instructions retired in inter-phase gaps",
          [tot] { return static_cast<double>(tot().pmu_instructions_sched); });
  reg.add("/threads/pmu/llc-misses", counter_kind::monotonic,
          "last-level-cache misses inside task phases",
          [tot] { return static_cast<double>(tot().pmu_llc_misses); });
  reg.add("/threads/pmu/branch-misses", counter_kind::monotonic,
          "branch mispredictions inside task phases",
          [tot] { return static_cast<double>(tot().pmu_branch_misses); });
  reg.add("/threads/pmu/stalled-backend", counter_kind::monotonic,
          "backend-stalled cycles inside task phases",
          [tot] { return static_cast<double>(tot().pmu_stalled_backend); });
  reg.add("/threads/pmu/context-switches", counter_kind::monotonic,
          "context switches observed across phases and gaps",
          [tot] { return static_cast<double>(tot().pmu_ctx_switches); });

  // Distribution counters: log2-bucketed histograms of per-task values,
  // exposed as percentile/mean/count gauges (docs/COUNTERS.md). The spread
  // these report is exactly what the paper's scalar means (Eqs. 2/3) hide.
  const auto duration_snap = [this] {
    perf::histogram_snapshot s;
    for (const auto& wd : workers_) s += wd->hist_task_duration.snap();
    return s;
  };
  const auto overhead_snap = [this] {
    perf::histogram_snapshot s;
    for (const auto& wd : workers_) s += wd->hist_task_overhead.snap();
    return s;
  };
  const auto ipc_snap = [this] {
    perf::histogram_snapshot s;
    for (const auto& wd : workers_) s += wd->hist_task_ipc.snap();
    return s;
  };
  const auto llc_snap = [this] {
    perf::histogram_snapshot s;
    for (const auto& wd : workers_) s += wd->hist_task_llc.snap();
    return s;
  };
  const auto instructions_snap = [this] {
    perf::histogram_snapshot s;
    for (const auto& wd : workers_) s += wd->hist_task_instructions.snap();
    return s;
  };
  struct histogram_registration {
    const char* base;
    std::function<perf::histogram_snapshot()> snap;
    const char* what;
    const char* unit;
  };
  const histogram_registration histograms[] = {
      {"/threads/histogram/task-duration", duration_snap,
       "task duration (total t_exec per completed task)", "ns"},
      {"/threads/histogram/task-overhead", overhead_snap,
       "per-slot overhead (non-exec gap between phases)", "ns"},
      {"/threads/histogram/task-ipc", ipc_snap,
       "per-phase instructions per cycle", "milli-IPC"},
      {"/threads/histogram/task-llc-miss", llc_snap,
       "per-phase last-level-cache misses", "misses"},
      {"/threads/histogram/task-instructions", instructions_snap,
       "per-phase instructions retired", "instructions"},
  };
  auto& hreg = perf::histogram_registry::instance();
  hreg.remove_prefix("/threads");
  for (const auto& h : histograms) {
    const std::string base = h.base;
    const std::string what = h.what;
    const std::string unit = h.unit;
    for (const double p : {50.0, 95.0, 99.0}) {
      const std::string tag = "p" + std::to_string(static_cast<int>(p));
      reg.add(base + "/" + tag, counter_kind::gauge,
              tag + " " + what + ", " + unit,
              [snap = h.snap, p] { return snap().percentile(p); });
    }
    reg.add(base + "/mean", counter_kind::gauge,
            "mean " + what + ", " + unit,
            [snap = h.snap] { return snap().mean(); });
    reg.add(base + "/count", counter_kind::monotonic, "samples in " + what,
            [snap = h.snap] { return static_cast<double>(snap().count); });
    // Raw-snapshot source for windowed telemetry: interval percentiles need
    // the bucket structure (histogram_snapshot::snapshot_delta), which the
    // scalar gauges above cannot provide.
    hreg.add(base, h.snap);
  }

  // Per-worker instances of the headline counters.
  for (int w = 0; w < num_workers(); ++w) {
    const std::string inst = "/threads{worker#" + std::to_string(w) + "}";
    const worker_data* wd = workers_[static_cast<std::size_t>(w)].get();
    reg.add(inst + "/count/cumulative", counter_kind::monotonic,
            "tasks executed by this worker", [wd] {
              return static_cast<double>(
                  wd->counters.tasks_executed.load(std::memory_order_relaxed));
            });
    reg.add(inst + "/time/cumulative", counter_kind::monotonic,
            "Σt_exec of this worker, ns", [wd] {
              return static_cast<double>(
                         wd->counters.exec_ticks.load(std::memory_order_relaxed)) *
                     tsc_clock::ns_per_tick();
            });
    reg.add(inst + "/time/overall", counter_kind::monotonic,
            "Σt_func of this worker, ns", [wd] {
              return static_cast<double>(
                         wd->counters.func_ticks.load(std::memory_order_relaxed)) *
                     tsc_clock::ns_per_tick();
            });
    reg.add(inst + "/count/pending-accesses", counter_kind::monotonic,
            "pending-queue look-ups on this worker's queues", [wd] {
              return static_cast<double>(wd->queue.counts().pending_accesses +
                                         wd->high_queue.counts().pending_accesses);
            });
    reg.add(inst + "/count/pending-misses", counter_kind::monotonic,
            "pending-queue misses on this worker's queues", [wd] {
              return static_cast<double>(wd->queue.counts().pending_misses +
                                         wd->high_queue.counts().pending_misses);
            });
    reg.add(inst + "/count/stolen", counter_kind::monotonic,
            "tasks this worker obtained from another worker's queues", [wd] {
              return static_cast<double>(
                  wd->counters.tasks_stolen.load(std::memory_order_relaxed));
            });
    reg.add(inst + "/count/stolen-local", counter_kind::monotonic,
            "tasks this worker stole within its NUMA domain", [wd] {
              const auto s =
                  wd->counters.tasks_stolen.load(std::memory_order_relaxed);
              const auto r = wd->counters.tasks_stolen_remote.load(
                  std::memory_order_relaxed);
              return static_cast<double>(s - std::min(s, r));
            });
    reg.add(inst + "/count/stolen-remote", counter_kind::monotonic,
            "tasks this worker stole from a different NUMA domain", [wd] {
              return static_cast<double>(wd->counters.tasks_stolen_remote.load(
                  std::memory_order_relaxed));
            });
    for (const double p : {50.0, 95.0, 99.0}) {
      const std::string tag = "p" + std::to_string(static_cast<int>(p));
      reg.add(inst + "/histogram/task-duration/" + tag, counter_kind::gauge,
              tag + " task duration on this worker, ns",
              [wd, p] { return wd->hist_task_duration.snap().percentile(p); });
    }
    reg.add(inst + "/histogram/task-duration/count", counter_kind::monotonic,
            "task-duration samples on this worker", [wd] {
              return static_cast<double>(wd->hist_task_duration.count());
            });
    reg.add(inst + "/watchdog/heartbeat-age-ns", counter_kind::gauge,
            "age of this worker's last heartbeat, ns", [wd] {
              if (wd->heartbeat == nullptr) return -1.0;
              const std::uint64_t beat =
                  wd->heartbeat->beat_ticks.load(std::memory_order_relaxed);
              const std::uint64_t now = tsc_clock::now();
              if (beat == 0 || now <= beat) return 0.0;
              return static_cast<double>(tsc_clock::to_ns(now - beat));
            });
    for (const double p : {50.0, 95.0, 99.0}) {
      const std::string tag = "p" + std::to_string(static_cast<int>(p));
      reg.add(inst + "/histogram/task-ipc/" + tag, counter_kind::gauge,
              tag + " per-phase IPC on this worker, milli-IPC",
              [wd, p] { return wd->hist_task_ipc.snap().percentile(p); });
    }
    reg.add(inst + "/histogram/task-ipc/count", counter_kind::monotonic,
            "task-ipc samples on this worker",
            [wd] { return static_cast<double>(wd->hist_task_ipc.count()); });
    hreg.add(inst + "/histogram/task-duration",
             [wd] { return wd->hist_task_duration.snap(); });
    hreg.add(inst + "/histogram/task-ipc",
             [wd] { return wd->hist_task_ipc.snap(); });
  }
}

void thread_manager::unregister_counters() {
  perf::registry::instance().remove_prefix("/threads");
  perf::histogram_registry::instance().remove_prefix("/threads");
}

// --- this_task -------------------------------------------------------------

namespace this_task {

task* current() noexcept { return tl_task; }

void yield() {
  task* t = tl_task;
  if (t == nullptr) {
    std::this_thread::yield();
    return;
  }
  t->request_yield();
  t->mark_suspending();
  fiber::current()->suspend();
}

void prepare_suspend() {
  GRAN_ASSERT_MSG(tl_task != nullptr, "prepare_suspend outside a task");
  tl_task->mark_suspending();
}

void cancel_suspend() {
  GRAN_ASSERT_MSG(tl_task != nullptr, "cancel_suspend outside a task");
  tl_task->cancel_suspend();
}

void commit_suspend() {
  GRAN_ASSERT_MSG(tl_task != nullptr, "commit_suspend outside a task");
  fiber::current()->suspend();
}

void suspend() {
  prepare_suspend();
  commit_suspend();
}

std::uint64_t id() noexcept { return tl_task ? tl_task->id() : 0; }
int worker_index() noexcept { return tl_worker; }

}  // namespace this_task

}  // namespace gran
