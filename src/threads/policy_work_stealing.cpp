#include "threads/policy_work_stealing.hpp"

#include <stdexcept>
#include <string>

#include "perf/trace.hpp"
#include "threads/task.hpp"
#include "threads/thread_manager.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"

namespace gran {

void work_stealing_policy::init(thread_manager& tm) {
  num_workers_ = tm.num_workers();

  std::string order = tm.config().steal_order;
  if (order.empty()) order = env_string("GRAN_STEAL_ORDER", "");
  if (order.empty()) order = "hier";
  if (order != "hier" && order != "flat")
    throw std::invalid_argument("unknown steal order: " + order + " (hier|flat)");
  hier_ = order == "hier";

  deques_.clear();
  deques_.reserve(static_cast<std::size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    auto slot = std::make_unique<deque_slot>();
    // Victim tiers from the topology distance: SMT sibling (0), same NUMA
    // domain (1), remote (2). Ring order from w+1 within each tier keeps
    // the flat ring's neighbor-first determinism inside a tier.
    slot->victims.reserve(static_cast<std::size_t>(num_workers_ - 1));
    for (int tier = 0; tier < 3; ++tier) {
      for (int k = 1; k < num_workers_; ++k) {
        const int v = (w + k) % num_workers_;
        if (tm.steal_distance(w, v) == tier) slot->victims.push_back(v);
      }
      slot->tier_end[tier] = static_cast<int>(slot->victims.size());
    }
    deques_.push_back(std::move(slot));
  }
}

void work_stealing_policy::push_remote(thread_manager& tm, int target, task* t) {
  // This policy has no staged stage: attach the context right away.
  if (!t->has_context()) tm.convert(t);
  deques_[static_cast<std::size_t>(target)]->inbox.push(t);
}

void work_stealing_policy::enqueue_new(thread_manager& tm, int home, task* t) {
  if (home >= 0) {
    // `home` is by contract the calling worker — the only thread allowed to
    // push the bottom of its Chase–Lev deque.
    GRAN_DEBUG_ASSERT(home == thread_manager::current_worker());
    if (!t->has_context()) tm.convert(t);
    deques_[static_cast<std::size_t>(home)]->deque.push(t);
    return;
  }
  const int target =
      static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<std::uint64_t>(num_workers_));
  push_remote(tm, target, t);
}

void work_stealing_policy::enqueue_ready(thread_manager& tm, int home, task* t) {
  if (home >= 0) {
    GRAN_DEBUG_ASSERT(home == thread_manager::current_worker());
    if (!t->has_context()) tm.convert(t);
    deques_[static_cast<std::size_t>(home)]->deque.push(t);
    return;
  }
  // External wake: prefer the task's previous worker (warm caches), but only
  // if it is a valid index under the *current* worker count.
  int target = t->last_worker();
  if (target < 0 || target >= num_workers_)
    target = static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) %
                              static_cast<std::uint64_t>(num_workers_));
  push_remote(tm, target, t);
}

void work_stealing_policy::enqueue_hinted(thread_manager& tm, int target, task* t) {
  if (target == thread_manager::current_worker()) {
    if (!t->has_context()) tm.convert(t);
    deques_[static_cast<std::size_t>(target)]->deque.push(t);
    return;
  }
  push_remote(tm, target, t);
}

task* work_stealing_policy::get_next(thread_manager& tm, int w) {
  worker_counters& c = tm.worker(w).counters;
  deque_slot& mine = *deques_[static_cast<std::size_t>(w)];

  // Owner side: LIFO pop. Counted as a pending-queue access so the paper's
  // queue metrics remain comparable across policies.
  c.extra_pending_accesses.fetch_add(1, std::memory_order_relaxed);
  if (auto t = mine.deque.pop()) return *t;
  c.extra_pending_misses.fetch_add(1, std::memory_order_relaxed);

  // Cross-worker hand-offs addressed to this worker.
  c.extra_pending_accesses.fetch_add(1, std::memory_order_relaxed);
  if (auto t = mine.inbox.pop()) return *t;
  c.extra_pending_misses.fetch_add(1, std::memory_order_relaxed);

  // Thief side. One probe (one counted access) per steal attempt,
  // regardless of internal CAS retries; a victim whose deque is dry gets a
  // second probe into its inbox. Ordering the `stolen` bump before the
  // `stolen-remote` bump keeps the derived stolen-local counter from
  // underflowing under concurrent reads.
  const auto try_victim = [&](int victim) -> task* {
    deque_slot& v = *deques_[static_cast<std::size_t>(victim)];
    c.extra_pending_accesses.fetch_add(1, std::memory_order_relaxed);
    if (auto t = v.deque.steal()) {
      const int distance = tm.steal_distance(w, victim);
      c.tasks_stolen.fetch_add(1, std::memory_order_relaxed);
      if (distance == 2)
        c.tasks_stolen_remote.fetch_add(1, std::memory_order_relaxed);
      perf::trace_emit(tm.worker(w).trace, perf::trace_kind::steal, w, (*t)->id(),
                       perf::steal_arg2(victim, distance));
      return *t;
    }
    c.extra_pending_misses.fetch_add(1, std::memory_order_relaxed);
    c.extra_pending_accesses.fetch_add(1, std::memory_order_relaxed);
    if (auto t = v.inbox.pop()) {
      const int distance = tm.steal_distance(w, victim);
      c.tasks_stolen.fetch_add(1, std::memory_order_relaxed);
      if (distance == 2)
        c.tasks_stolen_remote.fetch_add(1, std::memory_order_relaxed);
      perf::trace_emit(tm.worker(w).trace, perf::trace_kind::steal, w, (*t)->id(),
                       perf::steal_arg2(victim, distance));
      return *t;
    }
    c.extra_pending_misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  };

  if (hier_) {
    // Tier by tier: SMT sibling, same domain, remote. The per-sweep nonce
    // rotates the starting victim within each tier so simultaneously idle
    // workers fan out instead of converging on the same victim (the flat
    // ring's herd: every idle worker's first probe was w+1).
    const std::uint32_t r = mine.nonce++;
    int begin = 0;
    for (int tier = 0; tier < 3; ++tier) {
      const int end = mine.tier_end[tier];
      const int size = end - begin;
      for (int k = 0; k < size; ++k) {
        const int idx = begin + static_cast<int>((r + static_cast<std::uint32_t>(k)) %
                                                 static_cast<std::uint32_t>(size));
        if (task* t = try_victim(mine.victims[static_cast<std::size_t>(idx)]))
          return t;
      }
      begin = end;
    }
  } else {
    // Flat ablation baseline: fixed ring order over all other workers.
    const int n = num_workers_;
    for (int k = 1; k < n; ++k)
      if (task* t = try_victim((w + k) % n)) return t;
  }

  // Low-priority work last, as in every policy.
  if (auto t = tm.low_priority_queue().pop_pending()) return *t;
  if (auto d = tm.low_priority_queue().pop_staged()) {
    tm.convert(*d);
    return *d;
  }
  return nullptr;
}

bool work_stealing_policy::queues_empty(const thread_manager& tm) const {
  // Lock-free bottom/top scan — no mutex per worker as the old
  // implementation had. empty_approx is conservative for the shutdown and
  // parking protocols: a concurrent push is caught by the enqueuer's wakeup.
  for (const auto& d : deques_)
    if (!d->deque.empty_approx() || !d->inbox.empty_approx()) return false;
  if (tm.handoffs_in_flight() != 0) return false;
  return tm.low_priority_queue().empty_approx();
}

}  // namespace gran
