#include "threads/policy_work_stealing.hpp"

#include "perf/trace.hpp"
#include "threads/task.hpp"
#include "threads/thread_manager.hpp"
#include "util/assert.hpp"

namespace gran {

void work_stealing_policy::init(thread_manager& tm) {
  num_workers_ = tm.num_workers();
  deques_.clear();
  deques_.reserve(static_cast<std::size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w)
    deques_.push_back(std::make_unique<deque_slot>());
}

void work_stealing_policy::push_remote(thread_manager& tm, int target, task* t) {
  // This policy has no staged stage: attach the context right away.
  if (!t->has_context()) tm.convert(t);
  deques_[static_cast<std::size_t>(target)]->inbox.push(t);
}

void work_stealing_policy::enqueue_new(thread_manager& tm, int home, task* t) {
  if (home >= 0) {
    // `home` is by contract the calling worker — the only thread allowed to
    // push the bottom of its Chase–Lev deque.
    GRAN_DEBUG_ASSERT(home == thread_manager::current_worker());
    if (!t->has_context()) tm.convert(t);
    deques_[static_cast<std::size_t>(home)]->deque.push(t);
    return;
  }
  const int target =
      static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<std::uint64_t>(num_workers_));
  push_remote(tm, target, t);
}

void work_stealing_policy::enqueue_ready(thread_manager& tm, int home, task* t) {
  if (home >= 0) {
    GRAN_DEBUG_ASSERT(home == thread_manager::current_worker());
    if (!t->has_context()) tm.convert(t);
    deques_[static_cast<std::size_t>(home)]->deque.push(t);
    return;
  }
  // External wake: prefer the task's previous worker (warm caches), but only
  // if it is a valid index under the *current* worker count.
  int target = t->last_worker();
  if (target < 0 || target >= num_workers_)
    target = static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) %
                              static_cast<std::uint64_t>(num_workers_));
  push_remote(tm, target, t);
}

task* work_stealing_policy::get_next(thread_manager& tm, int w) {
  worker_counters& c = tm.worker(w).counters;
  deque_slot& mine = *deques_[static_cast<std::size_t>(w)];

  // Owner side: LIFO pop. Counted as a pending-queue access so the paper's
  // queue metrics remain comparable across policies.
  c.extra_pending_accesses.fetch_add(1, std::memory_order_relaxed);
  if (auto t = mine.deque.pop()) return *t;
  c.extra_pending_misses.fetch_add(1, std::memory_order_relaxed);

  // Cross-worker hand-offs addressed to this worker.
  c.extra_pending_accesses.fetch_add(1, std::memory_order_relaxed);
  if (auto t = mine.inbox.pop()) return *t;
  c.extra_pending_misses.fetch_add(1, std::memory_order_relaxed);

  // Thief side: ring order over all other workers. One probe (one counted
  // access) per steal attempt, regardless of internal CAS retries; a victim
  // whose deque is dry gets a second probe into its inbox.
  const int n = num_workers_;
  for (int k = 1; k < n; ++k) {
    const int victim = (w + k) % n;
    deque_slot& v = *deques_[static_cast<std::size_t>(victim)];
    c.extra_pending_accesses.fetch_add(1, std::memory_order_relaxed);
    if (auto t = v.deque.steal()) {
      c.tasks_stolen.fetch_add(1, std::memory_order_relaxed);
      perf::trace_emit(tm.worker(w).trace, perf::trace_kind::steal, w, (*t)->id(),
                       static_cast<std::uint32_t>(victim));
      return *t;
    }
    c.extra_pending_misses.fetch_add(1, std::memory_order_relaxed);
    c.extra_pending_accesses.fetch_add(1, std::memory_order_relaxed);
    if (auto t = v.inbox.pop()) {
      c.tasks_stolen.fetch_add(1, std::memory_order_relaxed);
      perf::trace_emit(tm.worker(w).trace, perf::trace_kind::steal, w, (*t)->id(),
                       static_cast<std::uint32_t>(victim));
      return *t;
    }
    c.extra_pending_misses.fetch_add(1, std::memory_order_relaxed);
  }

  // Low-priority work last, as in every policy.
  if (auto t = tm.low_priority_queue().pop_pending()) return *t;
  if (auto d = tm.low_priority_queue().pop_staged()) {
    tm.convert(*d);
    return *d;
  }
  return nullptr;
}

bool work_stealing_policy::queues_empty(const thread_manager& tm) const {
  // Lock-free bottom/top scan — no mutex per worker as the old
  // implementation had. empty_approx is conservative for the shutdown and
  // parking protocols: a concurrent push is caught by the enqueuer's wakeup.
  for (const auto& d : deques_)
    if (!d->deque.empty_approx() || !d->inbox.empty_approx()) return false;
  return tm.low_priority_queue().empty_approx();
}

}  // namespace gran
