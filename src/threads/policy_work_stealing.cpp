#include "threads/policy_work_stealing.hpp"

#include "threads/thread_manager.hpp"

namespace gran {

void work_stealing_policy::init(thread_manager& tm) {
  deques_.clear();
  deques_.reserve(static_cast<std::size_t>(tm.num_workers()));
  for (int w = 0; w < tm.num_workers(); ++w)
    deques_.push_back(std::make_unique<deque_slot>());
}

void work_stealing_policy::push(thread_manager& tm, int target, task* t, bool back) {
  // This policy has no staged stage: attach the context right away.
  if (!t->has_context()) tm.convert(t);
  deque_slot& d = *deques_[static_cast<std::size_t>(target)];
  std::lock_guard<std::mutex> lock(d.mutex);
  if (back)
    d.items.push_back(t);
  else
    d.items.push_front(t);
}

void work_stealing_policy::enqueue_new(thread_manager& tm, int home, task* t) {
  const int target =
      home >= 0 ? home
                : static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) %
                                   static_cast<std::uint64_t>(tm.num_workers()));
  push(tm, target, t, /*back=*/true);
}

void work_stealing_policy::enqueue_ready(thread_manager& tm, int home, task* t) {
  int target = home;
  if (target < 0) target = t->last_worker();
  if (target < 0)
    target = static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) %
                              static_cast<std::uint64_t>(tm.num_workers()));
  push(tm, target, t, /*back=*/true);
}

task* work_stealing_policy::pop_back(int w) {
  deque_slot& d = *deques_[static_cast<std::size_t>(w)];
  std::lock_guard<std::mutex> lock(d.mutex);
  if (d.items.empty()) return nullptr;
  task* t = d.items.back();
  d.items.pop_back();
  return t;
}

task* work_stealing_policy::steal_front(int victim) {
  deque_slot& d = *deques_[static_cast<std::size_t>(victim)];
  std::lock_guard<std::mutex> lock(d.mutex);
  if (d.items.empty()) return nullptr;
  task* t = d.items.front();
  d.items.pop_front();
  return t;
}

task* work_stealing_policy::get_next(thread_manager& tm, int w) {
  worker_counters& c = tm.worker(w).counters;

  // Owner side: LIFO pop. Counted as a pending-queue access so the paper's
  // queue metrics remain comparable across policies.
  c.extra_pending_accesses.fetch_add(1, std::memory_order_relaxed);
  if (task* t = pop_back(w)) return t;
  c.extra_pending_misses.fetch_add(1, std::memory_order_relaxed);

  // Thief side: ring order over all other workers.
  const int n = tm.num_workers();
  for (int k = 1; k < n; ++k) {
    const int victim = (w + k) % n;
    c.extra_pending_accesses.fetch_add(1, std::memory_order_relaxed);
    if (task* t = steal_front(victim)) {
      c.tasks_stolen.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
    c.extra_pending_misses.fetch_add(1, std::memory_order_relaxed);
  }

  // Low-priority work last, as in every policy.
  if (auto t = tm.low_priority_queue().pop_pending()) return *t;
  if (auto d = tm.low_priority_queue().pop_staged()) {
    tm.convert(*d);
    return *d;
  }
  return nullptr;
}

bool work_stealing_policy::queues_empty(const thread_manager& tm) const {
  for (const auto& d : deques_) {
    std::lock_guard<std::mutex> lock(d->mutex);
    if (!d->items.empty()) return false;
  }
  return tm.low_priority_queue().empty_approx();
}

}  // namespace gran
