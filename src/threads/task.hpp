// The HPX-thread ("task") descriptor and its state machine.
//
// Paper §I-B: "The five HPX-thread states are staged, pending, active,
// suspended, and terminated." A task is created as a cheap *description*
// (staged — no stack, no context), transformed into a runnable object with a
// context (pending), executes cooperatively (active), may suspend itself on
// synchronization (suspended) and is re-queued as pending when its wait is
// satisfied, and finally terminates.
//
// Two internal transition states make the suspend/wake handshake race-free:
//   * suspending      — the task announced it will suspend but is still on
//                        its worker's stack; it must not be resumed yet.
//   * wake_requested  — a waker arrived during `suspending`; the worker
//                        re-queues the task instead of parking it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "fiber/fiber.hpp"
#include "threads/priority.hpp"
#include "util/unique_function.hpp"

namespace gran {

class thread_manager;

enum class task_state : std::uint8_t {
  staged,
  pending,
  active,
  suspending,
  wake_requested,
  suspended,
  terminated,
};

const char* to_string(task_state s) noexcept;

class task {
 public:
  // Move-only: task bodies may capture unique_ptr and friends.
  using body_fn = unique_function<void()>;

  task(body_fn body, task_priority priority = task_priority::normal,
       const char* description = "<unnamed>");
  ~task();

  task(const task&) = delete;
  task& operator=(const task&) = delete;

  std::uint64_t id() const noexcept { return id_; }
  task_priority priority() const noexcept { return priority_; }
  const char* description() const noexcept { return description_; }
  task_state state() const noexcept { return state_.load(std::memory_order_acquire); }

  // --- transitions (asserted; each is performed by exactly one thread) ---

  // staged -> pending, attaching an execution context. Called by the worker
  // that converts the description (possibly after moving it across domains).
  void convert_to_pending(fiber_stack stack);

  // pending -> active, performed by the executing worker.
  void begin_phase(int worker_index);

  // Announces suspension from inside the task (active -> suspending).
  void mark_suspending();

  // Worker-side completion of a suspension after the context switch back:
  // suspending -> suspended. Returns false if a waker already requested a
  // wake-up (wake_requested -> pending performed here), in which case the
  // caller must re-queue the task.
  bool finalize_suspend();

  // Aborts an announced suspension without ever leaving the worker: the
  // waiting condition turned out to be already satisfied (suspending |
  // wake_requested -> active). The wait protocol is therefore:
  //   mark_suspending(); register as waiter; re-check condition;
  //   satisfied ? cancel_suspend() : context-switch away.
  void cancel_suspend();

  // Waker side: make a suspended/suspending task runnable again.
  // Returns true if the caller must enqueue the task (it won the
  // suspended -> pending transition); false if the wake was absorbed by the
  // suspending worker or the task was not asleep.
  bool wake();

  // active -> pending without any waiting (cooperative yield). Performed by
  // the worker after the context switch back when yield_requested() is set.
  void requeue_after_yield();

  // active -> terminated; body returned.
  void finish();

  // --- execution plumbing -----------------------------------------------

  bool has_context() const noexcept { return fib_ != nullptr; }
  fiber& context() noexcept { return *fib_; }
  // Reclaims the stack of a terminated task for pooling.
  fiber_stack take_stack();

  int last_worker() const noexcept { return last_worker_; }

  // Manager that owns and schedules this task (set at spawn). Lets any
  // thread — worker or external — route a wake-up correctly.
  thread_manager* owner() const noexcept { return owner_; }
  void set_owner(thread_manager* tm) noexcept { owner_ = tm; }

  void request_yield() noexcept { yield_requested_ = true; }
  bool consume_yield_request() noexcept {
    const bool y = yield_requested_;
    yield_requested_ = false;
    return y;
  }

  // Number of completed thread-phases (activations).
  std::uint32_t phases() const noexcept { return phases_; }
  void count_phase() noexcept { ++phases_; }

  // Accumulated execution time over all phases (TSC ticks). Only touched by
  // the worker currently running the task; feeds the task-duration
  // histogram when the task terminates.
  std::uint64_t exec_ticks() const noexcept { return exec_ticks_; }
  void add_exec_ticks(std::uint64_t dt) noexcept { exec_ticks_ += dt; }

 private:
  static std::atomic<std::uint64_t> next_id_;

  body_fn body_;
  std::unique_ptr<fiber> fib_;
  std::atomic<task_state> state_{task_state::staged};
  const std::uint64_t id_;
  task_priority priority_;
  const char* description_;
  thread_manager* owner_ = nullptr;
  int last_worker_ = -1;
  bool yield_requested_ = false;
  std::uint32_t phases_ = 0;
  std::uint64_t exec_ticks_ = 0;
};

}  // namespace gran
