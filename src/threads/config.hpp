// Thread-manager configuration. Mirrors the knobs the paper describes: the
// thread manager "is parameterized with the number of resources it can use,
// the number of OS threads mapped to its allocated resources, and its
// resource allocation policy (NUMA awareness)".
#pragma once

#include <cstddef>
#include <string>

namespace gran {

struct scheduler_config {
  // Worker OS threads. 0 = one per logical CPU of the host topology.
  int num_workers = 0;

  // Overrides the number of NUMA domains the workers are spread over.
  // 0 = derive from the host topology.
  int numa_domains = 0;

  // Scheduling policy: "priority-local-fifo" (the paper's), "static-fifo"
  // (no stealing), "work-stealing-lifo" (Cilk-style ablation), or
  // "channel-steal" (message-passing steal requests over SPSC channels).
  // Empty = the GRAN_POLICY environment variable, falling back to
  // "priority-local-fifo".
  std::string policy;

  // Number of high-priority dual queues (owned by the first N workers).
  // 0 = one per worker.
  int high_priority_queues = 0;

  // Pin workers to CPUs according to the topology-aware assignment plan
  // (topo/pin_plan.hpp): physical cores first, SMT siblings last, restricted
  // to the allowed cpuset. Disabled automatically when the host has fewer
  // available CPUs than workers (oversubscribed test runs).
  bool pin_workers = true;

  // Pinning layout: "compact" (fill a NUMA domain's cores before the next),
  // "scatter" (round-robin cores across domains), or "none". Empty = the
  // GRAN_PIN environment variable, falling back to "compact".
  std::string pin;

  // Victim-selection order for the work-stealing policy: "hier" (SMT
  // sibling -> same NUMA domain -> remote domains, rotating start per tier)
  // or "flat" (the old fixed (w+k) % n ring — kept as the ablation
  // baseline). Empty = the GRAN_STEAL_ORDER environment variable, falling
  // back to "hier".
  std::string steal_order;

  // Channel-steal batching: "one" (single task per request), "half" (victim
  // sends half its deque), or "adaptive" (steal-one until a refill produces
  // no follow-on spawns, then escalate to steal-half; reset on spawn).
  // Empty = the GRAN_STEAL_BATCH environment variable, falling back to
  // "adaptive". Ignored by the other policies.
  std::string steal_batch;

  // Capacity of each queue's lock-free ring before spilling to the
  // mutex-protected overflow stage.
  std::size_t queue_ring_capacity = 4096;

  // Spins before an idle worker starts OS-yielding.
  unsigned idle_spin_limit = 64;
  // Consecutive fruitless probes before an idle worker parks (or, with
  // idle_park = false, falls back to a fixed 50 µs sleep).
  unsigned idle_yield_limit = 256;

  // Event-based idle parking: starved workers block on a condition variable
  // and are woken by the next enqueue, instead of polling on a fixed sleep.
  // Cuts wakeup latency at fine grain and idle-spin waste at coarse grain.
  bool idle_park = true;
  // Upper bound on one parked wait, µs — a safety net so a worker re-probes
  // even if every wakeup were lost; not the normal wakeup path.
  unsigned idle_park_us = 2000;

  // Fiber stack size in bytes; 0 = stack_pool::default_stack_size().
  std::size_t stack_size = 0;
};

}  // namespace gran
