// Work-stealing-LIFO policy (Cilk-style): each worker owns a lock-free
// Chase–Lev deque; the owner pushes and pops at the bottom (LIFO —
// depth-first, cache-friendly), thieves steal from the top (FIFO —
// breadth-first, big chunks of work).
//
// Only the owner may touch the bottom of a Chase–Lev deque, so enqueues
// from outside the target worker (external spawns, wakes landing on another
// worker's `last_worker`) go through a per-worker lock-free MPMC *inbox*
// (concurrent_fifo) instead; the owner and thieves both drain inboxes when
// the deques run dry. On-worker spawns and wakes — the hot path at fine
// granularity — take the no-CAS owner push.
//
// Victim selection is topology-hierarchical by default ("hier"): each
// worker probes its SMT sibling first (shared L1/L2 — stolen state is
// already hot), then the rest of its NUMA domain (shared L3 / local
// memory), then remote domains. Within each tier the starting victim
// rotates per steal sweep, so a herd of simultaneously idle workers fans
// out over different victims instead of all hammering w+1.
// cfg.steal_order = "flat" keeps the old fixed (w+k) % n ring as the
// ablation baseline (bench/ablation_topology measures the difference).
//
// Differences from the paper's priority-local-FIFO, on purpose:
//   * no staged stage — tasks receive their context at spawn time, so the
//     creation cost is paid by the spawner instead of the first scheduler;
//   * LIFO owner order vs the paper's FIFO queues.
// This is the contrast case for bench/ablation_scheduler ("different
// schedulers optimize performance for different task size", paper §I-A).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "queues/chase_lev_deque.hpp"
#include "queues/concurrent_fifo.hpp"
#include "threads/policy.hpp"
#include "util/cacheline.hpp"

namespace gran {

class task;

class work_stealing_policy final : public scheduling_policy {
 public:
  const char* name() const noexcept override { return "work-stealing-lifo"; }
  void init(thread_manager& tm) override;
  void enqueue_new(thread_manager& tm, int home, task* t) override;
  void enqueue_ready(thread_manager& tm, int home, task* t) override;
  void enqueue_hinted(thread_manager& tm, int target, task* t) override;
  task* get_next(thread_manager& tm, int w) override;
  bool queues_empty(const thread_manager& tm) const override;

  // The concatenated victim tiers worker `w` probes, in order (tests).
  const std::vector<int>& steal_order(int w) const {
    return deques_[static_cast<std::size_t>(w)]->victims;
  }
  // Offsets into steal_order(w): [0, tier_end[0]) are SMT siblings,
  // [tier_end[0], tier_end[1]) same-domain, [tier_end[1], tier_end[2])
  // remote.
  const int* steal_tier_ends(int w) const {
    return deques_[static_cast<std::size_t>(w)]->tier_end;
  }

 private:
  struct alignas(cache_line_size) deque_slot {
    chase_lev_deque<task*> deque{256};
    // Cross-worker hand-off lane; lock-free unless it overflows.
    concurrent_fifo<task*> inbox{256};
    // Precomputed victim order: SMT siblings, then same-domain workers, then
    // remote workers; tier_end[i] is the exclusive end of tier i.
    std::vector<int> victims;
    int tier_end[3] = {0, 0, 0};
    // Per-sweep rotation nonce. Owner-only state (read and written solely by
    // worker `w` inside get_next), hence no atomic.
    std::uint32_t nonce = 0;
  };

  // Routes a task enqueued from outside worker `target` into its inbox.
  void push_remote(thread_manager& tm, int target, task* t);

  std::vector<std::unique_ptr<deque_slot>> deques_;
  int num_workers_ = 0;  // cached in init(); tm's count never changes after
  bool hier_ = true;     // victim order: hierarchical vs flat ring
  std::atomic<std::uint64_t> rr_{0};
};

}  // namespace gran
