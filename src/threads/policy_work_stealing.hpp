// Work-stealing-LIFO policy (Cilk-style): each worker owns a lock-free
// Chase–Lev deque; the owner pushes and pops at the bottom (LIFO —
// depth-first, cache-friendly), thieves steal from the top (FIFO —
// breadth-first, big chunks of work).
//
// Only the owner may touch the bottom of a Chase–Lev deque, so enqueues
// from outside the target worker (external spawns, wakes landing on another
// worker's `last_worker`) go through a per-worker lock-free MPMC *inbox*
// (concurrent_fifo) instead; the owner and thieves both drain inboxes when
// the deques run dry. On-worker spawns and wakes — the hot path at fine
// granularity — take the no-CAS owner push.
//
// Differences from the paper's priority-local-FIFO, on purpose:
//   * no staged stage — tasks receive their context at spawn time, so the
//     creation cost is paid by the spawner instead of the first scheduler;
//   * no NUMA-ordered search — victims are probed in ring order.
// This is the contrast case for bench/ablation_scheduler ("different
// schedulers optimize performance for different task size", paper §I-A).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "queues/chase_lev_deque.hpp"
#include "queues/concurrent_fifo.hpp"
#include "threads/policy.hpp"
#include "util/cacheline.hpp"

namespace gran {

class task;

class work_stealing_policy final : public scheduling_policy {
 public:
  const char* name() const noexcept override { return "work-stealing-lifo"; }
  void init(thread_manager& tm) override;
  void enqueue_new(thread_manager& tm, int home, task* t) override;
  void enqueue_ready(thread_manager& tm, int home, task* t) override;
  task* get_next(thread_manager& tm, int w) override;
  bool queues_empty(const thread_manager& tm) const override;

 private:
  struct alignas(cache_line_size) deque_slot {
    chase_lev_deque<task*> deque{256};
    // Cross-worker hand-off lane; lock-free unless it overflows.
    concurrent_fifo<task*> inbox{256};
  };

  // Routes a task enqueued from outside worker `target` into its inbox.
  void push_remote(thread_manager& tm, int target, task* t);

  std::vector<std::unique_ptr<deque_slot>> deques_;
  int num_workers_ = 0;  // cached in init(); tm's count never changes after
  std::atomic<std::uint64_t> rr_{0};
};

}  // namespace gran
