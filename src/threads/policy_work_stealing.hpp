// Work-stealing-LIFO policy (Cilk-style): each worker owns a deque; the
// owner pushes and pops at the back (LIFO — depth-first, cache-friendly),
// thieves steal from the front (FIFO — breadth-first, big chunks of work).
//
// Differences from the paper's priority-local-FIFO, on purpose:
//   * no staged stage — tasks receive their context at spawn time, so the
//     creation cost is paid by the spawner instead of the first scheduler;
//   * no NUMA-ordered search — victims are probed in ring order.
// This is the contrast case for bench/ablation_scheduler ("different
// schedulers optimize performance for different task size", paper §I-A).
#pragma once

#include <atomic>
#include <deque>
#include <mutex>
#include <vector>

#include "threads/policy.hpp"
#include "util/cacheline.hpp"

namespace gran {

class work_stealing_policy final : public scheduling_policy {
 public:
  const char* name() const noexcept override { return "work-stealing-lifo"; }
  void init(thread_manager& tm) override;
  void enqueue_new(thread_manager& tm, int home, task* t) override;
  void enqueue_ready(thread_manager& tm, int home, task* t) override;
  task* get_next(thread_manager& tm, int w) override;
  bool queues_empty(const thread_manager& tm) const override;

 private:
  struct alignas(cache_line_size) deque_slot {
    mutable std::mutex mutex;
    std::deque<task*> items;
  };

  void push(thread_manager& tm, int target, task* t, bool back);
  task* pop_back(int w);
  task* steal_front(int victim);

  std::vector<std::unique_ptr<deque_slot>> deques_;
  std::atomic<std::uint64_t> rr_{0};
};

}  // namespace gran
