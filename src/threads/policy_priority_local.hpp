// The Priority Local-FIFO scheduling policy — the scheduler all of the
// paper's measurements use (§I-B, Fig. 1).
//
// Queue layout: one dual (staged+pending) FIFO queue per worker, a
// configurable number of high-priority dual queues owned by the first
// workers, and one global low-priority queue drained only when every other
// source is empty.
//
// Work-search order for a worker (Fig. 1):
//   1. local pending queue
//   2. local staged queue  (convert -> local pending)
//   3. staged queues of other workers in the same NUMA domain
//   4. pending queues of other workers in the same NUMA domain
//   5. staged queues of workers in remote NUMA domains
//   6. pending queues of workers in remote NUMA domains
// Stolen staged descriptions are converted and placed into the thief's own
// pending queue — staged threads are cheap to migrate because they have no
// context yet.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "threads/policy.hpp"
#include "util/cacheline.hpp"

namespace gran {

class priority_local_policy final : public scheduling_policy {
 public:
  const char* name() const noexcept override { return "priority-local-fifo"; }
  void init(thread_manager& tm) override;
  void enqueue_new(thread_manager& tm, int home, task* t) override;
  void enqueue_ready(thread_manager& tm, int home, task* t) override;
  void enqueue_hinted(thread_manager& tm, int target, task* t) override;
  task* get_next(thread_manager& tm, int w) override;
  bool queues_empty(const thread_manager& tm) const override;

 private:
  // Steals one staged description from the workers of `node`, converting
  // into `w`'s pending queue. Returns a runnable task or nullptr. `rot`
  // rotates the ring's starting victim (see get_next).
  task* steal_staged_from_node(thread_manager& tm, int w, int node,
                               std::uint32_t rot);
  // Steals one ready task from the pending queues of `node`.
  task* steal_pending_from_node(thread_manager& tm, int w, int node,
                                std::uint32_t rot);

  // Per-worker steal-sweep rotation. Without it every idle worker began its
  // search at the same ring position relative to itself — under global
  // starvation (the herd) all workers then converge probe-by-probe on the
  // same victims. Owner-only state (worker `w` alone touches slot `w` inside
  // get_next), hence plain ints, cache-line padded against false sharing.
  struct alignas(cache_line_size) sweep_rotation {
    std::uint32_t value = 0;
  };
  std::vector<sweep_rotation> rotations_;

  std::atomic<std::uint64_t> rr_normal_{0};
  std::atomic<std::uint64_t> rr_high_{0};
  int high_queue_owners_ = 0;
};

}  // namespace gran
