// Process-global default thread manager.
//
// async(), dataflow() and future continuations need a manager to spawn
// tasks on when called from outside any worker (e.g. from main). The first
// thread_manager constructed installs itself as the default; API helpers
// resolve the manager as: current worker's manager, else the default.
#pragma once

namespace gran {

class thread_manager;

// Installed/cleared by thread_manager's constructor/destructor; may also be
// pointed at a specific manager explicitly when several coexist.
void set_default_manager(thread_manager* tm) noexcept;
thread_manager* default_manager() noexcept;

// current() worker's manager if any, else the default. Asserts that one
// exists.
thread_manager& resolve_manager();

}  // namespace gran
