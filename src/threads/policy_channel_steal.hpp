// Channel-steal policy: message-passing work stealing after Prell's
// tasking-2.0 runtime. No shared deques — every worker owns a *private*
// task deque that no other thread ever touches. An idle worker (thief)
// sends a `steal_request` token through an SPSC channel to a victim; the
// victim, at its next cooperation point, either answers by pushing a batch
// of tasks into the thief's SPSC delivery channel, or — when its own deque
// is empty — forwards the token to the next victim on the *thief's*
// topology-hierarchical route (the PR-4 victim order reused as the request
// routing order). A token that completes a full circuit unserved is
// returned to the thief as a decline; the thief then blocks its requesting
// until the manager's queued-task count signals new supply, so an idle
// machine converges to zero circulating requests (polling-free
// termination — the convergence the channel_steal_test asserts).
//
// Channel matrix and serialization. req_from_[v][t] is the SPSC ring that
// carries thief t's token while it visits victim v. Each thief has at most
// ONE token in flight, and every hop is a release-push followed by an
// acquire-pop, so successive producers of any one ring are serialized by a
// happens-before chain even though the token migrates between threads —
// the "token discipline" under which spsc_ring explicitly permits producer
// migration (see spsc_ring.hpp and DESIGN.md decision 10). The same chain
// covers the delivery ring: a victim only produces into delivery_[t] while
// it holds t's token, and the thief only issues its next request after it
// acquire-loads the victim's batch announcement (`served_`), so victim
// N+1's relaxed producer-side index loads are ordered after victim N's
// stores.
//
// Steal-one vs steal-half: the amount a victim sends is carried in the
// request. With cfg.steal_batch = "adaptive" (default) a thief asks for
// one task while its refills generate follow-on spawns and escalates to
// half of the victim's deque once a refill ran dry without spawning —
// Prell's rule: dry refills mean the thief is draining faster than the
// work subdivides, so grab bigger chunks.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "queues/concurrent_fifo.hpp"
#include "queues/spsc_ring.hpp"
#include "threads/policy.hpp"
#include "util/cacheline.hpp"

namespace gran {

class task;

// The circulating token. Trivially copyable; lives in the req_from_ rings.
struct steal_request {
  std::int32_t thief = -1;   // requester; deliveries go to its channel
  std::uint32_t start = 0;   // index into the thief's victim order at hop 0
  std::int32_t hops = 0;     // victims visited so far (0 = fresh send)
  bool half = false;         // steal-half vs steal-one
};

class channel_steal_policy final : public scheduling_policy {
 public:
  enum class batch_mode { one, half, adaptive };

  const char* name() const noexcept override { return "channel-steal"; }
  void init(thread_manager& tm) override;
  void enqueue_new(thread_manager& tm, int home, task* t) override;
  void enqueue_ready(thread_manager& tm, int home, task* t) override;
  void enqueue_hinted(thread_manager& tm, int target, task* t) override;
  task* get_next(thread_manager& tm, int w) override;
  bool queues_empty(const thread_manager& tm) const override;
  void cooperate(thread_manager& tm, int w) override;

  // Steal requests currently circulating (sent and not yet resolved into a
  // delivery or a decline). Converges to zero on an idle pool — the
  // termination-detection invariant channel_steal_test asserts.
  std::uint64_t requests_in_flight() const noexcept {
    return in_flight_.load(std::memory_order_acquire);
  }

  batch_mode steal_batch() const noexcept { return mode_; }

  // The batch-size decision, exposed for unit testing: does the next
  // request ask for half the victim's deque? `last_refill_dry` = the
  // previous refill was fully executed without spawning follow-on work.
  static bool request_half(batch_mode mode, bool last_refill_dry) {
    switch (mode) {
      case batch_mode::one: return false;
      case batch_mode::half: return true;
      case batch_mode::adaptive: return last_refill_dry;
    }
    return false;
  }

  // The request-routing order for worker `w` (the PR-4 hierarchical victim
  // order); exposed for tests.
  const std::vector<int>& steal_order(int w) const {
    return slots_[static_cast<std::size_t>(w)]->victims;
  }

 private:
  struct alignas(cache_line_size) worker_slot {
    // Private deque: touched ONLY by the owning worker's thread — owner
    // spawns push and pop at the back (LIFO, depth-first), request service
    // takes from the front (FIFO, the steal side). Size is mirrored into
    // deque_size for the lock-free queues_empty scan.
    std::deque<task*> deque;
    std::atomic<std::int64_t> deque_size{0};

    // Cross-thread enqueues (external spawns, wakes, placement hints from
    // other workers) land here; the owner drains it in get_next.
    concurrent_fifo<task*> inbox{256};

    // req_from[t]: thief t's token while it visits this worker. Capacity 1
    // suffices — at most one token per thief exists.
    std::vector<std::unique_ptr<spsc_ring<steal_request>>> req_from;
    // Tokens sitting in req_from (pushers add, pops subtract); lets the
    // cooperation point skip the ring scan in the common empty case.
    std::atomic<std::int64_t> pending_reqs{0};

    // Task delivery into THIS worker when it is the thief. Sole producer:
    // the victim currently holding this worker's token (see serialization
    // argument above).
    spsc_ring<task*> delivery{256};
    // Batch announcement: (victim+1) << 32 | batch size, release-stored by
    // the victim after its last delivery push; 0 = no batch. The thief
    // collects exactly `size` tasks after acquiring it, which is what
    // hands the producer role to the next victim safely.
    std::atomic<std::uint64_t> served{0};

    // Request routing order (PR-4 hierarchy: SMT sibling, same domain,
    // remote; tier_end[i] = exclusive end of tier i). Const after init.
    std::vector<int> victims;
    int tier_end[3] = {0, 0, 0};

    // Owner-only thief state (no atomics needed).
    std::uint32_t nonce = 0;       // rotates the route start per request
    bool outstanding = false;      // my token is in flight
    bool blocked = false;          // my token came back declined
    bool last_refill_dry = false;  // previous refill spawned nothing
    bool had_refill = false;       // at least one batch received so far
    std::uint64_t spawns_at_refill = 0;  // tasks_spawned cell at last refill
  };

  void push_remote(thread_manager& tm, int target, task* t);
  // Owner-side push/pop of the private deque (bookkeeps deque_size).
  void deque_push(worker_slot& s, task* t);
  task* deque_pop_back(worker_slot& s);

  // Victim duties for worker `w`: pop every waiting token and serve,
  // forward, or decline it. The body of cooperate().
  void service_requests(thread_manager& tm, int w);
  void handle_request(thread_manager& tm, int w, const steal_request& r);
  // Collects an announced delivery batch into `w`'s private deque.
  // Returns the number of tasks collected.
  std::size_t collect_batch(thread_manager& tm, int w);
  // Sends a fresh request from thief `w` if allowed (no token in flight,
  // not blocked, more than one worker).
  void maybe_send_request(thread_manager& tm, int w);
  // Routes token `r` to the victim at hop `r.hops` of the thief's order.
  void send_to_hop(thread_manager& tm, int sender, steal_request r);

  std::vector<std::unique_ptr<worker_slot>> slots_;
  int num_workers_ = 0;
  batch_mode mode_ = batch_mode::adaptive;
  std::atomic<std::uint64_t> rr_{0};
  alignas(cache_line_size) std::atomic<std::uint64_t> in_flight_{0};
};

}  // namespace gran
