#include "threads/policy_channel_steal.hpp"

#include <algorithm>
#include <stdexcept>

#include "perf/trace.hpp"
#include "threads/task.hpp"
#include "threads/thread_manager.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"

namespace gran {

namespace {

// Batch announcement packing: (victim + 1) << 32 | batch size. Nonzero for
// every real batch (size >= 1), so 0 can mean "no batch pending".
std::uint64_t pack_served(int victim, std::size_t batch) {
  return (static_cast<std::uint64_t>(victim) + 1) << 32 |
         static_cast<std::uint64_t>(batch);
}

}  // namespace

void channel_steal_policy::init(thread_manager& tm) {
  num_workers_ = tm.num_workers();

  std::string batch = tm.config().steal_batch;
  if (batch.empty()) batch = env_string("GRAN_STEAL_BATCH", "");
  if (batch.empty()) batch = "adaptive";
  if (batch == "one")
    mode_ = batch_mode::one;
  else if (batch == "half")
    mode_ = batch_mode::half;
  else if (batch == "adaptive")
    mode_ = batch_mode::adaptive;
  else
    throw std::invalid_argument("unknown steal batch: " + batch +
                                " (one|half|adaptive)");

  slots_.clear();
  slots_.reserve(static_cast<std::size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    auto slot = std::make_unique<worker_slot>();
    // The request routing order is the PR-4 steal hierarchy: SMT sibling,
    // then same NUMA domain, then remote — a token visits close victims
    // before paying cross-domain latency.
    slot->victims.reserve(static_cast<std::size_t>(num_workers_ - 1));
    for (int tier = 0; tier < 3; ++tier) {
      for (int k = 1; k < num_workers_; ++k) {
        const int v = (w + k) % num_workers_;
        if (tm.steal_distance(w, v) == tier) slot->victims.push_back(v);
      }
      slot->tier_end[tier] = static_cast<int>(slot->victims.size());
    }
    // One token ring per potential thief; capacity 1 because each thief has
    // at most one token in flight (the push-success asserts below rely on
    // this invariant).
    slot->req_from.reserve(static_cast<std::size_t>(num_workers_));
    for (int t = 0; t < num_workers_; ++t)
      slot->req_from.push_back(std::make_unique<spsc_ring<steal_request>>(1));
    slots_.push_back(std::move(slot));
  }
}

void channel_steal_policy::deque_push(worker_slot& s, task* t) {
  s.deque.push_back(t);
  s.deque_size.fetch_add(1, std::memory_order_release);
}

task* channel_steal_policy::deque_pop_back(worker_slot& s) {
  if (s.deque.empty()) return nullptr;
  task* t = s.deque.back();
  s.deque.pop_back();
  s.deque_size.fetch_sub(1, std::memory_order_release);
  return t;
}

void channel_steal_policy::push_remote(thread_manager& tm, int target, task* t) {
  (void)tm;
  slots_[static_cast<std::size_t>(target)]->inbox.push(t);
}

void channel_steal_policy::enqueue_new(thread_manager& tm, int home, task* t) {
  if (home >= 0) {
    // `home` is by contract the calling worker — the only thread allowed to
    // touch its private deque. Tasks stay staged; whoever executes them
    // pays the conversion (as in priority-local-fifo).
    GRAN_DEBUG_ASSERT(home == thread_manager::current_worker());
    deque_push(*slots_[static_cast<std::size_t>(home)], t);
    return;
  }
  const int target =
      static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<std::uint64_t>(num_workers_));
  push_remote(tm, target, t);
}

void channel_steal_policy::enqueue_ready(thread_manager& tm, int home, task* t) {
  if (home >= 0) {
    GRAN_DEBUG_ASSERT(home == thread_manager::current_worker());
    deque_push(*slots_[static_cast<std::size_t>(home)], t);
    return;
  }
  // External wake: prefer the task's previous worker (warm caches), but only
  // if it is a valid index under the current worker count.
  int target = t->last_worker();
  if (target < 0 || target >= num_workers_)
    target = static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) %
                              static_cast<std::uint64_t>(num_workers_));
  push_remote(tm, target, t);
}

void channel_steal_policy::enqueue_hinted(thread_manager& tm, int target, task* t) {
  if (target == thread_manager::current_worker()) {
    deque_push(*slots_[static_cast<std::size_t>(target)], t);
    return;
  }
  push_remote(tm, target, t);
}

void channel_steal_policy::send_to_hop(thread_manager& tm, int sender,
                                       steal_request r) {
  const worker_slot& route = *slots_[static_cast<std::size_t>(r.thief)];
  const auto circuit = static_cast<std::uint32_t>(num_workers_ - 1);
  const int target = route.victims[(r.start + static_cast<std::uint32_t>(r.hops)) %
                                   circuit];
  worker_slot& vs = *slots_[static_cast<std::size_t>(target)];
  const bool ok = vs.req_from[static_cast<std::size_t>(r.thief)]->push(r);
  GRAN_ASSERT_MSG(ok, "steal-request token ring overflow (token discipline broken)");
  vs.pending_reqs.fetch_add(1, std::memory_order_relaxed);
  perf::trace_emit(tm.worker(sender).trace, perf::trace_kind::steal_request,
                   sender, static_cast<std::uint64_t>(r.hops),
                   perf::steal_arg2(target, tm.steal_distance(r.thief, target)));
}

void channel_steal_policy::maybe_send_request(thread_manager& tm, int w) {
  worker_slot& me = *slots_[static_cast<std::size_t>(w)];
  if (num_workers_ < 2 || me.outstanding || me.blocked) return;
  worker_counters& c = tm.worker(w).counters;
  me.last_refill_dry =
      me.had_refill &&
      c.tasks_spawned.load(std::memory_order_relaxed) == me.spawns_at_refill;
  steal_request r;
  r.thief = w;
  r.start = me.nonce++ % static_cast<std::uint32_t>(num_workers_ - 1);
  r.hops = 0;
  r.half = request_half(mode_, me.last_refill_dry);
  me.outstanding = true;
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  c.steal_req_sent.fetch_add(1, std::memory_order_relaxed);
  send_to_hop(tm, w, r);
}

void channel_steal_policy::handle_request(thread_manager& tm, int w,
                                          const steal_request& r) {
  worker_slot& me = *slots_[static_cast<std::size_t>(w)];
  worker_counters& c = tm.worker(w).counters;

  if (r.thief == w) {
    // My own token came back: every victim declined. Stop requesting until
    // the manager's queued count signals new supply — this is what drains
    // the circulating-request count to zero on an idle pool.
    me.outstanding = false;
    me.blocked = true;
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }

  worker_slot& thief_slot = *slots_[static_cast<std::size_t>(r.thief)];
  if (!me.deque.empty()) {
    // Serve: take from the FRONT (the breadth-first steal side) and push
    // into the thief's delivery channel. The thief drained its channel
    // before re-sending its token, so the ring is empty and every push
    // succeeds. Bracketed as a handoff: mid-transfer the tasks are in
    // neither structure, and queues_empty must not report empty.
    GRAN_DEBUG_ASSERT(thief_slot.served.load(std::memory_order_relaxed) == 0);
    std::size_t batch =
        r.half ? std::max<std::size_t>(1, me.deque.size() / 2) : 1;
    batch = std::min(batch, thief_slot.delivery.capacity());
    tm.note_handoff_begin();
    for (std::size_t i = 0; i < batch; ++i) {
      task* t = me.deque.front();
      me.deque.pop_front();
      me.deque_size.fetch_sub(1, std::memory_order_release);
      const bool ok = thief_slot.delivery.push(t);
      GRAN_ASSERT_MSG(ok, "delivery channel overflow (batch exceeds capacity)");
    }
    // Announce after the last push: the thief's acquire of `served` makes
    // the whole batch visible and hands the producer role onward.
    thief_slot.served.store(pack_served(w, batch), std::memory_order_release);
    tm.note_handoff_end();
    perf::trace_emit(tm.worker(w).trace, perf::trace_kind::steal_handoff, w,
                     static_cast<std::uint64_t>(batch),
                     perf::steal_arg2(r.thief, tm.steal_distance(w, r.thief)));
    // The thief may be parked; only it can collect this batch, so wake
    // everyone rather than one arbitrary sleeper.
    tm.notify_work_available(/*all=*/true);
    return;
  }

  // Empty deque: pass the token along the thief's route, or return it
  // declined once it has visited every victim.
  if (r.hops + 1 < num_workers_ - 1) {
    steal_request fwd = r;
    ++fwd.hops;
    c.steal_req_forwarded.fetch_add(1, std::memory_order_relaxed);
    send_to_hop(tm, w, fwd);
  } else {
    c.steal_req_declined.fetch_add(1, std::memory_order_relaxed);
    const bool ok =
        thief_slot.req_from[static_cast<std::size_t>(r.thief)]->push(r);
    GRAN_ASSERT_MSG(ok, "decline ring overflow (token discipline broken)");
    thief_slot.pending_reqs.fetch_add(1, std::memory_order_relaxed);
  }
}

void channel_steal_policy::service_requests(thread_manager& tm, int w) {
  worker_slot& me = *slots_[static_cast<std::size_t>(w)];
  if (me.pending_reqs.load(std::memory_order_relaxed) == 0) return;
  for (int t = 0; t < num_workers_; ++t) {
    while (auto r = me.req_from[static_cast<std::size_t>(t)]->pop()) {
      me.pending_reqs.fetch_sub(1, std::memory_order_relaxed);
      handle_request(tm, w, *r);
    }
  }
}

std::size_t channel_steal_policy::collect_batch(thread_manager& tm, int w) {
  worker_slot& me = *slots_[static_cast<std::size_t>(w)];
  const std::uint64_t ann = me.served.load(std::memory_order_acquire);
  if (ann == 0) return 0;
  const int victim = static_cast<int>(ann >> 32) - 1;
  const auto batch = static_cast<std::size_t>(ann & 0xffffffffull);
  worker_counters& c = tm.worker(w).counters;

  tm.note_handoff_begin();
  task* first = nullptr;
  for (std::size_t i = 0; i < batch; ++i) {
    auto t = me.delivery.pop();
    GRAN_ASSERT_MSG(t.has_value(), "announced batch short of tasks");
    if (first == nullptr) first = *t;
    deque_push(me, *t);
  }
  tm.note_handoff_end();
  // Reset before the next request: the release-push of the next token
  // orders this store before the next victim's announcement.
  me.served.store(0, std::memory_order_relaxed);
  me.outstanding = false;
  me.blocked = false;
  me.had_refill = true;
  me.spawns_at_refill = c.tasks_spawned.load(std::memory_order_relaxed);
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);

  const int distance = tm.steal_distance(w, victim);
  c.tasks_stolen.fetch_add(batch, std::memory_order_relaxed);
  if (distance == 2)
    c.tasks_stolen_remote.fetch_add(batch, std::memory_order_relaxed);
  perf::trace_emit(tm.worker(w).trace, perf::trace_kind::steal, w,
                   first != nullptr ? first->id() : 0,
                   perf::steal_arg2(victim, distance));
  return batch;
}

task* channel_steal_policy::get_next(thread_manager& tm, int w) {
  worker_counters& c = tm.worker(w).counters;
  worker_slot& me = *slots_[static_cast<std::size_t>(w)];

  // Victim duties first — the scheduler-round cooperation point.
  service_requests(tm, w);
  // A delivery answering an earlier request refills the private deque.
  collect_batch(tm, w);

  // Owner side: LIFO pop of the private deque. Counted as pending-queue
  // accesses so the paper's queue metrics stay comparable across policies.
  c.extra_pending_accesses.fetch_add(1, std::memory_order_relaxed);
  if (task* t = deque_pop_back(me)) {
    if (!t->has_context()) tm.convert(t);
    return t;
  }
  c.extra_pending_misses.fetch_add(1, std::memory_order_relaxed);

  // Cross-thread enqueues addressed to this worker.
  c.extra_pending_accesses.fetch_add(1, std::memory_order_relaxed);
  if (auto t = me.inbox.pop()) {
    if (!(*t)->has_context()) tm.convert(*t);
    return *t;
  }
  c.extra_pending_misses.fetch_add(1, std::memory_order_relaxed);

  // Low-priority work last, as in every policy.
  if (auto t = tm.low_priority_queue().pop_pending()) return *t;
  if (auto d = tm.low_priority_queue().pop_staged()) {
    tm.convert(*d);
    return *d;
  }

  // Nothing local: become a thief. A declined token blocks requesting
  // until the manager observes queued work again.
  if (me.blocked && tm.queued_tasks() > 0) me.blocked = false;
  maybe_send_request(tm, w);
  return nullptr;
}

void channel_steal_policy::cooperate(thread_manager& tm, int w) {
  service_requests(tm, w);
}

bool channel_steal_policy::queues_empty(const thread_manager& tm) const {
  for (const auto& s : slots_) {
    if (s->deque_size.load(std::memory_order_acquire) != 0) return false;
    if (!s->inbox.empty_approx()) return false;
    if (!s->delivery.empty()) return false;
    if (s->served.load(std::memory_order_acquire) != 0) return false;
  }
  // Tasks mid-transfer between structures (serve/collect brackets above,
  // and the other policies' staged-steal window).
  if (tm.handoffs_in_flight() != 0) return false;
  return tm.low_priority_queue().empty_approx();
}

}  // namespace gran
