// Task priorities of the Priority Local scheduler (paper §I-B): a specified
// number of high-priority dual queues, one normal dual queue per worker, and
// a single low-priority queue scheduled only when all other work is done.
#pragma once

#include <cstdint>

namespace gran {

enum class task_priority : std::uint8_t { low = 0, normal = 1, high = 2 };

inline const char* to_string(task_priority p) noexcept {
  switch (p) {
    case task_priority::low: return "low";
    case task_priority::normal: return "normal";
    case task_priority::high: return "high";
  }
  return "?";
}

}  // namespace gran
