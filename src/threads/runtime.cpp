#include "threads/runtime.hpp"

#include <atomic>

#include "threads/thread_manager.hpp"
#include "util/assert.hpp"

namespace gran {

namespace {
std::atomic<thread_manager*> g_default_manager{nullptr};
}

void set_default_manager(thread_manager* tm) noexcept {
  g_default_manager.store(tm, std::memory_order_release);
}

thread_manager* default_manager() noexcept {
  return g_default_manager.load(std::memory_order_acquire);
}

thread_manager& resolve_manager() {
  if (thread_manager* tm = thread_manager::current()) return *tm;
  thread_manager* tm = default_manager();
  GRAN_ASSERT_MSG(tm != nullptr,
                  "no thread_manager alive: construct one before using async APIs");
  return *tm;
}

}  // namespace gran
