#include "threads/policy_priority_local.hpp"

#include "perf/trace.hpp"
#include "threads/task.hpp"
#include "threads/thread_manager.hpp"
#include "util/assert.hpp"

namespace gran {

void priority_local_policy::init(thread_manager& tm) {
  high_queue_owners_ = 0;
  for (int w = 0; w < tm.num_workers(); ++w)
    if (tm.worker(w).owns_high_queue) ++high_queue_owners_;
  GRAN_ASSERT(high_queue_owners_ >= 1);
  rotations_.assign(static_cast<std::size_t>(tm.num_workers()), sweep_rotation{});
}

void priority_local_policy::enqueue_new(thread_manager& tm, int home, task* t) {
  switch (t->priority()) {
    case task_priority::high: {
      // Round-robin over the high-priority queue owners.
      const int target = static_cast<int>(
          rr_high_.fetch_add(1, std::memory_order_relaxed) %
          static_cast<std::uint64_t>(high_queue_owners_));
      tm.worker(target).high_queue.push_staged(t);
      return;
    }
    case task_priority::low:
      tm.low_priority_queue().push_staged(t);
      return;
    case task_priority::normal:
      break;
  }
  // Normal priority: stage on the spawning worker; external spawns are
  // distributed round-robin.
  const int target =
      home >= 0 ? home
                : static_cast<int>(rr_normal_.fetch_add(1, std::memory_order_relaxed) %
                                   static_cast<std::uint64_t>(tm.num_workers()));
  tm.worker(target).queue.push_staged(t);
}

void priority_local_policy::enqueue_hinted(thread_manager& tm, int target, task* t) {
  // Staged queues are MPMC-safe dual queues, so a placement hint is just an
  // enqueue_new with `home` forced to the target worker (normal priority;
  // high/low keep their dedicated routing inside enqueue_new).
  enqueue_new(tm, target, t);
}

void priority_local_policy::enqueue_ready(thread_manager& tm, int home, task* t) {
  if (t->priority() == task_priority::low) {
    tm.low_priority_queue().push_pending(t);
    return;
  }
  // Prefer the enqueuing worker, then the worker the task last ran on
  // (cache affinity), then round-robin.
  int target = home;
  if (target < 0) target = t->last_worker();
  if (target < 0)
    target = static_cast<int>(rr_normal_.fetch_add(1, std::memory_order_relaxed) %
                              static_cast<std::uint64_t>(tm.num_workers()));
  worker_data& wd = tm.worker(target);
  if (t->priority() == task_priority::high && wd.owns_high_queue)
    wd.high_queue.push_pending(t);
  else
    wd.queue.push_pending(t);
}

task* priority_local_policy::get_next(thread_manager& tm, int w) {
  worker_data& me = tm.worker(w);

  // 1. Local pending (high-priority queue first).
  if (me.owns_high_queue)
    if (auto t = me.high_queue.pop_pending()) return *t;
  if (auto t = me.queue.pop_pending()) return *t;

  // 2. Local staged: convert to pending, then take from the pending queue
  // (the staged->pending->run round trip is what the paper's queue counters
  // observe in HPX).
  // Between pop_staged and push_pending the task is in neither queue; the
  // handoff bracket keeps it visible to concurrent queues_empty scans
  // (shutdown, parking).
  if (me.owns_high_queue) {
    if (auto d = me.high_queue.pop_staged()) {
      tm.note_handoff_begin();
      tm.convert(*d);
      me.high_queue.push_pending(*d);
      tm.note_handoff_end();
      if (auto t = me.high_queue.pop_pending()) return *t;
      return nullptr;  // converted work was snatched; retry outer loop
    }
  }
  if (auto d = me.queue.pop_staged()) {
    tm.note_handoff_begin();
    tm.convert(*d);
    me.queue.push_pending(*d);
    tm.note_handoff_end();
    if (auto t = me.queue.pop_pending()) return *t;
    return nullptr;
  }

  // One rotation value per steal sweep: every tier below starts its ring at
  // a position that advances on each fruitless sweep, so a herd of
  // simultaneously starved workers spreads over distinct victims instead of
  // all probing the same ring sequence in lockstep.
  const std::uint32_t rot = rotations_[static_cast<std::size_t>(w)].value++;

  // 3./4. Same NUMA domain: staged first, then pending.
  if (task* t = steal_staged_from_node(tm, w, me.numa_node, rot)) return t;
  if (task* t = steal_pending_from_node(tm, w, me.numa_node, rot)) return t;

  // 5./6. Remote NUMA domains, nearest-ring order from the worker's own
  // domain.
  const int domains = tm.num_numa_domains();
  for (int k = 1; k < domains; ++k) {
    const int node = (me.numa_node + k) % domains;
    if (task* t = steal_staged_from_node(tm, w, node, rot)) return t;
  }
  for (int k = 1; k < domains; ++k) {
    const int node = (me.numa_node + k) % domains;
    if (task* t = steal_pending_from_node(tm, w, node, rot)) return t;
  }

  // 7. Low-priority work only when everything else is exhausted.
  if (auto t = tm.low_priority_queue().pop_pending()) return *t;
  if (auto d = tm.low_priority_queue().pop_staged()) {
    tm.convert(*d);
    return *d;
  }
  return nullptr;
}

namespace {

// Ring start within `members`: just after `w`'s own position when it is a
// member of this node, plus the sweep rotation in either case.
std::size_t ring_start(const std::vector<int>& members, int w, std::uint32_t rot) {
  const std::size_t n = members.size();
  std::size_t start = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (members[i] == w) {
      start = i + 1;
      break;
    }
  return (start + rot) % n;
}

// Counts a successful steal by `w` from `v`: the stolen total (bumped
// first — the derived stolen-local counter must never observe remote >
// stolen), the cross-domain subset, and the distance-annotated trace event.
void record_steal(thread_manager& tm, worker_data& me, int w, int v,
                  std::uint64_t task_id) {
  const int distance = tm.steal_distance(w, v);
  me.counters.tasks_stolen.fetch_add(1, std::memory_order_relaxed);
  if (distance == 2)
    me.counters.tasks_stolen_remote.fetch_add(1, std::memory_order_relaxed);
  perf::trace_emit(me.trace, perf::trace_kind::steal, w, task_id,
                   perf::steal_arg2(v, distance));
}

}  // namespace

task* priority_local_policy::steal_staged_from_node(thread_manager& tm, int w,
                                                    int node, std::uint32_t rot) {
  const auto& members = tm.workers_of_node(node);
  const std::size_t n = members.size();
  if (n == 0) return nullptr;
  const std::size_t start = ring_start(members, w, rot);
  worker_data& me = tm.worker(w);
  for (std::size_t k = 0; k < n; ++k) {
    const int v = members[(start + k) % n];
    if (v == w) continue;
    worker_data& victim = tm.worker(v);
    std::optional<task*> d;
    if (victim.owns_high_queue) d = victim.high_queue.pop_staged();
    if (!d) d = victim.queue.pop_staged();
    if (d) {
      // Cross-worker staged steal: the same in-flight window as the local
      // convert, but the task also changes owner mid-transfer.
      tm.note_handoff_begin();
      tm.convert(*d);
      record_steal(tm, me, w, v, (*d)->id());
      me.queue.push_pending(*d);
      tm.note_handoff_end();
      if (auto t = me.queue.pop_pending()) return *t;
      return nullptr;
    }
  }
  return nullptr;
}

task* priority_local_policy::steal_pending_from_node(thread_manager& tm, int w,
                                                     int node, std::uint32_t rot) {
  const auto& members = tm.workers_of_node(node);
  const std::size_t n = members.size();
  if (n == 0) return nullptr;
  const std::size_t start = ring_start(members, w, rot);
  worker_data& me = tm.worker(w);
  for (std::size_t k = 0; k < n; ++k) {
    const int v = members[(start + k) % n];
    if (v == w) continue;
    worker_data& victim = tm.worker(v);
    std::optional<task*> t;
    if (victim.owns_high_queue) t = victim.high_queue.pop_pending();
    if (!t) t = victim.queue.pop_pending();
    if (t) {
      record_steal(tm, me, w, v, (*t)->id());
      return *t;
    }
  }
  return nullptr;
}

bool priority_local_policy::queues_empty(const thread_manager& tm) const {
  for (int w = 0; w < tm.num_workers(); ++w) {
    const worker_data& wd = tm.worker(w);
    if (!wd.queue.empty_approx() || !wd.high_queue.empty_approx()) return false;
  }
  // Tasks mid-transfer between queues (staged->pending convert, staged
  // steal) are momentarily in neither structure.
  if (tm.handoffs_in_flight() != 0) return false;
  return tm.low_priority_queue().empty_approx();
}

}  // namespace gran
