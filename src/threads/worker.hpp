// Per-worker state: the dual staged/pending queues of Fig. 1, the software
// performance-counter cells, and idle bookkeeping. One instance per worker
// OS thread, cache-line padded inside the manager's array.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "perf/heartbeat.hpp"
#include "perf/histogram.hpp"
#include "perf/pmu.hpp"
#include "queues/dual_queue.hpp"
#include "util/cacheline.hpp"

namespace gran {

namespace perf {
class trace_ring;
}

class task;

// Counter cells written by the owning worker with relaxed atomics and read
// by anyone (perf-counter queries, other workers' heuristics).
struct worker_counters {
  std::atomic<std::uint64_t> tasks_executed{0};    // nt contribution
  std::atomic<std::uint64_t> phases_executed{0};
  std::atomic<std::uint64_t> exec_ticks{0};        // Σ t_exec (TSC ticks)
  std::atomic<std::uint64_t> func_ticks{0};        // worker-loop wall ticks
  std::atomic<std::uint64_t> tasks_stolen{0};      // obtained from another worker
  // Subset of tasks_stolen taken from a victim in a *different* NUMA/locality
  // domain; stolen-local is derived as (stolen - stolen_remote), so
  // stolen-local + stolen-remote == stolen holds by construction.
  std::atomic<std::uint64_t> tasks_stolen_remote{0};
  std::atomic<std::uint64_t> tasks_converted{0};   // staged -> pending transforms
  // Tasks this worker spawned (spawn/spawn_on called from its thread); spawns
  // from non-worker threads are counted by the manager's external cell. The
  // sum backs /threads/count/spawned and cross-checks the trace's
  // task_enqueue event count.
  std::atomic<std::uint64_t> tasks_spawned{0};
  // Queue-probe counts for policies that bypass the instrumented dual_queue
  // (work-stealing-lifo keeps its own deques); zero otherwise.
  std::atomic<std::uint64_t> extra_pending_accesses{0};
  std::atomic<std::uint64_t> extra_pending_misses{0};
  // Lazy-splitting actuation (core/split_controller.hpp): ranges this worker
  // split (back half re-enqueued as a new task), and split demands denied
  // because the remaining range was below 2×GRAN_SPLIT_MIN.
  std::atomic<std::uint64_t> tasks_split{0};
  std::atomic<std::uint64_t> splits_denied{0};
  // Channel-steal request traffic (policy_channel_steal.hpp): requests this
  // worker originated, requests it passed on because its deque was empty,
  // and requests it returned to the thief unserved after a full circuit.
  // sent >= forwarded-circuits, and every sent request ends as exactly one
  // handoff or one decline — the convergence invariant the termination test
  // checks. Zero under the other policies.
  std::atomic<std::uint64_t> steal_req_sent{0};
  std::atomic<std::uint64_t> steal_req_forwarded{0};
  std::atomic<std::uint64_t> steal_req_declined{0};
  // PMU-plane attribution (perf/pmu.hpp; zero while GRAN_PMU is off). The
  // *_task cells sum per-phase deltas (kernel work), the *_sched cells sum
  // the inter-phase gaps — the hardware-unit mirror of exec_ticks vs the
  // task-overhead histogram.
  std::atomic<std::uint64_t> pmu_cycles_task{0};
  std::atomic<std::uint64_t> pmu_cycles_sched{0};
  std::atomic<std::uint64_t> pmu_instructions_task{0};
  std::atomic<std::uint64_t> pmu_instructions_sched{0};
  std::atomic<std::uint64_t> pmu_llc_misses{0};
  std::atomic<std::uint64_t> pmu_branch_misses{0};
  std::atomic<std::uint64_t> pmu_stalled_backend{0};
  std::atomic<std::uint64_t> pmu_ctx_switches{0};

  void reset() {
    tasks_executed.store(0, std::memory_order_relaxed);
    phases_executed.store(0, std::memory_order_relaxed);
    exec_ticks.store(0, std::memory_order_relaxed);
    func_ticks.store(0, std::memory_order_relaxed);
    tasks_stolen.store(0, std::memory_order_relaxed);
    tasks_stolen_remote.store(0, std::memory_order_relaxed);
    tasks_converted.store(0, std::memory_order_relaxed);
    tasks_spawned.store(0, std::memory_order_relaxed);
    extra_pending_accesses.store(0, std::memory_order_relaxed);
    extra_pending_misses.store(0, std::memory_order_relaxed);
    tasks_split.store(0, std::memory_order_relaxed);
    splits_denied.store(0, std::memory_order_relaxed);
    steal_req_sent.store(0, std::memory_order_relaxed);
    steal_req_forwarded.store(0, std::memory_order_relaxed);
    steal_req_declined.store(0, std::memory_order_relaxed);
    pmu_cycles_task.store(0, std::memory_order_relaxed);
    pmu_cycles_sched.store(0, std::memory_order_relaxed);
    pmu_instructions_task.store(0, std::memory_order_relaxed);
    pmu_instructions_sched.store(0, std::memory_order_relaxed);
    pmu_llc_misses.store(0, std::memory_order_relaxed);
    pmu_branch_misses.store(0, std::memory_order_relaxed);
    pmu_stalled_backend.store(0, std::memory_order_relaxed);
    pmu_ctx_switches.store(0, std::memory_order_relaxed);
  }
};

struct worker_data {
  explicit worker_data(std::size_t ring_capacity)
      : queue(ring_capacity), high_queue(ring_capacity) {}

  // Normal-priority dual queue (always used).
  dual_queue<task*, task*> queue;
  // High-priority dual queue; only the first `high_priority_queues` workers
  // own an active one (others leave it empty).
  dual_queue<task*, task*> high_queue;

  worker_counters counters;

  // Distribution counters (always on; see perf/histogram.hpp):
  //   task-duration — total t_exec of each completed task, ns;
  //   task-overhead — the non-exec gap between consecutive phases on this
  //   worker (scheduling + queue + idle time per slot), ns. Σgaps + Σexec
  //   reconstructs Σt_func, so the histogram decomposes Eq. 3's mean.
  perf::log2_histogram hist_task_duration;
  perf::log2_histogram hist_task_overhead;
  // PMU-plane distributions (only recorded while a reader exists):
  //   task-ipc          — per-phase instructions/cycle as milli-IPC
  //                       (IPC × 1000, so log2 buckets resolve 0.1 steps);
  //   task-llc-miss     — LLC misses per phase;
  //   task-instructions — retired instructions per phase.
  perf::log2_histogram hist_task_ipc;
  perf::log2_histogram hist_task_llc;
  perf::log2_histogram hist_task_instructions;
  // End of the previous phase on this worker (TSC ticks); 0 = none yet.
  // Written by the owning worker, reset externally between measurement
  // regions — relaxed atomic keeps that handoff race-free.
  std::atomic<std::uint64_t> last_phase_end_ticks{0};

  // This worker's hardware-counter reader; created on the worker thread
  // (perf_event_open self-attaches) when the PMU plane is enabled, else
  // null — the disabled hot path is this one branch.
  std::unique_ptr<perf::pmu_reader> pmu;
  // Counter reading at the previous phase end, the base for the scheduler-
  // gap delta at the next phase begin. Validity mirrors the
  // last_phase_end_ticks reset-handoff idiom.
  perf::pmu_sample pmu_last_end;
  std::atomic<bool> pmu_last_valid{false};

  // This worker's trace lane; nullptr whenever tracing was disabled at
  // manager construction (perf/trace.hpp). Not owned.
  perf::trace_ring* trace = nullptr;

  // This worker's heartbeat slot on the process-global board
  // (perf/heartbeat.hpp); nullptr when the worker index exceeds the board's
  // capacity. Not owned. Stamped from the scheduler loop and run_phase.
  perf::heartbeat_slot* heartbeat = nullptr;

  int index = -1;
  // Dense NUMA/locality domain from the pin plan (or the even spread when
  // unpinned); the policies' same-domain steal tier keys off this.
  int numa_node = 0;
  // Dense physical-core id from the pin plan; workers sharing it are SMT
  // siblings. -1 when the worker is unpinned (no core identity).
  int core = -1;
  // Logical CPU this worker is pinned to; -1 = unpinned.
  int cpu = -1;
  bool owns_high_queue = false;
};

}  // namespace gran
