#include "threads/task.hpp"

#include <exception>
#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace gran {

std::atomic<std::uint64_t> task::next_id_{1};

const char* to_string(task_state s) noexcept {
  switch (s) {
    case task_state::staged: return "staged";
    case task_state::pending: return "pending";
    case task_state::active: return "active";
    case task_state::suspending: return "suspending";
    case task_state::wake_requested: return "wake_requested";
    case task_state::suspended: return "suspended";
    case task_state::terminated: return "terminated";
  }
  return "?";
}

task::task(body_fn body, task_priority priority, const char* description)
    : body_(std::move(body)),
      id_(next_id_.fetch_add(1, std::memory_order_relaxed)),
      priority_(priority),
      description_(description) {
  GRAN_ASSERT_MSG(static_cast<bool>(body_), "task requires a body");
}

task::~task() {
  const task_state s = state();
  GRAN_ASSERT_MSG(s == task_state::terminated || s == task_state::staged,
                  "task destroyed while runnable");
}

void task::convert_to_pending(fiber_stack stack) {
  GRAN_ASSERT(state() == task_state::staged);
  GRAN_ASSERT(!fib_);
  fib_ = std::make_unique<fiber>(std::move(stack), [this] {
    // An exception escaping a raw task has nowhere to go (async() wraps user
    // callables so their exceptions travel through the future instead);
    // terminate with a diagnosable message rather than unwinding into the
    // scheduler.
    try {
      body_();
    } catch (const std::exception& e) {
      GRAN_LOG_ERROR("uncaught exception in task %llu (%s): %s",
                     static_cast<unsigned long long>(id_), description_, e.what());
      std::terminate();
    } catch (...) {
      GRAN_LOG_ERROR("uncaught exception in task %llu (%s)",
                     static_cast<unsigned long long>(id_), description_);
      std::terminate();
    }
  });
  state_.store(task_state::pending, std::memory_order_release);
}

void task::begin_phase(int worker_index) {
  const task_state prev = state_.exchange(task_state::active, std::memory_order_acq_rel);
  GRAN_ASSERT_MSG(prev == task_state::pending, "begin_phase on non-pending task");
  last_worker_ = worker_index;
}

void task::mark_suspending() {
  const task_state prev =
      state_.exchange(task_state::suspending, std::memory_order_acq_rel);
  GRAN_ASSERT_MSG(prev == task_state::active, "mark_suspending on non-active task");
}

bool task::finalize_suspend() {
  task_state expected = task_state::suspending;
  if (state_.compare_exchange_strong(expected, task_state::suspended,
                                     std::memory_order_acq_rel)) {
    return true;  // parked; a future wake() will re-queue it
  }
  // A waker beat us to it: absorb the request and hand the task back.
  GRAN_ASSERT_MSG(expected == task_state::wake_requested,
                  "unexpected state while finalizing suspend");
  state_.store(task_state::pending, std::memory_order_release);
  return false;
}

void task::cancel_suspend() {
  const task_state prev = state_.exchange(task_state::active, std::memory_order_acq_rel);
  GRAN_ASSERT_MSG(prev == task_state::suspending || prev == task_state::wake_requested,
                  "cancel_suspend in unexpected state");
}

bool task::wake() {
  for (;;) {
    task_state s = state_.load(std::memory_order_acquire);
    switch (s) {
      case task_state::suspended: {
        if (state_.compare_exchange_weak(s, task_state::pending,
                                         std::memory_order_acq_rel))
          return true;  // caller enqueues
        break;
      }
      case task_state::suspending: {
        if (state_.compare_exchange_weak(s, task_state::wake_requested,
                                         std::memory_order_acq_rel))
          return false;  // the suspending worker re-queues
        break;
      }
      // Already runnable / running / finished: the waiter's predicate loop
      // re-checks, so a lost spurious wake is harmless.
      case task_state::pending:
      case task_state::active:
      case task_state::wake_requested:
      case task_state::terminated:
        return false;
      case task_state::staged:
        GRAN_ASSERT_MSG(false, "wake of a staged task");
    }
  }
}

void task::requeue_after_yield() {
  // After a cooperative yield the task announced suspension; it may already
  // carry a wake request (benign). Either way it becomes pending again.
  const task_state prev = state_.exchange(task_state::pending, std::memory_order_acq_rel);
  GRAN_ASSERT_MSG(prev == task_state::suspending || prev == task_state::wake_requested,
                  "requeue_after_yield in unexpected state");
}

void task::finish() {
  const task_state prev =
      state_.exchange(task_state::terminated, std::memory_order_acq_rel);
  GRAN_ASSERT_MSG(prev == task_state::active, "finish on non-active task");
}

fiber_stack task::take_stack() {
  GRAN_ASSERT(state() == task_state::terminated && fib_);
  return fib_->take_stack();
}

}  // namespace gran
