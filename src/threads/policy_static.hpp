// Static-FIFO policy: round-robin task placement, no stealing. Each worker
// only ever drains its own dual queue (plus the global low-priority queue).
// Exists as the no-load-balancing baseline in the scheduler ablation
// (bench/ablation_scheduler): coarse grains starve dramatically without
// stealing, fine grains behave close to priority-local-fifo.
#pragma once

#include <atomic>

#include "threads/policy.hpp"

namespace gran {

class static_fifo_policy final : public scheduling_policy {
 public:
  const char* name() const noexcept override { return "static-fifo"; }
  void init(thread_manager& tm) override;
  void enqueue_new(thread_manager& tm, int home, task* t) override;
  void enqueue_ready(thread_manager& tm, int home, task* t) override;
  void enqueue_hinted(thread_manager& tm, int target, task* t) override;
  task* get_next(thread_manager& tm, int w) override;
  bool queues_empty(const thread_manager& tm) const override;

 private:
  std::atomic<std::uint64_t> rr_{0};
};

}  // namespace gran
