// Scheduling-policy interface.
//
// A policy decides where newly created (staged) and re-awakened (pending)
// tasks are queued and in what order an idle worker searches for work. The
// paper's measurements all use the Priority Local-FIFO policy
// (policy_priority_local.hpp); static-FIFO and work-stealing-LIFO exist for
// the scheduler-comparison ablation the paper defers to future work.
#pragma once

#include <memory>
#include <string>

namespace gran {

class task;
class thread_manager;

class scheduling_policy {
 public:
  virtual ~scheduling_policy() = default;

  virtual const char* name() const noexcept = 0;

  // Called once after the manager built its worker array.
  virtual void init(thread_manager& tm) = 0;

  // Queues a freshly created task (a staged description). `home` is the
  // spawning worker, or -1 when spawned from a non-worker thread.
  virtual void enqueue_new(thread_manager& tm, int home, task* t) = 0;

  // Queues a ready-to-run task (woken from suspension or yielded). `home`
  // is the worker performing the enqueue, or -1 from external threads.
  virtual void enqueue_ready(thread_manager& tm, int home, task* t) = 0;

  // Queues a freshly created task with a *placement hint*: prefer worker
  // `target`'s structures even when the caller is not `target` (NUMA-aware
  // home placement). Unlike enqueue_new's `home`, `target` may be any valid
  // worker index. The default forwards to enqueue_new, keeping the hint
  // only when the caller happens to be the target.
  virtual void enqueue_hinted(thread_manager& tm, int target, task* t);

  // Finds the next task for worker `w`: pops local work, converts staged
  // descriptions, or steals. Returns nullptr when nothing is available
  // anywhere. A returned task is in the pending state and owned by the
  // caller.
  virtual task* get_next(thread_manager& tm, int w) = 0;

  // True when every queue managed by the policy is (approximately) empty;
  // used by shutdown and wait_idle. Implementations must also treat work
  // that is mid-handoff between two structures as non-empty — the manager
  // exposes the in-flight count via thread_manager::handoffs_in_flight().
  virtual bool queues_empty(const thread_manager& tm) const = 0;

  // Cooperation point: called from worker `w`'s own thread at moments the
  // manager knows the worker is responsive (task spawn, scheduler round) so
  // message-passing policies can service pending steal requests without a
  // polling thread. Default is a no-op; queue-based policies ignore it.
  virtual void cooperate(thread_manager& tm, int w);
};

// Factory by name ("priority-local-fifo", "static-fifo",
// "work-stealing-lifo", "channel-steal"); throws std::invalid_argument on
// unknown names.
std::unique_ptr<scheduling_policy> make_policy(const std::string& name);

// Resolves the effective policy name: `configured` when non-empty, else the
// GRAN_POLICY environment variable, else "priority-local-fifo".
std::string resolve_policy_name(const std::string& configured);

}  // namespace gran
