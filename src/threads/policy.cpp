#include "threads/policy.hpp"

#include <stdexcept>

#include "threads/policy_priority_local.hpp"
#include "threads/policy_static.hpp"
#include "threads/policy_work_stealing.hpp"
#include "threads/thread_manager.hpp"

namespace gran {

void scheduling_policy::enqueue_hinted(thread_manager& tm, int target, task* t) {
  const int caller = thread_manager::current_worker();
  enqueue_new(tm, caller == target ? target : -1, t);
}

std::unique_ptr<scheduling_policy> make_policy(const std::string& name) {
  if (name == "priority-local-fifo" || name.empty())
    return std::make_unique<priority_local_policy>();
  if (name == "static-fifo") return std::make_unique<static_fifo_policy>();
  if (name == "work-stealing-lifo") return std::make_unique<work_stealing_policy>();
  throw std::invalid_argument("unknown scheduling policy: " + name);
}

}  // namespace gran
