#include "threads/policy.hpp"

#include <cstdlib>
#include <stdexcept>

#include "threads/policy_channel_steal.hpp"
#include "threads/policy_priority_local.hpp"
#include "threads/policy_static.hpp"
#include "threads/policy_work_stealing.hpp"
#include "threads/thread_manager.hpp"

namespace gran {

void scheduling_policy::enqueue_hinted(thread_manager& tm, int target, task* t) {
  const int caller = thread_manager::current_worker();
  enqueue_new(tm, caller == target ? target : -1, t);
}

void scheduling_policy::cooperate(thread_manager&, int) {}

std::string resolve_policy_name(const std::string& configured) {
  if (!configured.empty()) return configured;
  if (const char* env = std::getenv("GRAN_POLICY"); env != nullptr && *env != '\0')
    return env;
  return "priority-local-fifo";
}

std::unique_ptr<scheduling_policy> make_policy(const std::string& name) {
  const std::string resolved = resolve_policy_name(name);
  if (resolved == "priority-local-fifo")
    return std::make_unique<priority_local_policy>();
  if (resolved == "static-fifo") return std::make_unique<static_fifo_policy>();
  if (resolved == "work-stealing-lifo")
    return std::make_unique<work_stealing_policy>();
  if (resolved == "channel-steal")
    return std::make_unique<channel_steal_policy>();
  throw std::invalid_argument("unknown scheduling policy: " + resolved);
}

}  // namespace gran
