// Structured concurrency: a task_group owns the tasks spawned through it
// and joins them in wait(), rethrowing the first child exception. Children
// may spawn grandchildren into the same group (fork/join trees).
//
//   algo::task_group tg(tm);
//   tg.run([&] { ... });
//   tg.run([&] { tg.run([&] { ... }); });   // nested fork
//   tg.wait();                              // joins everything
#pragma once

#include <atomic>
#include <exception>
#include <utility>

#include "sync/event.hpp"
#include "sync/spinlock.hpp"
#include "threads/runtime.hpp"
#include "threads/thread_manager.hpp"

namespace gran::algo {

class task_group {
 public:
  explicit task_group(thread_manager& tm) : tm_(tm) {}
  task_group() : task_group(resolve_manager()) {}

  task_group(const task_group&) = delete;
  task_group& operator=(const task_group&) = delete;

  // wait() must have joined everything before destruction.
  ~task_group() { GRAN_ASSERT_MSG(pending_.load() == 0, "task_group destroyed while running"); }

  // Spawns `f` as a child of this group.
  template <typename F>
  void run(F&& f) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    joined_.reset();
    tm_.spawn(
        [this, f = std::forward<F>(f)]() mutable {
          try {
            f();
          } catch (...) {
            record_exception(std::current_exception());
          }
          if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) joined_.set();
        },
        task_priority::normal, "task_group");
  }

  // Blocks (cooperatively inside tasks) until every child — including ones
  // spawned by children after wait() started — has finished. Rethrows the
  // first recorded child exception.
  void wait() {
    while (pending_.load(std::memory_order_acquire) != 0) joined_.wait();
    std::exception_ptr error;
    {
      error_guard_.lock();
      error = std::exchange(error_, nullptr);
      error_guard_.unlock();
    }
    if (error) std::rethrow_exception(error);
  }

  std::size_t pending() const noexcept { return pending_.load(std::memory_order_acquire); }

 private:
  void record_exception(std::exception_ptr e) {
    error_guard_.lock();
    if (!error_) error_ = std::move(e);
    error_guard_.unlock();
  }

  thread_manager& tm_;
  std::atomic<std::size_t> pending_{0};
  event joined_;
  spinlock error_guard_;
  std::exception_ptr error_;
};

}  // namespace gran::algo
