// Chunked parallel prefix sums (inclusive scan) and parallel transform.
//
// The scan uses the classic two-phase scheme: (1) each chunk reduces its
// range in parallel, (2) chunk offsets are combined sequentially (cheap:
// one value per chunk), (3) each chunk scans its range in parallel seeded
// with its offset. Deterministic for a fixed chunk size.
#pragma once

#include <vector>

#include "algo/chunking.hpp"
#include "sync/latch.hpp"
#include "threads/runtime.hpp"
#include "threads/thread_manager.hpp"

namespace gran::algo {

// out[i] = combine(out[i-1], map(i)) with out[first] = map(first); writes
// results through `sink(i, value)`. `init` must be the identity of
// `combine`.
template <typename T, typename Map, typename Combine, typename Sink>
void parallel_inclusive_scan(thread_manager& tm, std::size_t first, std::size_t last,
                             T init, Map&& map, Combine&& combine, Sink&& sink,
                             const chunking& policy = auto_chunk{}) {
  if (first >= last) return;
  const std::size_t items = last - first;
  std::size_t chunk;
  if (const auto* adaptive = std::get_if<adaptive_chunk>(&policy))
    chunk = std::max<std::size_t>(1, adaptive->initial);
  else
    chunk = resolve_chunk(policy, items, tm.num_workers());
  const std::size_t tasks = (items + chunk - 1) / chunk;

  // Phase 1: per-chunk totals, in parallel.
  std::vector<T> totals(tasks, init);
  {
    latch done(static_cast<std::int64_t>(tasks));
    std::size_t index = 0;
    for (std::size_t lo = first; lo < last; lo += chunk, ++index) {
      const std::size_t hi = std::min(last, lo + chunk);
      T* slot = &totals[index];
      tm.spawn(
          [&map, &combine, &done, slot, lo, hi] {
            T acc = *slot;
            for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
            *slot = std::move(acc);
            done.count_down();
          },
          task_priority::normal, "scan-reduce");
    }
    done.wait();
  }

  // Phase 2: exclusive offsets per chunk (sequential, one value per chunk).
  std::vector<T> offsets(tasks, init);
  T running = init;
  for (std::size_t c = 0; c < tasks; ++c) {
    offsets[c] = running;
    running = combine(std::move(running), totals[c]);
  }

  // Phase 3: per-chunk scan seeded with the offset, in parallel.
  {
    latch done(static_cast<std::int64_t>(tasks));
    std::size_t index = 0;
    for (std::size_t lo = first; lo < last; lo += chunk, ++index) {
      const std::size_t hi = std::min(last, lo + chunk);
      const T* offset = &offsets[index];
      tm.spawn(
          [&map, &combine, &sink, &done, offset, lo, hi] {
            T acc = *offset;
            for (std::size_t i = lo; i < hi; ++i) {
              acc = combine(std::move(acc), map(i));
              sink(i, acc);
            }
            done.count_down();
          },
          task_priority::normal, "scan-apply");
    }
    done.wait();
  }
}

// Convenience: scans `in` into a returned vector.
template <typename T, typename Combine>
std::vector<T> parallel_inclusive_scan(thread_manager& tm, const std::vector<T>& in,
                                       T init, Combine&& combine,
                                       const chunking& policy = auto_chunk{}) {
  std::vector<T> out(in.size());
  parallel_inclusive_scan(
      tm, 0, in.size(), std::move(init), [&in](std::size_t i) { return in[i]; },
      std::forward<Combine>(combine),
      [&out](std::size_t i, const T& v) { out[i] = v; }, policy);
  return out;
}

// out[i] = fn(i) for i in [first, last), chunked like parallel_for.
template <typename Fn, typename Sink>
void parallel_transform(thread_manager& tm, std::size_t first, std::size_t last,
                        Fn&& fn, Sink&& sink, const chunking& policy = auto_chunk{}) {
  if (first >= last) return;
  std::size_t chunk;
  if (const auto* adaptive = std::get_if<adaptive_chunk>(&policy))
    chunk = std::max<std::size_t>(1, adaptive->initial);
  else
    chunk = resolve_chunk(policy, last - first, tm.num_workers());
  const std::size_t tasks = (last - first + chunk - 1) / chunk;
  latch done(static_cast<std::int64_t>(tasks));
  for (std::size_t lo = first; lo < last; lo += chunk) {
    const std::size_t hi = std::min(last, lo + chunk);
    tm.spawn(
        [&fn, &sink, &done, lo, hi] {
          for (std::size_t i = lo; i < hi; ++i) sink(i, fn(i));
          done.count_down();
        },
        task_priority::normal, "parallel_transform");
  }
  done.wait();
}

}  // namespace gran::algo
