#include "algo/chunking.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gran::algo {

std::size_t resolve_chunk(const chunking& policy, std::size_t items, int workers) {
  GRAN_ASSERT(workers >= 1);
  if (const auto* fixed = std::get_if<static_chunk>(&policy))
    return std::max<std::size_t>(1, fixed->size);
  if (const auto* autoc = std::get_if<auto_chunk>(&policy)) {
    const std::size_t tasks = std::max<std::size_t>(
        1, static_cast<std::size_t>(workers) * std::max<std::size_t>(1, autoc->tasks_per_worker));
    return std::max<std::size_t>(1, (items + tasks - 1) / tasks);
  }
  if (const auto* lazy = std::get_if<lazy_chunk>(&policy)) {
    // Algorithms that cannot split mid-flight (reductions, scans) get the
    // lazy policy's coarse starting blocks as a plain static chunk.
    const std::size_t tasks = std::max<std::size_t>(
        1, lazy->initial_tasks != 0 ? lazy->initial_tasks
                                    : static_cast<std::size_t>(workers));
    return std::max<std::size_t>(1, (items + tasks - 1) / tasks);
  }
  // adaptive_chunk resolves per wave inside the algorithm; its initial value
  // is the answer for one-shot uses.
  return std::max<std::size_t>(1, std::get<adaptive_chunk>(policy).initial);
}

}  // namespace gran::algo
