// Lazy task splitting: the splittable-task abstraction behind the
// `lazy_chunk{}` chunking policy and the graph executor's splittable
// kernels.
//
// A splittable task owns a half-open index range [lo, hi) and executes it
// coarse by default — one task per worker for a parallel loop. Every
// `poll_iters` items it asks the shared split controller
// (core/split_controller.hpp) whether anyone needs work; if so it gives away
// the *back half* [mid, hi) as a new task and keeps executing the front.
// This is the RT_loop_split idiom (Prell's tasking-2.0): the common case —
// a balanced loop on an otherwise idle machine — pays one task per worker
// plus a cheap poll, while imbalance or interference converts overhead into
// parallelism only where demand actually appeared, instead of paying
// per-task overhead for a fine grain up front.
//
// The split preserves NUMA home placement: the child is hinted to
// home_worker_for_block() of its subrange over the loop's *full* range, the
// same stable mapping fixed chunking uses, so repeated loops over the same
// data keep touching the same domains no matter how they were split.
//
// Exactly-once by construction: [lo, mid) stays with the parent, [mid, hi)
// moves to the child — the two never overlap, and every split partitions the
// remaining range exactly. tests/split_test.cpp stresses this under
// randomized concurrent splits.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>

#include "core/split_controller.hpp"
#include "sync/event.hpp"
#include "sync/spinlock.hpp"
#include "threads/thread_manager.hpp"

namespace gran::algo {

namespace detail {

// Dynamic join: tracks the number of live splittable tasks of one loop
// (splits add members at runtime, unlike a latch whose count is fixed up
// front). The creator registers the initial tasks, each split adds one, and
// the waiter blocks on the event until the last member arrives.
struct split_join {
  explicit split_join(std::size_t initial)
      : outstanding(static_cast<std::ptrdiff_t>(initial)) {}

  std::atomic<std::ptrdiff_t> outstanding;
  event done;
  std::atomic<bool> failed{false};
  spinlock error_guard;
  std::exception_ptr error;

  // Registers the child *before* it is spawned (the spawn publishes it).
  void add() { outstanding.fetch_add(1, std::memory_order_relaxed); }

  void arrive() {
    if (outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) done.set();
  }

  void fail(std::exception_ptr e) {
    if (!failed.exchange(true, std::memory_order_acq_rel)) {
      error_guard.lock();
      error = std::move(e);
      error_guard.unlock();
    }
  }
};

// Executes fn(i) over [lo, hi), splitting off the back half whenever the
// controller reports demand. Runs inside a task; never throws (failures are
// routed into the join, and a failed join abandons remaining items — same
// first-exception-wins contract as parallel_for's run_wave).
template <typename F>
void run_splittable(thread_manager& tm, core::split_controller& ctl,
                    split_join& join, std::size_t lo, std::size_t hi, const F& fn,
                    std::size_t range_first, std::size_t range_items) {
  const std::size_t poll = ctl.poll_iters();
  // Exponential poll backoff: while nobody is hungry the stride doubles (up
  // to 64x the base), so cheap items do not pay a fixed per-64-items atomic
  // toll; any split resets it, keeping the response latency tight exactly
  // when demand is live.
  std::size_t stride = poll;
  try {
    while (lo < hi) {
      if (join.failed.load(std::memory_order_relaxed)) break;
      ctl.maybe_observe(tm);
      switch (ctl.should_split(hi - lo, tm.starving_workers(),
                               tm.queued_tasks())) {
        case core::split_verdict::split: {
          // Keep the front half (round up: the parent retains the extra item
          // so progress is guaranteed), give away [mid, hi).
          const std::size_t mid = lo + (hi - lo + 1) / 2;
          const std::size_t child_hi = hi;
          const int home = tm.home_worker_for_block(mid - range_first, range_items);
          join.add();
          ctl.note_split();
          tm.record_split(this_task::id(), mid);
          tm.spawn_on(
              home,
              [&tm, &ctl, &join, mid, child_hi, &fn, range_first, range_items] {
                ctl.note_claim();
                run_splittable(tm, ctl, join, mid, child_hi, fn, range_first,
                               range_items);
                join.arrive();
              },
              task_priority::normal, "lazy-split");
          hi = mid;
          stride = poll;
          continue;
        }
        case core::split_verdict::denied:
          tm.record_split_denied();
          if (stride < poll * 64) stride *= 2;
          break;
        case core::split_verdict::no_demand:
          if (stride < poll * 64) stride *= 2;
          break;
      }
      const std::size_t stop = hi - lo > stride ? lo + stride : hi;
      for (; lo < stop; ++lo) fn(lo);
    }
  } catch (...) {
    join.fail(std::current_exception());
  }
}

}  // namespace detail

// Applies fn(i) for every i in [first, last), starting from `initial_tasks`
// coarse block-distributed tasks (0 = one per worker) and splitting lazily
// on demand via the shared `ctl`. Blocks (cooperatively — callable from
// inside a task) until every index ran or an exception won; the first
// exception is rethrown. The controller is shared so several concurrent
// loops (or graph nodes) amortize one observation cadence and one gate.
template <typename F>
void splittable_for(thread_manager& tm, core::split_controller& ctl,
                    std::size_t first, std::size_t last, const F& fn,
                    std::size_t initial_tasks = 0) {
  if (first >= last) return;
  const std::size_t items = last - first;
  std::size_t tasks = initial_tasks != 0
                          ? initial_tasks
                          : static_cast<std::size_t>(tm.num_workers());
  tasks = std::max<std::size_t>(1, std::min(tasks, items));

  detail::split_join join(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    const std::size_t lo = first + items * t / tasks;
    const std::size_t hi = first + items * (t + 1) / tasks;
    const int home = tm.home_worker_for_block(lo - first, items);
    tm.spawn_on(
        home,
        [&tm, &ctl, &join, lo, hi, &fn, first, items] {
          detail::run_splittable(tm, ctl, join, lo, hi, fn, first, items);
          join.arrive();
        },
        task_priority::normal, "lazy-chunk");
  }
  join.done.wait();
  if (join.failed.load(std::memory_order_acquire) && join.error)
    std::rethrow_exception(join.error);
}

// Executes fn(i) over [first, last) *inline on the calling task*, splitting
// off back halves on demand; returns once every split-off descendant also
// finished. The building block for splittable graph kernels
// (graph/executor.cpp): the node's own task does the work and pays for
// extra tasks only when demand actually appeared — zero new tasks in the
// balanced case. Cooperative: the wait suspends the calling task if
// children are still running.
template <typename F>
void splittable_run_inline(thread_manager& tm, core::split_controller& ctl,
                           std::size_t first, std::size_t last, const F& fn) {
  if (first >= last) return;
  detail::split_join join(1);
  detail::run_splittable(tm, ctl, join, first, last, fn, first, last - first);
  join.arrive();
  join.done.wait();
  if (join.failed.load(std::memory_order_acquire) && join.error)
    std::rethrow_exception(join.error);
}

// Convenience overload owning its controller (options env-resolved).
template <typename F>
void splittable_for(thread_manager& tm, std::size_t first, std::size_t last,
                    const F& fn, core::split_options opts = core::resolve_split_options(),
                    std::size_t initial_tasks = 0) {
  core::split_controller ctl(opts);
  splittable_for(tm, ctl, first, last, fn, initial_tasks);
}

}  // namespace gran::algo
