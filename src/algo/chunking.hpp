// Chunking policies for the parallel algorithms — the user-facing dial for
// task granularity, the quantity the whole paper is about.
//
//   static_chunk{n}   every task covers exactly n items (the benchmark's
//                     "partition size");
//   auto_chunk{}      items / (workers * oversubscription) — a decent
//                     static default when per-item cost is unknown;
//   adaptive_chunk{}  starts fine and re-tunes between waves from the live
//                     idle-rate counter (core/tuner.hpp) — the paper's
//                     dynamic-adaptation goal.
#pragma once

#include <cstddef>
#include <variant>

#include "core/tuner.hpp"

namespace gran::algo {

struct static_chunk {
  std::size_t size = 1;
};

struct auto_chunk {
  // Target tasks per worker; more gives the scheduler load-balancing slack,
  // fewer reduces overhead.
  std::size_t tasks_per_worker = 4;
};

struct adaptive_chunk {
  std::size_t initial = 16;
  core::tuner_options options{};
};

using chunking = std::variant<static_chunk, auto_chunk, adaptive_chunk>;

// Resolves a non-adaptive policy to a concrete chunk size for `items` of
// work on `workers` workers (adaptive resolves per wave inside the
// algorithm).
std::size_t resolve_chunk(const chunking& policy, std::size_t items, int workers);

}  // namespace gran::algo
