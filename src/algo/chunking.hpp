// Chunking policies for the parallel algorithms — the user-facing dial for
// task granularity, the quantity the whole paper is about.
//
//   static_chunk{n}   every task covers exactly n items (the benchmark's
//                     "partition size");
//   auto_chunk{}      items / (workers * oversubscription) — a decent
//                     static default when per-item cost is unknown;
//   adaptive_chunk{}  starts fine and re-tunes between waves from the live
//                     idle-rate counter (core/tuner.hpp) — the paper's
//                     dynamic-adaptation goal;
//   lazy_chunk{}      starts coarse (one task per worker) and splits running
//                     tasks on demand when the runtime observes starvation
//                     (core/split_controller.hpp + algo/splittable.hpp) —
//                     closed-loop granularity without a grain parameter.
#pragma once

#include <cstddef>
#include <variant>

#include "core/split_controller.hpp"
#include "core/tuner.hpp"

namespace gran::algo {

struct static_chunk {
  std::size_t size = 1;
};

struct auto_chunk {
  // Target tasks per worker; more gives the scheduler load-balancing slack,
  // fewer reduces overhead.
  std::size_t tasks_per_worker = 4;
};

struct adaptive_chunk {
  std::size_t initial = 16;
  core::tuner_options options{};
};

struct lazy_chunk {
  // Controller knobs; the default applies the GRAN_SPLIT / GRAN_SPLIT_MIN
  // environment overrides.
  core::split_options options = core::resolve_split_options();
  // Initial coarse tasks; 0 = one per worker.
  std::size_t initial_tasks = 0;
};

using chunking = std::variant<static_chunk, auto_chunk, adaptive_chunk, lazy_chunk>;

// Resolves a non-adaptive policy to a concrete chunk size for `items` of
// work on `workers` workers (adaptive resolves per wave inside the
// algorithm; lazy resolves to its coarse initial blocks, the answer for
// algorithms that cannot split mid-flight, e.g. reductions).
std::size_t resolve_chunk(const chunking& policy, std::size_t items, int workers);

}  // namespace gran::algo
