// Chunked parallel reduction.
//
//   double sum = parallel_reduce(tm, 0, n, 0.0,
//       [&](std::size_t i) { return data[i]; },          // map
//       [](double a, double b) { return a + b; });       // combine
//
// Each chunk reduces locally in one task; partial results combine in
// spawn order, so the result is deterministic for a fixed chunk size
// (important for floating-point reproducibility across runs).
//
// `init` must be the identity of `combine` (0 for +, +inf for min, ...):
// every chunk starts its partial from it.
#pragma once

#include <vector>

#include "algo/chunking.hpp"
#include "sync/latch.hpp"
#include "threads/runtime.hpp"
#include "threads/thread_manager.hpp"

namespace gran::algo {

template <typename T, typename Map, typename Combine>
T parallel_reduce(thread_manager& tm, std::size_t first, std::size_t last, T init,
                  Map&& map, Combine&& combine, const chunking& policy = auto_chunk{}) {
  if (first >= last) return init;
  const std::size_t items = last - first;
  // The adaptive policy is wave-structured and does not fit a one-shot
  // reduction; treat it as its initial static chunk.
  std::size_t chunk;
  if (const auto* adaptive = std::get_if<adaptive_chunk>(&policy))
    chunk = std::max<std::size_t>(1, adaptive->initial);
  else
    chunk = resolve_chunk(policy, items, tm.num_workers());

  const std::size_t tasks = (items + chunk - 1) / chunk;
  std::vector<T> partials(tasks, init);
  latch done(static_cast<std::int64_t>(tasks));

  std::size_t index = 0;
  for (std::size_t lo = first; lo < last; lo += chunk, ++index) {
    const std::size_t hi = std::min(last, lo + chunk);
    T* slot = &partials[index];
    tm.spawn(
        [&map, &combine, &done, slot, lo, hi] {
          T acc = *slot;
          for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
          *slot = std::move(acc);
          done.count_down();
        },
        task_priority::normal, "parallel_reduce");
  }
  done.wait();

  T result = init;
  for (auto& p : partials) result = combine(std::move(result), std::move(p));
  return result;
}

template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t first, std::size_t last, T init, Map&& map,
                  Combine&& combine, const chunking& policy = auto_chunk{}) {
  return parallel_reduce(resolve_manager(), first, last, std::move(init),
                         std::forward<Map>(map), std::forward<Combine>(combine), policy);
}

}  // namespace gran::algo
