// Chunked parallel loops over index ranges.
//
//   parallel_for(tm, 0, n, [&](std::size_t i) { ... });                 // auto chunk
//   parallel_for(tm, 0, n, fn, algo::static_chunk{4096});
//   parallel_for(tm, 0, n, fn, algo::adaptive_chunk{.initial = 16});
//   parallel_for(tm, 0, n, fn, algo::lazy_chunk{});    // no grain parameter
//
// Each chunk becomes one task; the chunking policy is the task-granularity
// dial. The adaptive policy re-tunes the chunk between waves from the
// idle-rate counter (paper §VI's stated goal). The lazy policy starts with
// one coarse task per worker and splits running tasks on demand
// (algo/splittable.hpp) — closed-loop granularity with no grain parameter at
// all. Exceptions from `fn` propagate to the caller (first one wins; the
// wave still drains).
#pragma once

#include <atomic>
#include <exception>

#include "algo/chunking.hpp"
#include "algo/splittable.hpp"
#include "sync/latch.hpp"
#include "sync/spinlock.hpp"
#include "threads/runtime.hpp"
#include "threads/thread_manager.hpp"

namespace gran::algo {

namespace detail {

// Runs one wave of chunk tasks over [first, last); records the first
// exception into `error`. `range_first`/`range_items` describe the loop's
// *full* index range: each chunk is hinted to the worker whose NUMA domain
// owns its slice of the index space (home_worker_for_block), a mapping that
// stays stable across waves and chunk-size changes so repeated loops over
// the same data keep touching the same domains. The hint is advisory — any
// worker may still steal the chunk.
template <typename F>
void run_wave(thread_manager& tm, std::size_t first, std::size_t last,
              std::size_t chunk, const F& fn, std::atomic<bool>& failed,
              std::exception_ptr& error, spinlock& error_guard,
              std::size_t range_first, std::size_t range_items,
              core::wave_probe* probe = nullptr) {
  const std::size_t items = last - first;
  const std::size_t tasks = (items + chunk - 1) / chunk;
  if (probe != nullptr) probe->arm(tasks);
  latch done(static_cast<std::int64_t>(tasks));
  for (std::size_t lo = first; lo < last; lo += chunk) {
    const std::size_t hi = std::min(last, lo + chunk);
    const int home = tm.home_worker_for_block(lo - range_first, range_items);
    tm.spawn_on(
        home,
        [&, lo, hi] {
          try {
            if (!failed.load(std::memory_order_relaxed))
              for (std::size_t i = lo; i < hi; ++i) fn(i);
          } catch (...) {
            if (!failed.exchange(true, std::memory_order_acq_rel)) {
              error_guard.lock();
              error = std::current_exception();
              error_guard.unlock();
            }
          }
          if (probe != nullptr) probe->task_done(tm);
          done.count_down();
        },
        task_priority::normal, "parallel_for");
  }
  done.wait();
}

}  // namespace detail

// Applies fn(i) for every i in [first, last) using `policy` chunking.
template <typename F>
void parallel_for(thread_manager& tm, std::size_t first, std::size_t last, F&& fn,
                  const chunking& policy = auto_chunk{}) {
  if (first >= last) return;
  const std::size_t items = last - first;

  std::atomic<bool> failed{false};
  std::exception_ptr error;
  spinlock error_guard;

  if (const auto* adaptive = std::get_if<adaptive_chunk>(&policy)) {
    // Wave-at-a-time with idle-rate feedback between waves. The wave_probe
    // closes each measurement interval inside the wave's last finishing task
    // so the join tail is not misread as fine-grain overhead.
    core::grain_tuner tuner(adaptive->initial, adaptive->options);
    core::wave_probe probe;
    std::size_t next = first;
    while (next < last && !failed.load(std::memory_order_relaxed)) {
      const std::size_t chunk = tuner.chunk();
      const std::size_t wave_items = std::min<std::size_t>(
          last - next,
          std::max<std::size_t>(chunk * static_cast<std::size_t>(tm.num_workers()) * 4,
                                chunk));
      const auto before = tm.counter_totals();
      detail::run_wave(tm, next, next + wave_items, chunk, fn, failed, error,
                       error_guard, first, items, &probe);
      const auto after = probe.end_or(tm.counter_totals());
      const double func = static_cast<double>(after.func_ns - before.func_ns);
      const double exec = static_cast<double>(after.exec_ns - before.exec_ns);
      const double idle = func > 0 ? std::max(0.0, func - exec) / func : 0.0;
      tuner.update(idle, after.tasks_executed - before.tasks_executed,
                   tm.num_workers());
      next += wave_items;
    }
  } else if (const auto* lazy = std::get_if<lazy_chunk>(&policy)) {
    // Demand-driven: coarse per-worker blocks, split only when the runtime
    // observes starvation. No grain parameter.
    core::split_controller ctl(lazy->options);
    try {
      splittable_for(tm, ctl, first, last, fn, lazy->initial_tasks);
    } catch (...) {
      failed.store(true, std::memory_order_release);
      error = std::current_exception();
    }
  } else {
    const std::size_t chunk = resolve_chunk(policy, items, tm.num_workers());
    detail::run_wave(tm, first, last, chunk, fn, failed, error, error_guard,
                     first, items);
  }

  if (failed.load(std::memory_order_acquire) && error) std::rethrow_exception(error);
}

// Convenience overload on the resolved default manager.
template <typename F>
void parallel_for(std::size_t first, std::size_t last, F&& fn,
                  const chunking& policy = auto_chunk{}) {
  parallel_for(resolve_manager(), first, last, std::forward<F>(fn), policy);
}

}  // namespace gran::algo
