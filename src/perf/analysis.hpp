// Offline trace analysis: turns a retained trace (perf::trace_dump) into
// per-task and per-worker evidence for the paper's aggregate equations.
//
//  * Per-task lifetime decomposition — spawn→first-run wait (Eq. 5's tw
//    attributed to individual tasks), executed time, suspend/resume gaps —
//    built from task_enqueue provenance plus the phase events.
//  * Critical-path extraction through the spawn DAG: the longest
//    exec-weighted chain where a parent contributes only the work it had
//    completed before spawning the child. Chain segments therefore occupy
//    disjoint wall-clock intervals, so the reported length is ≤ wall time
//    by construction (tests assert both bounds).
//  * Reconstructed timelines — concurrency, runnable-queue depth, per-worker
//    busy/parked spans — and Eq. 1–3 recomputed purely from events so they
//    can be cross-checked against the live counters.
//
// The analyzer consumes only trace_dump (never live rings), so it runs
// identically on an in-process capture and a binary file loaded from disk,
// and gran_perf stays independent of the scheduler libraries.
//
// Honesty rule: when any worker lane lost events to ring wraparound the
// spawn→begin pairing is untrustworthy (an enqueue may survive while the
// matching begin was overwritten, or vice versa), so wait attribution is
// refused with an explanation instead of silently under-reporting
// (analysis_options::force_wait_attribution overrides for exploration).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "perf/trace.hpp"

namespace gran::perf {

struct analysis_options {
  int top_n = 10;                      // chain / top-waiter rows in the report
  bool force_wait_attribution = false; // compute waits despite dropped events
};

// One task's reconstructed lifetime. Durations are in ns (converted with the
// dump's ns_per_tick); `name` points into the dump's interned string table,
// so the dump must outlive the analysis_result.
struct task_record {
  std::uint64_t id = 0;
  const char* name = nullptr;
  std::uint16_t first_worker = 0;      // worker that ran the first phase
  std::uint16_t spawn_worker = 0;      // external_worker for non-worker spawns
  bool has_enqueue = false;            // a task_enqueue event was retained
  bool complete = false;               // a task_end event was retained
  std::uint64_t enqueue_ticks = 0;
  std::uint64_t first_begin_ticks = 0;
  std::uint64_t last_end_ticks = 0;
  double wait_ns = 0;                  // enqueue -> first phase begin
  double exec_ns = 0;                  // sum of phase slices
  double suspend_ns = 0;               // gaps between consecutive phases
  int phases = 0;
  bool stolen = false;                 // steal event observed before first run
  double queue_wait_ns = 0;            // enqueue -> steal (or full wait)
  double steal_latency_ns = 0;         // steal -> first begin (0 if not stolen)
  bool has_parent = false;             // provenance resolved to a spawner task
  std::uint64_t parent_id = 0;
  bool split_child = false;            // spawned as a lazy split's back half;
                                       // parent_id comes from the task_split
                                       // event, not phase coverage
  std::uint64_t split_point = 0;       // first index of the inherited range
  bool has_graph_node = false;         // graph_node provenance was retained
  std::uint32_t graph_step = 0;
  std::uint32_t graph_point = 0;
  bool on_critical_path = false;
  // Hardware-counter attribution (task_pmu events, perf/pmu.hpp). The
  // kernel triple sums per-phase deltas; the sched triple sums the
  // scheduler gaps preceding this task's phases. In software-only captures
  // instructions and llc stay 0 while cycles still carries rdtsc deltas.
  bool has_pmu = false;
  std::uint64_t pmu_cycles = 0;        // kernel (phase-body) cycles
  std::uint64_t pmu_instructions = 0;
  std::uint64_t pmu_llc_misses = 0;
  std::uint64_t pmu_sched_cycles = 0;  // scheduler-gap cycles
  std::uint64_t pmu_sched_instructions = 0;
  std::uint64_t pmu_sched_llc_misses = 0;
};

// One worker's reconstructed timeline.
struct worker_timeline {
  std::uint16_t worker = 0;
  double span_ns = 0;    // first event -> last event on the lane
  double busy_ns = 0;    // sum of phase slices
  double parked_ns = 0;  // sum of park->unpark intervals
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_spawned = 0;  // task_enqueue events on this lane
  std::uint64_t steals = 0;
  std::uint64_t splits = 0;   // task_split events on this lane
  std::uint64_t dropped = 0;  // ring-wraparound losses on this lane
};

struct analysis_result {
  bool ok = false;
  std::string error;  // set when !ok (e.g. empty trace)

  double ns_per_tick = 1.0;
  double wall_ns = 0;  // first event -> last event across all lanes
  int num_workers = 0;
  std::uint64_t total_events = 0;
  std::uint64_t total_dropped = 0;

  std::vector<task_record> tasks;       // every task with at least one event
  std::vector<worker_timeline> workers;

  // Eq. 1–3 recomputed from events alone (func := Σ per-worker lane spans,
  // exec := Σ phase slices, nt := completed tasks).
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_from_splits = 0;  // tasks bound to a parent via task_split
  double exec_ns = 0;
  double func_ns = 0;
  double idle_rate = 0;      // Eq. 1: (func - exec) / func
  double task_duration_ns = 0;  // Eq. 2: exec / nt
  double task_overhead_ns = 0;  // Eq. 3: (func - exec) / nt

  // Wait attribution (Eq. 5 per task). Refused when events were dropped.
  bool waits_valid = false;
  std::string waits_error;   // why attribution was refused
  std::uint64_t waits_counted = 0;
  double wait_mean_ns = 0;
  double wait_p95_ns = 0;
  double wait_max_ns = 0;
  std::uint64_t stolen_waits = 0;       // waits that crossed a steal
  double queue_wait_mean_ns = 0;        // time sitting in the spawner's queue
  double steal_latency_mean_ns = 0;     // steal -> first run, stolen tasks only

  // Critical path (spawn-DAG longest exec-weighted chain).
  double critical_path_ns = 0;
  double critical_path_frac = 0;        // of wall_ns
  std::vector<std::uint64_t> critical_chain;  // task ids, root first

  // Reconstructed timelines.
  double avg_concurrency = 0;           // time-weighted running phases
  std::uint64_t max_concurrency = 0;
  double avg_runnable = 0;              // time-weighted spawned-not-yet-run
  std::uint64_t max_runnable = 0;

  // Per-grain-bin microarchitectural table (task_pmu events). Tasks are
  // bucketed by log2 of their exec time; each bin aggregates the hardware
  // deltas so the report can show the U-curve's walls in hardware units:
  // scheduler instructions/task flat while kernel work shrinks with grain
  // (left wall), LLC misses/task rising with the stolen fraction at fine
  // grain (right wall).
  bool has_pmu = false;                 // any task carried task_pmu records
  bool pmu_software_only = false;       // no instructions anywhere: rdtsc mode
  std::uint64_t pmu_tasks = 0;          // tasks with PMU attribution
  struct pmu_bin_row {
    int bucket = 0;                     // log2(exec_ns) bin index
    double grain_lo_ns = 0;             // bin range [lo, hi)
    double grain_hi_ns = 0;
    std::uint64_t tasks = 0;
    double median_ipc = 0;              // of per-task kernel IPC; 0 in sw mode
    double kernel_cycles = 0;           // per task
    double sched_cycles = 0;            // per task
    double kernel_instructions = 0;     // per task; 0 in software mode
    double sched_instructions = 0;      // per task; 0 in software mode
    double llc_misses = 0;              // per task; 0 in software/minimal mode
    double stolen_frac = 0;             // fraction of the bin's tasks stolen
  };
  std::vector<pmu_bin_row> pmu_bins;
};

// Pure function of the dump: merges all lanes by timestamp (lanes may be
// mutually out of order) and reconstructs the above.
analysis_result analyze_trace(const trace_dump& dump,
                              const analysis_options& opt = {});

// Human-readable report. The critical-path line is stable
// ("critical path: <X> ms (<Y>% of wall, <K> tasks)") — CI greps for it.
void write_report(std::ostream& os, const analysis_result& r,
                  const analysis_options& opt = {});

// Per-task CSV (one row per task, header included).
void write_task_csv(std::ostream& os, const analysis_result& r);

}  // namespace gran::perf
