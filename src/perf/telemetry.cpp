#include "perf/telemetry.hpp"

#include <csignal>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "perf/analysis.hpp"
#include "perf/heartbeat.hpp"
#include "perf/trace.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace gran::perf {

namespace {

// SIGUSR1 -> flight dump. The handler only sets a flag (async-signal-safe);
// the telemetry thread polls it every wakeup. One session owns the handler
// at a time (the common case is exactly one per process, from
// observability_session).
std::atomic<bool> g_flight_signal{false};
struct sigaction g_prev_usr1;

void on_sigusr1(int) { g_flight_signal.store(true, std::memory_order_relaxed); }

// Live sessions in this process; telemetry_autostart_from_env only fires
// when this is zero (an observability_session-owned session wins).
std::atomic<int> g_active_sessions{0};

void write_incident_jsonl(std::ostream& os, const stall_incident& inc,
                          const std::string& flight_path) {
  os << "{\"type\":\"incident\",\"kind\":\"" << to_string(inc.kind)
     << "\",\"t_ns\":" << inc.detected_at_ns;
  if (inc.worker >= 0) os << ",\"worker\":" << inc.worker;
  if (inc.task_id != 0) os << ",\"task\":" << inc.task_id;
  os << ",\"age_ns\":" << static_cast<std::int64_t>(inc.age_ns) << ",\"detail\":";
  write_json_string(os, inc.detail);
  if (!flight_path.empty()) {
    os << ",\"flight\":";
    write_json_string(os, flight_path);
  }
  os << "}\n";
}

}  // namespace

telemetry_session::telemetry_session(telemetry_options opt)
    : opt_(std::move(opt)),
      aggregator_(opt_.window),
      watchdog_(opt_.watchdog) {
  if (opt_.interval_us <= 0) opt_.interval_us = 100'000;

  // The flight recorder's memory is the trace rings: force tracing on so a
  // thread manager constructed after this session hands its workers rings.
  if (!opt_.flight_prefix.empty() && !tracer::enabled())
    tracer::instance().enable();

  if (!opt_.jsonl_out.empty()) jsonl_.open(opt_.jsonl_out);

  if (!opt_.flight_prefix.empty() && opt_.install_signal_handler) {
    struct sigaction sa {};
    sa.sa_handler = on_sigusr1;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    if (::sigaction(SIGUSR1, &sa, &g_prev_usr1) == 0) signal_installed_ = true;
  }

  g_active_sessions.fetch_add(1, std::memory_order_relaxed);
  thread_ = std::thread([this] { run(); });
}

telemetry_session::~telemetry_session() {
  stop();
  g_active_sessions.fetch_sub(1, std::memory_order_relaxed);
}

void telemetry_autostart_from_env() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    if (g_active_sessions.load(std::memory_order_relaxed) > 0) return;
    telemetry_options to;
    to.jsonl_out = env_string("GRAN_METRICS", "");
    to.prom_out = env_string("GRAN_METRICS_PROM", "");
    const std::int64_t us = env_int("GRAN_METRICS_US", 0);
    if (us > 0) to.interval_us = us;
    to.flight_prefix = env_string("GRAN_FLIGHT", "");
    if (to.flight_prefix == "1" || to.flight_prefix == "true")
      to.flight_prefix = "gran_flight";
    const std::int64_t stall = env_int("GRAN_STALL_NS", 0);
    if (stall > 0) to.watchdog.stuck_ns = stall;
    if (!to.enabled()) return;
    // Touch the singletons the session's thread uses so they are
    // constructed first and therefore destroyed after the session at exit.
    registry::instance();
    histogram_registry::instance();
    heartbeat_board::instance();
    tracer::instance();
    static telemetry_session session(std::move(to));
  });
}

void telemetry_session::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // One final (short) window so samples recorded after the last periodic
  // tick still reach the stream.
  close_window();
  jsonl_.close();
  if (signal_installed_) {
    ::sigaction(SIGUSR1, &g_prev_usr1, nullptr);
    signal_installed_ = false;
  }
}

void telemetry_session::run() {
  // Wake at least every 100 ms so SIGUSR1 and stop() stay responsive under
  // long window intervals.
  const auto interval = std::chrono::microseconds(opt_.interval_us);
  const auto max_nap = std::chrono::milliseconds(100);
  auto next_tick = std::chrono::steady_clock::now() + interval;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    const auto nap = next_tick - now;
    if (nap > std::chrono::nanoseconds::zero())
      cv_.wait_for(lock, nap < max_nap ? nap : max_nap,
                   [this] { return stop_requested_; });
    if (stop_requested_) return;

    if (g_flight_signal.exchange(false, std::memory_order_relaxed)) {
      lock.unlock();
      const std::string path = capture_flight("SIGUSR1");
      if (!path.empty())
        std::fprintf(stderr, "[gran] flight dump (SIGUSR1): %s\n", path.c_str());
      lock.lock();
      if (stop_requested_) return;
    }

    if (std::chrono::steady_clock::now() < next_tick) continue;
    next_tick += interval;
    lock.unlock();
    close_window();
    lock.lock();
  }
}

void telemetry_session::fill_heartbeats(window_snapshot& w) {
  heartbeat_board& board = heartbeat_board::instance();
  if (board.active_workers() == 0) return;
  const std::uint64_t now = tsc_clock::now();
  for (worker_window& row : w.workers) {
    const heartbeat_slot* slot = board.slot(row.worker);
    if (slot == nullptr || row.worker >= board.active_workers()) continue;
    const std::uint64_t beat = slot->beat_ticks.load(std::memory_order_relaxed);
    if (beat != 0 && now > beat)
      row.heartbeat_age_ns = static_cast<double>(tsc_clock::to_ns(now - beat));
    else if (beat != 0)
      row.heartbeat_age_ns = 0;
    const std::uint64_t start =
        slot->phase_start_ticks.load(std::memory_order_acquire);
    if (start != 0 && now > start) {
      row.running_task = slot->task_id.load(std::memory_order_relaxed);
      row.running_ns = static_cast<double>(tsc_clock::to_ns(now - start));
    }
  }
}

void telemetry_session::close_window() {
  window_snapshot w = aggregator_.tick();
  fill_heartbeats(w);

  if (jsonl_.ok()) {
    std::ostringstream line;
    write_window_jsonl(line, w);
    jsonl_.write(line.str());
  }
  if (!opt_.prom_out.empty()) {
    std::ostringstream body;
    write_prometheus_text(body, w);
    write_file_atomic(opt_.prom_out, body.str());
  }
  windows_.fetch_add(1, std::memory_order_relaxed);

  handle_incidents(w);
}

void telemetry_session::handle_incidents(const window_snapshot& w) {
  const std::vector<stall_incident> incidents = watchdog_.check(w);
  if (incidents.empty()) return;
  incidents_.fetch_add(incidents.size(), std::memory_order_relaxed);

  // One flight dump covers every incident of this tick — the rings hold the
  // same history regardless of which detector fired.
  std::string flight_path;
  if (flights_.load(std::memory_order_relaxed) <
      static_cast<std::uint64_t>(opt_.max_flights))
    flight_path = capture_flight(to_string(incidents.front().kind));

  for (const stall_incident& inc : incidents) {
    std::fprintf(stderr, "[gran] watchdog: %s: %s\n", to_string(inc.kind),
                 inc.detail.c_str());
    if (jsonl_.ok()) {
      std::ostringstream line;
      write_incident_jsonl(line, inc, flight_path);
      jsonl_.write(line.str());
    }
  }
}

std::string telemetry_session::capture_flight(const std::string& reason) {
  if (opt_.flight_prefix.empty() || !tracer::enabled()) return {};
  const std::uint64_t n = flights_.fetch_add(1, std::memory_order_relaxed);
  const std::string base = opt_.flight_prefix + "-" + std::to_string(n);
  const std::string bin_path = base + ".bin";

  const trace_dump d = tracer::instance().dump_live();
  {
    std::ofstream f(bin_path, std::ios::binary);
    if (!f) return {};
    write_trace_binary(f, d);
    if (!f) return {};
  }

  // Auto-generated incident summary: the same report gran_trace_report
  // produces offline, so a stall comes with its own first-pass analysis.
  std::ofstream report(base + ".txt");
  if (report) {
    report << "flight recorder dump: " << bin_path << "\n";
    report << "trigger: " << reason << "\n\n";
    const analysis_result r = analyze_trace(d);
    if (r.ok)
      write_report(report, r);
    else
      report << "(trace analysis unavailable: " << r.error << ")\n";
  }

  std::lock_guard<std::mutex> lock(flight_mutex_);
  last_flight_path_ = bin_path;
  return bin_path;
}

std::string telemetry_session::last_flight_path() const {
  std::lock_guard<std::mutex> lock(flight_mutex_);
  return last_flight_path_;
}

}  // namespace gran::perf
