#include "perf/sampler.hpp"

#include <chrono>

namespace gran::perf {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

snapshot snapshot::capture(const std::vector<std::string>& prefixes) {
  // query_all batches each prefix under one registry-lock acquisition —
  // capture cost no longer scales the lock traffic with the counter count.
  snapshot s;
  s.timestamp_ns_ = now_ns();
  for (const auto& prefix : prefixes)
    for (auto& [path, v] : registry::instance().query_all(prefix))
      s.values_[std::move(path)] = v.value;
  return s;
}

snapshot snapshot::capture_paths(const std::vector<std::string>& paths) {
  snapshot s;
  s.timestamp_ns_ = now_ns();
  for (const auto& path : paths) {
    const auto v = registry::instance().query(path);
    if (v) s.values_[path] = v->value;
  }
  return s;
}

double snapshot::value(const std::string& path, double def) const {
  const auto it = values_.find(path);
  return it == values_.end() ? def : it->second;
}

interval::interval(const snapshot& begin, const snapshot& end) {
  span_ns_ = end.timestamp_ns() - begin.timestamp_ns();
  for (const auto& [path, end_value] : end.values()) {
    end_values_[path] = end_value;
    deltas_[path] = end_value - begin.value(path, 0.0);
  }
}

double interval::value(const std::string& path, double def) const {
  const auto kind = registry::instance().kind_of(path);
  if (kind && *kind == counter_kind::monotonic) return delta(path, def);
  const auto it = end_values_.find(path);
  return it == end_values_.end() ? def : it->second;
}

double interval::delta(const std::string& path, double def) const {
  const auto it = deltas_.find(path);
  return it == deltas_.end() ? def : it->second;
}

}  // namespace gran::perf
