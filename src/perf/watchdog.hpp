// Stall watchdog: turns the heartbeat board (perf/heartbeat.hpp) and the
// windowed counters (perf/window.hpp) into explicit incidents instead of
// silent hangs. Three detectors, evaluated once per telemetry tick:
//
//   stuck_task          a phase has been executing on one worker for longer
//                       than `stuck_ns` (phase_start_ticks age). Reported
//                       once per (worker, phase) — a 10-minute task raises
//                       one incident, not one per tick.
//   starved_backlogged  workers report starving AND tasks sit queued AND no
//                       task completed, for `starved_ticks` consecutive
//                       ticks: work exists but is not flowing (lost wakeup,
//                       policy bug). Reported once per episode.
//   flatline            tasks are alive but nothing executes: zero
//                       completions, zero phases, no phase in flight for
//                       `flatline_ticks` consecutive ticks — the deadlock
//                       shape (everyone suspended, nobody to wake them).
//                       Reported once per episode.
//
// Incident totals feed the /threads/count/stall-* counters via the
// process-global stall_stats (the watchdog lives in the perf layer; the
// thread manager registers the counters). The telemetry session
// (perf/telemetry.hpp) writes each incident to the JSONL stream and triggers
// a flight-recorder dump.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "perf/window.hpp"

namespace gran::perf {

enum class stall_kind : std::uint8_t {
  stuck_task,
  starved_backlogged,
  flatline,
};

const char* to_string(stall_kind kind);

struct stall_incident {
  stall_kind kind = stall_kind::stuck_task;
  std::int64_t detected_at_ns = 0;  // steady_clock, absolute
  int worker = -1;                  // stuck_task only
  std::uint64_t task_id = 0;        // stuck_task only
  double age_ns = 0;                // how long the condition has persisted
  std::string detail;               // one-line human summary
};

// Process-global incident totals, so the /threads/count/stall-* counters
// survive the watchdog (telemetry session) being torn down and rebuilt
// around measurement regions. Monotonic; reset() is for tests.
class stall_stats {
 public:
  static stall_stats& instance();

  std::atomic<std::uint64_t> stuck{0};
  std::atomic<std::uint64_t> starved{0};
  std::atomic<std::uint64_t> flatline{0};

  std::uint64_t total() const noexcept {
    return stuck.load(std::memory_order_relaxed) +
           starved.load(std::memory_order_relaxed) +
           flatline.load(std::memory_order_relaxed);
  }

  void reset() noexcept;

 private:
  stall_stats() = default;
};

struct watchdog_options {
  std::int64_t stuck_ns = 500'000'000;  // 500 ms
  int starved_ticks = 3;
  int flatline_ticks = 3;
};

// One instance per telemetry session; check() is called from the telemetry
// thread with each fresh window. Stateful across ticks (episode tracking,
// per-worker stuck dedup) but entirely thread-confined.
class stall_watchdog {
 public:
  explicit stall_watchdog(watchdog_options opt = {});

  // Evaluates all detectors against the window `w` plus the live heartbeat
  // board; returns the incidents that fired on this tick (usually empty).
  std::vector<stall_incident> check(const window_snapshot& w);

  // Forgets episode state (measurement-region boundary).
  void reset();

  const watchdog_options& options() const noexcept { return opt_; }

 private:
  watchdog_options opt_;
  std::vector<std::uint64_t> reported_phase_;  // per worker: phase already flagged
  int starved_run_ = 0;
  int flatline_run_ = 0;
  bool starved_open_ = false;   // incident already raised for this episode
  bool flatline_open_ = false;
};

}  // namespace gran::perf
