#include "perf/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>

#include "util/env.hpp"

namespace gran::perf {

namespace {

constexpr std::size_t default_ring_capacity = 1u << 16;  // 2 MiB of events/worker

std::size_t round_up_pow2(std::size_t n) {
  std::size_t c = 1;
  while (c < n) c <<= 1;
  return c;
}

// Minimal JSON string escaping for task descriptions.
void write_escaped(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << ' ';
        else
          os << c;
    }
  }
}

}  // namespace

std::atomic<bool> tracer::enabled_{false};

trace_ring::trace_ring(std::size_t capacity)
    : slots_(new trace_event[round_up_pow2(std::max<std::size_t>(capacity, 2))]),
      mask_(round_up_pow2(std::max<std::size_t>(capacity, 2)) - 1) {}

std::vector<trace_event> trace_ring::snapshot() const {
  const std::uint64_t end = written();
  const std::uint64_t begin = end > capacity() ? end - capacity() : 0;
  std::vector<trace_event> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t s = begin; s < end; ++s) out.push_back(slots_[s & mask_]);
  return out;
}

tracer& tracer::instance() {
  static tracer t;
  return t;
}

void tracer::enable(std::size_t events_per_worker) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (events_per_worker != 0) ring_capacity_ = events_per_worker;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void tracer::init_from_env() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (env_checked_) return;
    env_checked_ = true;
    const std::string path = env_string("GRAN_TRACE", "");
    if (path.empty()) return;
    export_path_ = (path == "1" || path == "true") ? "gran_trace.json" : path;
    const auto buf = env_int("GRAN_TRACE_BUF", 0);
    if (buf > 0) ring_capacity_ = static_cast<std::size_t>(buf);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void tracer::set_export_path(std::string path) {
  std::lock_guard<std::mutex> lock(mutex_);
  export_path_ = std::move(path);
}

std::string tracer::export_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return export_path_;
}

trace_ring* tracer::ring(int worker) {
  if (worker < 0) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto idx = static_cast<std::size_t>(worker);
  if (idx >= rings_.size()) rings_.resize(idx + 1);
  if (!rings_[idx])
    rings_[idx] = std::make_unique<trace_ring>(
        ring_capacity_ ? ring_capacity_ : default_ring_capacity);
  return rings_[idx].get();
}

std::uint64_t tracer::total_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& r : rings_)
    if (r) n += r->written();
  return n;
}

std::uint64_t tracer::total_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& r : rings_)
    if (r) n += r->dropped();
  return n;
}

void tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.clear();
}

void tracer::write_chrome_json(std::ostream& os) const {
  // Snapshot every lane (producers must be quiescent — see header).
  std::vector<std::vector<trace_event>> lanes;
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    lanes.reserve(rings_.size());
    for (const auto& r : rings_) {
      lanes.push_back(r ? r->snapshot() : std::vector<trace_event>{});
      if (r) dropped += r->dropped();
    }
  }

  if (dropped > 0)
    std::cerr << "[gran] trace export: " << dropped
              << " events were overwritten by ring wraparound; raise "
                 "GRAN_TRACE_BUF for a complete trace\n";

  std::uint64_t base = ~std::uint64_t{0};
  for (const auto& lane : lanes)
    for (const auto& e : lane) base = std::min(base, e.ticks);
  if (base == ~std::uint64_t{0}) base = 0;
  const double ns = tsc_clock::ns_per_tick();
  const auto ts_us = [&](std::uint64_t ticks) {
    return static_cast<double>(ticks - base) * ns / 1e3;
  };

  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  char buf[64];

  os.precision(3);
  os << std::fixed;
  first = false;
  os << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"gran\"}}";

  std::uint64_t flow_id = 0;
  for (std::size_t w = 0; w < lanes.size(); ++w) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << w
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker " << w << "\"}}";
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << w
       << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" << w << "}}";

    // Pair *_begin/*_end (and park/unpark) into complete "X" slices. Phases
    // run to completion on their worker, so spans never nest within a lane;
    // ring wraparound can orphan one begin or end at the edges — orphaned
    // ends are skipped, a trailing begin is closed at the lane's last event.
    struct open_span {
      std::uint64_t ticks = 0;
      std::uint64_t id = 0;
      const char* name = nullptr;
      bool valid = false;
    };
    open_span task, parked;
    const std::uint64_t lane_last =
        lanes[w].empty() ? 0 : lanes[w].back().ticks;

    const auto emit_slice = [&](const open_span& o, std::uint64_t end_ticks,
                                const char* fallback, const char* cat,
                                const char* end_reason) {
      sep();
      os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << w << ",\"ts\":" << ts_us(o.ticks)
         << ",\"dur\":" << ts_us(end_ticks) - ts_us(o.ticks) << ",\"cat\":\"" << cat
         << "\",\"name\":\"";
      write_escaped(os, o.name ? o.name : fallback);
      os << "\"";
      if (o.id) {
        std::snprintf(buf, sizeof buf, ",\"args\":{\"task\":%llu,\"end\":\"%s\"}",
                      static_cast<unsigned long long>(o.id), end_reason);
        os << buf;
      }
      os << "}";
    };

    for (const auto& e : lanes[w]) {
      switch (e.kind) {
        case trace_kind::task_begin:
        case trace_kind::phase_begin:
          task = {e.ticks, e.arg, e.name, true};
          break;
        case trace_kind::task_end:
        case trace_kind::phase_end:
          if (task.valid) {
            const char* reason = e.kind == trace_kind::task_end ? "done"
                                 : e.arg2 == 1                  ? "yield"
                                                                : "suspend";
            emit_slice(task, e.ticks, "task", "task", reason);
            task.valid = false;
          }
          break;
        case trace_kind::park:
          parked = {e.ticks, 0, nullptr, true};
          break;
        case trace_kind::unpark:
          if (parked.valid) {
            emit_slice(parked, e.ticks, "parked", "idle", "unpark");
            parked.valid = false;
          }
          break;
        case trace_kind::steal: {
          // Instant marker on the thief plus a flow arrow from the victim
          // lane, so Perfetto draws where the work came from. arg2 packs the
          // victim with the topology distance (see steal_arg2).
          const std::uint64_t id = ++flow_id;
          const std::uint32_t victim = e.arg2 & 0xffffu;
          const std::uint32_t distance = e.arg2 >> 16;
          const char* const dist_name =
              distance == 0 ? "smt" : distance == 1 ? "local" : "remote";
          sep();
          os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << w
             << ",\"ts\":" << ts_us(e.ticks) << ",\"cat\":\"steal\",\"name\":\"steal\","
             << "\"args\":{\"task\":" << e.arg << ",\"victim\":" << victim
             << ",\"distance\":\"" << dist_name << "\"}}";
          sep();
          os << "{\"ph\":\"s\",\"id\":" << id << ",\"pid\":1,\"tid\":" << victim
             << ",\"ts\":" << ts_us(e.ticks) << ",\"cat\":\"steal\",\"name\":\"steal\"}";
          sep();
          os << "{\"ph\":\"f\",\"bp\":\"e\",\"id\":" << id << ",\"pid\":1,\"tid\":" << w
             << ",\"ts\":" << ts_us(e.ticks) << ",\"cat\":\"steal\",\"name\":\"steal\"}";
          break;
        }
        case trace_kind::pending_miss:
          sep();
          os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << w
             << ",\"ts\":" << ts_us(e.ticks)
             << ",\"cat\":\"sched\",\"name\":\"pending-miss\"}";
          break;
        case trace_kind::pin_rejected:
          sep();
          os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << w
             << ",\"ts\":" << ts_us(e.ticks)
             << ",\"cat\":\"sched\",\"name\":\"pin-rejected\",\"args\":{\"cpu\":"
             << e.arg << "}}";
          break;
      }
    }
    if (task.valid) emit_slice(task, std::max(task.ticks, lane_last), "task", "task", "open");
    if (parked.valid)
      emit_slice(parked, std::max(parked.ticks, lane_last), "parked", "idle", "open");
  }
  os << "\n]}\n";
}

bool tracer::export_chrome_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "[gran] trace export: cannot open " << path << "\n";
    return false;
  }
  write_chrome_json(f);
  return static_cast<bool>(f);
}

}  // namespace gran::perf
