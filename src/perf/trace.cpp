#include "perf/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "util/env.hpp"

namespace gran::perf {

namespace {

constexpr std::size_t default_ring_capacity = 1u << 16;  // 2 MiB of events/worker

constexpr char binary_magic[8] = {'G', 'R', 'A', 'N', 'T', 'R', 'C', '1'};
constexpr std::uint32_t binary_version = 1;
constexpr std::uint32_t no_name = 0xffffffffu;
// Backstops against nonsense sizes in corrupt dumps, far above real traces.
constexpr std::uint64_t max_load_events = std::uint64_t{1} << 32;
constexpr std::uint32_t max_load_names = 1u << 24;
constexpr std::uint32_t max_load_lanes = 1u << 16;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t c = 1;
  while (c < n) c <<= 1;
  return c;
}

template <typename T>
void put_raw(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
bool get_raw(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  return static_cast<bool>(is);
}

// Minimal JSON string escaping for task descriptions.
void write_escaped(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << ' ';
        else
          os << c;
    }
  }
}

}  // namespace

std::atomic<bool> tracer::enabled_{false};

trace_ring::trace_ring(std::size_t capacity)
    : slots_(new trace_event[round_up_pow2(std::max<std::size_t>(capacity, 2))]),
      mask_(round_up_pow2(std::max<std::size_t>(capacity, 2)) - 1) {}

std::vector<trace_event> trace_ring::snapshot() const {
  const std::uint64_t end = written();
  const std::uint64_t begin = end > capacity() ? end - capacity() : 0;
  std::vector<trace_event> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t s = begin; s < end; ++s) out.push_back(slots_[s & mask_]);
  return out;
}

std::vector<trace_event> trace_ring::snapshot_live(std::uint64_t* dropped_out) const {
  // Acquire pairs with the producer's release publish: every slot below
  // `end` is fully written before we read it. Slots the producer reuses
  // *during* the copy (≥ one full lap ahead) are discarded afterwards — the
  // copy may have read them torn, but none of them survive the trim.
  const std::uint64_t end = written();
  const std::uint64_t begin = end > capacity() ? end - capacity() : 0;
  std::vector<trace_event> copied;
  copied.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t s = begin; s < end; ++s) copied.push_back(slots_[s & mask_]);

  const std::uint64_t end_after = written();
  const std::uint64_t safe_begin =
      end_after > capacity() ? std::max(begin, end_after - capacity()) : begin;
  if (dropped_out != nullptr)
    *dropped_out = (end > capacity() ? end - capacity() : 0) + (safe_begin - begin);
  if (safe_begin == begin) return copied;
  if (safe_begin >= end) return {};
  copied.erase(copied.begin(),
               copied.begin() + static_cast<std::ptrdiff_t>(safe_begin - begin));
  return copied;
}

tracer& tracer::instance() {
  static tracer t;
  return t;
}

void tracer::enable(std::size_t events_per_worker) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (events_per_worker != 0) ring_capacity_ = events_per_worker;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void tracer::init_from_env() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (env_checked_) return;
    env_checked_ = true;
    const std::string path = env_string("GRAN_TRACE", "");
    if (path.empty()) return;
    export_path_ = (path == "1" || path == "true") ? "gran_trace.json" : path;
    const auto buf = env_int("GRAN_TRACE_BUF", 0);
    if (buf > 0) ring_capacity_ = static_cast<std::size_t>(buf);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void tracer::set_export_path(std::string path) {
  std::lock_guard<std::mutex> lock(mutex_);
  export_path_ = std::move(path);
}

std::string tracer::export_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return export_path_;
}

trace_ring* tracer::ring(int worker) {
  if (worker < 0) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto idx = static_cast<std::size_t>(worker);
  if (idx >= rings_.size()) rings_.resize(idx + 1);
  if (!rings_[idx])
    rings_[idx] = std::make_unique<trace_ring>(
        ring_capacity_ ? ring_capacity_ : default_ring_capacity);
  return rings_[idx].get();
}

void tracer::emit_external(trace_kind kind, std::uint64_t arg, std::uint32_t arg2,
                           const char* name) {
  if (!enabled()) return;
  // Lazy creation under the main mutex (same sizing rules as worker rings),
  // released before taking the emission lock — the two never nest.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!external_ring_)
      external_ring_ = std::make_unique<trace_ring>(
          ring_capacity_ ? ring_capacity_ : default_ring_capacity);
  }
  trace_event e;
  e.ticks = tsc_clock::now();
  e.arg = arg;
  e.name = name;
  e.kind = kind;
  e.worker = external_worker;
  e.arg2 = arg2;
  std::lock_guard<std::mutex> lock(external_mutex_);
  external_ring_->emit(e);
}

std::uint64_t tracer::total_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& r : rings_)
    if (r) n += r->written();
  if (external_ring_) n += external_ring_->written();
  return n;
}

std::uint64_t tracer::total_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& r : rings_)
    if (r) n += r->dropped();
  if (external_ring_) n += external_ring_->dropped();
  return n;
}

void tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.clear();
  external_ring_.reset();
  drop_warned_.store(false, std::memory_order_relaxed);
}

// Warns about ring wraparound at most once per process (clear() re-arms),
// with a per-worker breakdown so the user can size GRAN_TRACE_BUF for the
// busiest lane instead of the total. Caller holds mutex_.
void tracer::warn_dropped_locked() const {
  std::uint64_t dropped = 0;
  for (const auto& r : rings_)
    if (r) dropped += r->dropped();
  const std::uint64_t ext = external_ring_ ? external_ring_->dropped() : 0;
  dropped += ext;
  if (dropped == 0) return;
  if (drop_warned_.exchange(true, std::memory_order_relaxed)) return;
  std::cerr << "[gran] trace export: " << dropped
            << " events were overwritten by ring wraparound; raise "
               "GRAN_TRACE_BUF for a complete trace (per worker:";
  for (std::size_t w = 0; w < rings_.size(); ++w)
    if (rings_[w] && rings_[w]->dropped() > 0)
      std::cerr << " w" << w << "=" << rings_[w]->dropped();
  if (ext > 0) std::cerr << " external=" << ext;
  std::cerr << ")\n";
}

void tracer::write_chrome_json(std::ostream& os) const {
  // Snapshot every worker lane (producers must be quiescent — see header).
  // The external lane holds only instant provenance records from non-worker
  // threads, not spans; it is carried by dump()/write_binary but skipped in
  // the Chrome view.
  std::vector<std::vector<trace_event>> lanes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    lanes.reserve(rings_.size());
    for (const auto& r : rings_)
      lanes.push_back(r ? r->snapshot() : std::vector<trace_event>{});
    warn_dropped_locked();
  }

  std::uint64_t base = ~std::uint64_t{0};
  for (const auto& lane : lanes)
    for (const auto& e : lane) base = std::min(base, e.ticks);
  if (base == ~std::uint64_t{0}) base = 0;
  const double ns = tsc_clock::ns_per_tick();
  const auto ts_us = [&](std::uint64_t ticks) {
    return static_cast<double>(ticks - base) * ns / 1e3;
  };

  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  char buf[64];

  os.precision(3);
  os << std::fixed;
  first = false;
  os << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"gran\"}}";

  std::uint64_t flow_id = 0;
  for (std::size_t w = 0; w < lanes.size(); ++w) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << w
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker " << w << "\"}}";
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << w
       << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" << w << "}}";

    // Pair *_begin/*_end (and park/unpark) into complete "X" slices. Phases
    // run to completion on their worker, so spans never nest within a lane;
    // ring wraparound can orphan one begin or end at the edges — orphaned
    // ends are skipped, a trailing begin is closed at the lane's last event.
    struct open_span {
      std::uint64_t ticks = 0;
      std::uint64_t id = 0;
      const char* name = nullptr;
      bool valid = false;
    };
    open_span task, parked;
    const std::uint64_t lane_last =
        lanes[w].empty() ? 0 : lanes[w].back().ticks;

    const auto emit_slice = [&](const open_span& o, std::uint64_t end_ticks,
                                const char* fallback, const char* cat,
                                const char* end_reason) {
      sep();
      os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << w << ",\"ts\":" << ts_us(o.ticks)
         << ",\"dur\":" << ts_us(end_ticks) - ts_us(o.ticks) << ",\"cat\":\"" << cat
         << "\",\"name\":\"";
      write_escaped(os, o.name ? o.name : fallback);
      os << "\"";
      if (o.id) {
        std::snprintf(buf, sizeof buf, ",\"args\":{\"task\":%llu,\"end\":\"%s\"}",
                      static_cast<unsigned long long>(o.id), end_reason);
        os << buf;
      }
      os << "}";
    };

    for (const auto& e : lanes[w]) {
      switch (e.kind) {
        case trace_kind::task_begin:
        case trace_kind::phase_begin:
          task = {e.ticks, e.arg, e.name, true};
          break;
        case trace_kind::task_end:
        case trace_kind::phase_end:
          if (task.valid) {
            const char* reason = e.kind == trace_kind::task_end ? "done"
                                 : e.arg2 == 1                  ? "yield"
                                                                : "suspend";
            emit_slice(task, e.ticks, "task", "task", reason);
            task.valid = false;
          }
          break;
        case trace_kind::park:
          parked = {e.ticks, 0, nullptr, true};
          break;
        case trace_kind::unpark:
          if (parked.valid) {
            emit_slice(parked, e.ticks, "parked", "idle", "unpark");
            parked.valid = false;
          }
          break;
        case trace_kind::steal: {
          // Instant marker on the thief plus a flow arrow from the victim
          // lane, so Perfetto draws where the work came from. arg2 packs the
          // victim with the topology distance (see steal_arg2).
          const std::uint64_t id = ++flow_id;
          const std::uint32_t victim = e.arg2 & 0xffffu;
          const std::uint32_t distance = e.arg2 >> 16;
          const char* const dist_name =
              distance == 0 ? "smt" : distance == 1 ? "local" : "remote";
          sep();
          os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << w
             << ",\"ts\":" << ts_us(e.ticks) << ",\"cat\":\"steal\",\"name\":\"steal\","
             << "\"args\":{\"task\":" << e.arg << ",\"victim\":" << victim
             << ",\"distance\":\"" << dist_name << "\"}}";
          sep();
          os << "{\"ph\":\"s\",\"id\":" << id << ",\"pid\":1,\"tid\":" << victim
             << ",\"ts\":" << ts_us(e.ticks) << ",\"cat\":\"steal\",\"name\":\"steal\"}";
          sep();
          os << "{\"ph\":\"f\",\"bp\":\"e\",\"id\":" << id << ",\"pid\":1,\"tid\":" << w
             << ",\"ts\":" << ts_us(e.ticks) << ",\"cat\":\"steal\",\"name\":\"steal\"}";
          break;
        }
        case trace_kind::pending_miss:
          sep();
          os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << w
             << ",\"ts\":" << ts_us(e.ticks)
             << ",\"cat\":\"sched\",\"name\":\"pending-miss\"}";
          break;
        case trace_kind::pin_rejected:
          sep();
          os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << w
             << ",\"ts\":" << ts_us(e.ticks)
             << ",\"cat\":\"sched\",\"name\":\"pin-rejected\",\"args\":{\"cpu\":"
             << e.arg << "}}";
          break;
        case trace_kind::task_split:
          // Rare (demand-driven) and informative: render as an instant with
          // the parent id and split point.
          sep();
          os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << w
             << ",\"ts\":" << ts_us(e.ticks)
             << ",\"cat\":\"sched\",\"name\":\"task-split\",\"args\":{\"parent\":"
             << e.arg << ",\"point\":" << e.arg2 << "}}";
          break;
        case trace_kind::steal_request: {
          // Channel-steal request traffic: an instant on the sender's lane
          // with the target and hop count, so a circulating token is visible
          // as a trail of instants across the victim lanes it traversed.
          const std::uint32_t target = e.arg2 & 0xffffu;
          const std::uint32_t distance = e.arg2 >> 16;
          const char* const dist_name =
              distance == 0 ? "smt" : distance == 1 ? "local" : "remote";
          sep();
          os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << w
             << ",\"ts\":" << ts_us(e.ticks)
             << ",\"cat\":\"steal\",\"name\":\"steal-request\","
             << "\"args\":{\"target\":" << target << ",\"hops\":" << e.arg
             << ",\"distance\":\"" << dist_name << "\"}}";
          break;
        }
        case trace_kind::steal_handoff: {
          // Victim-side batch delivery (channel-steal). The thief-side
          // `steal` event draws the flow arrow; this records the batch size.
          const std::uint32_t thief = e.arg2 & 0xffffu;
          sep();
          os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << w
             << ",\"ts\":" << ts_us(e.ticks)
             << ",\"cat\":\"steal\",\"name\":\"steal-handoff\","
             << "\"args\":{\"thief\":" << thief << ",\"batch\":" << e.arg << "}}";
          break;
        }
        case trace_kind::task_enqueue:
        case trace_kind::graph_node:
        case trace_kind::task_pmu:
          // Provenance records for the offline analyzer; rendering them as
          // instants would drown the Perfetto view at one per task (two per
          // phase for task_pmu).
          break;
      }
    }
    if (task.valid) emit_slice(task, std::max(task.ticks, lane_last), "task", "task", "open");
    if (parked.valid)
      emit_slice(parked, std::max(parked.ticks, lane_last), "parked", "idle", "open");
  }
  os << "\n]}\n";
}

bool tracer::export_chrome_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "[gran] trace export: cannot open " << path << "\n";
    return false;
  }
  write_chrome_json(f);
  return static_cast<bool>(f);
}

trace_dump tracer::dump_locked(bool live) const {
  trace_dump out;
  out.ns_per_tick = tsc_clock::ns_per_tick();

  // Intern every distinct name pointer into an owned string table and
  // repoint the copied events at it, so the dump survives the originating
  // call sites (and round-trips through the binary format unchanged).
  auto names = std::make_shared<std::vector<std::string>>();
  std::unordered_map<const char*, std::size_t> index;
  const auto intern = [&](const char* s) -> const char* {
    if (s == nullptr) return nullptr;
    auto [it, fresh] = index.emplace(s, names->size());
    if (fresh) names->push_back(s);
    return nullptr;  // placeholder; repointed below once the table is stable
  };

  const auto add_lane = [&](std::uint16_t worker, const trace_ring& r) {
    trace_lane lane;
    lane.worker = worker;
    if (live) {
      lane.events = r.snapshot_live(&lane.dropped);
    } else {
      lane.dropped = r.dropped();
      lane.events = r.snapshot();
    }
    for (auto& e : lane.events) intern(e.name);
    out.lanes.push_back(std::move(lane));
  };

  for (std::size_t w = 0; w < rings_.size(); ++w)
    if (rings_[w]) add_lane(static_cast<std::uint16_t>(w), *rings_[w]);
  if (external_ring_) add_lane(external_worker, *external_ring_);

  // The table no longer grows: repoint events into it.
  for (auto& lane : out.lanes)
    for (auto& e : lane.events)
      if (e.name != nullptr) e.name = (*names)[index.at(e.name)].c_str();
  out.names = std::move(names);
  return out;
}

trace_dump tracer::dump() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dump_locked(/*live=*/false);
}

trace_dump tracer::dump_live() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dump_locked(/*live=*/true);
}

void tracer::write_binary(std::ostream& os) const {
  trace_dump d;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    d = dump_locked(/*live=*/false);
    warn_dropped_locked();
  }
  write_trace_binary(os, d);
}

void write_trace_binary(std::ostream& os, const trace_dump& d) {
  static const std::vector<std::string> no_names;
  const std::vector<std::string>& names = d.names ? *d.names : no_names;

  // Map interned name pointers back to table indices for serialization.
  std::unordered_map<const char*, std::uint32_t> index;
  for (std::uint32_t i = 0; i < names.size(); ++i)
    index.emplace(names[i].c_str(), i);

  os.write(binary_magic, sizeof binary_magic);
  put_raw(os, binary_version);
  put_raw(os, static_cast<std::uint32_t>(d.lanes.size()));
  put_raw(os, static_cast<std::uint32_t>(names.size()));
  put_raw(os, d.ns_per_tick);
  for (const auto& s : names) {
    put_raw(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
  }
  for (const auto& lane : d.lanes) {
    put_raw(os, lane.worker);
    put_raw(os, lane.dropped);
    put_raw(os, static_cast<std::uint64_t>(lane.events.size()));
    for (const auto& e : lane.events) {
      put_raw(os, e.ticks);
      put_raw(os, e.arg);
      // Hand-built dumps may carry names outside the table; drop them rather
      // than crash (interned dumps always resolve).
      const auto it = e.name != nullptr ? index.find(e.name) : index.end();
      put_raw(os, it != index.end() ? it->second : no_name);
      put_raw(os, static_cast<std::uint16_t>(e.kind));
      put_raw(os, e.worker);
      put_raw(os, e.arg2);
    }
  }
}

bool tracer::export_binary(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    std::cerr << "[gran] trace export: cannot open " << path << "\n";
    return false;
  }
  write_binary(f);
  return static_cast<bool>(f);
}

bool load_trace_binary(std::istream& is, trace_dump& out) {
  char magic[sizeof binary_magic];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, binary_magic, sizeof magic) != 0) return false;
  std::uint32_t version = 0, num_lanes = 0, num_names = 0;
  trace_dump d;
  if (!get_raw(is, version) || version != binary_version) return false;
  if (!get_raw(is, num_lanes) || num_lanes > max_load_lanes) return false;
  if (!get_raw(is, num_names) || num_names > max_load_names) return false;
  if (!get_raw(is, d.ns_per_tick) || !(d.ns_per_tick > 0)) return false;

  auto names = std::make_shared<std::vector<std::string>>();
  names->reserve(num_names);
  for (std::uint32_t i = 0; i < num_names; ++i) {
    std::uint32_t len = 0;
    if (!get_raw(is, len) || len > (1u << 20)) return false;
    std::string s(len, '\0');
    is.read(s.data(), len);
    if (!is) return false;
    names->push_back(std::move(s));
  }

  d.lanes.reserve(num_lanes);
  for (std::uint32_t l = 0; l < num_lanes; ++l) {
    trace_lane lane;
    std::uint64_t count = 0;
    if (!get_raw(is, lane.worker) || !get_raw(is, lane.dropped)) return false;
    if (!get_raw(is, count) || count > max_load_events) return false;
    lane.events.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      trace_event e;
      std::uint32_t name_idx = no_name;
      std::uint16_t kind = 0;
      if (!get_raw(is, e.ticks) || !get_raw(is, e.arg) || !get_raw(is, name_idx) ||
          !get_raw(is, kind) || !get_raw(is, e.worker) || !get_raw(is, e.arg2))
        return false;
      if (name_idx != no_name && name_idx >= names->size()) return false;
      e.kind = static_cast<trace_kind>(kind);
      e.name = name_idx == no_name ? nullptr : (*names)[name_idx].c_str();
      lane.events.push_back(e);
    }
    d.lanes.push_back(std::move(lane));
  }
  d.names = std::move(names);
  out = std::move(d);
  return true;
}

bool load_trace_binary(const std::string& path, trace_dump& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  return load_trace_binary(f, out);
}

}  // namespace gran::perf
