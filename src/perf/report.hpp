// Counter reporting: dump registered counters as an aligned table or CSV —
// gran's equivalent of HPX's --hpx:print-counter command-line interface.
#pragma once

#include <iosfwd>
#include <string>

#include "perf/counters.hpp"
#include "perf/sampler.hpp"

namespace gran::perf {

// Writes "counter,value" CSV rows for every counter under `prefix`.
void dump_csv(std::ostream& os, const std::string& prefix = "/");

// Writes an aligned human-readable table (value + description).
void dump_table(std::ostream& os, const std::string& prefix = "/");

// Writes the monotonic deltas / gauge end-values of an interval as CSV.
void dump_interval_csv(std::ostream& os, const interval& delta,
                       const snapshot& reference);

}  // namespace gran::perf
