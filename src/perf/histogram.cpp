#include "perf/histogram.hpp"

#include <cmath>
#include <mutex>

namespace gran::perf {

histogram_snapshot& histogram_snapshot::operator+=(const histogram_snapshot& other) {
  for (int i = 0; i < num_buckets; ++i)
    buckets[static_cast<std::size_t>(i)] += other.buckets[static_cast<std::size_t>(i)];
  count += other.count;
  sum += other.sum;
  return *this;
}

double histogram_snapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  const double target = p / 100.0 * static_cast<double>(count);
  double cum = 0.0;
  for (int i = 0; i < num_buckets; ++i) {
    const double in_bucket = static_cast<double>(buckets[static_cast<std::size_t>(i)]);
    if (in_bucket == 0.0) continue;
    if (cum + in_bucket >= target) {
      // Interpolate linearly between the bucket's bounds [2^i, 2^(i+1))
      // (bucket 0 covers [0, 2)).
      const double lower = i == 0 ? 0.0 : std::ldexp(1.0, i);
      const double upper = std::ldexp(1.0, i + 1);
      const double frac = target <= cum ? 0.0 : (target - cum) / in_bucket;
      return lower + frac * (upper - lower);
    }
    cum += in_bucket;
  }
  return std::ldexp(1.0, num_buckets);  // unreachable with consistent counts
}

histogram_snapshot histogram_snapshot::snapshot_delta(const histogram_snapshot& prev,
                                                      bool* reset_detected) const {
  bool reset = count < prev.count || sum < prev.sum;
  for (int i = 0; !reset && i < num_buckets; ++i)
    reset = buckets[static_cast<std::size_t>(i)] < prev.buckets[static_cast<std::size_t>(i)];
  if (reset_detected != nullptr) *reset_detected = reset;
  if (reset) return *this;

  histogram_snapshot d;
  for (int i = 0; i < num_buckets; ++i)
    d.buckets[static_cast<std::size_t>(i)] =
        buckets[static_cast<std::size_t>(i)] - prev.buckets[static_cast<std::size_t>(i)];
  d.count = count - prev.count;
  d.sum = sum - prev.sum;
  return d;
}

histogram_registry& histogram_registry::instance() {
  static histogram_registry r;
  return r;
}

void histogram_registry::add(const std::string& name, snap_fn fn) {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  sources_[name] = std::move(fn);
  ++generation_;
}

bool histogram_registry::remove(const std::string& name) {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  const bool erased = sources_.erase(name) != 0;
  if (erased) ++generation_;
  return erased;
}

void histogram_registry::remove_prefix(const std::string& prefix) {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  auto it = sources_.lower_bound(prefix);
  bool any = false;
  while (it != sources_.end() && it->first.rfind(prefix, 0) == 0) {
    it = sources_.erase(it);
    any = true;
  }
  if (any) ++generation_;
}

std::vector<std::pair<std::string, histogram_snapshot>> histogram_registry::snap_all(
    const std::string& prefix) const {
  // Shared lock held across the snap calls — a barrier against
  // remove_prefix, see the header comment.
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::pair<std::string, histogram_snapshot>> out;
  for (auto it = sources_.lower_bound(prefix);
       it != sources_.end() && it->first.rfind(prefix, 0) == 0; ++it)
    out.emplace_back(it->first, it->second());
  return out;
}

std::vector<std::string> histogram_registry::list(const std::string& prefix) const {
  std::vector<std::string> out;
  std::shared_lock<std::shared_mutex> lock(mutex_);
  for (auto it = sources_.lower_bound(prefix);
       it != sources_.end() && it->first.rfind(prefix, 0) == 0; ++it)
    out.push_back(it->first);
  return out;
}

std::uint64_t histogram_registry::generation() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return generation_;
}

void histogram_registry::clear() {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  sources_.clear();
  ++generation_;
}

histogram_snapshot log2_histogram::snap() const {
  histogram_snapshot s;
  for (int i = 0; i < num_buckets; ++i)
    s.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void log2_histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

}  // namespace gran::perf
