#include "perf/histogram.hpp"

#include <cmath>

namespace gran::perf {

histogram_snapshot& histogram_snapshot::operator+=(const histogram_snapshot& other) {
  for (int i = 0; i < num_buckets; ++i)
    buckets[static_cast<std::size_t>(i)] += other.buckets[static_cast<std::size_t>(i)];
  count += other.count;
  sum += other.sum;
  return *this;
}

double histogram_snapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  const double target = p / 100.0 * static_cast<double>(count);
  double cum = 0.0;
  for (int i = 0; i < num_buckets; ++i) {
    const double in_bucket = static_cast<double>(buckets[static_cast<std::size_t>(i)]);
    if (in_bucket == 0.0) continue;
    if (cum + in_bucket >= target) {
      // Interpolate linearly between the bucket's bounds [2^i, 2^(i+1))
      // (bucket 0 covers [0, 2)).
      const double lower = i == 0 ? 0.0 : std::ldexp(1.0, i);
      const double upper = std::ldexp(1.0, i + 1);
      const double frac = target <= cum ? 0.0 : (target - cum) / in_bucket;
      return lower + frac * (upper - lower);
    }
    cum += in_bucket;
  }
  return std::ldexp(1.0, num_buckets);  // unreachable with consistent counts
}

histogram_snapshot log2_histogram::snap() const {
  histogram_snapshot s;
  for (int i = 0; i < num_buckets; ++i)
    s.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void log2_histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

}  // namespace gran::perf
