// Worker heartbeat board: one cache-line-padded slot per worker, stamped
// from the thread manager's scheduler loop with relaxed stores and read by
// the stall watchdog (perf/watchdog.hpp) from its own thread.
//
// The board is process-global (like the tracer and the counter registry) so
// the watchdog — which lives in the perf layer and must not depend on the
// scheduler libraries — can observe worker liveness without touching a
// thread_manager:
//   * beat_ticks        last scheduler-round timestamp (tsc). A worker that
//                       stops beating is wedged or parked; parking alone is
//                       NOT an incident (parked workers beat at
//                       idle_park_us granularity).
//   * phase_start_ticks tsc at the start of the phase currently executing on
//                       this worker, 0 when no task is running. A non-zero
//                       value older than the stuck threshold is the
//                       watchdog's "stuck task" signal.
//   * task_id           id of the running task (valid while
//                       phase_start_ticks != 0).
//
// Writers are the worker OS threads (one per slot); stamping is one or two
// relaxed stores per scheduler round — cheap enough to stay always-on
// (bench/micro_telemetry_overhead gates the total at 2%).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "util/cacheline.hpp"

namespace gran::perf {

struct heartbeat_slot {
  std::atomic<std::uint64_t> beat_ticks{0};
  std::atomic<std::uint64_t> phase_start_ticks{0};
  std::atomic<std::uint64_t> task_id{0};

  void reset() noexcept {
    beat_ticks.store(0, std::memory_order_relaxed);
    phase_start_ticks.store(0, std::memory_order_relaxed);
    task_id.store(0, std::memory_order_relaxed);
  }
};

class heartbeat_board {
 public:
  // Fixed capacity avoids any allocation or locking on the stamping path;
  // workers beyond it simply go unmonitored (far above real pools).
  static constexpr int capacity = 256;

  static heartbeat_board& instance() {
    static heartbeat_board b;
    return b;
  }

  // Called by thread_manager at construction: publishes the monitored
  // worker count and clears stale stamps from a previous manager. Like the
  // counter registry, concurrent managers overwrite each other — run one
  // instrumented manager at a time.
  void attach(int workers) noexcept {
    const int n = std::min(workers, capacity);
    for (int w = 0; w < n; ++w) slots_[static_cast<std::size_t>(w)].slot.reset();
    active_.store(n, std::memory_order_release);
  }

  // Called at thread_manager::stop() after the workers have been joined;
  // the watchdog stops evaluating the (now frozen) slots.
  void detach() noexcept { active_.store(0, std::memory_order_release); }

  int active_workers() const noexcept {
    return active_.load(std::memory_order_acquire);
  }

  heartbeat_slot* slot(int worker) noexcept {
    return worker >= 0 && worker < capacity
               ? &slots_[static_cast<std::size_t>(worker)].slot
               : nullptr;
  }
  const heartbeat_slot* slot(int worker) const noexcept {
    return worker >= 0 && worker < capacity
               ? &slots_[static_cast<std::size_t>(worker)].slot
               : nullptr;
  }

 private:
  heartbeat_board() = default;

  struct padded {
    alignas(cache_line_size) heartbeat_slot slot;
  };
  std::atomic<int> active_{0};
  padded slots_[capacity];
};

}  // namespace gran::perf
