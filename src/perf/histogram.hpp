// Log2-bucketed latency histograms — the distribution view the paper's
// scalar means (Eqs. 2/3) cannot give.
//
// A `log2_histogram` is a fixed array of 64 relaxed-atomic bucket counters;
// bucket k holds values in [2^k, 2^(k+1)) ns (bucket 0 holds {0, 1}).
// Recording is a bit_width + one relaxed fetch_add (~2 ns), cheap enough to
// stay always-on in the run_phase hot path. Queries take a `snapshot` (a
// plain copy), which supports merging across workers and percentile
// interpolation — that is what backs the
// /threads/histogram/task-duration/p50|p95|p99 counters.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

namespace gran::perf {

// Plain (non-atomic) copy of a histogram's state; mergeable and queryable.
struct histogram_snapshot {
  static constexpr int num_buckets = 64;

  std::array<std::uint64_t, num_buckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  histogram_snapshot& operator+=(const histogram_snapshot& other);

  double mean() const { return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0; }

  // Value (ns) at percentile p in [0, 100], linearly interpolated inside the
  // selected log2 bucket. 0 when the histogram is empty.
  double percentile(double p) const;

  // Bucket-wise difference `*this - prev`: the distribution of only the
  // samples recorded since `prev` was taken — exact interval percentiles,
  // not an approximation from cumulative values. A histogram is monotonic
  // between resets; when any bucket (or count/sum) of `prev` exceeds ours
  // the histogram was reset in between, so `prev` is discarded and the full
  // current snapshot is returned (`reset_detected` reports which happened).
  histogram_snapshot snapshot_delta(const histogram_snapshot& prev,
                                    bool* reset_detected = nullptr) const;
};

// Process-wide registry of named histogram *sources* (snapshot functions),
// the distribution-valued sibling of perf::registry: scalar percentile
// gauges lose the bucket structure, but windowed telemetry needs raw
// snapshots to compute interval deltas (snapshot_delta) and merge views
// across workers. The thread manager registers
// /threads/histogram/task-{duration,overhead} (merged over workers) plus
// per-worker instances; the window aggregator snapshots them each tick.
class histogram_registry {
 public:
  using snap_fn = std::function<histogram_snapshot()>;

  static histogram_registry& instance();

  // Registers a source; replaces any previous registration of `name`.
  void add(const std::string& name, snap_fn fn);
  bool remove(const std::string& name);
  void remove_prefix(const std::string& prefix);

  // Snapshots every source whose name starts with `prefix`; the shared lock
  // is held across the snap calls so remove_prefix is a barrier against
  // in-flight snapshots (same contract as registry::query_all — the thread
  // manager's destructor depends on it). Results are sorted by name.
  std::vector<std::pair<std::string, histogram_snapshot>> snap_all(
      const std::string& prefix) const;

  std::vector<std::string> list(const std::string& prefix = "/") const;

  // Bumped whenever the source set changes (same contract as
  // registry::generation()).
  std::uint64_t generation() const;

  void clear();  // tests

 private:
  histogram_registry() = default;

  // Reader-writer, same discipline as registry::mutex_: snap_all samples
  // under a shared lock, mutators are exclusive, snap fns must not call
  // back into the mutating API.
  mutable std::shared_mutex mutex_;
  std::map<std::string, snap_fn> sources_;
  std::uint64_t generation_ = 0;
};

class log2_histogram {
 public:
  static constexpr int num_buckets = histogram_snapshot::num_buckets;

  // Bucket index of a value: highest set bit (0 for values 0 and 1), so
  // bucket k covers [2^k, 2^(k+1)).
  static int bucket_of(std::uint64_t v) noexcept {
    return v <= 1 ? 0 : std::bit_width(v) - 1;
  }

  void record(std::uint64_t value_ns) noexcept {
    buckets_[static_cast<std::size_t>(bucket_of(value_ns))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value_ns, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }

  histogram_snapshot snap() const;

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, num_buckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace gran::perf
