// Task-lifecycle tracing: per-worker lock-free ring buffers of fixed-size
// 32-byte binary events, recorded from the scheduler hot paths behind a
// single relaxed-atomic enabled check, exported as Chrome trace_event /
// Perfetto-compatible JSON (load the file in ui.perfetto.dev or
// chrome://tracing).
//
// Design constraints (see docs/TRACING.md for the full schema):
//  * Disabled cost is one predictable branch on a relaxed atomic load —
//    tracing must be free when off (bench/micro_trace_overhead measures it).
//  * Each ring has exactly one producer (its worker OS thread); recording is
//    two plain stores plus one release store of the sequence counter, no
//    CAS, no allocation.
//  * On overflow the ring wraps and overwrites the oldest events
//    (keep-latest). Overwrites are counted and surfaced as the
//    /threads/count/trace-dropped counter and a warning at export time —
//    never silent.
//  * Draining a ring (export) is only valid while its producer is quiescent;
//    the runtime exports after the workers have been joined.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/cacheline.hpp"
#include "util/timer.hpp"

namespace gran::perf {

enum class trace_kind : std::uint16_t {
  task_begin = 0,    // first phase of a task starts      arg=id, name=description
  task_end = 1,      // task terminated                   arg=id
  phase_begin = 2,   // later phase starts (after yield/suspend)
  phase_end = 3,     // phase ended without terminating   arg2: 1=yield 2=suspend
  steal = 4,         // task obtained from another worker arg=id,
                     //   arg2 = victim | (topology distance << 16), distance:
                     //   0=SMT sibling, 1=same NUMA domain, 2=remote domain
  park = 5,          // worker blocks on the idle cv
  unpark = 6,        // worker resumes from the idle cv
  pending_miss = 7,  // scheduler round found no work (first miss after work)
  pin_rejected = 8,  // kernel refused the worker's CPU pin   arg=target cpu
  task_enqueue = 9,  // a new task was spawned             arg=child task id,
                     //   arg2 = spawning worker (external_worker when spawned
                     //   from a non-worker thread); the event's timestamp is
                     //   the spawn time, feeding spawn->first-run wait
                     //   attribution (perf/analysis.hpp)
  graph_node = 10,   // graph-node provenance: the running task is DAG node
                     //   (step, point)                    arg=task id,
                     //   arg2 = pack_graph_node(step, point)
  task_split = 11,   // the running task gave away the back half of its range
                     //   (lazy splitting, algo/splittable.hpp)
                     //   arg = parent (splitting) task id,
                     //   arg2 = split point (first index of the child's
                     //   half, saturated to 32 bits); the next task_enqueue
                     //   on the same lane is the child — the pairing the
                     //   analyzer uses for split provenance
  steal_request = 12,  // channel-steal: a steal-request token left this
                       //   worker — sent fresh (arg = 0) or forwarded
                       //   (arg = hops so far); arg2 = steal_arg2(target
                       //   victim, thief→target topology distance)
  steal_handoff = 13,  // channel-steal: this worker (the victim) pushed a
                       //   batch of tasks into a thief's delivery channel
                       //   arg = batch size, arg2 = steal_arg2(thief,
                       //   victim→thief topology distance); the matching
                       //   thief-side `steal` event carries the first
                       //   task's id
  task_pmu = 14,  // hardware-counter delta for the adjacent slice event
                  //   (perf/pmu.hpp). Emitted right AFTER a task_begin /
                  //   phase_begin at the same timestamp, the delta covers
                  //   the scheduler gap since the previous phase ended on
                  //   this lane; right after a task_end / phase_end it
                  //   covers the phase body (kernel work). The analyzer
                  //   pairs by lane adjacency, like task_split, so pairs
                  //   survive ring wraparound. arg = pack_pmu_arg(cycles,
                  //   instructions), arg2 = LLC misses — all saturated to
                  //   32 bits (a 4-second slice at 1 GHz; per-phase deltas
                  //   at paper grains sit orders of magnitude below that)
};

// Worker index recorded for events emitted by non-worker threads (the
// external task_enqueue lane).
inline constexpr std::uint16_t external_worker = 0xffff;

// Packs a steal event's arg2: victim worker in the low 16 bits, topology
// distance (0 SMT / 1 same-domain / 2 remote) above them.
inline std::uint32_t steal_arg2(int victim, int distance) noexcept {
  return (static_cast<std::uint32_t>(victim) & 0xffffu) |
         (static_cast<std::uint32_t>(distance) << 16);
}

// Packs a graph_node event's arg2: point in the low 16 bits, step above
// them. Coordinates beyond 65534 saturate to 0xffff ("unknown") rather than
// alias — graph sweeps at paper scales stay far below that.
inline std::uint32_t pack_graph_node(std::uint64_t step, std::uint64_t point) noexcept {
  const std::uint32_t s = step >= 0xffffu ? 0xffffu : static_cast<std::uint32_t>(step);
  const std::uint32_t p = point >= 0xffffu ? 0xffffu : static_cast<std::uint32_t>(point);
  return p | (s << 16);
}
inline std::uint32_t graph_node_step(std::uint32_t arg2) noexcept { return arg2 >> 16; }
inline std::uint32_t graph_node_point(std::uint32_t arg2) noexcept { return arg2 & 0xffffu; }

// Packs a task_pmu event's arg: cycles in the high 32 bits, instructions in
// the low 32, each saturated (same clamp idiom as task_split's arg2).
inline std::uint64_t pack_pmu_arg(std::uint64_t cycles,
                                  std::uint64_t instructions) noexcept {
  const std::uint64_t c = cycles >= 0xffffffffull ? 0xffffffffull : cycles;
  const std::uint64_t i =
      instructions >= 0xffffffffull ? 0xffffffffull : instructions;
  return (c << 32) | i;
}
inline std::uint64_t pmu_arg_cycles(std::uint64_t arg) noexcept { return arg >> 32; }
inline std::uint64_t pmu_arg_instructions(std::uint64_t arg) noexcept {
  return arg & 0xffffffffull;
}

// One binary trace record. `name` points to the task's description — a
// string with static storage duration in every runtime call site (task
// descriptions are `const char*` literals); it is dereferenced only at
// export time.
struct trace_event {
  std::uint64_t ticks = 0;      // tsc_clock timestamp
  std::uint64_t arg = 0;        // task id for task/steal events
  const char* name = nullptr;   // task description on *_begin events
  trace_kind kind = trace_kind::task_begin;
  std::uint16_t worker = 0;
  std::uint32_t arg2 = 0;       // phase-end reason / steal victim
};
static_assert(sizeof(void*) != 8 || sizeof(trace_event) == 32,
              "trace events must stay one half cache line");

// Single-producer ring of trace events. The producer (one worker thread)
// writes the slot, then publishes with a release store of the sequence
// counter; concurrent readers may only touch the atomic counters
// (written()/dropped()). snapshot() requires a quiescent producer.
class trace_ring {
 public:
  explicit trace_ring(std::size_t capacity);  // rounded up to a power of two

  void emit(const trace_event& e) noexcept {
    const std::uint64_t seq = seq_.load(std::memory_order_relaxed);
    slots_[seq & mask_] = e;
    seq_.store(seq + 1, std::memory_order_release);
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }
  std::uint64_t written() const noexcept { return seq_.load(std::memory_order_acquire); }
  // Events overwritten by wraparound (lost from the front of the ring).
  std::uint64_t dropped() const noexcept {
    const std::uint64_t n = written();
    return n > capacity() ? n - capacity() : 0;
  }

  // Copies the retained events, oldest first. Producer must be quiescent.
  std::vector<trace_event> snapshot() const;

  // Best-effort copy that tolerates a LIVE producer (flight recorder): reads
  // the published sequence with acquire (so all events below it are
  // visible), copies, then re-reads the sequence and trims from the front
  // whatever the producer may have overwritten during the copy — a torn
  // event can only be one of those trimmed slots. `dropped_out` receives
  // wraparound losses including the trim. The producer keeps emitting
  // throughout; only the snapshot's tail boundary is approximate.
  std::vector<trace_event> snapshot_live(std::uint64_t* dropped_out = nullptr) const;

  void clear() noexcept { seq_.store(0, std::memory_order_release); }

 private:
  std::unique_ptr<trace_event[]> slots_;
  std::uint64_t mask_;
  alignas(cache_line_size) std::atomic<std::uint64_t> seq_{0};
};

// Everything a trace session retained, decoupled from the live rings: one
// lane per worker (oldest-first events) plus one external lane for events
// emitted by non-worker threads. Event `name` pointers point into `*names`
// (shared so copies/moves of the dump never dangle), making a dump loaded
// from disk indistinguishable from one captured in-process — the analyzer
// (perf/analysis.hpp) consumes only this type.
struct trace_lane {
  std::uint16_t worker = 0;  // lane index, or external_worker
  std::uint64_t dropped = 0; // events lost to ring wraparound before capture
  std::vector<trace_event> events;  // oldest first
};
struct trace_dump {
  std::vector<trace_lane> lanes;
  double ns_per_tick = 1.0;  // tsc->ns scale of the capturing host
  std::shared_ptr<const std::vector<std::string>> names;  // interned strings

  std::uint64_t total_events() const noexcept {
    std::uint64_t n = 0;
    for (const auto& l : lanes) n += l.events.size();
    return n;
  }
  std::uint64_t total_dropped() const noexcept {
    std::uint64_t n = 0;
    for (const auto& l : lanes) n += l.dropped;
    return n;
  }
};

// Reads a dump written by tracer::write_binary (the "GRANTRC1" format).
// Returns false and leaves `out` untouched on malformed input.
bool load_trace_binary(std::istream& is, trace_dump& out);
bool load_trace_binary(const std::string& path, trace_dump& out);

// Serializes any trace_dump in the "GRANTRC1" format — the flight recorder
// writes live captures through this; tracer::write_binary delegates here.
void write_trace_binary(std::ostream& os, const trace_dump& d);

// Process-global trace session: owns one ring per worker index and the
// exporter. Rings outlive any single thread_manager (sequential managers
// reuse worker indices and append to the same lanes), mirroring the
// process-global counter registry.
class tracer {
 public:
  static tracer& instance();

  // The hot-path gate: one relaxed atomic load, inlined into every
  // instrumentation site.
  static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Turns tracing on. `events_per_worker` sizes rings created afterwards
  // (0 = GRAN_TRACE_BUF env or the 65536-event default). Rings already
  // handed out keep their size.
  void enable(std::size_t events_per_worker = 0);
  void disable();

  // Reads GRAN_TRACE (export path; "1" selects "gran_trace.json") and
  // GRAN_TRACE_BUF (ring capacity in events) once per process; called by
  // the thread manager at startup so plain `GRAN_TRACE=t.json ./bench`
  // works with no code changes.
  void init_from_env();

  // Where the runtime auto-exports at thread_manager::stop(); empty = no
  // auto-export.
  void set_export_path(std::string path);
  std::string export_path() const;

  // Ring for one worker lane, created on first use. nullptr when disabled.
  trace_ring* ring(int worker);

  // Records an event from a non-worker thread (e.g. task_enqueue during
  // graph construction on the main thread) into a dedicated external lane.
  // Unlike worker rings this lane has many producers, so emission is
  // serialized by a mutex — acceptable because external spawns are a cold
  // setup-time path, never the scheduler inner loop.
  void emit_external(trace_kind kind, std::uint64_t arg = 0,
                     std::uint32_t arg2 = 0, const char* name = nullptr);

  std::uint64_t total_events() const;   // written across all rings
  std::uint64_t total_dropped() const;  // overwritten across all rings

  // Chrome trace_event JSON of everything currently retained. Valid only
  // while producers are quiescent (after thread_manager::stop()/join, or
  // from tests). Returns false when the file cannot be opened. Prints a
  // once-per-process warning to stderr (with a per-worker breakdown) when
  // events were dropped.
  void write_chrome_json(std::ostream& os) const;
  bool export_chrome_json(const std::string& path) const;

  // Copies everything currently retained into a self-contained trace_dump
  // (event names interned into an owned string table). Same quiescence
  // requirement as write_chrome_json.
  trace_dump dump() const;

  // Flight-recorder capture: like dump(), but valid while workers are still
  // emitting (per-ring snapshot_live). The freshest events may be trimmed
  // when a ring wraps mid-copy; names are safe to intern because every call
  // site passes string literals.
  trace_dump dump_live() const;

  // Binary export of dump() — the "GRANTRC1" format load_trace_binary
  // reads. Carries ns_per_tick so a dump analyzes identically off-host.
  void write_binary(std::ostream& os) const;
  bool export_binary(const std::string& path) const;

  // Drops all recorded events and rings (tests). Invalidates every ring
  // pointer previously returned — callers must not hold cached pointers
  // (i.e. no live thread_manager) across a clear().
  void clear();

 private:
  tracer() = default;
  // Caller holds mutex_. `live` selects snapshot_live per ring.
  trace_dump dump_locked(bool live) const;
  void warn_dropped_locked() const;

  static std::atomic<bool> enabled_;

  mutable std::mutex mutex_;  // guards rings_ growth and configuration
  std::vector<std::unique_ptr<trace_ring>> rings_;
  std::unique_ptr<trace_ring> external_ring_;  // lane for non-worker threads
  std::mutex external_mutex_;                  // serializes external producers
  mutable std::atomic<bool> drop_warned_{false};
  std::size_t ring_capacity_ = 0;  // 0 = default
  std::string export_path_;
  bool env_checked_ = false;
};

// Emit helpers used by the scheduler hot paths: compile to a relaxed load +
// branch when tracing is off. `ring` is the worker's cached ring pointer
// (nullptr when tracing was off at manager construction).
//
// trace_emit_at takes an explicit timestamp: phase begin/end events reuse
// the exact tsc reads the Σt_exec counter accumulates, so the exported task
// spans and /threads/time/cumulative are the same measurement by
// construction (tests/trace_test.cpp asserts their sums agree).
inline void trace_emit_at(trace_ring* ring, std::uint64_t ticks, trace_kind kind,
                          int worker, std::uint64_t arg = 0, std::uint32_t arg2 = 0,
                          const char* name = nullptr) noexcept {
  if (!tracer::enabled() || ring == nullptr) return;
  trace_event e;
  e.ticks = ticks;
  e.arg = arg;
  e.name = name;
  e.kind = kind;
  e.worker = static_cast<std::uint16_t>(worker);
  e.arg2 = arg2;
  ring->emit(e);
}

inline void trace_emit(trace_ring* ring, trace_kind kind, int worker,
                       std::uint64_t arg = 0, std::uint32_t arg2 = 0,
                       const char* name = nullptr) noexcept {
  if (!tracer::enabled() || ring == nullptr) return;
  trace_emit_at(ring, tsc_clock::now(), kind, worker, arg, arg2, name);
}

}  // namespace gran::perf
