#include "perf/pmu.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/timer.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#define GRAN_PMU_HAVE_PERF 1
#else
#define GRAN_PMU_HAVE_PERF 0
#endif

namespace gran::perf {
namespace {

std::atomic<pmu_open_fn> g_open_override{nullptr};

#if GRAN_PMU_HAVE_PERF

struct event_spec {
  std::uint32_t type;
  std::uint64_t config;
};

// Ordered so a rung is a prefix: full = 5 events, reduced = 3, minimal = 2.
// The leader (cycles) is always index 0.
constexpr event_spec k_group_events[5] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
};

int rung_events(pmu_mode m) {
  switch (m) {
    case pmu_mode::full: return 5;
    case pmu_mode::reduced: return 3;
    case pmu_mode::minimal: return 2;
    default: return 0;
  }
}

// Self-attach one event on the calling thread. Counting kernel-side work is
// preferred (scheduler overhead lives there too), but perf_event_paranoid>=2
// denies it, so retry excluding the kernel before giving up on the event.
int open_event(std::uint32_t type, std::uint64_t config, int group_fd,
               std::uint64_t read_format, bool start_disabled) {
  if (pmu_open_fn fn = g_open_override.load(std::memory_order_acquire))
    return fn(type, config, group_fd);
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.read_format = read_format;
  attr.disabled = start_disabled ? 1 : 0;
  attr.exclude_hv = 1;
  attr.exclude_idle = 1;
  long fd = ::syscall(SYS_perf_event_open, &attr, 0, -1, group_fd,
                      PERF_FLAG_FD_CLOEXEC);
  if (fd < 0 && (errno == EPERM || errno == EACCES)) {
    attr.exclude_kernel = 1;
    fd = ::syscall(SYS_perf_event_open, &attr, 0, -1, group_fd,
                   PERF_FLAG_FD_CLOEXEC);
  }
  return static_cast<int>(fd);
}

constexpr std::uint64_t k_group_format = PERF_FORMAT_GROUP |
                                         PERF_FORMAT_TOTAL_TIME_ENABLED |
                                         PERF_FORMAT_TOTAL_TIME_RUNNING;
constexpr std::uint64_t k_single_format =
    PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;

// Multiplexing compensation: value * enabled/running, in double to dodge the
// u64 overflow of the integer product. running == 0 means the event never
// got a counter — report the raw (zero) value rather than dividing by zero.
std::uint64_t scale_count(std::uint64_t value, std::uint64_t enabled,
                          std::uint64_t running) {
  if (running == 0 || running >= enabled) return value;
  const double scaled = static_cast<double>(value) *
                        (static_cast<double>(enabled) /
                         static_cast<double>(running));
  return static_cast<std::uint64_t>(scaled);
}

#endif  // GRAN_PMU_HAVE_PERF

std::uint64_t rusage_ctx_switches() {
#if GRAN_PMU_HAVE_PERF
  rusage ru;
  if (::getrusage(RUSAGE_THREAD, &ru) == 0)
    return static_cast<std::uint64_t>(ru.ru_nvcsw) +
           static_cast<std::uint64_t>(ru.ru_nivcsw);
#endif
  return 0;
}

}  // namespace

const char* pmu_mode_name(pmu_mode m) noexcept {
  switch (m) {
    case pmu_mode::off: return "off";
    case pmu_mode::full: return "full";
    case pmu_mode::reduced: return "reduced";
    case pmu_mode::minimal: return "minimal";
    case pmu_mode::software: return "software";
  }
  return "?";
}

int pmu_events_unavailable(pmu_mode m) noexcept {
  switch (m) {
    case pmu_mode::off: return 0;
    case pmu_mode::full: return 0;
    case pmu_mode::reduced: return 2;   // branch-misses, stalled-backend
    case pmu_mode::minimal: return 3;   // + LLC-misses
    case pmu_mode::software: return 4;  // everything but cycles (rdtsc)
  }
  return 0;
}

void set_pmu_open_for_test(pmu_open_fn fn) {
  g_open_override.store(fn, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// pmu_reader

pmu_reader::pmu_reader(pmu_mode start) { open_group(start); }

pmu_reader::~pmu_reader() { close_fds(); }

void pmu_reader::close_fds() noexcept {
#if GRAN_PMU_HAVE_PERF
  // A perf event is destroyed when its fd closes, so members keep their fds
  // for the group's lifetime even though reads all go through the leader.
  for (int& fd : member_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (group_fd_ >= 0) ::close(group_fd_);
  if (ctx_fd_ >= 0) ::close(ctx_fd_);
#else
  for (int& fd : member_fds_) fd = -1;
#endif
  group_fd_ = -1;
  ctx_fd_ = -1;
  group_events_ = 0;
}

void pmu_reader::open_group(pmu_mode start) {
#if GRAN_PMU_HAVE_PERF
  if (start == pmu_mode::software) {
    mode_ = pmu_mode::software;
  } else {
    // Walk the ladder from the requested rung down: open the leader plus a
    // prefix of members; any failure closes the partial group and tries the
    // next (narrower) rung. PMUs with few programmable counters reject wide
    // groups only at read time (the group never schedules), so a paranoid
    // fallback at read() exists too — see sample().
    for (pmu_mode rung = start; rung != pmu_mode::software;
         rung = static_cast<pmu_mode>(static_cast<int>(rung) + 1)) {
      const int want = rung_events(rung);
      int leader = open_event(k_group_events[0].type, k_group_events[0].config,
                              -1, k_group_format, /*start_disabled=*/true);
      if (leader < 0) break;  // no cycles counter at all -> software
      int members[4] = {-1, -1, -1, -1};
      bool ok = true;
      for (int i = 1; i < want; ++i) {
        members[i - 1] =
            open_event(k_group_events[i].type, k_group_events[i].config,
                       leader, k_group_format, /*start_disabled=*/false);
        if (members[i - 1] < 0) {
          ok = false;
          break;
        }
      }
      if (!ok) {
        for (int fd : members)
          if (fd >= 0) ::close(fd);
        ::close(leader);
        continue;
      }
      group_fd_ = leader;
      for (int i = 0; i < 4; ++i) member_fds_[i] = members[i];
      group_events_ = want;
      mode_ = rung;
      ::ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
      ::ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
      break;
    }
    if (group_fd_ < 0) mode_ = pmu_mode::software;
  }
  // Context switches ride a software event independent of the hardware
  // group: it can succeed when the PMU is denied (paranoid<=2 allows
  // software events) and fail when seccomp blocks the syscall entirely —
  // either way rusage covers the gap.
  ctx_fd_ = open_event(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES, -1,
                       k_single_format, /*start_disabled=*/false);
  if (ctx_fd_ < 0) ctx_fd_ = -1;
#else
  (void)start;
  mode_ = pmu_mode::software;
#endif
}

void pmu_reader::sample(pmu_sample& out) noexcept {
  out = pmu_sample{};
#if GRAN_PMU_HAVE_PERF
  if (mode_ != pmu_mode::software && group_fd_ >= 0) {
    // One batched read of the whole group:
    //   { u64 nr; u64 time_enabled; u64 time_running; u64 values[nr]; }
    std::uint64_t buf[3 + 5] = {};
    const ssize_t want =
        static_cast<ssize_t>((3 + group_events_) * sizeof(std::uint64_t));
    const ssize_t got = ::read(group_fd_, buf, sizeof(buf));
    if (got != want || buf[0] != static_cast<std::uint64_t>(group_events_)) {
      // Unschedulable group or dead fd (cgroup change, fuzzed shim fd):
      // degrade this reader permanently rather than report garbage.
      close_fds();
      mode_ = pmu_mode::software;
    } else {
      const std::uint64_t enabled = buf[1], running = buf[2];
      const auto val = [&](int i) { return scale_count(buf[3 + i], enabled, running); };
      out.cycles = val(0);
      out.instructions = val(1);
      if (group_events_ >= 3) out.llc_misses = val(2);
      if (group_events_ >= 5) {
        out.branch_misses = val(3);
        out.stalled_backend = val(4);
      }
    }
  }
  if (ctx_fd_ >= 0) {
    std::uint64_t cbuf[3] = {};
    if (::read(ctx_fd_, cbuf, sizeof(cbuf)) ==
        static_cast<ssize_t>(sizeof(cbuf))) {
      out.ctx_switches = scale_count(cbuf[0], cbuf[1], cbuf[2]);
    } else {
      ::close(ctx_fd_);
      ctx_fd_ = -1;
    }
  }
  if (ctx_fd_ < 0) out.ctx_switches = rusage_ctx_switches();
#else
  out.ctx_switches = rusage_ctx_switches();
#endif
  if (mode_ == pmu_mode::software) out.cycles = rdtsc();
}

// ---------------------------------------------------------------------------
// pmu_plane

pmu_plane& pmu_plane::instance() {
  static pmu_plane plane;
  return plane;
}

void pmu_plane::configure(const std::string& spec) {
  env_checked_.store(true, std::memory_order_relaxed);
  if (spec.empty() || spec == "0" || spec == "off") {
    enabled_.store(false, std::memory_order_relaxed);
    force_software_.store(false, std::memory_order_relaxed);
    negotiated_.store(0, std::memory_order_relaxed);
    return;
  }
  const bool software = (spec == "sw" || spec == "software");
  force_software_.store(software, std::memory_order_relaxed);
  negotiated_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void pmu_plane::init_from_env() {
  if (env_checked_.exchange(true, std::memory_order_relaxed)) return;
  const char* v = std::getenv("GRAN_PMU");
  if (v != nullptr && *v != '\0') configure(v);
}

std::unique_ptr<pmu_reader> pmu_plane::create_reader() {
  if (!enabled()) return nullptr;
  pmu_mode start = pmu_mode::full;
  if (force_software_.load(std::memory_order_relaxed)) {
    start = pmu_mode::software;
  } else {
    const int seen = negotiated_.load(std::memory_order_acquire);
    if (seen != 0) start = static_cast<pmu_mode>(seen);
  }
  std::unique_ptr<pmu_reader> r(new pmu_reader(start));
  // Record the worst rung seen so far; later readers skip the rungs a
  // sibling already found denied (no EPERM storm on wide fleets).
  int landed = static_cast<int>(r->mode());
  int cur = negotiated_.load(std::memory_order_acquire);
  while (cur < landed &&
         !negotiated_.compare_exchange_weak(cur, landed,
                                            std::memory_order_acq_rel)) {
  }
  if (r->mode() != pmu_mode::full &&
      !warned_.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "gran: pmu degraded to %s mode (%d hardware event(s) "
                 "unavailable; check /proc/sys/kernel/perf_event_paranoid "
                 "or container seccomp policy)\n",
                 pmu_mode_name(r->mode()),
                 pmu_events_unavailable(r->mode()));
  }
  return r;
}

pmu_mode pmu_plane::mode() const noexcept {
  if (!enabled()) return pmu_mode::off;
  if (force_software_.load(std::memory_order_relaxed))
    return pmu_mode::software;
  const int seen = negotiated_.load(std::memory_order_acquire);
  return seen == 0 ? pmu_mode::full : static_cast<pmu_mode>(seen);
}

void pmu_plane::reset_for_test() {
  enabled_.store(false, std::memory_order_relaxed);
  force_software_.store(false, std::memory_order_relaxed);
  negotiated_.store(0, std::memory_order_relaxed);
  warned_.store(false, std::memory_order_relaxed);
  env_checked_.store(false, std::memory_order_relaxed);
}

}  // namespace gran::perf
