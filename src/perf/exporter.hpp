// Streaming export of window snapshots (perf/window.hpp) in two formats:
//
//  * Prometheus text exposition format — one full scrape body per window,
//    rewritten atomically to a *.prom file (node_exporter textfile-collector
//    style) or served to scrapers by whoever owns the file. Counter paths
//    map to metric families: "/threads{worker#3}/count/cumulative" becomes
//    `gran_threads_count_cumulative{instance="worker#3"}`; monotonic
//    counters export as `counter`, gauges and rates as `gauge`; the derived
//    interval signals export as `gran_window_*` gauges.
//
//  * JSONL — one self-contained JSON object per line per window (plus
//    incident lines from the watchdog), written to a file, a FIFO, or a TCP
//    socket ("tcp://host:port"). This is the stream tools/gran_top tails.
//
// Both writers keep NaN/Inf out of the output (JSON forbids them; scrapers
// choke on them): non-finite values serialize as 0.
//
// validate_prometheus_text checks exposition-format conformance (used by
// the tests and by `gran_top --check-prom` in CI).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "perf/window.hpp"

namespace gran::perf {

// "/threads{worker#3}/count/cumulative" -> {"gran_threads_count_cumulative",
// "worker#3"}. Every character outside [a-zA-Z0-9_] of the path's
// object/name parts maps to '_'.
struct prometheus_family {
  std::string name;
  std::string instance;  // empty = aggregate (no label)
};
prometheus_family prometheus_family_of(const std::string& counter_path);

// Full exposition body for one window (HELP/TYPE per family, samples
// grouped under them, window-derived gauges included).
void write_prometheus_text(std::ostream& os, const window_snapshot& w);

// Strict-enough grammar check of an exposition body: HELP/TYPE/comment and
// sample lines only, valid metric/label names, parseable values, TYPE at
// most once per family and before that family's samples. Returns false and
// sets `error` (when non-null) to "line N: why" on the first violation.
bool validate_prometheus_text(std::istream& is, std::string* error = nullptr);

// Semantic layer on top of the grammar check: every family must carry the
// gran_ prefix, and families this exporter is known to emit must declare
// the expected TYPE. Unknown gran_* families are tolerated by design —
// newer writers add families (gran_pmu_* and successors) without breaking
// older validators; only a wrong prefix or a known family with the wrong
// TYPE fails.
bool validate_gran_families(std::istream& is, std::string* error = nullptr);

// One JSON object (single line, newline-terminated): window metadata,
// interval stats, counter values, monotonic rates, per-worker rows.
void write_window_jsonl(std::ostream& os, const window_snapshot& w);

// Appends a minimally escaped JSON string literal (quotes included).
void write_json_string(std::ostream& os, const std::string& s);

// Where a JSONL stream goes: a regular file (append), a FIFO (append —
// note: opening a FIFO blocks until a reader appears), or a TCP connection
// ("tcp://host:port", connected once at open). Write failures (reader went
// away, connection reset) disable the sink with one warning instead of
// killing the telemetry thread.
class metrics_sink {
 public:
  metrics_sink() = default;
  ~metrics_sink();

  metrics_sink(const metrics_sink&) = delete;
  metrics_sink& operator=(const metrics_sink&) = delete;

  // Opens the destination; false (with a warning) when it cannot be opened.
  bool open(const std::string& destination);
  void close();

  // Writes a whole line/blob; silently drops once the sink is dead.
  void write(const std::string& data);

  bool ok() const { return fd_ >= 0; }
  const std::string& destination() const { return destination_; }
  std::uint64_t bytes_written() const { return bytes_; }

 private:
  std::string destination_;
  int fd_ = -1;
  bool socket_ = false;
  bool warned_ = false;
  std::uint64_t bytes_ = 0;
};

// Atomically replaces `path` with `content` (write to path+".tmp", rename),
// so a concurrent scraper never sees a half-written exposition.
bool write_file_atomic(const std::string& path, const std::string& content);

}  // namespace gran::perf
