#include "perf/observability.hpp"

#include <iostream>
#include <sstream>

#include "perf/trace.hpp"
#include "util/env.hpp"

namespace gran::perf {

namespace {

std::vector<std::string> split_prefixes(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

}  // namespace

observability_session::options observability_session::options_from_env() {
  options o;
  const std::string trace = env_string("GRAN_TRACE", "");
  if (!trace.empty())
    o.trace_out = (trace == "1" || trace == "true") ? "gran_trace.json" : trace;
  const std::string bin = env_string("GRAN_TRACE_BIN", "");
  if (!bin.empty())
    o.trace_bin = (bin == "1" || bin == "true") ? "gran_trace.bin" : bin;
  o.trace_buf_events = static_cast<std::size_t>(env_int("GRAN_TRACE_BUF", 0));
  o.sample_interval_us = static_cast<std::uint64_t>(env_int("GRAN_SAMPLE_US", 0));
  o.sample_out = env_string("GRAN_SAMPLE_OUT", "");
  const std::string set = env_string("GRAN_SAMPLE_SET", "");
  if (!set.empty()) o.sample_prefixes = split_prefixes(set);
  return o;
}

observability_session::options observability_session::options_from_cli(
    const cli_args& args, options base) {
  base.trace_out = args.get("trace-out", base.trace_out);
  base.trace_bin = args.get("trace-bin", base.trace_bin);
  base.trace_buf_events = static_cast<std::size_t>(
      args.get_int("trace-buf", static_cast<std::int64_t>(base.trace_buf_events)));
  base.sample_interval_us = static_cast<std::uint64_t>(args.get_int(
      "sample-interval-us", static_cast<std::int64_t>(base.sample_interval_us)));
  base.sample_out = args.get("sample-out", base.sample_out);
  const std::string set = args.get("sample-set", "");
  if (!set.empty()) base.sample_prefixes = split_prefixes(set);
  return base;
}

observability_session::observability_session(options opt) : opt_(std::move(opt)) {
  if (!opt_.trace_out.empty() || !opt_.trace_bin.empty()) {
    auto& t = tracer::instance();
    t.enable(opt_.trace_buf_events);
    t.set_export_path(opt_.trace_out);
  }
  if (opt_.sample_interval_us > 0) {
    if (opt_.sample_out.empty()) opt_.sample_out = "gran_samples.csv";
    sampler_options so;
    so.prefixes = opt_.sample_prefixes;
    so.interval_us = opt_.sample_interval_us;
    sampler_ = std::make_unique<sampler_thread>(std::move(so));
  }
}

observability_session::~observability_session() { finish(); }

void observability_session::finish() {
  if (finished_) return;
  finished_ = true;
  if (sampler_) {
    sampler_->stop();
    if (sampler_->dump_file(opt_.sample_out))
      std::cout << "(counter time series: " << sampler_->samples_taken()
                << " samples written to " << opt_.sample_out << ")\n";
  }
  if (!opt_.trace_out.empty()) {
    // The thread manager also exports at stop(); this final export includes
    // every manager the process ran and therefore supersedes those files.
    if (tracer::instance().export_chrome_json(opt_.trace_out))
      std::cout << "(trace: " << tracer::instance().total_events() -
                                     tracer::instance().total_dropped()
                << " events written to " << opt_.trace_out
                << " — load in ui.perfetto.dev)\n";
  }
  if (!opt_.trace_bin.empty()) {
    if (tracer::instance().export_binary(opt_.trace_bin))
      std::cout << "(trace: binary dump written to " << opt_.trace_bin
                << " — analyze with gran_trace_report --in=" << opt_.trace_bin
                << ")\n";
  }
}

}  // namespace gran::perf
