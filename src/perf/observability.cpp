#include "perf/observability.hpp"

#include <iostream>
#include <sstream>

#include "perf/pmu.hpp"
#include "perf/trace.hpp"
#include "util/env.hpp"

namespace gran::perf {

namespace {

std::vector<std::string> split_prefixes(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

}  // namespace

observability_session::options observability_session::options_from_env() {
  options o;
  const std::string trace = env_string("GRAN_TRACE", "");
  if (!trace.empty())
    o.trace_out = (trace == "1" || trace == "true") ? "gran_trace.json" : trace;
  const std::string bin = env_string("GRAN_TRACE_BIN", "");
  if (!bin.empty())
    o.trace_bin = (bin == "1" || bin == "true") ? "gran_trace.bin" : bin;
  o.trace_buf_events = static_cast<std::size_t>(env_int("GRAN_TRACE_BUF", 0));
  o.sample_interval_us = static_cast<std::uint64_t>(env_int("GRAN_SAMPLE_US", 0));
  o.sample_out = env_string("GRAN_SAMPLE_OUT", "");
  const std::string set = env_string("GRAN_SAMPLE_SET", "");
  if (!set.empty()) o.sample_prefixes = split_prefixes(set);
  o.metrics_out = env_string("GRAN_METRICS", "");
  o.metrics_prom = env_string("GRAN_METRICS_PROM", "");
  o.metrics_interval_us = env_int("GRAN_METRICS_US", 0);
  o.flight_prefix = env_string("GRAN_FLIGHT", "");
  if (o.flight_prefix == "1" || o.flight_prefix == "true")
    o.flight_prefix = "gran_flight";
  o.stall_ns = env_int("GRAN_STALL_NS", 0);
  o.pmu = env_string("GRAN_PMU", "");
  return o;
}

observability_session::options observability_session::options_from_cli(
    const cli_args& args, options base) {
  base.trace_out = args.get("trace-out", base.trace_out);
  base.trace_bin = args.get("trace-bin", base.trace_bin);
  base.trace_buf_events = static_cast<std::size_t>(
      args.get_int("trace-buf", static_cast<std::int64_t>(base.trace_buf_events)));
  base.sample_interval_us = static_cast<std::uint64_t>(args.get_int(
      "sample-interval-us", static_cast<std::int64_t>(base.sample_interval_us)));
  base.sample_out = args.get("sample-out", base.sample_out);
  const std::string set = args.get("sample-set", "");
  if (!set.empty()) base.sample_prefixes = split_prefixes(set);
  base.metrics_out = args.get("metrics-out", base.metrics_out);
  base.metrics_prom = args.get("metrics-prom", base.metrics_prom);
  base.metrics_interval_us =
      args.get_int("metrics-interval-us", base.metrics_interval_us);
  base.flight_prefix = args.get("flight-prefix", base.flight_prefix);
  base.stall_ns = args.get_int("stall-ns", base.stall_ns);
  base.pmu = args.get("pmu", base.pmu);
  return base;
}

observability_session::observability_session(options opt) : opt_(std::move(opt)) {
  // Configure the PMU plane before any thread manager spawns workers;
  // readers are created at worker start, so a later configure() would miss
  // them. Empty spec leaves whatever GRAN_PMU/init_from_env decided intact.
  if (!opt_.pmu.empty()) pmu_plane::instance().configure(opt_.pmu);
  if (!opt_.trace_out.empty() || !opt_.trace_bin.empty()) {
    auto& t = tracer::instance();
    t.enable(opt_.trace_buf_events);
    t.set_export_path(opt_.trace_out);
  }
  if (opt_.sample_interval_us > 0) {
    if (opt_.sample_out.empty()) opt_.sample_out = "gran_samples.csv";
    sampler_options so;
    so.prefixes = opt_.sample_prefixes;
    so.interval_us = opt_.sample_interval_us;
    sampler_ = std::make_unique<sampler_thread>(std::move(so));
  }
  telemetry_options to;
  to.jsonl_out = opt_.metrics_out;
  to.prom_out = opt_.metrics_prom;
  if (opt_.metrics_interval_us > 0) to.interval_us = opt_.metrics_interval_us;
  to.flight_prefix = opt_.flight_prefix;
  if (opt_.stall_ns > 0) to.watchdog.stuck_ns = opt_.stall_ns;
  if (to.enabled())
    telemetry_ = std::make_unique<telemetry_session>(std::move(to));
}

observability_session::~observability_session() { finish(); }

void observability_session::finish() {
  if (finished_) return;
  finished_ = true;
  if (telemetry_) {
    telemetry_->stop();
    if (!opt_.metrics_out.empty())
      std::cout << "(telemetry: " << telemetry_->windows_exported()
                << " windows streamed to " << opt_.metrics_out << ")\n";
    if (!opt_.metrics_prom.empty())
      std::cout << "(telemetry: Prometheus exposition in " << opt_.metrics_prom
                << ")\n";
    if (telemetry_->incidents_raised() > 0)
      std::cout << "(watchdog: " << telemetry_->incidents_raised()
                << " stall incident(s); last flight dump: "
                << telemetry_->last_flight_path() << ")\n";
  }
  if (sampler_) {
    sampler_->stop();
    if (sampler_->dump_file(opt_.sample_out))
      std::cout << "(counter time series: " << sampler_->samples_taken()
                << " samples written to " << opt_.sample_out << ")\n";
  }
  if (!opt_.trace_out.empty()) {
    // The thread manager also exports at stop(); this final export includes
    // every manager the process ran and therefore supersedes those files.
    if (tracer::instance().export_chrome_json(opt_.trace_out))
      std::cout << "(trace: " << tracer::instance().total_events() -
                                     tracer::instance().total_dropped()
                << " events written to " << opt_.trace_out
                << " — load in ui.perfetto.dev)\n";
  }
  if (!opt_.trace_bin.empty()) {
    if (tracer::instance().export_binary(opt_.trace_bin))
      std::cout << "(trace: binary dump written to " << opt_.trace_bin
                << " — analyze with gran_trace_report --in=" << opt_.trace_bin
                << ")\n";
  }
}

}  // namespace gran::perf
