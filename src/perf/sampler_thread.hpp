// Background counter sampler: a dedicated OS thread that periodically
// snapshots a configurable counter set into an in-memory time-series ring
// and dumps it as CSV or JSON at the end — the paper's "dynamic measurement
// over any interval of interest" (§II-A) turned into a continuous recorder
// (idle-rate-over-time, queue depth over time, ...).
//
// The sampler uses registry::query_all, so each tick costs one registry
// lock acquisition regardless of how many counters it records.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace gran::perf {

struct sampler_options {
  // Counter-path prefixes to record. The column set follows the registry:
  // counters registered after the sampler started are appended as new
  // columns as soon as the registry generation bumps (rows recorded before
  // then read NaN in the new columns); counters unregistered mid-run keep
  // their column and read NaN from then on.
  std::vector<std::string> prefixes{"/threads"};
  // Sampling period.
  std::uint64_t interval_us = 1000;
  // Retained samples; the ring drops the oldest row beyond this.
  std::size_t capacity = 1u << 16;
};

class sampler_thread {
 public:
  struct row {
    std::int64_t timestamp_ns = 0;  // steady_clock, absolute
    std::vector<double> values;     // aligned with columns()
  };

  // Starts sampling immediately.
  explicit sampler_thread(sampler_options opt);
  ~sampler_thread();  // stops and joins

  sampler_thread(const sampler_thread&) = delete;
  sampler_thread& operator=(const sampler_thread&) = delete;

  // Stops the background thread (idempotent). Rows remain queryable.
  void stop();

  // Column paths (empty before the first tick). Append-only: late
  // registrations add columns at the end, so existing row indices stay
  // valid.
  std::vector<std::string> columns() const;
  // Copy of the retained time series, oldest first. Every row is padded
  // with NaN to the current column count (rows recorded before a column
  // appeared have no value for it).
  std::vector<row> series() const;
  std::uint64_t samples_taken() const { return taken_.load(std::memory_order_relaxed); }
  std::uint64_t samples_dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // time_ns (relative to the first sample) + one column per counter.
  // Unavailable values (counter unregistered mid-run) dump as "nan" in CSV
  // and null in JSON.
  void dump_csv(std::ostream& os) const;
  void dump_json(std::ostream& os) const;
  // Dispatches on the extension (".json" => JSON, anything else CSV).
  bool dump_file(const std::string& path) const;

 private:
  void run();
  void sample_once();

  sampler_options opt_;

  mutable std::mutex mutex_;  // guards columns_, col_index_, rows_
  std::vector<std::string> columns_;
  std::unordered_map<std::string, std::size_t> col_index_;  // path -> column
  std::uint64_t last_generation_ = ~std::uint64_t{0};       // registry gen
  std::deque<row> rows_;

  std::atomic<std::uint64_t> taken_{0};
  std::atomic<std::uint64_t> dropped_{0};

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace gran::perf
