#include "perf/exporter.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace gran::perf {

namespace {

// JSON forbids NaN/Inf and Prometheus scrapers reject them in gauges we
// derive; everything funnels through here.
double finite(double v) { return std::isfinite(v) ? v : 0.0; }

void write_number(std::ostream& os, double v) {
  v = finite(v);
  // Integers print without a fraction to keep the stream compact and the
  // counter values exact.
  if (v == static_cast<std::int64_t>(v) && std::fabs(v) < 9.2e18) {
    os << static_cast<std::int64_t>(v);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os << buf;
  }
}

void sanitize_into(std::string& out, const std::string& part) {
  for (const char c : part) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
}

const char* type_of(counter_kind kind) {
  return kind == counter_kind::monotonic ? "counter" : "gauge";
}

struct prom_sample {
  std::string instance;  // empty = no label
  counter_kind kind;
  double value;
  std::string help;  // original counter path
};

void write_family(std::ostream& os, const std::string& family,
                  const std::vector<prom_sample>& samples) {
  os << "# HELP " << family << " gran counter " << samples.front().help << "\n";
  os << "# TYPE " << family << " " << type_of(samples.front().kind) << "\n";
  for (const prom_sample& s : samples) {
    os << family;
    if (!s.instance.empty()) os << "{instance=\"" << s.instance << "\"}";
    os << " ";
    write_number(os, s.value);
    os << "\n";
  }
}

void write_window_gauge(std::ostream& os, const char* name, const char* help,
                        double value) {
  os << "# HELP gran_window_" << name << " " << help << "\n";
  os << "# TYPE gran_window_" << name << " gauge\n";
  os << "gran_window_" << name << " ";
  write_number(os, value);
  os << "\n";
}

// Like write_window_gauge but with the full family name: the PMU and
// service interval gauges live under their own gran_pmu_/gran_service_
// prefixes, distinct from the auto-derived counter families (e.g.
// /threads/pmu/mode maps to gran_threads_pmu_mode).
void write_named_gauge(std::ostream& os, const char* family, const char* help,
                       double value) {
  os << "# HELP " << family << " " << help << "\n";
  os << "# TYPE " << family << " gauge\n";
  os << family << " ";
  write_number(os, value);
  os << "\n";
}

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

bool valid_label_name(const std::string& s) {
  if (s.empty()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

bool valid_sample_value(const std::string& s) {
  if (s.empty()) return false;
  if (s == "+Inf" || s == "-Inf" || s == "NaN") return true;  // prom allows them
  char* end = nullptr;
  errno = 0;
  std::strtod(s.c_str(), &end);
  return errno == 0 && end == s.c_str() + s.size();
}

bool fail(std::string* error, int line_no, const std::string& why) {
  if (error != nullptr) *error = "line " + std::to_string(line_no) + ": " + why;
  return false;
}

// Parses `{label="value",...}` starting at s[pos] == '{'; advances pos past
// the closing brace. Returns false on malformed syntax.
bool parse_labels(const std::string& s, std::size_t& pos) {
  ++pos;  // '{'
  while (pos < s.size() && s[pos] != '}') {
    std::size_t eq = s.find('=', pos);
    if (eq == std::string::npos) return false;
    if (!valid_label_name(s.substr(pos, eq - pos))) return false;
    pos = eq + 1;
    if (pos >= s.size() || s[pos] != '"') return false;
    ++pos;
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') ++pos;  // escaped char
      ++pos;
    }
    if (pos >= s.size()) return false;
    ++pos;  // closing quote
    if (pos < s.size() && s[pos] == ',') ++pos;
  }
  if (pos >= s.size()) return false;
  ++pos;  // '}'
  return true;
}

}  // namespace

prometheus_family prometheus_family_of(const std::string& counter_path_text) {
  prometheus_family out;
  out.name = "gran_";
  const auto parsed = counter_path::parse(counter_path_text);
  if (!parsed) {
    sanitize_into(out.name, counter_path_text);
    return out;
  }
  sanitize_into(out.name, parsed->object);
  out.name.push_back('_');
  sanitize_into(out.name, parsed->name);
  out.instance = parsed->instance;
  return out;
}

void write_prometheus_text(std::ostream& os, const window_snapshot& w) {
  // Group samples by family so HELP/TYPE appear once, ahead of the family's
  // samples, with aggregate and per-instance values together.
  std::map<std::string, std::vector<prom_sample>> families;
  for (const window_metric& m : w.metrics) {
    prometheus_family fam = prometheus_family_of(m.path);
    families[fam.name].push_back(
        prom_sample{std::move(fam.instance), m.kind, finite(m.value), m.path});
  }
  for (const auto& [family, samples] : families) write_family(os, family, samples);

  write_window_gauge(os, "seq", "window sequence number", static_cast<double>(w.seq));
  write_window_gauge(os, "dt_seconds", "window length", w.dt_s);
  write_window_gauge(os, "idle_rate", "interval idle-rate (Eq. 1)", w.idle_rate);
  write_window_gauge(os, "tasks_per_second", "tasks completed per second",
                     w.tasks_per_s);
  write_window_gauge(os, "task_duration_p50_ns", "interval task duration p50",
                     w.task_duration_p50_ns);
  write_window_gauge(os, "task_duration_p95_ns", "interval task duration p95",
                     w.task_duration_p95_ns);
  write_window_gauge(os, "task_duration_p99_ns", "interval task duration p99",
                     w.task_duration_p99_ns);
  write_window_gauge(os, "task_overhead_p50_ns", "interval task overhead p50",
                     w.task_overhead_p50_ns);
  write_window_gauge(os, "task_overhead_p95_ns", "interval task overhead p95",
                     w.task_overhead_p95_ns);
  write_window_gauge(os, "task_overhead_p99_ns", "interval task overhead p99",
                     w.task_overhead_p99_ns);
  // Service-ingress gauges only exist while a task_service is registered —
  // absent families are how scrapers tell batch runs from service runs.
  if (w.has_service) {
    write_window_gauge(os, "sojourn_p50_ns", "interval request sojourn p50",
                       w.sojourn_p50_ns);
    write_window_gauge(os, "sojourn_p95_ns", "interval request sojourn p95",
                       w.sojourn_p95_ns);
    write_window_gauge(os, "sojourn_p99_ns", "interval request sojourn p99",
                       w.sojourn_p99_ns);
    write_window_gauge(os, "rejection_rate",
                       "rejected/submitted over the window", w.rejection_rate);
    write_window_gauge(os, "service_backlog",
                       "requests accepted and not yet completed",
                       w.service_backlog);
    write_named_gauge(os, "gran_service_queue_wait_p50_ns",
                      "interval queue-wait p50", w.queue_wait_p50_ns);
    write_named_gauge(os, "gran_service_queue_wait_p95_ns",
                      "interval queue-wait p95", w.queue_wait_p95_ns);
    write_named_gauge(os, "gran_service_queue_wait_p99_ns",
                      "interval queue-wait p99", w.queue_wait_p99_ns);
  }
  // PMU families only exist while the plane is enabled (GRAN_PMU); their
  // absence is how scrapers tell a PMU-off run. Older validators must
  // tolerate these as unknown gran_* families (validate_gran_families).
  if (w.has_pmu) {
    write_named_gauge(os, "gran_pmu_mode",
                      "PMU rung: 1 full, 2 reduced, 3 minimal, 4 software",
                      static_cast<double>(w.pmu_mode));
    write_named_gauge(os, "gran_pmu_ipc_p50", "interval per-phase IPC p50",
                      w.ipc_p50);
    write_named_gauge(os, "gran_pmu_ipc_p95", "interval per-phase IPC p95",
                      w.ipc_p95);
    write_named_gauge(os, "gran_pmu_ipc_p99", "interval per-phase IPC p99",
                      w.ipc_p99);
    write_named_gauge(os, "gran_pmu_instructions_p50",
                      "interval instructions/phase p50", w.instructions_p50);
    write_named_gauge(os, "gran_pmu_instructions_p95",
                      "interval instructions/phase p95", w.instructions_p95);
    write_named_gauge(os, "gran_pmu_instructions_p99",
                      "interval instructions/phase p99", w.instructions_p99);
    write_named_gauge(os, "gran_pmu_llc_miss_p50",
                      "interval LLC misses/phase p50", w.llc_p50);
    write_named_gauge(os, "gran_pmu_llc_miss_p95",
                      "interval LLC misses/phase p95", w.llc_p95);
    write_named_gauge(os, "gran_pmu_llc_miss_p99",
                      "interval LLC misses/phase p99", w.llc_p99);
  }
}

bool validate_prometheus_text(std::istream& is, std::string* error) {
  std::string line;
  int line_no = 0;
  std::map<std::string, bool> typed;         // family -> TYPE seen
  std::map<std::string, bool> has_samples;   // family -> sample seen
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, keyword, family;
      ls >> hash >> keyword;
      if (keyword != "HELP" && keyword != "TYPE") continue;  // plain comment
      if (!(ls >> family) || !valid_metric_name(family))
        return fail(error, line_no, "bad metric name in " + keyword);
      if (keyword == "TYPE") {
        std::string type;
        if (!(ls >> type) ||
            (type != "counter" && type != "gauge" && type != "histogram" &&
             type != "summary" && type != "untyped"))
          return fail(error, line_no, "bad TYPE value");
        if (typed[family]) return fail(error, line_no, "duplicate TYPE for " + family);
        if (has_samples[family])
          return fail(error, line_no, "TYPE after samples for " + family);
        typed[family] = true;
      }
      continue;
    }
    // Sample: name[{labels}] value [timestamp]
    std::size_t pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
    const std::string name = line.substr(0, pos);
    if (!valid_metric_name(name)) return fail(error, line_no, "bad metric name");
    if (pos < line.size() && line[pos] == '{') {
      if (!parse_labels(line, pos)) return fail(error, line_no, "bad label syntax");
    }
    if (pos >= line.size() || line[pos] != ' ')
      return fail(error, line_no, "missing value");
    std::istringstream rest(line.substr(pos + 1));
    std::string value, timestamp, extra;
    rest >> value;
    if (!valid_sample_value(value)) return fail(error, line_no, "bad sample value");
    if (rest >> timestamp) {
      char* end = nullptr;
      errno = 0;
      std::strtoll(timestamp.c_str(), &end, 10);
      if (errno != 0 || end != timestamp.c_str() + timestamp.size())
        return fail(error, line_no, "bad timestamp");
      if (rest >> extra) return fail(error, line_no, "trailing garbage");
    }
    // Histogram/summary families emit _bucket/_sum/_count samples under the
    // family's TYPE; we only emit counter/gauge, so sample name == family.
    has_samples[name] = true;
  }
  return true;
}

bool validate_gran_families(std::istream& is, std::string* error) {
  // Families this exporter is known to emit, with the TYPE each must carry.
  // Deliberately a small anchor set, not a census: a family missing from
  // this table is accepted as long as it starts with gran_, so new writers
  // (and future planes) stay compatible with old validators.
  static const std::map<std::string, std::string> known = {
      {"gran_window_seq", "gauge"},
      {"gran_window_idle_rate", "gauge"},
      {"gran_window_tasks_per_second", "gauge"},
      {"gran_threads_count_cumulative", "counter"},
      {"gran_threads_time_cumulative", "counter"},
      {"gran_threads_pmu_mode", "gauge"},
      {"gran_pmu_mode", "gauge"},
      {"gran_pmu_ipc_p50", "gauge"},
      {"gran_service_queue_wait_p50_ns", "gauge"},
      {"gran_service_count_submitted", "counter"},
  };
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string family;
    std::string type;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, keyword;
      ls >> hash >> keyword;
      if (keyword != "TYPE") continue;
      ls >> family >> type;
    } else {
      std::size_t pos = 0;
      while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
      family = line.substr(0, pos);
    }
    if (family.rfind("gran_", 0) != 0)
      return fail(error, line_no,
                  "family '" + family + "' lacks the gran_ prefix");
    if (!type.empty()) {
      const auto it = known.find(family);
      if (it != known.end() && it->second != type)
        return fail(error, line_no, "family '" + family + "' declared " +
                                        type + ", expected " + it->second);
    }
  }
  return true;
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

namespace {

void write_percentiles(std::ostream& os, const char* key, double p50, double p95,
                       double p99, double mean, std::uint64_t count) {
  os << '"' << key << "\":{\"p50_ns\":";
  write_number(os, p50);
  os << ",\"p95_ns\":";
  write_number(os, p95);
  os << ",\"p99_ns\":";
  write_number(os, p99);
  os << ",\"mean_ns\":";
  write_number(os, mean);
  os << ",\"count\":" << count << "}";
}

}  // namespace

void write_window_jsonl(std::ostream& os, const window_snapshot& w) {
  os << "{\"type\":\"window\",\"seq\":" << w.seq
     << ",\"t_start_ns\":" << w.t_start_ns << ",\"t_end_ns\":" << w.t_end_ns
     << ",\"dt_s\":";
  write_number(os, w.dt_s);

  std::uint64_t duration_count = 0, overhead_count = 0;
  if (const window_histogram* h = w.find_histogram("/threads/histogram/task-duration"))
    duration_count = h->delta.count;
  if (const window_histogram* h = w.find_histogram("/threads/histogram/task-overhead"))
    overhead_count = h->delta.count;

  os << ",\"interval\":{\"idle_rate\":";
  write_number(os, w.idle_rate);
  os << ",\"tasks\":" << w.tasks_delta << ",\"tasks_per_s\":";
  write_number(os, w.tasks_per_s);
  os << ",";
  write_percentiles(os, "task_duration", w.task_duration_p50_ns,
                    w.task_duration_p95_ns, w.task_duration_p99_ns,
                    w.task_duration_mean_ns, duration_count);
  os << ",";
  write_percentiles(os, "task_overhead", w.task_overhead_p50_ns,
                    w.task_overhead_p95_ns, w.task_overhead_p99_ns,
                    w.task_overhead_mean_ns, overhead_count);
  if (w.has_service) {
    // Optional section: present only while a task_service is registered.
    // Consumers (gran_top) treat its absence as "batch run", not an error.
    os << ",\"service\":{\"accepted_per_s\":";
    write_number(os, w.accepted_per_s);
    os << ",\"rejected_per_s\":";
    write_number(os, w.rejected_per_s);
    os << ",\"completed_per_s\":";
    write_number(os, w.completed_per_s);
    os << ",\"rejection_rate\":";
    write_number(os, w.rejection_rate);
    os << ",\"backlog\":";
    write_number(os, w.service_backlog);
    os << ",";
    write_percentiles(os, "sojourn", w.sojourn_p50_ns, w.sojourn_p95_ns,
                      w.sojourn_p99_ns, w.sojourn_mean_ns, w.sojourn_count);
    os << ",";
    write_percentiles(os, "queue_wait", w.queue_wait_p50_ns,
                      w.queue_wait_p95_ns, w.queue_wait_p99_ns,
                      w.queue_wait_mean_ns, w.queue_wait_count);
    os << "}";
  }
  if (w.has_pmu) {
    // Optional section: present only while the PMU plane is enabled. IPC
    // values are dimensionless ratios, so the generic *_ns percentile keys
    // don't fit — flat keys instead.
    os << ",\"pmu\":{\"mode\":" << w.pmu_mode << ",\"ipc\":{\"p50\":";
    write_number(os, w.ipc_p50);
    os << ",\"p95\":";
    write_number(os, w.ipc_p95);
    os << ",\"p99\":";
    write_number(os, w.ipc_p99);
    os << ",\"mean\":";
    write_number(os, w.ipc_mean);
    os << ",\"count\":" << w.ipc_samples << "},\"instructions\":{\"p50\":";
    write_number(os, w.instructions_p50);
    os << ",\"p95\":";
    write_number(os, w.instructions_p95);
    os << ",\"p99\":";
    write_number(os, w.instructions_p99);
    os << ",\"mean\":";
    write_number(os, w.instructions_mean);
    os << ",\"count\":" << w.instructions_samples
       << "},\"llc_miss\":{\"p50\":";
    write_number(os, w.llc_p50);
    os << ",\"p95\":";
    write_number(os, w.llc_p95);
    os << ",\"p99\":";
    write_number(os, w.llc_p99);
    os << ",\"mean\":";
    write_number(os, w.llc_mean);
    os << ",\"count\":" << w.llc_samples << "}}";
  }
  os << "}";

  os << ",\"counters\":{";
  bool first = true;
  for (const window_metric& m : w.metrics) {
    if (!first) os << ",";
    first = false;
    write_json_string(os, m.path);
    os << ":";
    write_number(os, m.value);
  }
  os << "},\"rates\":{";
  first = true;
  for (const window_metric& m : w.metrics) {
    if (m.kind != counter_kind::monotonic) continue;
    if (!first) os << ",";
    first = false;
    write_json_string(os, m.path);
    os << ":";
    write_number(os, m.rate_per_s);
  }
  os << "},\"workers\":[";
  first = true;
  for (const worker_window& row : w.workers) {
    if (!first) os << ",";
    first = false;
    os << "{\"worker\":" << row.worker << ",\"tasks_per_s\":";
    write_number(os, row.tasks_per_s);
    os << ",\"idle_rate\":";
    write_number(os, row.idle_rate);
    os << ",\"stolen_per_s\":";
    write_number(os, row.stolen_per_s);
    os << ",\"duration_p50_ns\":";
    write_number(os, row.duration_p50_ns);
    os << ",\"duration_p95_ns\":";
    write_number(os, row.duration_p95_ns);
    os << ",\"duration_p99_ns\":";
    write_number(os, row.duration_p99_ns);
    os << ",\"duration_samples\":" << row.duration_samples;
    if (w.has_pmu) {
      os << ",\"ipc_p50\":";
      write_number(os, row.ipc_p50);
      os << ",\"ipc_samples\":" << row.ipc_samples;
    }
    if (row.heartbeat_age_ns >= 0) {
      os << ",\"heartbeat_age_ns\":";
      write_number(os, row.heartbeat_age_ns);
      os << ",\"running_task\":" << row.running_task << ",\"running_ns\":";
      write_number(os, row.running_ns);
    }
    os << "}";
  }
  os << "]}\n";
}

namespace {

int open_tcp(const std::string& spec, std::string* why) {
  // spec = "host:port"
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    *why = "expected tcp://host:port";
    return -1;
  }
  const std::string host = spec.substr(0, colon);
  const std::string port = spec.substr(colon + 1);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0) {
    *why = ::gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) *why = std::strerror(errno);
  return fd;
}

}  // namespace

metrics_sink::~metrics_sink() { close(); }

bool metrics_sink::open(const std::string& destination) {
  close();
  destination_ = destination;
  std::string why;
  if (destination.rfind("tcp://", 0) == 0) {
    fd_ = open_tcp(destination.substr(6), &why);
    socket_ = fd_ >= 0;
  } else {
    fd_ = ::open(destination.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) why = std::strerror(errno);
  }
  if (fd_ < 0) {
    std::fprintf(stderr, "[gran] metrics sink '%s' unavailable: %s\n",
                 destination.c_str(), why.c_str());
    return false;
  }
  return true;
}

void metrics_sink::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  socket_ = false;
}

void metrics_sink::write(const std::string& data) {
  if (fd_ < 0) return;
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a scraper that disconnected must produce EPIPE, not kill
    // the process with SIGPIPE.
    const ssize_t n =
        socket_ ? ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL)
                : ::write(fd_, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (!warned_) {
        std::fprintf(stderr, "[gran] metrics sink '%s' failed: %s (disabling)\n",
                     destination_.c_str(), std::strerror(errno));
        warned_ = true;
      }
      close();
      return;
    }
    off += static_cast<std::size_t>(n);
  }
  bytes_ += data.size();
}

bool write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return ::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace gran::perf
