// Per-worker hardware-counter attribution (the PMU plane): a
// perf_event_open-based counter-group reader sampled at the run_phase
// begin/end hooks, so every task slice gets microarchitectural deltas —
// cycles, instructions, LLC misses, branch misses, backend stalls, context
// switches — split into kernel (task body) vs scheduler (inter-phase gap)
// shares by the same decomposition that backs Eq. 3.
//
// Why: every other observability signal is wall-clock-derived. The U-curve's
// two walls have distinct *hardware* signatures — per-task management
// overhead is an instructions-per-task floor (left wall), while starvation
// and steal-driven locality loss show up as LLC misses per task (right
// wall) — and only counter deltas can tell them apart.
//
// Degradation ladder (never aborts the run):
//   full     cycles + instructions + LLC-misses + branch-misses +
//            stalled-cycles-backend (one grouped fd set, one batched read)
//            and a software context-switches event
//   reduced  cycles + instructions + LLC-misses (wide groups often exceed
//            the PMU's programmable-counter budget, or an event is denied)
//   minimal  cycles + instructions
//   software rdtsc for cycles, getrusage(RUSAGE_THREAD) for context
//            switches; instructions/LLC/branch/stall deltas read as 0
// perf_event_paranoid, seccomp, missing PMU (containers, VMs) all land on a
// lower rung; the negotiated mode and the number of unavailable events are
// recorded once in /threads/pmu/{mode,events-unavailable} and the
// Prometheus export. The plane is OFF by default (GRAN_PMU=1 / --pmu turns
// it on), so the disabled hot path is a single null-pointer branch in
// run_phase (bench/micro_pmu_overhead gates it at <=1%).
//
// Readers are per worker thread: perf_event_open self-attaches to the
// calling thread (pid=0), so create_reader() must run on the thread that
// will sample. RAII closes the fds; sampling is one read() of the group
// leader (PERF_FORMAT_GROUP) plus one of the context-switch fd.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace gran::perf {

// Negotiated capability rung. Numerically higher = more degraded; the plane
// reports the worst rung any reader landed on, so mixed-capability workers
// (cgroup changes mid-run) never overstate what the data contains.
enum class pmu_mode : int {
  off = 0,       // plane disabled (default)
  full = 1,      // all five hardware events + software context-switches
  reduced = 2,   // cycles + instructions + LLC-misses
  minimal = 3,   // cycles + instructions
  software = 4,  // rdtsc + getrusage only
};

const char* pmu_mode_name(pmu_mode m) noexcept;

// Hardware events from the full set that a mode cannot deliver (the value
// recorded in /threads/pmu/events-unavailable).
int pmu_events_unavailable(pmu_mode m) noexcept;

// One cumulative reading; deltas via operator-. In software mode
// instructions/llc/branch/stalled stay 0 and cycles comes from rdtsc.
struct pmu_sample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t stalled_backend = 0;
  std::uint64_t ctx_switches = 0;

  pmu_sample operator-(const pmu_sample& base) const noexcept {
    const auto sub = [](std::uint64_t a, std::uint64_t b) {
      return a > b ? a - b : 0;
    };
    pmu_sample d;
    d.cycles = sub(cycles, base.cycles);
    d.instructions = sub(instructions, base.instructions);
    d.llc_misses = sub(llc_misses, base.llc_misses);
    d.branch_misses = sub(branch_misses, base.branch_misses);
    d.stalled_backend = sub(stalled_backend, base.stalled_backend);
    d.ctx_switches = sub(ctx_switches, base.ctx_switches);
    return d;
  }
};

// Injectable perf_event_open for the degradation-ladder tests: the shim sees
// (type, config, group_fd) and returns a real fd, or -1 with errno set to
// simulate a denial. nullptr restores the real syscall. Not thread-safe
// against concurrent reader creation — set it before workers start.
using pmu_open_fn = int (*)(std::uint32_t type, std::uint64_t config,
                            int group_fd);
void set_pmu_open_for_test(pmu_open_fn fn);

// Per-thread counter-group reader. Construct via pmu_plane::create_reader()
// on the thread that will call sample().
class pmu_reader {
 public:
  ~pmu_reader();
  pmu_reader(const pmu_reader&) = delete;
  pmu_reader& operator=(const pmu_reader&) = delete;

  pmu_mode mode() const noexcept { return mode_; }

  // Cumulative counts since construction (multiplexing-scaled). A failing
  // read() permanently degrades this reader to software mode instead of
  // erroring — the sample is always usable.
  void sample(pmu_sample& out) noexcept;

 private:
  friend class pmu_plane;
  explicit pmu_reader(pmu_mode start);

  void open_group(pmu_mode level);
  void close_fds() noexcept;

  pmu_mode mode_ = pmu_mode::software;
  int group_fd_ = -1;   // leader (cycles); members read via PERF_FORMAT_GROUP
  int member_fds_[4] = {-1, -1, -1, -1};  // events die with their fd
  int group_events_ = 0;
  int ctx_fd_ = -1;     // software context-switches event; -1 = use rusage
};

// Process-global configuration and mode negotiation. Workers ask it for a
// reader at startup; the first probe establishes the rung and later readers
// start there (re-probing higher rungs per worker would spam EPERM).
class pmu_plane {
 public:
  static pmu_plane& instance();

  // "1"/"on"/"hw"/"auto" enable with hardware probing; "sw"/"software"
  // force the software-only rung (CI exercises the fallback path this way);
  // ""/"0"/"off" disable. Must run before the thread manager is built —
  // workers decide at startup whether to carry a reader.
  void configure(const std::string& spec);

  // Reads GRAN_PMU once per process (thread_manager startup calls this,
  // mirroring tracer::init_from_env), so `GRAN_PMU=1 ./bench` works with no
  // code changes.
  void init_from_env();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Builds a reader for the calling thread; nullptr when the plane is off.
  // Thread-safe; prints one warning per process when the negotiated rung is
  // below full.
  std::unique_ptr<pmu_reader> create_reader();

  // Worst rung among the readers created so far (off when none exists yet
  // and the plane is disabled; the configured start rung otherwise).
  pmu_mode mode() const noexcept;
  int events_unavailable() const noexcept {
    return pmu_events_unavailable(mode());
  }

  // Tests: drop negotiation state so the next create_reader re-probes.
  void reset_for_test();

 private:
  pmu_plane() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<bool> force_software_{false};
  std::atomic<int> negotiated_{0};  // 0 = unprobed; else pmu_mode value
  std::atomic<bool> warned_{false};
  std::atomic<bool> env_checked_{false};
};

}  // namespace gran::perf
