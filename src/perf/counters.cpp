#include "perf/counters.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

namespace gran::perf {

std::optional<counter_path> counter_path::parse(const std::string& text) {
  if (text.empty() || text[0] != '/') return std::nullopt;
  counter_path out;
  std::size_t pos = 1;
  // object runs to '{' or '/'.
  const std::size_t brace = text.find('{', pos);
  const std::size_t slash = text.find('/', pos);
  if (brace != std::string::npos && (slash == std::string::npos || brace < slash)) {
    out.object = text.substr(pos, brace - pos);
    const std::size_t close = text.find('}', brace);
    if (close == std::string::npos) return std::nullopt;
    out.instance = text.substr(brace + 1, close - brace - 1);
    pos = close + 1;
    if (pos >= text.size() || text[pos] != '/') return std::nullopt;
    ++pos;
  } else if (slash != std::string::npos) {
    out.object = text.substr(pos, slash - pos);
    pos = slash + 1;
  } else {
    return std::nullopt;  // need at least object/name
  }
  if (out.object.empty() || pos >= text.size()) return std::nullopt;
  out.name = text.substr(pos);
  if (out.name.empty() || out.name.back() == '/') return std::nullopt;
  return out;
}

std::string counter_path::str() const {
  std::string s = "/" + object;
  if (!instance.empty()) s += "{" + instance + "}";
  s += "/" + name;
  return s;
}

registry& registry::instance() {
  static registry r;
  return r;
}

void registry::add(const std::string& path, counter_kind kind, std::string description,
                   sample_fn fn) {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  counters_[path] = entry{kind, std::move(description), std::move(fn)};
  ++generation_;
}

bool registry::remove(const std::string& path) {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  const bool erased = counters_.erase(path) != 0;
  if (erased) ++generation_;
  return erased;
}

void registry::remove_prefix(const std::string& prefix) {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  auto it = counters_.lower_bound(prefix);
  bool any = false;
  while (it != counters_.end() && it->first.rfind(prefix, 0) == 0) {
    it = counters_.erase(it);
    any = true;
  }
  if (any) ++generation_;
}

std::uint64_t registry::generation() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return generation_;
}

std::optional<counter_value> registry::query(const std::string& path) const {
  // Shared lock held across the sample call: remove/remove_prefix cannot
  // complete (and the counter's owner cannot finish dying) mid-sample.
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = counters_.find(path);
  if (it == counters_.end()) return std::nullopt;
  counter_value v;
  v.value = it->second.fn();
  v.timestamp_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  return v;
}

std::vector<std::pair<std::string, counter_value>> registry::query_all(
    const std::string& prefix) const {
  // One shared-lock acquisition for the whole batch, held across the sample
  // calls (see the mutex_ comment in the header): concurrent with other
  // queries, a barrier against unregistration. One shared timestamp.
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const std::int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now().time_since_epoch())
                               .count();
  std::vector<std::pair<std::string, counter_value>> out;
  for (auto it = counters_.lower_bound(prefix);
       it != counters_.end() && it->first.rfind(prefix, 0) == 0; ++it)
    out.emplace_back(it->first, counter_value{it->second.fn(), now});
  return out;
}

double registry::value_or(const std::string& path, double def) const {
  const auto v = query(path);
  return v ? v->value : def;
}

std::vector<std::string> registry::list(const std::string& prefix) const {
  std::vector<std::string> out;
  std::shared_lock<std::shared_mutex> lock(mutex_);
  for (auto it = counters_.lower_bound(prefix);
       it != counters_.end() && it->first.rfind(prefix, 0) == 0; ++it)
    out.push_back(it->first);
  return out;
}

std::vector<std::pair<std::string, counter_kind>> registry::kinds_of_prefix(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, counter_kind>> out;
  std::shared_lock<std::shared_mutex> lock(mutex_);
  for (auto it = counters_.lower_bound(prefix);
       it != counters_.end() && it->first.rfind(prefix, 0) == 0; ++it)
    out.emplace_back(it->first, it->second.kind);
  return out;
}

std::optional<counter_kind> registry::kind_of(const std::string& path) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = counters_.find(path);
  if (it == counters_.end()) return std::nullopt;
  return it->second.kind;
}

std::string registry::describe(const std::string& path) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = counters_.find(path);
  return it == counters_.end() ? std::string{} : it->second.description;
}

void registry::clear() {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  counters_.clear();
  ++generation_;
}

}  // namespace gran::perf
