#include "perf/window.hpp"

#include <algorithm>
#include <chrono>
#include <map>

namespace gran::perf {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// "worker#12" -> 12, or -1 for any other instance selector.
int worker_of_instance(const std::string& instance) {
  constexpr const char* tag = "worker#";
  constexpr std::size_t tag_len = 7;
  if (instance.rfind(tag, 0) != 0 || instance.size() == tag_len) return -1;
  int w = 0;
  for (std::size_t i = tag_len; i < instance.size(); ++i) {
    const char c = instance[i];
    if (c < '0' || c > '9') return -1;
    w = w * 10 + (c - '0');
  }
  return w;
}

}  // namespace

const window_metric* window_snapshot::find(const std::string& path) const {
  const auto it = std::lower_bound(
      metrics.begin(), metrics.end(), path,
      [](const window_metric& m, const std::string& p) { return m.path < p; });
  return it != metrics.end() && it->path == path ? &*it : nullptr;
}

const window_histogram* window_snapshot::find_histogram(const std::string& name) const {
  const auto it = std::lower_bound(
      histograms.begin(), histograms.end(), name,
      [](const window_histogram& h, const std::string& n) { return h.name < n; });
  return it != histograms.end() && it->name == name ? &*it : nullptr;
}

double window_snapshot::value_or(const std::string& path, double def) const {
  const window_metric* m = find(path);
  return m != nullptr ? m->value : def;
}

double window_snapshot::delta_or(const std::string& path, double def) const {
  const window_metric* m = find(path);
  return m != nullptr ? m->delta : def;
}

double window_snapshot::rate_or(const std::string& path, double def) const {
  const window_metric* m = find(path);
  return m != nullptr ? m->rate_per_s : def;
}

window_aggregator::window_aggregator(window_options opt) : opt_(std::move(opt)) {
  if (opt_.prefixes.empty()) opt_.prefixes.push_back("/threads");
  capture_baseline();
}

void window_aggregator::capture_baseline() {
  window_start_ns_ = now_ns();
  prev_values_.clear();
  prev_hists_.clear();
  for (const auto& prefix : opt_.prefixes) {
    for (auto& [path, v] : registry::instance().query_all(prefix))
      prev_values_[path] = v.value;
    for (auto& [name, snap] : histogram_registry::instance().snap_all(prefix))
      prev_hists_[name] = snap;
  }
}

void window_aggregator::reset() {
  seq_ = 0;
  capture_baseline();
}

window_snapshot window_aggregator::tick() {
  window_snapshot w;
  w.seq = ++seq_;
  w.t_start_ns = window_start_ns_;

  // The counter set is re-resolved every tick (no frozen columns): kinds and
  // values each cost one registry lock per prefix.
  std::vector<std::pair<std::string, counter_value>> sampled;
  std::map<std::string, counter_kind> kinds;
  std::vector<std::pair<std::string, histogram_snapshot>> hists;
  for (const auto& prefix : opt_.prefixes) {
    auto part = registry::instance().query_all(prefix);
    sampled.insert(sampled.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
    for (auto& [path, kind] : registry::instance().kinds_of_prefix(prefix))
      kinds.emplace(path, kind);
    auto hpart = histogram_registry::instance().snap_all(prefix);
    hists.insert(hists.end(), std::make_move_iterator(hpart.begin()),
                 std::make_move_iterator(hpart.end()));
  }
  w.t_end_ns = now_ns();
  w.dt_s = static_cast<double>(w.t_end_ns - w.t_start_ns) / 1e9;
  const double dt = w.dt_s > 0 ? w.dt_s : 1e-9;

  w.metrics.reserve(sampled.size());
  for (auto& [path, v] : sampled) {
    window_metric m;
    m.kind = [&] {
      const auto it = kinds.find(path);
      return it != kinds.end() ? it->second : counter_kind::gauge;
    }();
    m.value = v.value;
    const auto prev = prev_values_.find(path);
    const double base = prev != prev_values_.end() ? prev->second : 0.0;
    if (m.kind == counter_kind::monotonic) {
      // A monotonic counter that went backwards was reset (new manager,
      // reset_counters): restart the delta from the new value.
      m.delta = v.value >= base ? v.value - base : v.value;
      m.rate_per_s = m.delta / dt;
    } else {
      m.delta = v.value - base;
      m.rate_per_s = 0;
    }
    m.path = std::move(path);
    w.metrics.push_back(std::move(m));
  }
  std::sort(w.metrics.begin(), w.metrics.end(),
            [](const window_metric& a, const window_metric& b) { return a.path < b.path; });

  w.histograms.reserve(hists.size());
  for (auto& [name, snap] : hists) {
    window_histogram h;
    h.cumulative = snap;
    const auto prev = prev_hists_.find(name);
    h.delta = prev != prev_hists_.end()
                  ? snap.snapshot_delta(prev->second, &h.reset_detected)
                  : snap;
    h.name = std::move(name);
    w.histograms.push_back(std::move(h));
  }
  std::sort(w.histograms.begin(), w.histograms.end(),
            [](const window_histogram& a, const window_histogram& b) {
              return a.name < b.name;
            });

  // Interval Eq. 1–3: the same definitions as the cumulative counters,
  // applied to this window's deltas.
  const double d_func = w.delta_or("/threads/time/overall", 0);
  const double d_exec = w.delta_or("/threads/time/cumulative", 0);
  w.idle_rate = d_func > 0 ? std::max(0.0, d_func - d_exec) / d_func : 0.0;
  w.tasks_delta =
      static_cast<std::uint64_t>(std::max(0.0, w.delta_or("/threads/count/cumulative", 0)));
  w.tasks_per_s = static_cast<double>(w.tasks_delta) / dt;

  if (const window_histogram* h = w.find_histogram("/threads/histogram/task-duration")) {
    w.task_duration_p50_ns = h->delta.percentile(50);
    w.task_duration_p95_ns = h->delta.percentile(95);
    w.task_duration_p99_ns = h->delta.percentile(99);
    w.task_duration_mean_ns = h->delta.mean();
  }
  if (const window_histogram* h = w.find_histogram("/threads/histogram/task-overhead")) {
    w.task_overhead_p50_ns = h->delta.percentile(50);
    w.task_overhead_p95_ns = h->delta.percentile(95);
    w.task_overhead_p99_ns = h->delta.percentile(99);
    w.task_overhead_mean_ns = h->delta.mean();
  }

  // Service-ingress signals, present only while a task_service is
  // registered (the /service prefix matches nothing otherwise).
  if (const window_metric* m = w.find("/service/count/submitted")) {
    w.has_service = true;
    const double d_submitted = m->delta;
    const double d_rejected = w.delta_or("/service/count/rejected", 0);
    w.accepted_per_s = w.rate_or("/service/count/accepted", 0);
    w.rejected_per_s = w.rate_or("/service/count/rejected", 0);
    w.completed_per_s = w.rate_or("/service/count/completed", 0);
    w.rejection_rate = d_submitted > 0 ? d_rejected / d_submitted : 0.0;
    w.service_backlog = w.value_or("/service/backlog", 0);
  }
  if (const window_histogram* h = w.find_histogram("/service/histogram/sojourn")) {
    w.has_service = true;
    w.sojourn_p50_ns = h->delta.percentile(50);
    w.sojourn_p95_ns = h->delta.percentile(95);
    w.sojourn_p99_ns = h->delta.percentile(99);
    w.sojourn_mean_ns = h->delta.mean();
    w.sojourn_count = h->delta.count;
  }
  if (const window_histogram* h =
          w.find_histogram("/service/histogram/queue-wait")) {
    w.has_service = true;
    w.queue_wait_p50_ns = h->delta.percentile(50);
    w.queue_wait_p95_ns = h->delta.percentile(95);
    w.queue_wait_p99_ns = h->delta.percentile(99);
    w.queue_wait_mean_ns = h->delta.mean();
    w.queue_wait_count = h->delta.count;
  }

  // PMU-plane signals (perf/pmu.hpp): /threads/pmu/mode reads 0 while the
  // plane is off, which keeps has_pmu (and the exporters' optional pmu
  // sections) gated without a dependency on the plane itself. The task-ipc
  // histogram stores milli-IPC; convert back to IPC here.
  w.pmu_mode = static_cast<int>(w.value_or("/threads/pmu/mode", 0));
  w.has_pmu = w.pmu_mode != 0;
  if (const window_histogram* h =
          w.find_histogram("/threads/histogram/task-ipc")) {
    w.ipc_p50 = h->delta.percentile(50) / 1000.0;
    w.ipc_p95 = h->delta.percentile(95) / 1000.0;
    w.ipc_p99 = h->delta.percentile(99) / 1000.0;
    w.ipc_mean = h->delta.mean() / 1000.0;
    w.ipc_samples = h->delta.count;
  }
  if (const window_histogram* h =
          w.find_histogram("/threads/histogram/task-instructions")) {
    w.instructions_p50 = h->delta.percentile(50);
    w.instructions_p95 = h->delta.percentile(95);
    w.instructions_p99 = h->delta.percentile(99);
    w.instructions_mean = h->delta.mean();
    w.instructions_samples = h->delta.count;
  }
  if (const window_histogram* h =
          w.find_histogram("/threads/histogram/task-llc-miss")) {
    w.llc_p50 = h->delta.percentile(50);
    w.llc_p95 = h->delta.percentile(95);
    w.llc_p99 = h->delta.percentile(99);
    w.llc_mean = h->delta.mean();
    w.llc_samples = h->delta.count;
  }

  // Per-worker rows from the instance counters.
  std::map<int, worker_window> by_worker;
  for (const auto& m : w.metrics) {
    const auto parsed = counter_path::parse(m.path);
    if (!parsed || parsed->instance.empty()) continue;
    const int wk = worker_of_instance(parsed->instance);
    if (wk < 0) continue;
    worker_window& row = by_worker[wk];
    row.worker = wk;
    if (parsed->name == "count/cumulative")
      row.tasks_per_s = m.rate_per_s;
    else if (parsed->name == "count/stolen")
      row.stolen_per_s = m.rate_per_s;
  }
  for (auto& [wk, row] : by_worker) {
    const std::string inst = "/threads{worker#" + std::to_string(wk) + "}";
    const double wd_func = w.delta_or(inst + "/time/overall", 0);
    const double wd_exec = w.delta_or(inst + "/time/cumulative", 0);
    row.idle_rate = wd_func > 0 ? std::max(0.0, wd_func - wd_exec) / wd_func : 0.0;
    if (const window_histogram* h = w.find_histogram(inst + "/histogram/task-duration")) {
      row.duration_p50_ns = h->delta.percentile(50);
      row.duration_p95_ns = h->delta.percentile(95);
      row.duration_p99_ns = h->delta.percentile(99);
      row.duration_samples = h->delta.count;
    }
    if (const window_histogram* h =
            w.find_histogram(inst + "/histogram/task-ipc")) {
      row.ipc_p50 = h->delta.percentile(50) / 1000.0;
      row.ipc_samples = h->delta.count;
    }
  }
  w.workers.reserve(by_worker.size());
  for (auto& [wk, row] : by_worker) w.workers.push_back(std::move(row));

  // This window's end is the next one's baseline.
  window_start_ns_ = w.t_end_ns;
  prev_values_.clear();
  for (const auto& m : w.metrics) prev_values_[m.path] = m.value;
  prev_hists_.clear();
  for (const auto& h : w.histograms) prev_hists_[h.name] = h.cumulative;

  return w;
}

}  // namespace gran::perf
