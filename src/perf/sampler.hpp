// Snapshot/interval sampling over the counter registry.
//
// The paper's metrics are computed over measurement intervals ("for dynamic
// measurements this metric can be calculated over any interval of interest",
// §II-A). A snapshot captures a set of counters at one instant; an interval
// is the difference of two snapshots, with correct semantics per counter
// kind (monotonic counters are differenced, gauges and rates take the end
// value).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "perf/counters.hpp"

namespace gran::perf {

class snapshot {
 public:
  // Samples every registered counter matching one of the prefixes
  // (default: everything).
  static snapshot capture(const std::vector<std::string>& prefixes = {"/"});

  // Samples an explicit list of paths (unknown paths are skipped).
  static snapshot capture_paths(const std::vector<std::string>& paths);

  bool has(const std::string& path) const { return values_.count(path) != 0; }
  double value(const std::string& path, double def = 0.0) const;
  std::int64_t timestamp_ns() const { return timestamp_ns_; }
  const std::map<std::string, double>& values() const { return values_; }

 private:
  std::map<std::string, double> values_;
  std::int64_t timestamp_ns_ = 0;
};

// Difference of two snapshots of the same counter set.
class interval {
 public:
  interval(const snapshot& begin, const snapshot& end);

  // Monotonic counters: end − begin. Gauges/rates: end value.
  double value(const std::string& path, double def = 0.0) const;
  // Raw end-minus-begin difference regardless of kind.
  double delta(const std::string& path, double def = 0.0) const;
  // Wall-clock span of the interval in nanoseconds.
  std::int64_t span_ns() const { return span_ns_; }

 private:
  std::map<std::string, double> deltas_;
  std::map<std::string, double> end_values_;
  std::int64_t span_ns_ = 0;
};

}  // namespace gran::perf
