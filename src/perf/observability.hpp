// One-stop wiring of the observability features (trace export + background
// counter sampling) for tools and benches.
//
// An observability_session is an RAII object created at the top of main():
// it enables tracing and/or starts the sampler according to CLI flags and
// environment knobs, and on destruction stops the sampler, dumps the time
// series, and exports the trace.
//
//   CLI flags                     env fallback        effect
//   --trace-out=PATH              GRAN_TRACE          Chrome/Perfetto JSON
//   --trace-bin=PATH              GRAN_TRACE_BIN      binary dump for
//                                                     gran_trace_report
//   --trace-buf=N                 GRAN_TRACE_BUF      ring capacity (events)
//   --sample-interval-us=N        GRAN_SAMPLE_US      sampler period; >0 on
//   --sample-out=PATH             GRAN_SAMPLE_OUT     .csv or .json series
//   --sample-set=P1,P2            GRAN_SAMPLE_SET     counter prefixes
//   --metrics-out=DEST            GRAN_METRICS        live JSONL window
//                                                     stream (file, FIFO, or
//                                                     tcp://host:port) —
//                                                     tools/gran_top tails it
//   --metrics-prom=PATH           GRAN_METRICS_PROM   Prometheus textfile,
//                                                     rewritten per window
//   --metrics-interval-us=N       GRAN_METRICS_US     window length
//   --flight-prefix=P             GRAN_FLIGHT         flight recorder on:
//                                                     stall/SIGUSR1 dumps
//                                                     P-<n>.bin + .txt
//   --stall-ns=N                  GRAN_STALL_NS       watchdog stuck-task
//                                                     threshold
//   --pmu=MODE                    GRAN_PMU            per-task hardware
//                                                     counters: off (default),
//                                                     1/on = probe hardware,
//                                                     sw/software = timers only
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "perf/sampler_thread.hpp"
#include "perf/telemetry.hpp"
#include "util/cli.hpp"

namespace gran::perf {

class observability_session {
 public:
  struct options {
    std::string trace_out;                  // Chrome JSON path; empty = none
    std::string trace_bin;                  // binary dump path; empty = none
    std::size_t trace_buf_events = 0;       // 0 = default / GRAN_TRACE_BUF
    std::uint64_t sample_interval_us = 0;   // 0 = sampler off
    std::string sample_out;                 // default gran_samples.csv
    std::vector<std::string> sample_prefixes{"/threads"};
    std::string metrics_out;                // JSONL stream; empty = off
    std::string metrics_prom;               // Prometheus textfile; empty = off
    std::int64_t metrics_interval_us = 0;   // 0 = default (100 ms)
    std::string flight_prefix;              // flight recorder; empty = off
    std::int64_t stall_ns = 0;              // 0 = default stuck threshold
    std::string pmu;                        // PMU plane spec; empty = leave as-is
  };

  // Environment-only defaults (GRAN_TRACE, GRAN_SAMPLE_US, ...).
  static options options_from_env();
  // CLI flags layered over `base` (typically options_from_env()).
  static options options_from_cli(const cli_args& args, options base);

  explicit observability_session(options opt);
  ~observability_session();  // calls finish()

  observability_session(const observability_session&) = delete;
  observability_session& operator=(const observability_session&) = delete;

  // Stops the sampler, dumps the series, exports the trace. Idempotent;
  // prints one status line per artifact written.
  void finish();

  bool tracing() const {
    return !opt_.trace_out.empty() || !opt_.trace_bin.empty();
  }
  bool sampling() const { return sampler_ != nullptr; }
  const sampler_thread* sampler() const { return sampler_.get(); }
  bool telemetry() const { return telemetry_ != nullptr; }
  telemetry_session* telemetry_ptr() { return telemetry_.get(); }

 private:
  options opt_;
  std::unique_ptr<sampler_thread> sampler_;
  std::unique_ptr<telemetry_session> telemetry_;
  bool finished_ = false;
};

}  // namespace gran::perf
