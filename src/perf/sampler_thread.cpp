#include "perf/sampler_thread.hpp"

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <ostream>

#include "perf/counters.hpp"

namespace gran::perf {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

sampler_thread::sampler_thread(sampler_options opt) : opt_(std::move(opt)) {
  if (opt_.interval_us == 0) opt_.interval_us = 1000;
  if (opt_.capacity == 0) opt_.capacity = 1;
  thread_ = std::thread([this] { run(); });
}

sampler_thread::~sampler_thread() { stop(); }

void sampler_thread::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopping_ && !thread_.joinable()) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void sampler_thread::run() {
  const auto interval = std::chrono::microseconds(opt_.interval_us);
  auto next = std::chrono::steady_clock::now() + interval;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mutex_);
      if (stop_cv_.wait_until(lock, next, [this] { return stopping_; })) break;
    }
    next += interval;
    sample_once();
    // If sampling fell behind (a slow counter), don't try to catch up with a
    // burst — slip the schedule instead.
    const auto now = std::chrono::steady_clock::now();
    if (next < now) next = now + interval;
  }
}

void sampler_thread::sample_once() {
  // Generation first, sampling second: if a registration slips in between,
  // the stored (stale) generation forces a re-resolve on the next tick, so
  // a late counter is never missed for more than one sample.
  const std::uint64_t gen = registry::instance().generation();

  // One registry lock acquisition per prefix per tick (query_all), then the
  // sample lambdas run unlocked.
  std::vector<std::pair<std::string, counter_value>> sampled;
  for (const auto& prefix : opt_.prefixes) {
    auto part = registry::instance().query_all(prefix);
    sampled.insert(sampled.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (gen != last_generation_) {
    // The counter set changed (or this is the first tick): append columns
    // for any new paths. Appending keeps every existing row's indices
    // valid; rows recorded before a column appeared are NaN-padded on
    // read. Removed counters keep their column and read NaN from now on.
    last_generation_ = gen;
    for (const auto& [path, v] : sampled)
      if (col_index_.try_emplace(path, columns_.size()).second)
        columns_.push_back(path);
  }

  row r;
  r.timestamp_ns = now_ns();
  r.values.assign(columns_.size(), std::numeric_limits<double>::quiet_NaN());
  // Counter sets are stable between generation bumps; align by position
  // with a map fallback for the off-position cases (counters vanishing or
  // joining mid-run).
  std::size_t hint = 0;
  for (const auto& [path, v] : sampled) {
    std::size_t col;
    if (hint < columns_.size() && columns_[hint] == path) {
      col = hint++;
    } else {
      const auto it = col_index_.find(path);
      if (it == col_index_.end()) continue;  // registered after the gen read
      col = it->second;
      hint = col + 1;
    }
    r.values[col] = v.value;
  }

  rows_.push_back(std::move(r));
  taken_.fetch_add(1, std::memory_order_relaxed);
  while (rows_.size() > opt_.capacity) {
    rows_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<std::string> sampler_thread::columns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return columns_;
}

std::vector<sampler_thread::row> sampler_thread::series() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<row> out{rows_.begin(), rows_.end()};
  // Rows recorded before a late column appeared are shorter than columns_;
  // pad so every row aligns with columns().
  for (row& r : out)
    r.values.resize(columns_.size(), std::numeric_limits<double>::quiet_NaN());
  return out;
}

void sampler_thread::dump_csv(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "time_ns";
  for (const auto& c : columns_) os << ',' << c;
  os << '\n';
  const std::int64_t t0 = rows_.empty() ? 0 : rows_.front().timestamp_ns;
  for (const auto& r : rows_) {
    os << (r.timestamp_ns - t0);
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const double v = c < r.values.size()
                           ? r.values[c]
                           : std::numeric_limits<double>::quiet_NaN();
      os << ',';
      if (std::isnan(v))
        os << "nan";
      else
        os << v;
    }
    os << '\n';
  }
}

void sampler_thread::dump_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\n  \"columns\": [\"time_ns\"";
  for (const auto& c : columns_) os << ", \"" << c << "\"";
  os << "],\n  \"rows\": [\n";
  const std::int64_t t0 = rows_.empty() ? 0 : rows_.front().timestamp_ns;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto& r = rows_[i];
    os << "    [" << (r.timestamp_ns - t0);
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const double v = c < r.values.size()
                           ? r.values[c]
                           : std::numeric_limits<double>::quiet_NaN();
      if (std::isnan(v))
        os << ", null";
      else
        os << ", " << v;
    }
    os << ']' << (i + 1 < rows_.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

bool sampler_thread::dump_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "[gran] sampler: cannot open " << path << "\n";
    return false;
  }
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0)
    dump_json(f);
  else
    dump_csv(f);
  return static_cast<bool>(f);
}

}  // namespace gran::perf
