#include "perf/sampler_thread.hpp"

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <ostream>

#include "perf/counters.hpp"

namespace gran::perf {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

sampler_thread::sampler_thread(sampler_options opt) : opt_(std::move(opt)) {
  if (opt_.interval_us == 0) opt_.interval_us = 1000;
  if (opt_.capacity == 0) opt_.capacity = 1;
  thread_ = std::thread([this] { run(); });
}

sampler_thread::~sampler_thread() { stop(); }

void sampler_thread::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopping_ && !thread_.joinable()) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void sampler_thread::run() {
  const auto interval = std::chrono::microseconds(opt_.interval_us);
  auto next = std::chrono::steady_clock::now() + interval;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mutex_);
      if (stop_cv_.wait_until(lock, next, [this] { return stopping_; })) break;
    }
    next += interval;
    sample_once();
    // If sampling fell behind (a slow counter), don't try to catch up with a
    // burst — slip the schedule instead.
    const auto now = std::chrono::steady_clock::now();
    if (next < now) next = now + interval;
  }
}

void sampler_thread::sample_once() {
  // One registry lock acquisition per prefix per tick (query_all), then the
  // sample lambdas run unlocked.
  std::vector<std::pair<std::string, counter_value>> sampled;
  for (const auto& prefix : opt_.prefixes) {
    auto part = registry::instance().query_all(prefix);
    sampled.insert(sampled.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (columns_.empty()) {
    columns_.reserve(sampled.size());
    for (const auto& [path, v] : sampled) columns_.push_back(path);
  }

  row r;
  r.timestamp_ns = now_ns();
  r.values.assign(columns_.size(), std::numeric_limits<double>::quiet_NaN());
  // Counter sets are stable in practice; align by position with a fallback
  // search for the (rare) case of counters vanishing mid-run.
  std::size_t hint = 0;
  for (const auto& [path, v] : sampled) {
    std::size_t col = columns_.size();
    if (hint < columns_.size() && columns_[hint] == path) {
      col = hint++;
    } else {
      for (std::size_t i = 0; i < columns_.size(); ++i)
        if (columns_[i] == path) {
          col = i;
          hint = i + 1;
          break;
        }
    }
    if (col < columns_.size()) r.values[col] = v.value;
  }

  rows_.push_back(std::move(r));
  taken_.fetch_add(1, std::memory_order_relaxed);
  while (rows_.size() > opt_.capacity) {
    rows_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<std::string> sampler_thread::columns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return columns_;
}

std::vector<sampler_thread::row> sampler_thread::series() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {rows_.begin(), rows_.end()};
}

void sampler_thread::dump_csv(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "time_ns";
  for (const auto& c : columns_) os << ',' << c;
  os << '\n';
  const std::int64_t t0 = rows_.empty() ? 0 : rows_.front().timestamp_ns;
  for (const auto& r : rows_) {
    os << (r.timestamp_ns - t0);
    for (const double v : r.values) {
      os << ',';
      if (std::isnan(v))
        os << "nan";
      else
        os << v;
    }
    os << '\n';
  }
}

void sampler_thread::dump_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\n  \"columns\": [\"time_ns\"";
  for (const auto& c : columns_) os << ", \"" << c << "\"";
  os << "],\n  \"rows\": [\n";
  const std::int64_t t0 = rows_.empty() ? 0 : rows_.front().timestamp_ns;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto& r = rows_[i];
    os << "    [" << (r.timestamp_ns - t0);
    for (const double v : r.values) {
      if (std::isnan(v))
        os << ", null";
      else
        os << ", " << v;
    }
    os << ']' << (i + 1 < rows_.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

bool sampler_thread::dump_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "[gran] sampler: cannot open " << path << "\n";
    return false;
  }
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0)
    dump_json(f);
  else
    dump_csv(f);
  return static_cast<bool>(f);
}

}  // namespace gran::perf
