// Windowed metric aggregation: the live-telemetry view of the counter
// registry and the log2 histograms.
//
// The cumulative counters answer "what happened since start"; a long-running
// service needs "what happened in the last interval". A window_aggregator
// snapshots the registry (and the registered histogram sources) on every
// tick() and reports, per window:
//   * delta and rate for every monotonic counter (reset-aware: a counter
//     that went backwards — manager restart, reset_counters() — restarts
//     its delta from the new value instead of going negative);
//   * end-of-window values for gauges and rates;
//   * exact interval percentiles (p50/p95/p99) of task duration and task
//     overhead via mergeable histogram deltas (histogram_snapshot::
//     snapshot_delta) — not approximations from cumulative state;
//   * interval Eq. 1 idle-rate recomputed from the time-counter deltas;
//   * a per-worker breakdown (tasks/s, interval idle-rate, steal rate,
//     duration percentiles) assembled from the per-worker counter
//     instances.
//
// tick() is cheap enough to run from a background thread at 10–100 ms
// periods (one registry lock per prefix, sample lambdas unlocked); the
// streaming exporter (perf/exporter.hpp) serializes the snapshots.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "perf/counters.hpp"
#include "perf/histogram.hpp"

namespace gran::perf {

struct window_options {
  // Counter-path prefixes included in the window (registry + histogram
  // sources). Unlike the sampler's frozen column set, the set is re-resolved
  // every tick, so late-registered counters join automatically. /service is
  // included by default so a task_service (service/service.hpp) surfaces in
  // the stream the moment it registers; when none exists the prefix simply
  // matches nothing.
  std::vector<std::string> prefixes{"/threads", "/service"};
};

struct window_metric {
  std::string path;
  counter_kind kind = counter_kind::gauge;
  double value = 0;       // at window end (cumulative for monotonic counters)
  double delta = 0;       // change across the window (monotonic: reset-aware)
  double rate_per_s = 0;  // delta / dt, monotonic counters only
};

struct window_histogram {
  std::string name;
  histogram_snapshot cumulative;  // at window end
  histogram_snapshot delta;       // samples recorded inside this window
  bool reset_detected = false;
};

// Per-worker interval row, derived from the /threads{worker#N}/... counter
// instances and per-worker histogram sources. heartbeat/running fields are
// filled by the telemetry session from the heartbeat board (the aggregator
// itself reads only registries).
struct worker_window {
  int worker = -1;
  double tasks_per_s = 0;
  double idle_rate = 0;        // interval Eq. 1 from this worker's time deltas
  double stolen_per_s = 0;
  double duration_p50_ns = 0;
  double duration_p95_ns = 0;
  double duration_p99_ns = 0;
  std::uint64_t duration_samples = 0;  // histogram delta count
  double heartbeat_age_ns = -1;        // -1 = unmonitored
  std::uint64_t running_task = 0;      // 0 = no phase in flight
  double running_ns = 0;               // age of the in-flight phase
  // Interval IPC from this worker's task-ipc histogram delta; samples == 0
  // when the PMU plane is off or degraded to software mode.
  double ipc_p50 = 0;
  std::uint64_t ipc_samples = 0;
};

struct window_snapshot {
  std::uint64_t seq = 0;          // window index, 1-based
  std::int64_t t_start_ns = 0;    // steady_clock, absolute
  std::int64_t t_end_ns = 0;
  double dt_s = 0;

  std::vector<window_metric> metrics;        // sorted by path
  std::vector<window_histogram> histograms;  // sorted by name

  // Interval Eq. 1–3 signals (aggregate over workers).
  double idle_rate = 0;          // (Δt_func − Δt_exec) / Δt_func
  std::uint64_t tasks_delta = 0; // tasks completed inside the window
  double tasks_per_s = 0;
  double task_duration_p50_ns = 0, task_duration_p95_ns = 0,
         task_duration_p99_ns = 0, task_duration_mean_ns = 0;
  double task_overhead_p50_ns = 0, task_overhead_p95_ns = 0,
         task_overhead_p99_ns = 0, task_overhead_mean_ns = 0;

  // Service-ingress interval signals (service/service.hpp). Populated only
  // while a task_service has its /service counters registered; has_service
  // gates the exporters' optional service section.
  bool has_service = false;
  double sojourn_p50_ns = 0, sojourn_p95_ns = 0, sojourn_p99_ns = 0,
         sojourn_mean_ns = 0;
  std::uint64_t sojourn_count = 0;       // sojourn samples inside the window
  // Interval queue-wait percentiles (admission -> first execution, the
  // in-queue share of sojourn) from /service/histogram/queue-wait deltas.
  double queue_wait_p50_ns = 0, queue_wait_p95_ns = 0, queue_wait_p99_ns = 0,
         queue_wait_mean_ns = 0;
  std::uint64_t queue_wait_count = 0;
  double accepted_per_s = 0, rejected_per_s = 0, completed_per_s = 0;
  double rejection_rate = 0;             // Δrejected / Δsubmitted, 0 when idle
  double service_backlog = 0;            // gauge at window end

  // PMU-plane interval signals (perf/pmu.hpp). has_pmu is true while the
  // plane is enabled (pmu_mode != off); in software mode the IPC /
  // instructions / LLC distributions record nothing, so their sample
  // counts are 0 while mode still reports the degradation.
  bool has_pmu = false;
  int pmu_mode = 0;              // 0 off, 1 full, 2 reduced, 3 minimal, 4 sw
  double ipc_p50 = 0, ipc_p95 = 0, ipc_p99 = 0, ipc_mean = 0;  // IPC (not milli)
  std::uint64_t ipc_samples = 0;
  double instructions_p50 = 0, instructions_p95 = 0, instructions_p99 = 0,
         instructions_mean = 0;  // per phase
  std::uint64_t instructions_samples = 0;
  double llc_p50 = 0, llc_p95 = 0, llc_p99 = 0, llc_mean = 0;  // misses/phase
  std::uint64_t llc_samples = 0;

  std::vector<worker_window> workers;  // sorted by worker index

  // Binary-search lookups (metrics/histograms are sorted).
  const window_metric* find(const std::string& path) const;
  const window_histogram* find_histogram(const std::string& name) const;
  double value_or(const std::string& path, double def) const;
  double delta_or(const std::string& path, double def) const;
  double rate_or(const std::string& path, double def) const;
};

class window_aggregator {
 public:
  // Captures the baseline immediately: the first tick() is a proper window
  // starting at construction time.
  explicit window_aggregator(window_options opt = {});

  // Closes the current window (baseline .. now) and opens the next one.
  window_snapshot tick();

  // Drops all baselines and restarts window numbering (measurement-region
  // boundaries).
  void reset();

 private:
  void capture_baseline();

  window_options opt_;
  std::uint64_t seq_ = 0;
  std::int64_t window_start_ns_ = 0;
  std::unordered_map<std::string, double> prev_values_;
  std::unordered_map<std::string, histogram_snapshot> prev_hists_;
};

}  // namespace gran::perf
