#include "perf/watchdog.hpp"

#include <chrono>
#include <cstdio>

#include "perf/heartbeat.hpp"
#include "util/timer.hpp"

namespace gran::perf {

namespace {

std::int64_t now_steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string format_ms(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f ms", ns / 1e6);
  return buf;
}

}  // namespace

const char* to_string(stall_kind kind) {
  switch (kind) {
    case stall_kind::stuck_task: return "stuck-task";
    case stall_kind::starved_backlogged: return "starved-backlogged";
    case stall_kind::flatline: return "flatline";
  }
  return "?";
}

stall_stats& stall_stats::instance() {
  static stall_stats s;
  return s;
}

void stall_stats::reset() noexcept {
  stuck.store(0, std::memory_order_relaxed);
  starved.store(0, std::memory_order_relaxed);
  flatline.store(0, std::memory_order_relaxed);
}

stall_watchdog::stall_watchdog(watchdog_options opt) : opt_(opt) {
  reported_phase_.assign(heartbeat_board::capacity, 0);
}

void stall_watchdog::reset() {
  reported_phase_.assign(heartbeat_board::capacity, 0);
  starved_run_ = 0;
  flatline_run_ = 0;
  starved_open_ = false;
  flatline_open_ = false;
}

std::vector<stall_incident> stall_watchdog::check(const window_snapshot& w) {
  std::vector<stall_incident> out;
  heartbeat_board& board = heartbeat_board::instance();
  const int workers = board.active_workers();
  const std::int64_t now = now_steady_ns();
  const std::uint64_t now_ticks = tsc_clock::now();

  // --- stuck task: one phase executing longer than the threshold ---------
  bool any_phase_in_flight = false;
  for (int wk = 0; wk < workers; ++wk) {
    const heartbeat_slot* slot = board.slot(wk);
    if (slot == nullptr) break;
    const std::uint64_t start =
        slot->phase_start_ticks.load(std::memory_order_relaxed);
    if (start == 0) {
      reported_phase_[static_cast<std::size_t>(wk)] = 0;  // phase ended; rearm
      continue;
    }
    any_phase_in_flight = true;
    if (now_ticks <= start) continue;  // racy read across a phase boundary
    const double age_ns =
        static_cast<double>(tsc_clock::to_ns(now_ticks - start));
    if (age_ns < static_cast<double>(opt_.stuck_ns)) continue;
    if (reported_phase_[static_cast<std::size_t>(wk)] == start) continue;
    reported_phase_[static_cast<std::size_t>(wk)] = start;
    stall_stats::instance().stuck.fetch_add(1, std::memory_order_relaxed);

    stall_incident inc;
    inc.kind = stall_kind::stuck_task;
    inc.detected_at_ns = now;
    inc.worker = wk;
    inc.task_id = slot->task_id.load(std::memory_order_relaxed);
    inc.age_ns = age_ns;
    inc.detail = "task " + std::to_string(inc.task_id) + " executing on worker " +
                 std::to_string(wk) + " for " + format_ms(age_ns) +
                 " (threshold " + format_ms(static_cast<double>(opt_.stuck_ns)) +
                 ")";
    out.push_back(std::move(inc));
  }

  // --- starved-but-backlogged: work queued, workers starving, no flow ----
  const double starving = w.value_or("/threads/count/instantaneous/starving", 0);
  const double queued = w.value_or("/threads/count/instantaneous/queued", 0);
  if (starving > 0 && queued > 0 && w.tasks_delta == 0) {
    ++starved_run_;
    if (starved_run_ >= opt_.starved_ticks && !starved_open_) {
      starved_open_ = true;
      stall_stats::instance().starved.fetch_add(1, std::memory_order_relaxed);
      stall_incident inc;
      inc.kind = stall_kind::starved_backlogged;
      inc.detected_at_ns = now;
      inc.age_ns = static_cast<double>(starved_run_) * w.dt_s * 1e9;
      inc.detail = std::to_string(static_cast<long>(starving)) +
                   " worker(s) starving with " +
                   std::to_string(static_cast<long>(queued)) +
                   " task(s) queued and zero completions for " +
                   std::to_string(starved_run_) + " windows";
      out.push_back(std::move(inc));
    }
  } else {
    starved_run_ = 0;
    starved_open_ = false;
  }

  // --- flatline: tasks alive, nothing executing, nothing in flight -------
  // `any_phase_in_flight` guards against flagging one long-running legit
  // task (that is stuck_task's job, with its own larger threshold).
  const double alive = w.value_or("/threads/count/instantaneous/alive", 0);
  const double phases_delta = w.delta_or("/threads/count/cumulative-phases", 0);
  if (alive > 0 && w.tasks_delta == 0 && phases_delta == 0 && !any_phase_in_flight) {
    ++flatline_run_;
    if (flatline_run_ >= opt_.flatline_ticks && !flatline_open_) {
      flatline_open_ = true;
      stall_stats::instance().flatline.fetch_add(1, std::memory_order_relaxed);
      stall_incident inc;
      inc.kind = stall_kind::flatline;
      inc.detected_at_ns = now;
      inc.age_ns = static_cast<double>(flatline_run_) * w.dt_s * 1e9;
      inc.detail = std::to_string(static_cast<long>(alive)) +
                   " task(s) alive but no phase started or completed for " +
                   std::to_string(flatline_run_) +
                   " windows (suspected deadlock)";
      out.push_back(std::move(inc));
    }
  } else {
    flatline_run_ = 0;
    flatline_open_ = false;
  }

  return out;
}

}  // namespace gran::perf
