#include "perf/report.hpp"

#include <ostream>

#include "util/table.hpp"

namespace gran::perf {

void dump_csv(std::ostream& os, const std::string& prefix) {
  os << "counter,value\n";
  for (const auto& path : registry::instance().list(prefix)) {
    const auto v = registry::instance().query(path);
    if (v) os << path << ',' << format_number(v->value, 6) << '\n';
  }
}

void dump_table(std::ostream& os, const std::string& prefix) {
  table_writer table({"counter", "value", "description"});
  for (const auto& path : registry::instance().list(prefix)) {
    const auto v = registry::instance().query(path);
    table.add_row({path, v ? format_number(v->value, 2) : "?",
                   registry::instance().describe(path)});
  }
  table.print(os);
}

void dump_interval_csv(std::ostream& os, const interval& delta,
                       const snapshot& reference) {
  os << "counter,value\n";
  for (const auto& [path, unused] : reference.values()) {
    (void)unused;
    os << path << ',' << format_number(delta.value(path), 6) << '\n';
  }
}

}  // namespace gran::perf
