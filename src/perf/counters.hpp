// First-class named performance counters, mirroring HPX's monitoring system
// (paper §I-B "HPX Performance Monitoring System").
//
// Counters are registered under slash-separated symbolic names with an
// optional instance selector, e.g.
//     /threads/count/cumulative            (aggregate over all workers)
//     /threads{worker#3}/count/cumulative  (one worker)
// and are queryable at runtime by the application or the runtime itself —
// that introspection capability is what the paper's adaptive-granularity
// proposal builds on.
//
// The runtime registers these names (thread_manager::register_counters):
//     /threads/count/cumulative            tasks executed (nt)
//     /threads/count/cumulative-phases     thread phases executed
//     /threads/time/average                average task duration, ns (Eq. 2)
//     /threads/time/average-overhead       average task overhead, ns (Eq. 3)
//     /threads/time/average-phase          average phase duration, ns
//     /threads/time/average-phase-overhead average phase overhead, ns
//     /threads/time/cumulative             Σ t_exec, ns
//     /threads/time/cumulative-overhead    Σ(t_func − t_exec), ns
//     /threads/idle-rate                   (Σt_func − Σt_exec)/Σt_func (Eq. 1)
//     /threads/count/pending-accesses      scheduler looks into pending queues
//     /threads/count/pending-misses        ... that found nothing
//     /threads/count/staged-accesses       same for staged queues
//     /threads/count/staged-misses
//     /threads/count/stolen                tasks obtained from another worker
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <shared_mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace gran::perf {

// Parsed counter name: "/object{instance}/sub/name".
struct counter_path {
  std::string object;    // "threads"
  std::string instance;  // "" = aggregate, "worker#3", "total", ...
  std::string name;      // "count/cumulative"

  // Parses a path string; std::nullopt on malformed input.
  static std::optional<counter_path> parse(const std::string& text);
  std::string str() const;
};

enum class counter_kind : std::uint8_t {
  monotonic,  // non-decreasing raw count (events, nanoseconds)
  gauge,      // instantaneous value (queue length)
  rate,       // derived ratio in [0,1] or similar (idle-rate)
};

struct counter_value {
  double value = 0.0;
  std::int64_t timestamp_ns = 0;  // steady_clock when sampled
};

// Process-wide counter registry. Registration happens at runtime startup
// (and from tests); queries are thread-safe and may be issued from inside
// tasks. Sample functions must therefore be non-blocking.
class registry {
 public:
  using sample_fn = std::function<double()>;

  static registry& instance();

  // Registers a counter; replaces any previous registration of `path`.
  void add(const std::string& path, counter_kind kind, std::string description,
           sample_fn fn);

  // Removes one counter; returns false if it was not registered.
  bool remove(const std::string& path);

  // Removes every counter whose path starts with `prefix`.
  void remove_prefix(const std::string& prefix);

  // Samples a counter. std::nullopt for unknown paths.
  std::optional<counter_value> query(const std::string& path) const;

  // Samples every counter whose path starts with `prefix`, taking the
  // registry lock exactly once for the whole batch (the per-path query()
  // takes it per counter, which is what made high-frequency sampling
  // contend with registration). The shared lock is held across the sample
  // calls — see the mutex_ comment; all values share one timestamp.
  // Results are sorted by path.
  std::vector<std::pair<std::string, counter_value>> query_all(
      const std::string& prefix) const;

  // Raw value convenience; `def` for unknown paths.
  double value_or(const std::string& path, double def) const;

  // Monotonically increasing whenever the registered counter *set* changes
  // (add/remove/remove_prefix/clear). Consumers that cache a resolved
  // counter list (sampler_thread, window_aggregator) compare generations to
  // notice late registrations instead of freezing their column set.
  std::uint64_t generation() const;

  // All registered paths starting with `prefix`, sorted.
  std::vector<std::string> list(const std::string& prefix = "/") const;

  // (path, kind) for every counter under `prefix`, sorted by path, one lock
  // acquisition for the batch (kind_of per path would lock per counter).
  std::vector<std::pair<std::string, counter_kind>> kinds_of_prefix(
      const std::string& prefix) const;

  std::optional<counter_kind> kind_of(const std::string& path) const;
  std::string describe(const std::string& path) const;

  // Drops everything (tests).
  void clear();

 private:
  registry() = default;

  struct entry {
    counter_kind kind;
    std::string description;
    sample_fn fn;
  };

  // Reader-writer: queries hold a shared lock for the WHOLE batch, including
  // the sample-fn calls, so remove/remove_prefix (exclusive) cannot return
  // while a sampler still runs a fn about to lose its captured object —
  // ~thread_manager relies on this to make unregister_counters() a barrier
  // against the background telemetry/sampler threads. Samplers stay
  // concurrent with each other; registration is the only writer and is rare.
  // Sample fns must not call back into the registry's mutating API.
  mutable std::shared_mutex mutex_;
  std::map<std::string, entry> counters_;
  std::uint64_t generation_ = 0;  // guarded by mutex_
};

}  // namespace gran::perf
