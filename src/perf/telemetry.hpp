// Live telemetry session: the background thread that closes a metrics
// window every interval and fans it out —
//
//   window_aggregator ──► JSONL stream (file / FIFO / tcp://host:port)
//        │                Prometheus textfile (atomic rewrite per window)
//        │
//        └─► stall_watchdog ──► incident JSONL lines
//                               flight-recorder dump (GRANTRC1 + report)
//
// The flight recorder also fires on SIGUSR1 ("what is this process doing
// right now?"): the live trace rings are snapshotted (trace_ring::
// snapshot_live), serialized to <flight_prefix>-<n>.bin, and summarized
// through the offline analyzer into <flight_prefix>-<n>.txt — without
// stopping the workers.
//
// Sessions are owned by perf::observability_session (--metrics-out,
// --metrics-prom, --metrics-interval-us, --flight-prefix, --stall-ns and
// the GRAN_METRICS* / GRAN_FLIGHT / GRAN_STALL_NS environment knobs), so
// every bench and tool grows the capability without code changes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "perf/exporter.hpp"
#include "perf/watchdog.hpp"
#include "perf/window.hpp"

namespace gran::perf {

struct telemetry_options {
  // JSONL destination: a file path (appended), a FIFO, or "tcp://host:port".
  // Empty = no stream.
  std::string jsonl_out;
  // Prometheus exposition file, atomically rewritten each window. Empty =
  // none.
  std::string prom_out;
  std::int64_t interval_us = 100'000;  // window length
  // Flight-recorder output prefix: incidents and SIGUSR1 write
  // <prefix>-<n>.bin / .txt. Empty = flight recorder off. A non-empty
  // prefix force-enables tracing (the rings are the recorder's memory), so
  // set it BEFORE constructing the thread manager.
  std::string flight_prefix;
  int max_flights = 8;  // cap automatic dumps per session
  bool install_signal_handler = true;  // SIGUSR1 triggers a flight dump

  watchdog_options watchdog;
  window_options window;

  bool enabled() const {
    return !jsonl_out.empty() || !prom_out.empty() || !flight_prefix.empty();
  }
};

// Starts a process-lifetime telemetry session from the GRAN_METRICS /
// GRAN_METRICS_PROM / GRAN_METRICS_US / GRAN_FLIGHT / GRAN_STALL_NS
// environment variables, the same way GRAN_TRACE arms the tracer: the
// thread manager calls this from its constructor, so ANY gran program —
// not just the benches and tools that own an observability_session —
// honors the env knobs. No-op when the variables are unset, when a
// telemetry_session already exists (observability_session constructs its
// session before the first manager, and wins), and on every call after the
// first.
void telemetry_autostart_from_env();

class telemetry_session {
 public:
  explicit telemetry_session(telemetry_options opt);
  ~telemetry_session();

  telemetry_session(const telemetry_session&) = delete;
  telemetry_session& operator=(const telemetry_session&) = delete;

  // Closes one final window, stops the thread, closes the sinks. Idempotent.
  void stop();

  // Captures a flight dump now (also invoked by the watchdog and SIGUSR1).
  // Returns the .bin path, or "" when the recorder is off / the dump failed.
  std::string capture_flight(const std::string& reason);

  const telemetry_options& options() const noexcept { return opt_; }
  std::uint64_t windows_exported() const noexcept {
    return windows_.load(std::memory_order_relaxed);
  }
  std::uint64_t incidents_raised() const noexcept {
    return incidents_.load(std::memory_order_relaxed);
  }
  std::uint64_t flights_captured() const noexcept {
    return flights_.load(std::memory_order_relaxed);
  }
  std::string last_flight_path() const;

 private:
  void run();
  void close_window();
  void handle_incidents(const window_snapshot& w);
  // Fills the heartbeat/running columns of the per-worker rows (the
  // aggregator reads only registries; liveness comes from the board).
  static void fill_heartbeats(window_snapshot& w);

  telemetry_options opt_;
  window_aggregator aggregator_;
  stall_watchdog watchdog_;
  metrics_sink jsonl_;

  std::atomic<std::uint64_t> windows_{0};
  std::atomic<std::uint64_t> incidents_{0};
  std::atomic<std::uint64_t> flights_{0};
  mutable std::mutex flight_mutex_;  // guards last_flight_path_
  std::string last_flight_path_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  bool signal_installed_ = false;
  std::thread thread_;
};

}  // namespace gran::perf
