#include "perf/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>
#include <unordered_map>

namespace gran::perf {

namespace {

// A closed phase slice on some worker, used both for per-task exec totals
// and for provenance lookup (which task was running on worker w at time t).
struct phase_interval {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t task = 0;
};

// Raw per-task accumulation in ticks, converted to ns at the end.
struct task_state {
  std::uint64_t id = 0;
  const char* name = nullptr;
  std::vector<phase_interval> phases;  // closed slices, in begin order
  std::uint64_t exec_ticks = 0;
  std::uint64_t suspend_ticks = 0;
  bool has_enqueue = false;
  std::uint64_t enqueue_ticks = 0;
  std::uint16_t spawn_worker = 0;
  bool has_begin = false;
  std::uint64_t first_begin = 0;
  std::uint16_t first_worker = 0;
  bool has_end = false;           // at least one closed phase
  std::uint64_t last_end = 0;
  bool complete = false;          // task_end retained
  bool has_steal = false;
  std::uint64_t steal_ticks = 0;  // steal observed before the first run
  bool has_graph = false;
  std::uint32_t graph_step = 0;
  std::uint32_t graph_point = 0;
  bool split_child = false;        // spawned as the back half of a split
  std::uint64_t split_point = 0;   // first index of the inherited range
  // Hardware-counter sums from task_pmu records (kernel vs scheduler-gap).
  bool has_pmu = false;
  std::uint64_t pmu_cycles = 0;
  std::uint64_t pmu_instructions = 0;
  std::uint64_t pmu_llc = 0;
  std::uint64_t pmu_sched_cycles = 0;
  std::uint64_t pmu_sched_instructions = 0;
  std::uint64_t pmu_sched_llc = 0;
  // Critical-path DP state.
  bool has_parent = false;
  std::uint64_t parent_id = 0;
  double start_len = 0;  // exec-weighted chain length up to this task's spawn
  double end_len = 0;    // start_len + own exec
  bool dp_done = false;
  bool on_critical_path = false;
};

// Per-worker reconstruction state while scanning the merged stream.
struct worker_state {
  std::uint64_t first = ~std::uint64_t{0};
  std::uint64_t last = 0;
  std::uint64_t busy_ticks = 0;
  std::uint64_t parked_ticks = 0;
  bool parked = false;
  std::uint64_t park_begin = 0;
  std::uint64_t completed = 0;
  std::uint64_t spawned = 0;
  std::uint64_t steals = 0;
  std::uint64_t dropped = 0;
  bool open = false;  // a phase is running
  std::uint64_t open_begin = 0;
  std::uint64_t open_task = 0;
  // A task_split was seen and its child's task_enqueue has not arrived yet.
  // The runner emits the pair back-to-back on the parent's lane
  // (thread_manager::record_split immediately precedes the spawn), so the
  // next enqueue on this lane is the split child.
  bool split_pending = false;
  std::uint64_t split_parent = 0;
  std::uint64_t split_point = 0;
  std::uint64_t splits = 0;
  // A phase just ended and its kernel task_pmu record has not arrived yet.
  // run_phase emits the pair back-to-back at the same timestamp on one
  // lane, so like split_pending this adjacency survives wraparound: a
  // stale flag is simply overwritten by the next end event, and the
  // open-phase branch takes precedence after a begin.
  bool pmu_pending = false;
  std::uint64_t pmu_last_task = 0;
  std::vector<phase_interval> done;  // closed phases, naturally begin-sorted
};

// Sum of `t`'s executed ticks that happened strictly before `cut` — the
// share of a parent's work a spawned child can inherit on the chain.
double exec_before(const task_state& t, std::uint64_t cut) {
  double total = 0;
  for (const auto& p : t.phases) {
    if (p.begin >= cut) break;
    total += static_cast<double>(std::min(p.end, cut) - p.begin);
  }
  return total;
}

// The task whose closed phase on this worker covers `ticks`, if any.
// `done` is begin-sorted with disjoint intervals (phases on one worker are
// sequential), so one binary search suffices.
const phase_interval* covering_phase(const std::vector<phase_interval>& done,
                                     std::uint64_t ticks) {
  auto it = std::upper_bound(
      done.begin(), done.end(), ticks,
      [](std::uint64_t t, const phase_interval& p) { return t < p.begin; });
  if (it == done.begin()) return nullptr;
  --it;
  return ticks <= it->end ? &*it : nullptr;
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// Time-weighted sweep over +1/-1 level changes: returns {avg, max} of the
// level across [t0, t1]. `deltas` need not be sorted on entry.
struct sweep_stats {
  double avg = 0;
  std::uint64_t max = 0;
};
sweep_stats sweep_levels(std::vector<std::pair<std::uint64_t, int>>& deltas,
                         std::uint64_t t0, std::uint64_t t1) {
  sweep_stats out;
  if (deltas.empty() || t1 <= t0) return out;
  // At equal timestamps apply -1 before +1 so back-to-back phases on one
  // worker don't read as a level-2 spike.
  std::sort(deltas.begin(), deltas.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first : a.second < b.second;
            });
  double area = 0;
  long level = 0;
  std::uint64_t prev = t0;
  for (const auto& [ticks, delta] : deltas) {
    const std::uint64_t t = std::clamp(ticks, t0, t1);
    area += static_cast<double>(level) * static_cast<double>(t - prev);
    prev = t;
    level += delta;
    if (level > 0) out.max = std::max(out.max, static_cast<std::uint64_t>(level));
  }
  area += static_cast<double>(level) * static_cast<double>(t1 - prev);
  out.avg = area / static_cast<double>(t1 - t0);
  return out;
}

}  // namespace

analysis_result analyze_trace(const trace_dump& dump, const analysis_options& opt) {
  analysis_result r;
  r.ns_per_tick = dump.ns_per_tick;

  // Merge all lanes into one time-ordered stream. Lanes are individually
  // ordered but mutually arbitrary; stable sort keeps each lane's internal
  // order for tied timestamps, which the begin/end pairing relies on.
  std::vector<trace_event> ev;
  ev.reserve(static_cast<std::size_t>(dump.total_events()));
  std::map<std::uint16_t, worker_state> ws;  // ordered for stable report rows
  for (const auto& lane : dump.lanes) {
    ws[lane.worker].dropped += lane.dropped;
    ev.insert(ev.end(), lane.events.begin(), lane.events.end());
  }
  r.total_events = ev.size();
  r.total_dropped = dump.total_dropped();
  if (ev.empty()) {
    r.error = "trace contains no events (was tracing enabled before the "
              "thread manager was constructed?)";
    return r;
  }
  std::stable_sort(ev.begin(), ev.end(),
                   [](const trace_event& a, const trace_event& b) {
                     return a.ticks < b.ticks;
                   });
  const std::uint64_t wall_begin = ev.front().ticks;
  const std::uint64_t wall_end = ev.back().ticks;

  std::vector<task_state> tasks;
  std::unordered_map<std::uint64_t, std::size_t> task_index;
  const auto task_of = [&](std::uint64_t id) -> task_state& {
    auto [it, fresh] = task_index.emplace(id, tasks.size());
    if (fresh) {
      tasks.emplace_back();
      tasks.back().id = id;
    }
    return tasks[it->second];
  };

  for (const auto& e : ev) {
    auto& w = ws[e.worker];
    w.first = std::min(w.first, e.ticks);
    w.last = std::max(w.last, e.ticks);
    switch (e.kind) {
      case trace_kind::task_begin:
      case trace_kind::phase_begin: {
        auto& t = task_of(e.arg);
        if (!t.has_begin) {
          t.has_begin = true;
          t.first_begin = e.ticks;
          t.first_worker = e.worker;
        }
        if (e.name != nullptr) t.name = e.name;
        if (t.has_end && e.ticks > t.last_end)
          t.suspend_ticks += e.ticks - t.last_end;
        w.open = true;
        w.open_begin = e.ticks;
        w.open_task = e.arg;
        break;
      }
      case trace_kind::task_end:
      case trace_kind::phase_end: {
        // Wraparound can orphan an end whose begin was overwritten; pair
        // only when the open phase matches this task.
        if (w.open && w.open_task == e.arg && e.ticks >= w.open_begin) {
          auto& t = task_of(e.arg);
          t.phases.push_back({w.open_begin, e.ticks, e.arg});
          t.exec_ticks += e.ticks - w.open_begin;
          t.has_end = true;
          t.last_end = e.ticks;
          w.busy_ticks += e.ticks - w.open_begin;
          w.done.push_back({w.open_begin, e.ticks, e.arg});
        }
        w.open = false;
        // The kernel-delta task_pmu record (if the plane was on) follows
        // this event immediately on the lane.
        w.pmu_pending = true;
        w.pmu_last_task = e.arg;
        if (e.kind == trace_kind::task_end) {
          task_of(e.arg).complete = true;
          ++w.completed;
        }
        break;
      }
      case trace_kind::task_enqueue: {
        auto& t = task_of(e.arg);
        if (!t.has_enqueue) {
          t.has_enqueue = true;
          t.enqueue_ticks = e.ticks;
          t.spawn_worker = static_cast<std::uint16_t>(e.arg2);
        }
        if (w.split_pending) {
          // Direct provenance: the task_split event names the parent, so the
          // edge does not depend on the parent's phase events surviving ring
          // wraparound.
          t.split_child = true;
          t.split_point = w.split_point;
          t.has_parent = true;
          t.parent_id = w.split_parent;
          w.split_pending = false;
        }
        ++w.spawned;
        break;
      }
      case trace_kind::task_split: {
        w.split_pending = true;
        w.split_parent = e.arg;
        w.split_point = e.arg2;
        ++w.splits;
        break;
      }
      case trace_kind::steal: {
        ++w.steals;
        auto& t = task_of(e.arg);
        if (!t.has_begin) {  // steal before the first run: wait-path latency
          t.has_steal = true;
          t.steal_ticks = e.ticks;
        }
        break;
      }
      case trace_kind::park:
        w.parked = true;
        w.park_begin = e.ticks;
        break;
      case trace_kind::unpark:
        if (w.parked && e.ticks >= w.park_begin)
          w.parked_ticks += e.ticks - w.park_begin;
        w.parked = false;
        break;
      case trace_kind::graph_node: {
        auto& t = task_of(e.arg);
        t.has_graph = true;
        t.graph_step = graph_node_step(e.arg2);
        t.graph_point = graph_node_point(e.arg2);
        break;
      }
      case trace_kind::task_pmu: {
        // Lane-adjacent pairing: while a phase is open the record is the
        // scheduler-gap delta emitted right after the begin event; otherwise
        // it is the kernel delta following the end event flagged above.
        if (w.open) {
          auto& t = task_of(w.open_task);
          t.has_pmu = true;
          t.pmu_sched_cycles += pmu_arg_cycles(e.arg);
          t.pmu_sched_instructions += pmu_arg_instructions(e.arg);
          t.pmu_sched_llc += e.arg2;
        } else if (w.pmu_pending) {
          auto& t = task_of(w.pmu_last_task);
          t.has_pmu = true;
          t.pmu_cycles += pmu_arg_cycles(e.arg);
          t.pmu_instructions += pmu_arg_instructions(e.arg);
          t.pmu_llc += e.arg2;
          w.pmu_pending = false;
        }
        break;
      }
      case trace_kind::pending_miss:
      case trace_kind::pin_rejected:
      case trace_kind::steal_request:
      case trace_kind::steal_handoff:
        // Channel-steal request traffic is summarized by the steal-req-*
        // counters; per-event accounting adds nothing to Eq. 1–3.
        break;
    }
  }

  const double npt = r.ns_per_tick;
  r.wall_ns = static_cast<double>(wall_end - wall_begin) * npt;

  // Per-worker timelines and the trace-side Eq. 1–3 inputs. The external
  // lane only carries provenance from non-worker threads — it is not a
  // scheduler loop, so it contributes nothing to func.
  for (const auto& [widx, w] : ws) {
    if (widx == external_worker) continue;
    worker_timeline wt;
    wt.worker = widx;
    wt.span_ns = w.first <= w.last
                     ? static_cast<double>(w.last - w.first) * npt
                     : 0;
    wt.busy_ns = static_cast<double>(w.busy_ticks) * npt;
    wt.parked_ns = static_cast<double>(w.parked_ticks) * npt;
    wt.tasks_completed = w.completed;
    wt.tasks_spawned = w.spawned;
    wt.steals = w.steals;
    wt.splits = w.splits;
    wt.dropped = w.dropped;
    r.func_ns += wt.span_ns;
    r.exec_ns += wt.busy_ns;
    r.tasks_completed += w.completed;
    r.workers.push_back(wt);
  }
  r.num_workers = static_cast<int>(r.workers.size());
  if (r.func_ns > 0) r.idle_rate = (r.func_ns - r.exec_ns) / r.func_ns;
  if (r.tasks_completed > 0) {
    r.task_duration_ns = r.exec_ns / static_cast<double>(r.tasks_completed);
    r.task_overhead_ns =
        (r.func_ns - r.exec_ns) / static_cast<double>(r.tasks_completed);
  }

  // Provenance: the parent of a spawned task is whichever task's phase on
  // the spawning worker covered the enqueue instant. Dataflow continuations
  // fire from the worker that completed the last input, so this recovers
  // the DAG edge that actually gated the spawn.
  for (auto& t : tasks) {
    if (t.split_child) continue;  // already bound by its task_split event
    if (!t.has_enqueue || t.spawn_worker == external_worker) continue;
    const auto it = ws.find(t.spawn_worker);
    if (it == ws.end()) continue;
    const phase_interval* p = covering_phase(it->second.done, t.enqueue_ticks);
    if (p != nullptr && p->task != t.id) {
      t.has_parent = true;
      t.parent_id = p->task;
    }
  }

  // Critical path: longest exec-weighted chain through spawn edges, where a
  // parent contributes only work finished before the spawn. Processing in
  // first_begin order guarantees each parent's DP state exists before any
  // child reads it (parent was running at the enqueue, so its first begin
  // precedes the child's).
  std::vector<std::size_t> order;
  order.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    if (tasks[i].has_begin) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].first_begin < tasks[b].first_begin;
  });
  double best_len = 0;
  std::size_t best_task = tasks.size();
  for (const std::size_t i : order) {
    auto& t = tasks[i];
    t.start_len = 0;
    if (t.has_parent) {
      const auto pit = task_index.find(t.parent_id);
      if (pit != task_index.end() && tasks[pit->second].dp_done)
        t.start_len = tasks[pit->second].start_len +
                      exec_before(tasks[pit->second], t.enqueue_ticks);
    }
    t.end_len = t.start_len + static_cast<double>(t.exec_ticks);
    t.dp_done = true;
    if (t.end_len > best_len || best_task == tasks.size()) {
      best_len = t.end_len;
      best_task = i;
    }
  }
  if (best_task != tasks.size()) {
    r.critical_path_ns = best_len * npt;
    if (r.wall_ns > 0) r.critical_path_frac = r.critical_path_ns / r.wall_ns;
    // Walk parent pointers back to the root, then reverse.
    std::size_t cur = best_task;
    while (true) {
      tasks[cur].on_critical_path = true;
      r.critical_chain.push_back(tasks[cur].id);
      if (!tasks[cur].has_parent) break;
      const auto pit = task_index.find(tasks[cur].parent_id);
      if (pit == task_index.end() || pit->second == cur) break;
      cur = pit->second;
    }
    std::reverse(r.critical_chain.begin(), r.critical_chain.end());
  }

  // Wait attribution (Eq. 5 per task). Any wraparound loss makes the
  // enqueue/begin pairing untrustworthy — refuse rather than under-report.
  std::uint64_t enqueues = 0;
  for (const auto& t : tasks)
    if (t.has_enqueue) ++enqueues;
  if (r.total_dropped > 0 && !opt.force_wait_attribution) {
    r.waits_error =
        "refused: " + std::to_string(r.total_dropped) +
        " events lost to ring wraparound, so spawn->run pairs may be "
        "incomplete and waits would be under-reported; raise GRAN_TRACE_BUF "
        "(or force with --force-waits to explore anyway)";
  } else if (enqueues == 0) {
    r.waits_error = "refused: trace has no task_enqueue events";
  } else {
    r.waits_valid = true;
    std::vector<double> waits;
    double queue_sum = 0, steal_sum = 0;
    for (auto& t : tasks) {
      if (!t.has_enqueue || !t.has_begin || t.first_begin < t.enqueue_ticks)
        continue;
      const double wait = static_cast<double>(t.first_begin - t.enqueue_ticks) * npt;
      waits.push_back(wait);
      const bool stolen = t.has_steal && t.steal_ticks >= t.enqueue_ticks &&
                          t.steal_ticks <= t.first_begin;
      if (stolen) {
        ++r.stolen_waits;
        queue_sum += static_cast<double>(t.steal_ticks - t.enqueue_ticks) * npt;
        steal_sum += static_cast<double>(t.first_begin - t.steal_ticks) * npt;
      } else {
        queue_sum += wait;
      }
    }
    r.waits_counted = waits.size();
    if (!waits.empty()) {
      double sum = 0;
      for (const double w : waits) sum += w;
      r.wait_mean_ns = sum / static_cast<double>(waits.size());
      std::sort(waits.begin(), waits.end());
      r.wait_p95_ns = percentile(waits, 0.95);
      r.wait_max_ns = waits.back();
      r.queue_wait_mean_ns = queue_sum / static_cast<double>(waits.size());
      if (r.stolen_waits > 0)
        r.steal_latency_mean_ns = steal_sum / static_cast<double>(r.stolen_waits);
    }
  }

  // Reconstructed timelines: running-phase concurrency and runnable backlog
  // (spawned but not yet first-run).
  {
    std::vector<std::pair<std::uint64_t, int>> deltas;
    for (const auto& t : tasks)
      for (const auto& p : t.phases) {
        deltas.emplace_back(p.begin, +1);
        deltas.emplace_back(p.end, -1);
      }
    const auto s = sweep_levels(deltas, wall_begin, wall_end);
    r.avg_concurrency = s.avg;
    r.max_concurrency = s.max;
  }
  {
    std::vector<std::pair<std::uint64_t, int>> deltas;
    for (const auto& t : tasks) {
      if (!t.has_enqueue || !t.has_begin || t.first_begin < t.enqueue_ticks)
        continue;
      deltas.emplace_back(t.enqueue_ticks, +1);
      deltas.emplace_back(t.first_begin, -1);
    }
    const auto s = sweep_levels(deltas, wall_begin, wall_end);
    r.avg_runnable = s.avg;
    r.max_runnable = s.max;
  }

  // Publish per-task records, converted to ns.
  r.tasks.reserve(tasks.size());
  for (const auto& t : tasks) {
    task_record out;
    out.id = t.id;
    out.name = t.name;
    out.first_worker = t.first_worker;
    out.spawn_worker = t.spawn_worker;
    out.has_enqueue = t.has_enqueue;
    out.complete = t.complete;
    out.enqueue_ticks = t.enqueue_ticks;
    out.first_begin_ticks = t.first_begin;
    out.last_end_ticks = t.last_end;
    if (t.has_enqueue && t.has_begin && t.first_begin >= t.enqueue_ticks) {
      out.wait_ns = static_cast<double>(t.first_begin - t.enqueue_ticks) * npt;
      const bool stolen = t.has_steal && t.steal_ticks >= t.enqueue_ticks &&
                          t.steal_ticks <= t.first_begin;
      out.stolen = stolen;
      if (stolen) {
        out.queue_wait_ns =
            static_cast<double>(t.steal_ticks - t.enqueue_ticks) * npt;
        out.steal_latency_ns =
            static_cast<double>(t.first_begin - t.steal_ticks) * npt;
      } else {
        out.queue_wait_ns = out.wait_ns;
      }
    }
    out.exec_ns = static_cast<double>(t.exec_ticks) * npt;
    out.suspend_ns = static_cast<double>(t.suspend_ticks) * npt;
    out.phases = static_cast<int>(t.phases.size());
    out.has_parent = t.has_parent;
    out.parent_id = t.parent_id;
    out.split_child = t.split_child;
    out.split_point = t.split_point;
    if (t.split_child) ++r.tasks_from_splits;
    out.has_graph_node = t.has_graph;
    out.graph_step = t.graph_step;
    out.graph_point = t.graph_point;
    out.on_critical_path = t.on_critical_path;
    out.has_pmu = t.has_pmu;
    out.pmu_cycles = t.pmu_cycles;
    out.pmu_instructions = t.pmu_instructions;
    out.pmu_llc_misses = t.pmu_llc;
    out.pmu_sched_cycles = t.pmu_sched_cycles;
    out.pmu_sched_instructions = t.pmu_sched_instructions;
    out.pmu_sched_llc_misses = t.pmu_sched_llc;
    r.tasks.push_back(out);
  }

  // Per-grain-bin microarchitectural table: bucket PMU-attributed tasks by
  // log2 of their exec time and aggregate the hardware deltas. A capture
  // with zero instructions everywhere is a software-only (rdtsc) run — the
  // table still carries cycles and the stolen fraction, clearly labeled by
  // write_report.
  {
    struct bin_acc {
      std::uint64_t tasks = 0;
      std::uint64_t stolen = 0;
      double kc = 0, sc = 0, ki = 0, si = 0, llc = 0;
      std::vector<double> ipc;
    };
    std::map<int, bin_acc> bins;
    for (const auto& t : r.tasks) {
      if (!t.has_pmu || t.exec_ns <= 0) continue;
      ++r.pmu_tasks;
      if (t.pmu_instructions > 0) r.has_pmu = true;  // provisional, see below
      int bucket = 0;
      for (double g = t.exec_ns; g >= 2; g /= 2) ++bucket;
      auto& b = bins[bucket];
      ++b.tasks;
      if (t.stolen) ++b.stolen;
      b.kc += static_cast<double>(t.pmu_cycles);
      b.sc += static_cast<double>(t.pmu_sched_cycles);
      b.ki += static_cast<double>(t.pmu_instructions);
      b.si += static_cast<double>(t.pmu_sched_instructions);
      b.llc += static_cast<double>(t.pmu_llc_misses);
      if (t.pmu_cycles > 0 && t.pmu_instructions > 0)
        b.ipc.push_back(static_cast<double>(t.pmu_instructions) /
                        static_cast<double>(t.pmu_cycles));
    }
    r.pmu_software_only = r.pmu_tasks > 0 && !r.has_pmu;
    r.has_pmu = r.pmu_tasks > 0;
    for (auto& [bucket, b] : bins) {
      analysis_result::pmu_bin_row row;
      row.bucket = bucket;
      row.grain_lo_ns = bucket == 0 ? 0 : std::pow(2.0, bucket);
      row.grain_hi_ns = std::pow(2.0, bucket + 1);
      row.tasks = b.tasks;
      const double n = static_cast<double>(b.tasks);
      std::sort(b.ipc.begin(), b.ipc.end());
      row.median_ipc = percentile(b.ipc, 0.5);
      row.kernel_cycles = b.kc / n;
      row.sched_cycles = b.sc / n;
      row.kernel_instructions = b.ki / n;
      row.sched_instructions = b.si / n;
      row.llc_misses = b.llc / n;
      row.stolen_frac = static_cast<double>(b.stolen) / n;
      r.pmu_bins.push_back(row);
    }
  }

  r.ok = true;
  return r;
}

namespace {

double ms(double ns) { return ns / 1e6; }
double us(double ns) { return ns / 1e3; }

void write_csv_escaped(std::ostream& os, const char* s) {
  os << '"';
  for (; *s; ++s) {
    if (*s == '"') os << "\"\"";
    os << *s;
  }
  os << '"';
}

}  // namespace

void write_report(std::ostream& os, const analysis_result& r,
                  const analysis_options& opt) {
  const auto flags = os.flags();
  const auto prec = os.precision();
  os << std::fixed;
  if (!r.ok) {
    os << "trace analysis failed: " << r.error << "\n";
    os.flags(flags);
    os.precision(prec);
    return;
  }

  os << "== gran trace analysis ==\n";
  os << "events:       " << r.total_events << " retained";
  if (r.total_dropped > 0) os << ", " << r.total_dropped << " DROPPED";
  os << "\n";
  os << std::setprecision(3);
  os << "wall:         " << ms(r.wall_ns) << " ms across " << r.num_workers
     << " workers\n";
  std::uint64_t observed = r.tasks.size();
  os << "tasks:        " << observed << " observed, " << r.tasks_completed
     << " completed\n";
  os << "eq1 idle-rate:      " << std::setprecision(4) << r.idle_rate
     << "   (exec " << std::setprecision(3) << ms(r.exec_ns) << " ms / func "
     << ms(r.func_ns) << " ms)\n";
  os << "eq2 task-duration:  " << us(r.task_duration_ns) << " us\n";
  os << "eq3 task-overhead:  " << us(r.task_overhead_ns) << " us\n";
  os << "concurrency:        avg " << std::setprecision(2) << r.avg_concurrency
     << ", max " << r.max_concurrency << "\n";
  os << "runnable backlog:   avg " << r.avg_runnable << ", max "
     << r.max_runnable << "\n";

  os << std::setprecision(3);
  os << "critical path: " << ms(r.critical_path_ns) << " ms ("
     << std::setprecision(1) << r.critical_path_frac * 100 << "% of wall, "
     << r.critical_chain.size() << " tasks)\n";
  // Show the chain tail (the deepest tasks dominate the picture).
  if (!r.critical_chain.empty()) {
    std::unordered_map<std::uint64_t, const task_record*> by_id;
    for (const auto& t : r.tasks) by_id.emplace(t.id, &t);
    const std::size_t n = r.critical_chain.size();
    const std::size_t show = std::min<std::size_t>(n, static_cast<std::size_t>(
                                                          std::max(opt.top_n, 1)));
    os << std::setprecision(2);
    for (std::size_t i = n - show; i < n; ++i) {
      const auto it = by_id.find(r.critical_chain[i]);
      if (it == by_id.end()) continue;
      const auto& t = *it->second;
      os << "  [" << i << "] task " << t.id << " '"
         << (t.name != nullptr ? t.name : "?") << "' exec " << us(t.exec_ns)
         << " us, wait " << us(t.wait_ns) << " us, worker " << t.first_worker;
      if (t.has_graph_node)
        os << ", node (" << t.graph_step << "," << t.graph_point << ")";
      os << "\n";
    }
  }

  os << "wait attribution (per-task eq5):";
  if (!r.waits_valid) {
    os << " " << r.waits_error << "\n";
  } else {
    os << "\n  " << r.waits_counted << " waits: mean " << us(r.wait_mean_ns)
       << " us, p95 " << us(r.wait_p95_ns) << " us, max " << us(r.wait_max_ns)
       << " us\n";
    os << "  queue-wait mean " << us(r.queue_wait_mean_ns) << " us; "
       << r.stolen_waits << " stolen (steal-latency mean "
       << us(r.steal_latency_mean_ns) << " us)\n";
    // Top waiters: the individual tasks Eq. 5 averages away.
    std::vector<const task_record*> waiters;
    for (const auto& t : r.tasks)
      if (t.has_enqueue && t.wait_ns > 0) waiters.push_back(&t);
    std::sort(waiters.begin(), waiters.end(),
              [](const task_record* a, const task_record* b) {
                return a->wait_ns > b->wait_ns;
              });
    const std::size_t show =
        std::min(waiters.size(),
                 static_cast<std::size_t>(std::max(opt.top_n, 1)));
    for (std::size_t i = 0; i < show; ++i) {
      const auto& t = *waiters[i];
      os << "  top-wait task " << t.id << " '"
         << (t.name != nullptr ? t.name : "?") << "': wait " << us(t.wait_ns)
         << " us (queue " << us(t.queue_wait_ns) << ", steal "
         << us(t.steal_latency_ns) << "), exec " << us(t.exec_ns) << " us"
         << (t.stolen ? ", stolen" : "") << "\n";
    }
  }

  os << "per-worker:\n";
  os << "  w     span_ms   busy_ms parked_ms  util%  done spawn steal  drop\n";
  for (const auto& w : r.workers) {
    os << "  " << std::left << std::setw(4) << w.worker << std::right
       << std::setprecision(3) << std::setw(10) << ms(w.span_ns)
       << std::setw(10) << ms(w.busy_ns) << std::setw(10) << ms(w.parked_ns)
       << std::setprecision(1) << std::setw(7)
       << (w.span_ns > 0 ? 100.0 * w.busy_ns / w.span_ns : 0.0)
       << std::setw(6) << w.tasks_completed << std::setw(6) << w.tasks_spawned
       << std::setw(6) << w.steals << std::setw(6) << w.dropped << "\n";
  }

  // Per-grain-bin microarchitectural table (task_pmu events). Reading the
  // U-curve: left wall = sched instr/task holds roughly constant while
  // kernel instr/task shrinks with grain; right wall = llc/task climbing
  // with stolen% in the fine bins. A software-only capture keeps the same
  // table (cycles are rdtsc deltas) with the instruction-derived columns
  // reading zero.
  if (r.has_pmu) {
    if (r.pmu_software_only)
      os << "pmu attribution (software-only mode: rdtsc + rusage; "
            "instruction/LLC columns unavailable): "
         << r.pmu_tasks << " tasks\n";
    else
      os << "pmu attribution (hardware counters): " << r.pmu_tasks
         << " tasks\n";
    os << "  grain_us            tasks med_ipc   kcyc/task   scyc/task"
          "  kinstr/task  sinstr/task    llc/task stolen%\n";
    for (const auto& b : r.pmu_bins) {
      std::ostringstream range;
      range << std::fixed << std::setprecision(1) << "[" << std::setw(7)
            << us(b.grain_lo_ns) << "," << std::setw(7) << us(b.grain_hi_ns)
            << ")";
      os << "  " << std::left << std::setw(18) << range.str() << std::right
         << std::setw(7) << b.tasks << std::setprecision(2) << std::setw(8)
         << b.median_ipc << std::setprecision(0) << std::setw(12)
         << b.kernel_cycles << std::setw(12) << b.sched_cycles << std::setw(13)
         << b.kernel_instructions << std::setw(13) << b.sched_instructions
         << std::setw(12) << b.llc_misses << std::setprecision(1)
         << std::setw(7) << b.stolen_frac * 100 << "\n";
    }
  }
  os.flags(flags);
  os.precision(prec);
}

void write_task_csv(std::ostream& os, const analysis_result& r) {
  os << "task_id,name,spawn_worker,first_worker,phases,complete,"
        "enqueue_ticks,first_begin_ticks,wait_ns,queue_wait_ns,"
        "steal_latency_ns,exec_ns,suspend_ns,stolen,parent_id,"
        "graph_step,graph_point,on_critical_path,"
        "pmu_cycles,pmu_instructions,pmu_llc_misses,"
        "pmu_sched_cycles,pmu_sched_instructions,pmu_sched_llc_misses\n";
  const auto flags = os.flags();
  os << std::fixed << std::setprecision(1);
  for (const auto& t : r.tasks) {
    os << t.id << ',';
    write_csv_escaped(os, t.name != nullptr ? t.name : "");
    os << ',';
    if (t.has_enqueue && t.spawn_worker == external_worker)
      os << "external";
    else if (t.has_enqueue)
      os << t.spawn_worker;
    os << ',' << t.first_worker << ',' << t.phases << ','
       << (t.complete ? 1 : 0) << ',' << t.enqueue_ticks << ','
       << t.first_begin_ticks << ',' << t.wait_ns << ',' << t.queue_wait_ns
       << ',' << t.steal_latency_ns << ',' << t.exec_ns << ',' << t.suspend_ns
       << ',' << (t.stolen ? 1 : 0) << ',';
    if (t.has_parent) os << t.parent_id;
    os << ',';
    if (t.has_graph_node) os << t.graph_step;
    os << ',';
    if (t.has_graph_node) os << t.graph_point;
    os << ',' << (t.on_critical_path ? 1 : 0);
    if (t.has_pmu)
      os << ',' << t.pmu_cycles << ',' << t.pmu_instructions << ','
         << t.pmu_llc_misses << ',' << t.pmu_sched_cycles << ','
         << t.pmu_sched_instructions << ',' << t.pmu_sched_llc_misses;
    else
      os << ",,,,,,";
    os << "\n";
  }
  os.flags(flags);
}

}  // namespace gran::perf
