// Tests for the paper's metric computations (Eqs. 1–6) and the grain-size
// selectors of §IV.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/selectors.hpp"

namespace gran::core {
namespace {

run_measurement sample_run() {
  run_measurement r;
  r.exec_time_s = 2.0;
  r.tasks = 1000;
  r.phases = 1000;
  r.exec_ns = 8e9;   // Σ t_exec = 8 s
  r.func_ns = 10e9;  // Σ t_func = 10 s
  r.cores = 4;
  return r;
}

TEST(Metrics, IdleRateEq1) {
  const metrics m = compute_metrics(sample_run(), 0.0);
  // Ir = (10 - 8) / 10
  EXPECT_DOUBLE_EQ(m.idle_rate, 0.2);
}

TEST(Metrics, TaskDurationEq2) {
  const metrics m = compute_metrics(sample_run(), 0.0);
  // td = 8e9 / 1000
  EXPECT_DOUBLE_EQ(m.task_duration_ns, 8e6);
}

TEST(Metrics, TaskOverheadEq3) {
  const metrics m = compute_metrics(sample_run(), 0.0);
  // to = (10e9 - 8e9) / 1000
  EXPECT_DOUBLE_EQ(m.task_overhead_ns, 2e6);
}

TEST(Metrics, TmOverheadEq4) {
  const metrics m = compute_metrics(sample_run(), 0.0);
  // To = to * nt / nc = 2e6 * 1000 / 4 ns = 0.5 s
  EXPECT_DOUBLE_EQ(m.tm_overhead_s, 0.5);
}

TEST(Metrics, WaitTimeEq5And6) {
  const double td1 = 7e6;  // 1-core task duration 7 ms
  const metrics m = compute_metrics(sample_run(), td1);
  // tw = td - td1 = 1e6 ns
  EXPECT_DOUBLE_EQ(m.wait_per_task_ns, 1e6);
  // Tw = tw * nt / nc = 1e6 * 1000 / 4 ns = 0.25 s
  EXPECT_DOUBLE_EQ(m.wait_time_s, 0.25);
  EXPECT_DOUBLE_EQ(m.tm_plus_wait_s, 0.75);
}

TEST(Metrics, NegativeWaitTimeAllowed) {
  // Coarse grain: 1-core duration LARGER than multi-core (paper §II-A).
  const metrics m = compute_metrics(sample_run(), 9e6);
  EXPECT_DOUBLE_EQ(m.wait_per_task_ns, -1e6);
  EXPECT_LT(m.wait_time_s, 0.0);
}

TEST(Metrics, ZeroBaselineSkipsWait) {
  const metrics m = compute_metrics(sample_run(), 0.0);
  EXPECT_EQ(m.wait_per_task_ns, 0.0);
  EXPECT_EQ(m.wait_time_s, 0.0);
}

TEST(Metrics, DegenerateInputs) {
  run_measurement r;  // all zero
  const metrics m = compute_metrics(r, 0.0);
  EXPECT_EQ(m.idle_rate, 0.0);
  EXPECT_EQ(m.task_duration_ns, 0.0);
  EXPECT_EQ(m.tm_overhead_s, 0.0);

  // exec > func (timer skew): overhead clamps at zero rather than negative.
  run_measurement skew = sample_run();
  skew.exec_ns = 11e9;
  const metrics ms = compute_metrics(skew, 0.0);
  EXPECT_EQ(ms.idle_rate, 0.0);
  EXPECT_EQ(ms.task_overhead_ns, 0.0);
}

// --- granularity_sweep --------------------------------------------------------

TEST(GranularitySweep, CoversRangeSorted) {
  const auto sizes = granularity_sweep(160, 100'000'000, 4);
  ASSERT_FALSE(sizes.empty());
  EXPECT_EQ(sizes.front(), 160u);
  EXPECT_EQ(sizes.back(), 100'000'000u);
  for (std::size_t i = 1; i < sizes.size(); ++i) EXPECT_GT(sizes[i], sizes[i - 1]);
  // ~4 points per decade over ~5.8 decades.
  EXPECT_GE(sizes.size(), 20u);
  EXPECT_LE(sizes.size(), 30u);
}

TEST(GranularitySweep, SinglePoint) {
  const auto sizes = granularity_sweep(100, 100, 4);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 100u);
}

// --- selectors ------------------------------------------------------------------

std::vector<sweep_point> synthetic_sweep() {
  // Partition sizes 1k..1M with a U-shaped execution time, monotone
  // decreasing idle-rate then rising, and pending accesses with an interior
  // minimum.
  struct row {
    std::size_t ps;
    double t;
    double idle;
    std::uint64_t pq;
  };
  const row rows[] = {
      {1'000, 5.0, 0.90, 40'000'000}, {10'000, 2.0, 0.40, 8'000'000},
      {50'000, 1.7, 0.25, 2'000'000}, {100'000, 1.75, 0.30, 2'500'000},
      {1'000'000, 3.0, 0.70, 5'000'000},
  };
  std::vector<sweep_point> out;
  for (const auto& r : rows) {
    sweep_point p;
    p.partition_size = r.ps;
    p.exec_time_s.add(r.t);
    p.m.idle_rate = r.idle;
    p.mean.pending_accesses = r.pq;
    out.push_back(std::move(p));
  }
  return out;
}

TEST(Selectors, BestExecTime) {
  const auto sweep = synthetic_sweep();
  const auto best = best_exec_time(sweep);
  EXPECT_EQ(best.partition_size, 50'000u);
  EXPECT_DOUBLE_EQ(best.exec_time_s, 1.7);
  EXPECT_DOUBLE_EQ(best.regret, 0.0);
}

TEST(Selectors, IdleRateThresholdPicksSmallestAcceptable) {
  const auto sweep = synthetic_sweep();
  const auto sel = idle_rate_threshold(sweep, 0.30);
  ASSERT_TRUE(sel.has_value());
  // Smallest partition with idle <= 30% is 50,000 (10,000 has 40%).
  EXPECT_EQ(sel->partition_size, 50'000u);
  EXPECT_DOUBLE_EQ(sel->regret, 0.0);
}

TEST(Selectors, IdleRateThresholdHigherTolerance) {
  const auto sweep = synthetic_sweep();
  const auto sel = idle_rate_threshold(sweep, 0.45);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->partition_size, 10'000u);
  EXPECT_NEAR(sel->regret, 2.0 / 1.7 - 1.0, 1e-12);
}

TEST(Selectors, IdleRateThresholdUnsatisfiable) {
  const auto sweep = synthetic_sweep();
  EXPECT_FALSE(idle_rate_threshold(sweep, 0.01).has_value());
}

TEST(Selectors, PendingQueueMinimum) {
  const auto sweep = synthetic_sweep();
  const auto sel = pending_queue_minimum(sweep);
  EXPECT_EQ(sel.partition_size, 50'000u);  // pq minimum coincides with best here
  EXPECT_DOUBLE_EQ(sel.regret, 0.0);
}

}  // namespace
}  // namespace gran::core
