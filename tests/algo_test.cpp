// Tests for the parallel algorithms layer (src/algo): chunking resolution,
// parallel_for (all policies), parallel_reduce, task_group.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "algo/parallel_for.hpp"
#include "algo/parallel_reduce.hpp"
#include "algo/parallel_scan.hpp"
#include "algo/task_group.hpp"
#include "async/async.hpp"

namespace gran::algo {
namespace {

scheduler_config test_config(int workers) {
  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.pin_workers = false;
  return cfg;
}

// --- chunking ----------------------------------------------------------------

TEST(Chunking, StaticIsLiteral) {
  EXPECT_EQ(resolve_chunk(static_chunk{100}, 1'000'000, 8), 100u);
  EXPECT_EQ(resolve_chunk(static_chunk{0}, 100, 8), 1u);  // clamped
}

TEST(Chunking, AutoTargetsTasksPerWorker) {
  // 1000 items, 4 workers, 4 tasks/worker -> 16 tasks -> chunk 63.
  const std::size_t chunk = resolve_chunk(auto_chunk{4}, 1'000, 4);
  EXPECT_EQ(chunk, (1'000 + 15) / 16);
  // Tiny input: at least one item per chunk.
  EXPECT_GE(resolve_chunk(auto_chunk{4}, 3, 8), 1u);
}

TEST(Chunking, AdaptiveResolvesToInitial) {
  EXPECT_EQ(resolve_chunk(adaptive_chunk{.initial = 64}, 1'000'000, 4), 64u);
}

// --- parallel_for ----------------------------------------------------------------

struct ForPolicyCase {
  chunking policy;
  const char* name;
};

class ParallelForPolicies : public ::testing::TestWithParam<int> {};

TEST_P(ParallelForPolicies, TouchesEveryIndexOnce) {
  thread_manager tm(test_config(3));
  chunking policy;
  switch (GetParam()) {
    case 0: policy = static_chunk{7}; break;
    case 1: policy = auto_chunk{}; break;
    default: policy = adaptive_chunk{.initial = 8}; break;
  }
  constexpr std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(tm, 0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, policy);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

std::string policy_case_name(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0: return "static";
    case 1: return "auto";
    default: return "adaptive";
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ParallelForPolicies, ::testing::Values(0, 1, 2),
                         policy_case_name);

TEST(ParallelFor, EmptyRangeIsNoop) {
  thread_manager tm(test_config(1));
  int calls = 0;
  parallel_for(tm, 5, 5, [&](std::size_t) { ++calls; });
  parallel_for(tm, 9, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, NonZeroBase) {
  thread_manager tm(test_config(2));
  std::atomic<long> sum{0};
  parallel_for(tm, 100, 200, [&](std::size_t i) { sum += static_cast<long>(i); },
               static_chunk{13});
  EXPECT_EQ(sum.load(), (100L + 199) * 100 / 2);
}

TEST(ParallelFor, ExceptionPropagates) {
  thread_manager tm(test_config(2));
  EXPECT_THROW(
      parallel_for(tm, 0, 1'000,
                   [](std::size_t i) {
                     if (i == 321) throw std::runtime_error("item 321");
                   },
                   static_chunk{10}),
      std::runtime_error);
  // The runtime must still be healthy afterwards.
  std::atomic<int> ok{0};
  parallel_for(tm, 0, 100, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 100);
}

TEST(ParallelFor, DefaultManagerOverload) {
  thread_manager tm(test_config(2));
  std::atomic<int> count{0};
  parallel_for(0, 500, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 500);
}

TEST(ParallelFor, SingleItem) {
  thread_manager tm(test_config(2));
  std::atomic<int> hits{0};
  parallel_for(tm, 0, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++hits;
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(ParallelFor, AdaptiveLargeRange) {
  thread_manager tm(test_config(4));
  constexpr std::size_t n = 100'000;
  std::atomic<long> sum{0};
  parallel_for(tm, 0, n, [&](std::size_t i) { sum += static_cast<long>(i); },
               adaptive_chunk{.initial = 4});
  EXPECT_EQ(sum.load(), static_cast<long>(n - 1) * n / 2);
}

// --- parallel_reduce ---------------------------------------------------------------

TEST(ParallelReduce, SumMatchesSerial) {
  thread_manager tm(test_config(3));
  std::vector<double> data(50'000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = 0.5 * static_cast<double>(i);
  const double parallel = parallel_reduce(
      tm, 0, data.size(), 0.0, [&](std::size_t i) { return data[i]; },
      [](double a, double b) { return a + b; }, static_chunk{1'000});
  const double serial = std::accumulate(data.begin(), data.end(), 0.0);
  EXPECT_DOUBLE_EQ(parallel, serial);
}

TEST(ParallelReduce, DeterministicForFixedChunk) {
  thread_manager tm(test_config(4));
  std::vector<double> data(10'000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = 1.0 / (1.0 + static_cast<double>(i));
  const auto run = [&] {
    return parallel_reduce(
        tm, 0, data.size(), 0.0, [&](std::size_t i) { return data[i]; },
        [](double a, double b) { return a + b; }, static_chunk{128});
  };
  const double first = run();
  for (int r = 0; r < 5; ++r) EXPECT_EQ(run(), first);  // bitwise identical
}

TEST(ParallelReduce, MinReduction) {
  thread_manager tm(test_config(2));
  const auto value = [](std::size_t i) {
    return static_cast<long>((i * 7919) % 10'007);
  };
  const long parallel = parallel_reduce(
      tm, 0, 20'000, std::numeric_limits<long>::max(),
      [&](std::size_t i) { return value(i); },
      [](long a, long b) { return std::min(a, b); }, auto_chunk{});
  long serial = std::numeric_limits<long>::max();
  for (std::size_t i = 0; i < 20'000; ++i) serial = std::min(serial, value(i));
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  thread_manager tm(test_config(1));
  EXPECT_EQ(parallel_reduce(
                tm, 10, 10, 42, [](std::size_t) { return 1; },
                [](int a, int b) { return a + b; }),
            42);
}


// --- parallel_scan / parallel_transform --------------------------------------------

TEST(ParallelScan, MatchesSequentialInclusiveScan) {
  thread_manager tm(test_config(3));
  std::vector<long> in(30'000);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<long>((i * 2654435761u) % 1000) - 500;
  const auto out = parallel_inclusive_scan(tm, in, 0L,
                                           [](long a, long b) { return a + b; },
                                           static_chunk{777});
  long acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc += in[i];
    ASSERT_EQ(out[i], acc) << "index " << i;
  }
}

TEST(ParallelScan, SingleChunkDegenerate) {
  thread_manager tm(test_config(2));
  const std::vector<int> in{1, 2, 3, 4};
  const auto out = parallel_inclusive_scan(tm, in, 0,
                                           [](int a, int b) { return a + b; },
                                           static_chunk{100});
  EXPECT_EQ(out, (std::vector<int>{1, 3, 6, 10}));
}

TEST(ParallelScan, EmptyInput) {
  thread_manager tm(test_config(1));
  const std::vector<int> in;
  EXPECT_TRUE(parallel_inclusive_scan(tm, in, 0, [](int a, int b) { return a + b; })
                  .empty());
}

TEST(ParallelScan, MaxScan) {
  thread_manager tm(test_config(2));
  std::vector<int> in(5'000);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<int>((i * 48271) % 10'000);
  const auto out = parallel_inclusive_scan(
      tm, in, std::numeric_limits<int>::min(),
      [](int a, int b) { return std::max(a, b); }, static_chunk{321});
  int acc = std::numeric_limits<int>::min();
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc = std::max(acc, in[i]);
    ASSERT_EQ(out[i], acc);
  }
}

TEST(ParallelTransform, MapsEveryIndex) {
  thread_manager tm(test_config(3));
  std::vector<long> out(20'000, -1);
  parallel_transform(
      tm, 0, out.size(), [](std::size_t i) { return static_cast<long>(i * i); },
      [&out](std::size_t i, long v) { out[i] = v; }, static_chunk{997});
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], static_cast<long>(i * i));
}

// --- task_group ---------------------------------------------------------------------

TEST(TaskGroup, JoinsAllChildren) {
  thread_manager tm(test_config(3));
  task_group tg(tm);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) tg.run([&done] { ++done; });
  tg.wait();
  EXPECT_EQ(done.load(), 100);
  EXPECT_EQ(tg.pending(), 0u);
}

TEST(TaskGroup, NestedForks) {
  thread_manager tm(test_config(3));
  task_group tg(tm);
  std::atomic<int> leaves{0};
  for (int i = 0; i < 8; ++i)
    tg.run([&] {
      for (int j = 0; j < 8; ++j) tg.run([&leaves] { ++leaves; });
    });
  tg.wait();
  EXPECT_EQ(leaves.load(), 64);
}

TEST(TaskGroup, ChildExceptionRethrownAtWait) {
  thread_manager tm(test_config(2));
  task_group tg(tm);
  std::atomic<int> survivors{0};
  tg.run([] { throw std::logic_error("child died"); });
  for (int i = 0; i < 10; ++i) tg.run([&survivors] { ++survivors; });
  EXPECT_THROW(tg.wait(), std::logic_error);
  EXPECT_EQ(survivors.load(), 10);  // the rest still completed
  // Group is reusable after a failed wait.
  tg.run([&survivors] { ++survivors; });
  tg.wait();
  EXPECT_EQ(survivors.load(), 11);
}

TEST(TaskGroup, WaitFromInsideTask) {
  thread_manager tm(test_config(2));
  std::atomic<int> inner_done{0};
  auto outer = gran::async([&] {
    task_group tg(tm);
    for (int i = 0; i < 20; ++i) tg.run([&inner_done] { ++inner_done; });
    tg.wait();  // suspends this task cooperatively
    return inner_done.load();
  });
  EXPECT_EQ(outer.get(), 20);
}

TEST(TaskGroup, WaitOnEmptyGroup) {
  thread_manager tm(test_config(1));
  task_group tg(tm);
  tg.wait();  // nothing spawned: returns immediately
  SUCCEED();
}

}  // namespace
}  // namespace gran::algo
