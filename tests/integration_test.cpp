// End-to-end tests across the whole stack: runtime + futures + stencil +
// metrics + simulator, plus failure-injection and lifecycle edge cases.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "async/gran.hpp"
#include "core/experiment.hpp"
#include "core/selectors.hpp"
#include "sim/sim_backend.hpp"
#include "stencil/futurized.hpp"
#include "stencil/serial.hpp"

namespace gran {
namespace {

scheduler_config test_config(int workers) {
  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.pin_workers = false;
  return cfg;
}

TEST(Integration, StencilMetricsPipelineNative) {
  // The full measurement loop the paper describes: run the benchmark,
  // read the counters, compute the metrics.
  thread_manager tm(test_config(2));
  stencil::params p;
  p.total_points = 100'000;
  p.partition_size = 2'000;
  p.time_steps = 10;

  tm.reset_counters();
  const auto run = stencil::run_futurized(tm, p);
  tm.wait_idle();  // drain the final tasks' accounting

  const auto totals = tm.counter_totals();
  core::run_measurement meas;
  meas.exec_time_s = run.elapsed_s;
  meas.cores = tm.num_workers();
  meas.tasks = totals.tasks_executed;
  meas.phases = totals.phases_executed;
  meas.exec_ns = static_cast<double>(totals.exec_ns);
  meas.func_ns = static_cast<double>(totals.func_ns);
  const auto m = core::compute_metrics(meas, 0.0);

  EXPECT_EQ(meas.tasks, p.num_tasks());
  EXPECT_GT(m.task_duration_ns, 0.0);
  EXPECT_GE(m.idle_rate, 0.0);
  EXPECT_LE(m.idle_rate, 1.0);
}

TEST(Integration, NativeAndSimBackendsAgreeOnShape) {
  // Same sweep through both backends: the *ordering* of fine vs. medium
  // grain must agree (fine-grained flood is slower than medium grain).
  stencil::params base;
  base.total_points = 200'000;
  base.time_steps = 10;

  core::sweep_config cfg;
  cfg.base = base;
  cfg.partition_sizes = {250, 20'000};
  cfg.cores = 2;
  cfg.samples = 2;
  cfg.measure_baseline = false;

  core::native_backend native;
  core::granularity_experiment native_exp(native, cfg);
  const auto native_points = native_exp.run();

  sim::sim_backend sim_be("haswell");
  core::granularity_experiment sim_exp(sim_be, cfg);
  const auto sim_points = sim_exp.run();

  EXPECT_GT(native_points[0].exec_time_s.mean(), native_points[1].exec_time_s.mean());
  EXPECT_GT(sim_points[0].exec_time_s.mean(), sim_points[1].exec_time_s.mean());
}

TEST(Integration, ExceptionsFlowThroughDependencyTree) {
  thread_manager tm(test_config(2));
  // A dataflow tree where one leaf throws: the error must reach the root.
  auto ok = async([] { return 1; });
  auto bad = async([]() -> int { throw std::runtime_error("leaf failure"); });
  auto mid = dataflow(
      [](future<int>& a, future<int>& b) { return a.get() + b.get(); }, ok, bad);
  auto root =
      dataflow([](future<int>& m) { return m.get() * 2; }, mid);
  EXPECT_THROW(root.get(), std::runtime_error);
}

TEST(Integration, ManagersAreRestartable) {
  // Sequential managers in one process (the experiment driver's pattern:
  // one per core-count configuration).
  for (int round = 0; round < 3; ++round) {
    thread_manager tm(test_config(1 + round));
    std::atomic<int> done{0};
    for (int i = 0; i < 200; ++i) tm.spawn([&done] { ++done; });
    tm.wait_idle();
    EXPECT_EQ(done.load(), 200);
  }
}

TEST(Integration, TwoManagersCoexist) {
  // Cross-manager wakes route through task::owner().
  thread_manager a(test_config(1));
  thread_manager b(test_config(1));
  std::atomic<task*> waiter{nullptr};
  std::atomic<bool> woken{false};
  a.spawn([&] {
    waiter.store(this_task::current());
    this_task::suspend();
    woken = true;
  });
  while (!waiter.load()) {
  }
  // Wake from a task of the *other* manager.
  b.spawn([&] { waiter.load()->owner()->wake(waiter.load()); });
  a.wait_idle();
  b.wait_idle();
  EXPECT_TRUE(woken.load());
}

TEST(Integration, HeavySuspensionChurn) {
  // Many tasks ping-ponging through a semaphore: exercises the
  // suspend/wake protocol under contention.
  thread_manager tm(test_config(4));
  counting_semaphore sem(1);
  std::atomic<long> critical{0};
  latch done(2'000);
  for (int i = 0; i < 2'000; ++i)
    tm.spawn([&] {
      sem.acquire();
      ++critical;
      sem.release();
      done.count_down();
    });
  done.wait();
  EXPECT_EQ(critical.load(), 2'000);
}

TEST(Integration, StencilUnderEachPolicy) {
  for (const char* policy :
       {"priority-local-fifo", "static-fifo", "work-stealing-lifo",
        "channel-steal"}) {
    scheduler_config cfg = test_config(2);
    cfg.policy = policy;
    thread_manager tm(cfg);
    stencil::params p;
    p.total_points = 20'000;
    p.partition_size = 500;
    p.time_steps = 5;
    const auto run = stencil::run_futurized(tm, p);
    const auto serial = stencil::run_serial(p);
    ASSERT_EQ(run.state.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      ASSERT_EQ(run.state[i], serial[i]) << policy << " point " << i;
  }
}

TEST(Integration, SimMatchesPaperHeadlineClaims) {
  // The two selector claims of §IV on a simulated Haswell sweep: both rules
  // land within a modest factor of the optimum.
  sim::sim_backend backend("haswell");
  core::sweep_config cfg;
  cfg.base.total_points = 4'000'000;
  cfg.base.time_steps = 20;
  cfg.partition_sizes = core::granularity_sweep(160, 4'000'000, 3);
  cfg.cores = 28;
  cfg.samples = 1;
  core::granularity_experiment exp(backend, cfg);
  const auto points = exp.run();

  const auto sel = core::idle_rate_threshold(points, 0.30);
  ASSERT_TRUE(sel.has_value());
  EXPECT_LT(sel->regret, 0.35) << "§IV-A: threshold pick within ~1/3 of optimum";

  const auto pq = core::pending_queue_minimum(points);
  EXPECT_LT(pq.regret, 0.35) << "§IV-E: queue-minimum pick within ~1/3 of optimum";
}


TEST(Integration, SuspendWakeProtocolHammer) {
  // Adversarial interleaving hunt: tasks repeatedly announce suspension
  // while an external thread fires wakes at them as fast as it can. Any
  // lost-wakeup or double-enqueue bug in the task state machine deadlocks
  // or corrupts this within a few thousand iterations.
  //
  // Teardown protocol (tasks must not be deleted while any waker may still
  // hold their pointer): after its rounds each task parks once more, then
  // spins on `gate` with yield() — it cannot terminate while gate is false.
  // The main thread joins the rogue waker, delivers one final controlled
  // wake to every task *before* opening the gate, and only then lets them
  // exit.
  thread_manager tm(test_config(2));
  constexpr int kTasks = 8, kRounds = 2'000;
  std::atomic<task*> slots[kTasks] = {};
  task* final_slots[kTasks] = {};
  std::atomic<bool> stop{false};
  std::atomic<bool> gate{false};
  std::atomic<int> rounds_finished{0};
  std::atomic<long> rounds_done{0};

  for (int i = 0; i < kTasks; ++i)
    tm.spawn([&, i] {
      for (int r = 0; r < kRounds; ++r) {
        slots[i].store(this_task::current(), std::memory_order_release);
        this_task::suspend();
        rounds_done.fetch_add(1, std::memory_order_relaxed);
      }
      slots[i].store(nullptr, std::memory_order_release);
      final_slots[i] = this_task::current();
      rounds_finished.fetch_add(1, std::memory_order_acq_rel);
      this_task::suspend();  // woken by the rogue waker or by main below
      while (!gate.load(std::memory_order_acquire)) this_task::yield();
    });

  std::thread waker([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (auto& slot : slots)
        if (task* t = slot.load(std::memory_order_acquire)) t->owner()->wake(t);
    }
  });

  while (rounds_finished.load(std::memory_order_acquire) < kTasks)
    std::this_thread::yield();
  stop = true;
  waker.join();
  // Single remaining wake source (this thread); tasks are all still alive.
  for (task* t : final_slots) tm.wake(t);
  gate.store(true, std::memory_order_release);
  tm.wait_idle();
  EXPECT_EQ(rounds_done.load(), static_cast<long>(kTasks) * kRounds);
}

TEST(Integration, LongDependencyChainsThroughRuntime) {
  thread_manager tm(test_config(2));
  future<long> f = make_ready_future<long>(0);
  for (int i = 0; i < 2'000; ++i)
    f = f.then([](future<long> prev) { return prev.get() + 1; });
  EXPECT_EQ(f.get(), 2'000);
}

}  // namespace
}  // namespace gran
