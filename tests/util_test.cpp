// Unit tests for src/util: statistics, CLI parsing, table/number formatting,
// environment access, timers, backoff.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "util/backoff.hpp"
#include "util/cacheline.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/unique_function.hpp"

namespace gran {
namespace {

// --- running_stats ---------------------------------------------------------

TEST(RunningStats, EmptyIsZero) {
  running_stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.cov(), 0.0);
}

TEST(RunningStats, SingleSample) {
  running_stats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const double samples[] = {3.1, 4.7, 1.2, 8.8, 5.5, 2.2};
  running_stats s;
  double sum = 0;
  for (double x : samples) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / 6.0;
  double var = 0;
  for (double x : samples) var += (x - mean) * (x - mean);
  var /= 5.0;  // n-1
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_NEAR(s.cov(), std::sqrt(var) / mean, 1e-12);
}

TEST(RunningStats, MergeEqualsCombined) {
  running_stats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10 + i;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  running_stats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  running_stats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

// --- sample_stats -----------------------------------------------------------

TEST(SampleStats, BasicMoments) {
  sample_stats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(SampleStats, Percentiles) {
  sample_stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(25), 25.75, 1e-9);
}

TEST(SampleStats, PercentileSingle) {
  sample_stats s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 7.0);
}

TEST(SampleStats, CovZeroMean) {
  sample_stats s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_EQ(s.cov(), 0.0);  // mean 0 -> defined as 0, not inf
}

// --- cli_args ---------------------------------------------------------------

TEST(CliArgs, KeyEqualsValue) {
  const char* argv[] = {"prog", "--alpha=3", "--name=test"};
  cli_args args(3, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get("name"), "test");
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgs, KeySpaceValue) {
  const char* argv[] = {"prog", "--count", "17"};
  cli_args args(3, argv);
  EXPECT_EQ(args.get_int("count", 0), 17);
}

TEST(CliArgs, BooleanFlag) {
  const char* argv[] = {"prog", "--verbose", "--full"};
  cli_args args(3, argv);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_TRUE(args.get_bool("full", false));
  EXPECT_FALSE(args.get_bool("absent", false));
}

TEST(CliArgs, BooleanValues) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=off", "--d=yes"};
  cli_args args(5, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_FALSE(args.get_bool("c", true));
  EXPECT_TRUE(args.get_bool("d", false));
}

TEST(CliArgs, IntList) {
  const char* argv[] = {"prog", "--cores=1,2,4,8"};
  cli_args args(2, argv);
  const auto list = args.get_int_list("cores", {});
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list[0], 1);
  EXPECT_EQ(list[3], 8);
}

TEST(CliArgs, IntListDefault) {
  const char* argv[] = {"prog"};
  cli_args args(1, argv);
  const auto list = args.get_int_list("cores", {7, 9});
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], 7);
}

TEST(CliArgs, Positional) {
  const char* argv[] = {"prog", "input.txt", "--k=1", "more"};
  cli_args args(4, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "more");
}

TEST(CliArgs, DoubleValues) {
  const char* argv[] = {"prog", "--x=2.5"};
  cli_args args(2, argv);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0), 2.5);
  EXPECT_DOUBLE_EQ(args.get_double("y", 1.25), 1.25);
}

// --- table / formatting ------------------------------------------------------

TEST(Table, AlignedOutput) {
  table_writer t({"a", "bee"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| a   | bee |"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4   |"), std::string::npos);
}

TEST(Table, Csv) {
  table_writer t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, DoubleRow) {
  table_writer t({"x", "y"});
  t.add_numeric_row({1.5, 2.0}, 2);
  EXPECT_EQ(t.data()[0][0], "1.5");
  EXPECT_EQ(t.data()[0][1], "2");
}

TEST(Formatting, Numbers) {
  EXPECT_EQ(format_number(1.5), "1.5");
  EXPECT_EQ(format_number(3.0), "3");
  EXPECT_EQ(format_number(0.25, 4), "0.25");
  EXPECT_EQ(format_number(-0.0), "0");
  EXPECT_EQ(format_number(1.23456, 2), "1.23");
}

TEST(Formatting, Durations) {
  EXPECT_EQ(format_duration_ns(312), "312 ns");
  EXPECT_EQ(format_duration_ns(21'400), "21.40 us");
  EXPECT_EQ(format_duration_ns(1'750'000'000), "1.750 s");
}

TEST(Formatting, Counts) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(12'500'000), "12,500,000");
  EXPECT_EQ(format_count(-1234), "-1,234");
}


TEST(CliArgs, NegativeValuesRequireEqualsForm) {
  // "--x -5" cannot distinguish a negative value from a flag; the
  // documented form is "--x=-5".
  const char* argv[] = {"prog", "--a=-5", "--b", "-7"};
  cli_args args(4, argv);
  EXPECT_EQ(args.get_int("a", 0), -5);
  EXPECT_TRUE(args.has("b"));          // "-7" was NOT consumed as b's value
  EXPECT_EQ(args.get_int("b", 99), 99);
}

TEST(CliArgs, LastDuplicateWins) {
  const char* argv[] = {"prog", "--x=1", "--x=2"};
  cli_args args(3, argv);
  EXPECT_EQ(args.get_int("x", 0), 2);
}

TEST(Formatting, NegativeDurations) {
  EXPECT_EQ(format_duration_ns(-2'500'000), "-2.50 ms");
}

TEST(SampleStats, PercentileHandlesUnsortedInput) {
  sample_stats s;
  for (double x : {9.0, 1.0, 5.0, 3.0, 7.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 9.0);
}

// --- env ---------------------------------------------------------------------

TEST(Env, StringIntBool) {
  ::setenv("GRAN_TEST_STR", "hello", 1);
  ::setenv("GRAN_TEST_INT", "123", 1);
  ::setenv("GRAN_TEST_BOOL", "yes", 1);
  EXPECT_EQ(env_string("GRAN_TEST_STR", "x"), "hello");
  EXPECT_EQ(env_int("GRAN_TEST_INT", 0), 123);
  EXPECT_TRUE(env_bool("GRAN_TEST_BOOL", false));
  EXPECT_EQ(env_string("GRAN_TEST_ABSENT", "def"), "def");
  EXPECT_EQ(env_int("GRAN_TEST_ABSENT", 9), 9);
  ::setenv("GRAN_TEST_INT", "not_a_number", 1);
  EXPECT_EQ(env_int("GRAN_TEST_INT", 5), 5);
}


// --- unique_function -----------------------------------------------------------

TEST(UniqueFunction, EmptyAndBool) {
  unique_function<int()> f;
  EXPECT_FALSE(static_cast<bool>(f));
  f = [] { return 3; };
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(), 3);
  f = nullptr;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, CapturesMoveOnlyState) {
  auto p = std::make_unique<int>(42);
  unique_function<int()> f = [p = std::move(p)] { return *p; };
  EXPECT_EQ(f(), 42);
  unique_function<int()> g = std::move(f);
  EXPECT_EQ(g(), 42);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
}

TEST(UniqueFunction, LargeCaptureGoesToHeap) {
  struct big {
    char data[256];
  };
  big b{};
  b.data[0] = 7;
  unique_function<int()> f = [b] { return b.data[0]; };
  EXPECT_EQ(f(), 7);
  unique_function<int()> g = std::move(f);
  EXPECT_EQ(g(), 7);
}

TEST(UniqueFunction, ArgumentsAndReturn) {
  unique_function<int(int, int)> f = [](int a, int b) { return a * 10 + b; };
  EXPECT_EQ(f(3, 4), 34);
}

TEST(UniqueFunction, DestructorRunsCapturedState) {
  auto flag = std::make_shared<bool>(false);
  struct sentinel {
    std::shared_ptr<bool> flag;
    ~sentinel() {
      if (flag) *flag = true;
    }
  };
  {
    unique_function<void()> f = [s = sentinel{flag}] { (void)s; };
  }
  EXPECT_TRUE(*flag);
}

TEST(UniqueFunction, MoveAssignReleasesOldTarget) {
  auto flag = std::make_shared<int>(0);
  struct counter {
    std::shared_ptr<int> flag;
    ~counter() {
      if (flag) ++*flag;
    }
    counter(std::shared_ptr<int> f) : flag(std::move(f)) {}
    counter(counter&& o) noexcept : flag(std::move(o.flag)) {}
  };
  unique_function<void()> f = [c = counter{flag}] { (void)c; };
  f = [] {};  // old target destroyed exactly once
  EXPECT_EQ(*flag, 1);
}

// --- timers ------------------------------------------------------------------

TEST(Timer, TscMonotonicAndCalibrated) {
  const auto a = tsc_clock::now();
  const auto b = tsc_clock::now();
  EXPECT_GE(b, a);
  EXPECT_GT(tsc_clock::ns_per_tick(), 0.0);
}

TEST(Timer, TscTracksWallClock) {
  const auto c0 = tsc_clock::now();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto c1 = tsc_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  const double tsc_ns = static_cast<double>(tsc_clock::to_ns(c1 - c0));
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  EXPECT_NEAR(tsc_ns, wall_ns, wall_ns * 0.25);  // within 25 %
}

TEST(Timer, Stopwatch) {
  stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(w.elapsed_ns(), 4'000'000);
  w.reset();
  EXPECT_LT(w.elapsed_s(), 0.5);
}

// --- backoff / cacheline ------------------------------------------------------

TEST(Backoff, EscalatesToYield) {
  backoff bo(4);
  EXPECT_FALSE(bo.yielding());
  for (int i = 0; i < 16; ++i) bo.pause();
  EXPECT_TRUE(bo.yielding());
  bo.reset();
  EXPECT_FALSE(bo.yielding());
}

TEST(Cacheline, PaddedIsolation) {
  static_assert(sizeof(padded<int>) % cache_line_size == 0);
  static_assert(alignof(padded<int>) == cache_line_size);
  padded<int> p(5);
  EXPECT_EQ(*p, 5);
  *p = 7;
  EXPECT_EQ(p.value, 7);
}

}  // namespace
}  // namespace gran
