// Tests for the live telemetry plane: windowed aggregation, the streaming
// exporters, the stall watchdog, the flight recorder, and the sampler's
// late-registration handling.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "perf/analysis.hpp"
#include "perf/counters.hpp"
#include "perf/exporter.hpp"
#include "perf/heartbeat.hpp"
#include "perf/histogram.hpp"
#include "perf/sampler_thread.hpp"
#include "perf/telemetry.hpp"
#include "perf/trace.hpp"
#include "perf/watchdog.hpp"
#include "perf/window.hpp"
#include "threads/thread_manager.hpp"
#include "util/minijson.hpp"
#include "util/timer.hpp"

namespace gran::perf {
namespace {

scheduler_config test_config(int workers) {
  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.pin_workers = false;
  return cfg;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "gran_telemetry_" + name;
}

void spin(int iters) {
  volatile double x = 1.0;
  for (int k = 0; k < iters; ++k) x = x * 1.0000001 + 0.1;
}

// Builds a window_snapshot by hand for the watchdog detectors (sorted
// metrics so value_or's binary search works).
window_snapshot make_window(
    std::vector<std::pair<std::string, double>> gauges,
    std::uint64_t tasks_delta, double phases_delta) {
  window_snapshot w;
  w.dt_s = 0.1;
  w.tasks_delta = tasks_delta;
  gauges.emplace_back("/threads/count/cumulative-phases", phases_delta);
  std::sort(gauges.begin(), gauges.end());
  for (auto& [path, value] : gauges) {
    window_metric m;
    m.path = path;
    m.kind = path == "/threads/count/cumulative-phases"
                 ? counter_kind::monotonic
                 : counter_kind::gauge;
    m.value = value;
    m.delta = value;  // the detectors read delta_or for phases
    w.metrics.push_back(std::move(m));
  }
  return w;
}

// --- window aggregation ----------------------------------------------------

TEST(WindowAggregator, DeltasAndRatesForMonotonicCounters) {
  auto& reg = registry::instance();
  std::atomic<double> v{100};
  reg.add("/wintest/count/events", counter_kind::monotonic, "test",
          [&v] { return v.load(); });
  window_options opt;
  opt.prefixes = {"/wintest"};
  window_aggregator agg(opt);

  v = 160;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  window_snapshot w = agg.tick();
  ASSERT_NE(w.find("/wintest/count/events"), nullptr);
  EXPECT_DOUBLE_EQ(w.delta_or("/wintest/count/events", -1), 60.0);
  EXPECT_GT(w.rate_or("/wintest/count/events", -1), 0.0);
  EXPECT_DOUBLE_EQ(w.value_or("/wintest/count/events", -1), 160.0);
  EXPECT_EQ(w.seq, 1u);
  EXPECT_GT(w.dt_s, 0.0);

  // Second window sees only the new increment.
  v = 170;
  w = agg.tick();
  EXPECT_DOUBLE_EQ(w.delta_or("/wintest/count/events", -1), 10.0);
  EXPECT_EQ(w.seq, 2u);

  reg.remove_prefix("/wintest");
}

TEST(WindowAggregator, ResetAwareDelta) {
  auto& reg = registry::instance();
  std::atomic<double> v{1000};
  reg.add("/wintest/count/events", counter_kind::monotonic, "test",
          [&v] { return v.load(); });
  window_options opt;
  opt.prefixes = {"/wintest"};
  window_aggregator agg(opt);

  // Counter went backwards (manager restart / reset_counters): the delta
  // restarts from the new value instead of going negative.
  v = 40;
  const window_snapshot w = agg.tick();
  EXPECT_DOUBLE_EQ(w.delta_or("/wintest/count/events", -1), 40.0);

  reg.remove_prefix("/wintest");
}

TEST(WindowAggregator, LateRegisteredCounterJoins) {
  auto& reg = registry::instance();
  reg.add("/wintest/a", counter_kind::gauge, "test", [] { return 1.0; });
  window_options opt;
  opt.prefixes = {"/wintest"};
  window_aggregator agg(opt);

  reg.add("/wintest/b", counter_kind::gauge, "test", [] { return 2.0; });
  const window_snapshot w = agg.tick();
  EXPECT_DOUBLE_EQ(w.value_or("/wintest/a", -1), 1.0);
  EXPECT_DOUBLE_EQ(w.value_or("/wintest/b", -1), 2.0);

  reg.remove_prefix("/wintest");
}

TEST(WindowAggregator, IntervalHistogramPercentiles) {
  log2_histogram h;
  histogram_registry::instance().add("/wintest/histogram/lat",
                                     [&h] { return h.snap(); });
  for (int i = 0; i < 100; ++i) h.record(1000);
  window_options opt;
  opt.prefixes = {"/wintest"};
  window_aggregator agg(opt);

  // Only the samples recorded inside the window land in the delta.
  for (int i = 0; i < 50; ++i) h.record(1 << 20);
  const window_snapshot w = agg.tick();
  const window_histogram* wh = w.find_histogram("/wintest/histogram/lat");
  ASSERT_NE(wh, nullptr);
  EXPECT_EQ(wh->delta.count, 50u);
  EXPECT_EQ(wh->cumulative.count, 150u);
  EXPECT_FALSE(wh->reset_detected);
  // All interval samples sit in the 2^20 bucket, far from the cumulative p50.
  EXPECT_GE(wh->delta.percentile(50), static_cast<double>(1 << 20));

  histogram_registry::instance().remove_prefix("/wintest");
}

TEST(HistogramSnapshot, SnapshotDeltaDetectsReset) {
  log2_histogram h;
  for (int i = 0; i < 10; ++i) h.record(100);
  const histogram_snapshot big = h.snap();
  h.reset();
  h.record(100);
  bool reset = false;
  const histogram_snapshot d = h.snap().snapshot_delta(big, &reset);
  EXPECT_TRUE(reset);
  EXPECT_EQ(d.count, 1u);  // falls back to the full current snapshot
}

// Acceptance cross-check: a single window spanning an entire run must agree
// with the offline cumulative metrics (Eq. 1–3) within 5%.
TEST(WindowAggregator, CrossChecksOfflineEq123) {
  thread_manager tm(test_config(2));
  // Warm the pool up first: workers fresh out of construction carry stale
  // round timestamps, and their first post-reset round would deposit
  // pre-reset wall time into func_ns — polluting the offline view but not
  // the window baseline.
  for (int i = 0; i < 200; ++i) tm.spawn([] { spin(500); });
  tm.wait_idle();
  tm.reset_counters();
  window_aggregator agg;  // baseline right after the reset

  constexpr int n = 2000;
  for (int i = 0; i < n; ++i) tm.spawn([] { spin(4000); });
  tm.wait_idle();
  // Idle func time keeps accruing while the workers spin in their scheduler
  // loops, so the offline Eq. 1 value drifts upward between any two samples.
  // Bracket the window's sample instant between two offline samples instead
  // of pretending all three happen atomically.
  const auto before = tm.counter_totals();
  const window_snapshot w = agg.tick();
  const auto totals = tm.counter_totals();

  ASSERT_EQ(totals.tasks_executed, static_cast<std::uint64_t>(n));
  EXPECT_EQ(w.tasks_delta, static_cast<std::uint64_t>(n));

  // Eq. 1: interval idle-rate sits between the offline values sampled just
  // before and just after the tick (small epsilon for the baseline gap
  // between reset_counters and the aggregator construction).
  const auto idle_of = [](const thread_manager::totals& t) {
    return t.func_ns > 0 ? static_cast<double>(t.func_ns - t.exec_ns) /
                               static_cast<double>(t.func_ns)
                         : 0.0;
  };
  EXPECT_GE(w.idle_rate, idle_of(before) - 0.05);
  EXPECT_LE(w.idle_rate, idle_of(totals) + 0.05);

  // Eq. 2: mean task duration vs exec_ns / tasks (drift-free: both views
  // are frozen once the pool drains).
  const double off_duration =
      static_cast<double>(totals.exec_ns) / static_cast<double>(n);
  ASSERT_GT(w.task_duration_mean_ns, 0.0);
  EXPECT_NEAR(w.task_duration_mean_ns / off_duration, 1.0, 0.05);

  // Interval percentiles are ordered and bracket the mean's ballpark.
  EXPECT_GT(w.task_duration_p50_ns, 0.0);
  EXPECT_LE(w.task_duration_p50_ns, w.task_duration_p95_ns);
  EXPECT_LE(w.task_duration_p95_ns, w.task_duration_p99_ns);
}

// --- exporters -------------------------------------------------------------

TEST(Exporter, PrometheusFamilyMapping) {
  const auto plain = prometheus_family_of("/threads/count/cumulative");
  EXPECT_EQ(plain.name, "gran_threads_count_cumulative");
  EXPECT_EQ(plain.instance, "");
  const auto inst = prometheus_family_of("/threads{worker#3}/idle-rate");
  EXPECT_EQ(inst.name, "gran_threads_idle_rate");
  EXPECT_EQ(inst.instance, "worker#3");
}

TEST(Exporter, PrometheusOutputValidates) {
  thread_manager tm(test_config(2));
  window_aggregator agg;
  for (int i = 0; i < 200; ++i) tm.spawn([] { spin(500); });
  tm.wait_idle();
  const window_snapshot w = agg.tick();

  std::stringstream body;
  write_prometheus_text(body, w);
  ASSERT_FALSE(body.str().empty());
  EXPECT_NE(body.str().find("gran_window_idle_rate"), std::string::npos);
  EXPECT_NE(body.str().find("gran_threads_count_cumulative"),
            std::string::npos);
  std::string error;
  EXPECT_TRUE(validate_prometheus_text(body, &error)) << error;
}

TEST(Exporter, PrometheusValidatorRejectsMalformed) {
  const auto rejects = [](const std::string& text) {
    std::stringstream ss(text);
    std::string error;
    const bool ok = validate_prometheus_text(ss, &error);
    EXPECT_FALSE(ok);
    EXPECT_FALSE(error.empty());
  };
  rejects("9bad_name 1\n");                         // digit-leading name
  rejects("metric{label=\"x} 1\n");                 // unterminated label value
  rejects("metric one\n");                          // unparseable value
  rejects("# TYPE m gauge\n# TYPE m counter\nm 1\n");  // duplicate TYPE
}

TEST(Exporter, JsonlWindowParsesAndCarriesWorkers) {
  thread_manager tm(test_config(2));
  window_aggregator agg;
  for (int i = 0; i < 200; ++i) tm.spawn([] { spin(500); });
  tm.wait_idle();
  const window_snapshot w = agg.tick();

  std::stringstream line;
  write_window_jsonl(line, w);
  std::string err;
  const auto doc = json_value::parse(
      line.str().substr(0, line.str().size() - 1), &err);  // strip '\n'
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->string_at("type"), "window");
  EXPECT_EQ(doc->number_at("seq"), 1.0);
  const json_value* interval = doc->find("interval");
  ASSERT_NE(interval, nullptr);
  EXPECT_EQ(interval->number_at("tasks"), 200.0);
  const json_value* workers = doc->find("workers");
  ASSERT_NE(workers, nullptr);
  EXPECT_EQ(workers->size(), 2u);
  const json_value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->find("/threads/count/cumulative"), nullptr);
}

TEST(Exporter, NonFiniteValuesSerializeAsZero) {
  window_snapshot w;
  w.seq = 1;
  w.dt_s = 0.1;
  w.idle_rate = std::numeric_limits<double>::quiet_NaN();
  w.tasks_per_s = std::numeric_limits<double>::infinity();
  std::stringstream line;
  write_window_jsonl(line, w);
  const auto doc = json_value::parse(line.str().substr(0, line.str().size() - 1));
  ASSERT_TRUE(doc.has_value());  // NaN/Inf would make this fail to parse
  EXPECT_EQ(doc->find("interval")->number_at("idle_rate", -1), 0.0);
  EXPECT_EQ(doc->find("interval")->number_at("tasks_per_s", -1), 0.0);

  std::stringstream prom;
  write_prometheus_text(prom, w);
  std::string error;
  EXPECT_TRUE(validate_prometheus_text(prom, &error)) << error;
}

TEST(Exporter, MetricsSinkAppendsToFile) {
  const std::string path = temp_path("sink.jsonl");
  std::remove(path.c_str());
  metrics_sink sink;
  ASSERT_TRUE(sink.open(path));
  sink.write("line1\n");
  sink.write("line2\n");
  EXPECT_EQ(sink.bytes_written(), 12u);
  sink.close();

  std::ifstream f(path);
  std::string a, b;
  std::getline(f, a);
  std::getline(f, b);
  EXPECT_EQ(a, "line1");
  EXPECT_EQ(b, "line2");
  std::remove(path.c_str());
}

// Minimal loopback TCP listener for the tcp://host:port sink destination.
// The kernel completes the handshake from the listen backlog, so a
// single-threaded connect-then-accept sequence never deadlocks.
struct loopback_listener {
  int fd = -1;
  std::uint16_t port = 0;

  bool start(std::uint16_t want_port = 0) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(want_port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 1) != 0) {
      stop();
      return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    port = ntohs(addr.sin_port);
    return true;
  }
  int accept_one() { return ::accept(fd, nullptr, nullptr); }
  void stop() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  ~loopback_listener() { stop(); }
};

std::string recv_line(int fd) {
  std::string line;
  char c;
  while (::recv(fd, &c, 1, 0) == 1) {
    if (c == '\n') break;
    line.push_back(c);
  }
  return line;
}

TEST(Exporter, MetricsSinkTcpRoundTripAndReconnect) {
  loopback_listener listener;
  ASSERT_TRUE(listener.start());
  const std::string dest = "tcp://127.0.0.1:" + std::to_string(listener.port);

  metrics_sink sink;
  ASSERT_TRUE(sink.open(dest));
  int conn = listener.accept_one();
  ASSERT_GE(conn, 0);

  // A real window line end to end: serialize, send, receive, parse.
  window_snapshot w;
  w.seq = 7;
  w.dt_s = 0.1;
  std::stringstream line;
  write_window_jsonl(line, w);
  sink.write(line.str());
  const std::string got = recv_line(conn);
  std::string err;
  const auto doc = json_value::parse(got, &err);
  ASSERT_TRUE(doc.has_value()) << err << " in: " << got;
  EXPECT_EQ(doc->string_at("type"), "window");
  EXPECT_EQ(static_cast<int>(doc->number_at("seq", -1)), 7);

  // Listener goes away: the sink must disable itself (one warning, no
  // SIGPIPE, no exception) instead of killing the telemetry thread. The
  // first write after the close may still land in the kernel buffer; the
  // RST it provokes fails a subsequent one.
  ::close(conn);
  listener.stop();
  for (int i = 0; i < 20 && sink.ok(); ++i) {
    sink.write(line.str());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(sink.ok());

  // Listener restarts on the same port: a re-open() is the reconnect path
  // (the session keeps its sink object across scraper restarts).
  ASSERT_TRUE(listener.start(listener.port));
  ASSERT_TRUE(sink.open(dest));
  conn = listener.accept_one();
  ASSERT_GE(conn, 0);
  sink.write(line.str());
  const std::string again = recv_line(conn);
  const auto doc2 = json_value::parse(again, &err);
  ASSERT_TRUE(doc2.has_value()) << err << " in: " << again;
  EXPECT_EQ(doc2->string_at("type"), "window");
  ::close(conn);
}

// --- stall watchdog --------------------------------------------------------

class WatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stall_stats::instance().reset();
    heartbeat_board::instance().attach(1);
  }
  void TearDown() override { heartbeat_board::instance().detach(); }
};

TEST_F(WatchdogTest, StuckTaskDetectedOncePerPhase) {
  auto* slot = heartbeat_board::instance().slot(0);
  slot->task_id.store(42, std::memory_order_relaxed);
  slot->phase_start_ticks.store(tsc_clock::now(), std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  watchdog_options opt;
  opt.stuck_ns = 1'000'000;  // 1 ms, long exceeded by the sleep
  stall_watchdog dog(opt);
  const window_snapshot w = make_window({}, 0, 0);

  auto incidents = dog.check(w);
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].kind, stall_kind::stuck_task);
  EXPECT_EQ(incidents[0].worker, 0);
  EXPECT_EQ(incidents[0].task_id, 42u);
  EXPECT_GE(incidents[0].age_ns, 1e6);
  EXPECT_EQ(stall_stats::instance().stuck.load(), 1u);

  // Same phase: deduplicated.
  EXPECT_TRUE(dog.check(w).empty());

  // Phase ends, a new long phase starts: the detector re-arms.
  slot->phase_start_ticks.store(0, std::memory_order_relaxed);
  EXPECT_TRUE(dog.check(w).empty());
  slot->phase_start_ticks.store(tsc_clock::now(), std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(dog.check(w).size(), 1u);
}

TEST_F(WatchdogTest, NoStuckIncidentBelowThreshold) {
  auto* slot = heartbeat_board::instance().slot(0);
  slot->phase_start_ticks.store(tsc_clock::now(), std::memory_order_relaxed);
  watchdog_options opt;
  opt.stuck_ns = 500'000'000;
  stall_watchdog dog(opt);
  EXPECT_TRUE(dog.check(make_window({}, 0, 0)).empty());
  EXPECT_EQ(stall_stats::instance().total(), 0u);
}

TEST_F(WatchdogTest, StarvedBackloggedAfterConsecutiveTicks) {
  stall_watchdog dog;
  const window_snapshot starved = make_window(
      {{"/threads/count/instantaneous/starving", 2},
       {"/threads/count/instantaneous/queued", 5}},
      0, 0);

  EXPECT_TRUE(dog.check(starved).empty());
  EXPECT_TRUE(dog.check(starved).empty());
  auto incidents = dog.check(starved);  // third consecutive window
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].kind, stall_kind::starved_backlogged);
  EXPECT_EQ(stall_stats::instance().starved.load(), 1u);
  // Episode stays open: no repeat incident while the condition persists.
  EXPECT_TRUE(dog.check(starved).empty());

  // Flow resumes -> episode closes -> a new episode can fire again.
  const window_snapshot flowing = make_window(
      {{"/threads/count/instantaneous/starving", 2},
       {"/threads/count/instantaneous/queued", 5}},
      10, 10);
  EXPECT_TRUE(dog.check(flowing).empty());
  dog.check(starved);
  dog.check(starved);
  EXPECT_EQ(dog.check(starved).size(), 1u);
}

TEST_F(WatchdogTest, FlatlineRequiresAliveTasksAndNoPhaseInFlight) {
  stall_watchdog dog;
  const window_snapshot dead = make_window(
      {{"/threads/count/instantaneous/alive", 3}}, 0, 0);
  dog.check(dead);
  dog.check(dead);
  auto incidents = dog.check(dead);
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].kind, stall_kind::flatline);

  // A phase in flight (one legit long task) suppresses flatline entirely.
  stall_watchdog dog2;
  heartbeat_board::instance().slot(0)->phase_start_ticks.store(
      tsc_clock::now(), std::memory_order_relaxed);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(dog2.check(dead).empty());

  // Idle-but-empty (alive == 0) never flatlines.
  heartbeat_board::instance().slot(0)->phase_start_ticks.store(
      0, std::memory_order_relaxed);
  stall_watchdog dog3;
  const window_snapshot idle = make_window({}, 0, 0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(dog3.check(idle).empty());
}

// --- telemetry session -----------------------------------------------------

TEST(Telemetry, StreamsParseableWindowsWithHeartbeats) {
  const std::string path = temp_path("stream.jsonl");
  std::remove(path.c_str());

  telemetry_options to;
  to.jsonl_out = path;
  to.interval_us = 10'000;
  to.install_signal_handler = false;
  telemetry_session session(to);
  {
    thread_manager tm(test_config(2));
    std::atomic<bool> stop{false};
    for (int i = 0; i < 4; ++i)
      tm.spawn([&stop] {
        while (!stop.load()) {
          spin(2000);
          this_task::yield();
        }
      });
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    stop = true;
    tm.wait_idle();
  }
  session.stop();
  EXPECT_GE(session.windows_exported(), 2u);

  std::ifstream f(path);
  ASSERT_TRUE(f.is_open());
  std::string line;
  std::size_t windows = 0, with_heartbeat = 0;
  double last_seq = 0;
  while (std::getline(f, line)) {
    std::string err;
    const auto doc = json_value::parse(line, &err);
    ASSERT_TRUE(doc.has_value()) << err << " in: " << line;
    if (doc->string_at("type") != "window") continue;
    ++windows;
    EXPECT_GT(doc->number_at("seq"), last_seq);
    last_seq = doc->number_at("seq");
    if (const json_value* workers = doc->find("workers"))
      for (const json_value& row : workers->items())
        if (row.find("heartbeat_age_ns") != nullptr) ++with_heartbeat;
  }
  EXPECT_EQ(windows, session.windows_exported());
  // At least one mid-run window carried live heartbeat columns.
  EXPECT_GT(with_heartbeat, 0u);
  std::remove(path.c_str());
}

TEST(Telemetry, PrometheusFileRewrittenAtomically) {
  const std::string path = temp_path("scrape.prom");
  std::remove(path.c_str());
  telemetry_options to;
  to.prom_out = path;
  to.interval_us = 10'000;
  to.install_signal_handler = false;
  telemetry_session session(to);
  {
    thread_manager tm(test_config(2));
    for (int i = 0; i < 500; ++i) tm.spawn([] { spin(1000); });
    tm.wait_idle();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  session.stop();

  std::ifstream f(path);
  ASSERT_TRUE(f.is_open());
  std::string error;
  EXPECT_TRUE(validate_prometheus_text(f, &error)) << error;
  std::remove(path.c_str());
}

TEST(Telemetry, FlightDumpRoundTripsThroughAnalyzer) {
  const std::string prefix = temp_path("flight");
  telemetry_options to;
  to.jsonl_out = temp_path("flight.jsonl");
  to.interval_us = 50'000;
  to.flight_prefix = prefix;  // force-enables tracing
  to.install_signal_handler = false;
  telemetry_session session(to);
  ASSERT_TRUE(tracer::enabled());
  {
    thread_manager tm(test_config(2));
    for (int i = 0; i < 500; ++i) tm.spawn([] { spin(1000); });
    tm.wait_idle();

    const std::string bin = session.capture_flight("test");
    ASSERT_FALSE(bin.empty());
    EXPECT_EQ(session.flights_captured(), 1u);
    EXPECT_EQ(session.last_flight_path(), bin);

    trace_dump dump;
    ASSERT_TRUE(load_trace_binary(bin, dump));
    EXPECT_GT(dump.total_events(), 0u);
    const analysis_result r = analyze_trace(dump);
    EXPECT_TRUE(r.ok) << r.error;

    // The companion report was generated alongside the binary.
    const std::string txt = bin.substr(0, bin.size() - 4) + ".txt";
    std::ifstream report(txt);
    EXPECT_TRUE(report.is_open());
    std::remove(bin.c_str());
    std::remove(txt.c_str());
  }
  session.stop();
  tracer::instance().disable();
  tracer::instance().clear();
  std::remove(to.jsonl_out.c_str());
}

// --- sampler late registration (regression) --------------------------------

TEST(SamplerThread, LateRegisteredCounterGetsColumn) {
  auto& reg = registry::instance();
  reg.add("/latetest/a", counter_kind::gauge, "test", [] { return 1.0; });

  sampler_options so;
  so.prefixes = {"/latetest"};
  so.interval_us = 2000;
  sampler_thread sampler(so);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Register a second counter while the sampler is running: it must join
  // the column set instead of being silently dropped (the old behavior froze
  // the columns at the first tick).
  reg.add("/latetest/b", counter_kind::gauge, "test", [] { return 2.0; });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.stop();

  const auto columns = sampler.columns();
  ASSERT_EQ(columns.size(), 2u);
  EXPECT_EQ(columns[0], "/latetest/a");
  EXPECT_EQ(columns[1], "/latetest/b");

  const auto rows = sampler.series();
  ASSERT_GT(rows.size(), 2u);
  for (const auto& r : rows) ASSERT_EQ(r.values.size(), 2u);
  // Early rows predate /latetest/b: NaN-padded, never mis-aligned.
  EXPECT_TRUE(std::isnan(rows.front().values[1]));
  EXPECT_DOUBLE_EQ(rows.front().values[0], 1.0);
  EXPECT_DOUBLE_EQ(rows.back().values[1], 2.0);

  reg.remove_prefix("/latetest");
}

}  // namespace
}  // namespace gran::perf
