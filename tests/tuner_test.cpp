// Tests for the adaptive grain-size tuner (core/tuner.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "core/tuner.hpp"

namespace gran::core {
namespace {

TEST(GrainTuner, GrowsOnOverheadRegime) {
  grain_tuner t(16);
  // Moderately high idle-rate with plenty of tasks: coarsen by grow_factor.
  const std::size_t next = t.update(0.45, /*tasks=*/1000, /*cores=*/4);
  EXPECT_EQ(next, 32u);
  EXPECT_EQ(t.chunk(), 32u);
}

TEST(GrainTuner, GrowsFasterWhenFarAboveWatermark) {
  grain_tuner t(16);
  // Deep in the overhead regime (idle >> high_water): squared growth.
  EXPECT_EQ(t.update(0.9, 1000, 4), 64u);
}

TEST(GrainTuner, ShrinksOnStarvation) {
  grain_tuner t(1024);
  // High idle-rate with fewer tasks than cores: starvation, must refine.
  const std::size_t next = t.update(0.8, /*tasks=*/3, /*cores=*/8);
  EXPECT_EQ(next, 512u);
}

TEST(GrainTuner, HoldsInsideBand) {
  grain_tuner t(64);
  EXPECT_EQ(t.update(0.15, 1000, 4), 64u);  // between watermarks
  EXPECT_EQ(t.update(0.02, 1000, 4), 64u);  // below low water: hold
}

TEST(GrainTuner, RespectsClamps) {
  tuner_options opts;
  opts.min_chunk = 8;
  opts.max_chunk = 64;
  grain_tuner t(16, opts);
  for (int i = 0; i < 10; ++i) t.update(0.9, 1000, 4);
  EXPECT_EQ(t.chunk(), 64u);
  for (int i = 0; i < 10; ++i) t.update(0.9, 1, 4);
  EXPECT_EQ(t.chunk(), 8u);
}

TEST(GrainTuner, InitialChunkClamped) {
  tuner_options opts;
  opts.min_chunk = 32;
  opts.max_chunk = 128;
  EXPECT_EQ(grain_tuner(1, opts).chunk(), 32u);
  EXPECT_EQ(grain_tuner(4096, opts).chunk(), 128u);
}

TEST(GrainTuner, HistoryRecordsDecisions) {
  grain_tuner t(16);
  t.update(0.45, 1000, 4);
  t.update(0.1, 1000, 4);
  ASSERT_EQ(t.history().size(), 2u);
  EXPECT_EQ(t.history()[0].chunk_before, 16u);
  EXPECT_EQ(t.history()[0].chunk_after, 32u);
  EXPECT_DOUBLE_EQ(t.history()[1].idle_rate, 0.1);
  EXPECT_EQ(t.history()[1].chunk_after, 32u);
}

TEST(GrainTuner, HistoryIsBoundedByLimit) {
  tuner_options opts;
  opts.history_limit = 4;
  grain_tuner t(16, opts);
  for (int i = 0; i < 10; ++i) t.update(0.01 * i, 1000, 4);
  const auto h = t.history();
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(t.dropped_decisions(), 6u);
  // Chronological order: the ring keeps the newest `limit` decisions.
  for (std::size_t i = 0; i < h.size(); ++i)
    EXPECT_DOUBLE_EQ(h[i].idle_rate, 0.01 * static_cast<double>(6 + i));
}

TEST(GrainTuner, HistoryLimitZeroKeepsNothing) {
  tuner_options opts;
  opts.history_limit = 0;
  grain_tuner t(16, opts);
  for (int i = 0; i < 5; ++i) t.update(0.45, 1000, 4);
  EXPECT_TRUE(t.history().empty());
  EXPECT_EQ(t.dropped_decisions(), 5u);
  EXPECT_EQ(t.chunk(), 512u);  // tuning itself is unaffected by the cap
}

TEST(GrainTuner, CustomFactors) {
  tuner_options opts;
  opts.grow_factor = 4.0;
  opts.shrink_factor = 0.25;
  grain_tuner t(64, opts);
  EXPECT_EQ(t.update(0.5, 1000, 2), 256u);   // single factor
  EXPECT_EQ(t.update(0.9, 1, 2), 64u);       // starvation shrink
}

// --- adaptive_chunked_for_each ------------------------------------------------

TEST(AdaptiveForEach, ProcessesEveryItemExactlyOnce) {
  scheduler_config cfg;
  cfg.num_workers = 2;
  cfg.pin_workers = false;
  thread_manager tm(cfg);

  constexpr std::size_t n = 20'000;
  std::vector<std::atomic<int>> hits(n);
  const auto report = adaptive_chunked_for_each(
      tm, n, /*initial_chunk=*/8, [&hits](std::size_t first, std::size_t last) {
        for (std::size_t i = first; i < last; ++i)
          hits[i].fetch_add(1, std::memory_order_relaxed);
      });
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "item " << i;
  EXPECT_GE(report.waves, 1u);
  EXPECT_EQ(report.decisions.size(), report.waves);
  EXPECT_GE(report.final_chunk, 1u);
}

TEST(AdaptiveForEach, EmptyRange) {
  scheduler_config cfg;
  cfg.num_workers = 1;
  cfg.pin_workers = false;
  thread_manager tm(cfg);
  std::atomic<int> calls{0};
  const auto report = adaptive_chunked_for_each(
      tm, 0, 8, [&calls](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(report.waves, 0u);
}

TEST(AdaptiveForEach, GrowsChunkOnTinyTasks) {
  scheduler_config cfg;
  cfg.num_workers = 4;  // oversubscribed: scheduling overhead dominates
  cfg.pin_workers = false;
  thread_manager tm(cfg);
  std::atomic<long> sink{0};
  const auto report = adaptive_chunked_for_each(
      tm, 200'000, /*initial_chunk=*/4,
      [&sink](std::size_t first, std::size_t last) {
        sink.fetch_add(static_cast<long>(last - first), std::memory_order_relaxed);
      });
  EXPECT_EQ(sink.load(), 200'000);
  // Trivial per-item work through tiny chunks must push the tuner upward.
  EXPECT_GT(report.final_chunk, 4u);
}

}  // namespace
}  // namespace gran::core
