// Tests for the experiment driver (core/experiment.hpp) over both backends.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/selectors.hpp"
#include "sim/sim_backend.hpp"

namespace gran::core {
namespace {

TEST(ExperimentDriver, SimSweepProducesConsistentPoints) {
  sim::sim_backend backend("haswell");
  sweep_config cfg;
  cfg.base.total_points = 500'000;
  cfg.base.time_steps = 10;
  cfg.partition_sizes = {1'000, 10'000, 100'000};
  cfg.cores = 8;
  cfg.samples = 2;

  granularity_experiment exp(backend, cfg);
  int progress_calls = 0;
  const auto points = exp.run([&](const sweep_point&) { ++progress_calls; });

  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(progress_calls, 3);
  for (const auto& p : points) {
    EXPECT_EQ(p.cores, 8);
    EXPECT_EQ(p.exec_time_s.count(), 2u);
    EXPECT_GT(p.exec_time_s.mean(), 0.0);
    EXPECT_GE(p.cov, 0.0);
    EXPECT_EQ(p.mean.tasks, p.num_tasks);
    EXPECT_GE(p.m.idle_rate, 0.0);
    EXPECT_LE(p.m.idle_rate, 1.0);
    EXPECT_GT(p.td1_ns, 0.0) << "baseline pass must fill td1";
  }
  // td1 grows with partition size (more points per task).
  EXPECT_LT(points[0].td1_ns, points[2].td1_ns);
}

TEST(ExperimentDriver, BaselinesReusedAcrossRuns) {
  sim::sim_backend backend("haswell");
  sweep_config cfg;
  cfg.base.total_points = 200'000;
  cfg.base.time_steps = 5;
  cfg.partition_sizes = {5'000, 50'000};
  cfg.cores = 4;
  cfg.samples = 1;

  granularity_experiment exp(backend, cfg);
  exp.run();
  const auto baselines = exp.baselines();
  ASSERT_EQ(baselines.size(), 2u);

  granularity_experiment exp2(backend, cfg);
  exp2.set_baselines(baselines);
  const auto points = exp2.run();
  EXPECT_DOUBLE_EQ(points[0].td1_ns, baselines[0]);
  EXPECT_DOUBLE_EQ(points[1].td1_ns, baselines[1]);
}

TEST(ExperimentDriver, BaselineSkippedWhenDisabled) {
  sim::sim_backend backend("haswell");
  sweep_config cfg;
  cfg.base.total_points = 200'000;
  cfg.base.time_steps = 5;
  cfg.partition_sizes = {5'000};
  cfg.cores = 4;
  cfg.samples = 1;
  cfg.measure_baseline = false;

  granularity_experiment exp(backend, cfg);
  const auto points = exp.run();
  EXPECT_EQ(points[0].td1_ns, 0.0);
  EXPECT_EQ(points[0].m.wait_time_s, 0.0);
}

TEST(ExperimentDriver, PartitionSizesNormalized) {
  sim::sim_backend backend("haswell");
  sweep_config cfg;
  cfg.base.total_points = 100'000;
  cfg.base.time_steps = 5;
  cfg.partition_sizes = {3'000};  // does not divide 100,000
  cfg.cores = 2;
  cfg.samples = 1;
  granularity_experiment exp(backend, cfg);
  const auto points = exp.run();
  EXPECT_EQ(100'000u % points[0].partition_size, 0u);
}

TEST(ExperimentDriver, NativeBackendSmallSweep) {
  native_backend backend;
  EXPECT_EQ(backend.name(), "native(priority-local-fifo)");
  sweep_config cfg;
  cfg.base.total_points = 50'000;
  cfg.base.time_steps = 5;
  cfg.partition_sizes = {1'000, 10'000};
  cfg.cores = 2;
  cfg.samples = 1;
  granularity_experiment exp(backend, cfg);
  const auto points = exp.run();
  ASSERT_EQ(points.size(), 2u);
  for (const auto& p : points) {
    EXPECT_EQ(p.mean.tasks, p.num_tasks);
    EXPECT_GT(p.exec_time_s.mean(), 0.0);
    EXPECT_GT(p.mean.exec_ns, 0.0);
    EXPECT_GE(p.mean.func_ns, p.mean.exec_ns);
    EXPECT_GE(p.mean.pending_accesses, p.mean.tasks);
  }
}

TEST(ExperimentDriver, SelectorsComposeWithSimSweep) {
  sim::sim_backend backend("haswell");
  sweep_config cfg;
  cfg.base.total_points = 2'000'000;
  cfg.base.time_steps = 10;
  cfg.partition_sizes = {500, 5'000, 50'000, 500'000, 2'000'000};
  cfg.cores = 16;
  cfg.samples = 1;
  granularity_experiment exp(backend, cfg);
  const auto points = exp.run();

  const auto best = best_exec_time(points);
  EXPECT_GT(best.partition_size, 500u);
  EXPECT_LT(best.partition_size, 2'000'000u);

  const auto sel = idle_rate_threshold(points, 0.5);
  ASSERT_TRUE(sel.has_value());
  EXPECT_LT(sel->regret, 1.0);  // within 2x of optimum at a loose threshold

  const auto pq = pending_queue_minimum(points);
  EXPECT_LT(pq.regret, 1.0);
}

}  // namespace
}  // namespace gran::core
