// Unit tests for the task (HPX-thread) state machine and the race-free
// suspend/wake protocol of src/threads/task.hpp.
#include <gtest/gtest.h>

#include "fiber/stack.hpp"
#include "threads/task.hpp"

namespace gran {
namespace {

task::body_fn noop() {
  return [] {};
}

// Tasks assert they are staged or terminated at destruction; drive whatever
// state a test left behind to completion.
void finish_cleanly(task& t) {
  if (t.state() == task_state::suspended) t.wake();
  if (t.state() == task_state::suspending || t.state() == task_state::wake_requested)
    t.finalize_suspend();
  if (t.state() == task_state::pending) t.begin_phase(0);
  if (t.state() == task_state::active) {
    if (!t.context().finished()) t.context().resume();
    t.finish();
  }
}

TEST(TaskState, CreatedStaged) {
  task t(noop());
  EXPECT_EQ(t.state(), task_state::staged);
  EXPECT_FALSE(t.has_context());
  EXPECT_EQ(t.last_worker(), -1);
}

TEST(TaskState, IdsAreUniqueAndIncreasing) {
  task a(noop());
  task b(noop());
  EXPECT_LT(a.id(), b.id());
}

TEST(TaskState, ConvertAttachesContext) {
  task t(noop());
  t.convert_to_pending(fiber_stack(32 * 1024));
  EXPECT_EQ(t.state(), task_state::pending);
  EXPECT_TRUE(t.has_context());
  finish_cleanly(t);
}

TEST(TaskState, FullHappyPath) {
  task t(noop());
  t.convert_to_pending(fiber_stack(32 * 1024));
  t.begin_phase(3);
  EXPECT_EQ(t.state(), task_state::active);
  EXPECT_EQ(t.last_worker(), 3);
  t.context().resume();  // body runs to completion
  EXPECT_TRUE(t.context().finished());
  t.finish();
  EXPECT_EQ(t.state(), task_state::terminated);
  fiber_stack s = t.take_stack();
  EXPECT_TRUE(s.valid());
}

TEST(TaskState, SuspendThenFinalize) {
  task t(noop());
  t.convert_to_pending(fiber_stack(32 * 1024));
  t.begin_phase(0);
  t.mark_suspending();
  EXPECT_EQ(t.state(), task_state::suspending);
  EXPECT_TRUE(t.finalize_suspend());  // no waker raced: parked
  EXPECT_EQ(t.state(), task_state::suspended);
  finish_cleanly(t);
}

TEST(TaskState, WakeOfSuspendedReturnsTrue) {
  task t(noop());
  t.convert_to_pending(fiber_stack(32 * 1024));
  t.begin_phase(0);
  t.mark_suspending();
  ASSERT_TRUE(t.finalize_suspend());
  EXPECT_TRUE(t.wake());  // caller must enqueue
  EXPECT_EQ(t.state(), task_state::pending);
  EXPECT_FALSE(t.wake());  // second wake is a no-op
  finish_cleanly(t);
}

TEST(TaskState, WakeDuringSuspendingIsAbsorbed) {
  task t(noop());
  t.convert_to_pending(fiber_stack(32 * 1024));
  t.begin_phase(0);
  t.mark_suspending();
  // Waker arrives while the task is still switching away.
  EXPECT_FALSE(t.wake());  // absorbed: the worker re-queues
  EXPECT_EQ(t.state(), task_state::wake_requested);
  // Worker then finalizes: must NOT park, must hand the task back.
  EXPECT_FALSE(t.finalize_suspend());
  EXPECT_EQ(t.state(), task_state::pending);
  finish_cleanly(t);
}

TEST(TaskState, CancelSuspendRestoresActive) {
  task t(noop());
  t.convert_to_pending(fiber_stack(32 * 1024));
  t.begin_phase(0);
  t.mark_suspending();
  t.cancel_suspend();
  EXPECT_EQ(t.state(), task_state::active);
  finish_cleanly(t);
}

TEST(TaskState, CancelSuspendAfterWakeRequest) {
  task t(noop());
  t.convert_to_pending(fiber_stack(32 * 1024));
  t.begin_phase(0);
  t.mark_suspending();
  EXPECT_FALSE(t.wake());  // -> wake_requested
  t.cancel_suspend();      // waiter found the condition satisfied
  EXPECT_EQ(t.state(), task_state::active);
  finish_cleanly(t);
}

TEST(TaskState, YieldRequeue) {
  task t(noop());
  t.convert_to_pending(fiber_stack(32 * 1024));
  t.begin_phase(0);
  t.request_yield();
  t.mark_suspending();
  EXPECT_TRUE(t.consume_yield_request());
  EXPECT_FALSE(t.consume_yield_request());  // consumed
  t.requeue_after_yield();
  EXPECT_EQ(t.state(), task_state::pending);
  finish_cleanly(t);
}

TEST(TaskState, PhaseCounting) {
  task t(noop());
  EXPECT_EQ(t.phases(), 0u);
  t.count_phase();
  t.count_phase();
  EXPECT_EQ(t.phases(), 2u);
}

TEST(TaskState, WakeOnActiveIsNoop) {
  task t(noop());
  t.convert_to_pending(fiber_stack(32 * 1024));
  t.begin_phase(0);
  EXPECT_FALSE(t.wake());
  EXPECT_EQ(t.state(), task_state::active);
  finish_cleanly(t);
}

TEST(TaskState, StateNames) {
  EXPECT_STREQ(to_string(task_state::staged), "staged");
  EXPECT_STREQ(to_string(task_state::pending), "pending");
  EXPECT_STREQ(to_string(task_state::active), "active");
  EXPECT_STREQ(to_string(task_state::suspended), "suspended");
  EXPECT_STREQ(to_string(task_state::terminated), "terminated");
}

TEST(TaskState, PriorityNames) {
  EXPECT_STREQ(to_string(task_priority::low), "low");
  EXPECT_STREQ(to_string(task_priority::normal), "normal");
  EXPECT_STREQ(to_string(task_priority::high), "high");
}

}  // namespace
}  // namespace gran
