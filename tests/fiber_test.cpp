// Unit tests for src/fiber: raw context switching, fiber lifecycle, stack
// management and pooling.
#include <gtest/gtest.h>

#include <vector>

#include "fiber/fiber.hpp"
#include "fiber/stack.hpp"

namespace gran {
namespace {

TEST(FiberStack, AllocationAndMove) {
  fiber_stack s(64 * 1024);
  EXPECT_TRUE(s.valid());
  EXPECT_GE(s.size(), 64u * 1024);
  // Usable memory is writable.
  auto* base = static_cast<char*>(s.base());
  base[0] = 1;
  base[s.size() - 1] = 2;

  fiber_stack moved = std::move(s);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(s.valid());  // NOLINT(bugprone-use-after-move): testing move
}

TEST(FiberStack, SizeRoundedToPages) {
  fiber_stack s(1000);
  EXPECT_EQ(s.size() % 4096, 0u);
  EXPECT_GE(s.size(), 1000u);
}

TEST(StackPool, Recycles) {
  stack_pool pool(32 * 1024, 4);
  fiber_stack a = pool.acquire();
  void* base = a.base();
  pool.release(std::move(a));
  EXPECT_EQ(pool.cached(), 1u);
  fiber_stack b = pool.acquire();
  EXPECT_EQ(b.base(), base);  // same stack came back
  EXPECT_EQ(pool.cached(), 0u);
}

TEST(StackPool, CapRespected) {
  stack_pool pool(16 * 1024, 2);
  pool.release(fiber_stack(16 * 1024));
  pool.release(fiber_stack(16 * 1024));
  pool.release(fiber_stack(16 * 1024));  // dropped
  EXPECT_EQ(pool.cached(), 2u);
}

TEST(Fiber, RunsToCompletion) {
  stack_pool pool(64 * 1024);
  int called = 0;
  fiber f(pool.acquire(), [&] { called = 1; });
  EXPECT_FALSE(f.finished());
  void* r = f.resume();
  EXPECT_EQ(r, nullptr);
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(called, 1);
  pool.release(f.take_stack());
}

TEST(Fiber, SuspendResumeSequence) {
  stack_pool pool(64 * 1024);
  std::vector<int> log;
  fiber f(pool.acquire(), [&] {
    log.push_back(1);
    fiber::current()->suspend();
    log.push_back(3);
    fiber::current()->suspend();
    log.push_back(5);
  });
  log.push_back(0);
  f.resume();
  log.push_back(2);
  f.resume();
  log.push_back(4);
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(Fiber, ArgumentPassing) {
  stack_pool pool(64 * 1024);
  void* received = nullptr;
  fiber f(pool.acquire(), [&] {
    // suspend's return value is the argument of the next resume.
    received = fiber::current()->suspend(reinterpret_cast<void*>(0x1111));
  });
  void* from_suspend = f.resume();
  EXPECT_EQ(from_suspend, reinterpret_cast<void*>(0x1111));
  f.resume(reinterpret_cast<void*>(0x2222));
  EXPECT_EQ(received, reinterpret_cast<void*>(0x2222));
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, CurrentTracksNesting) {
  stack_pool pool(64 * 1024);
  EXPECT_EQ(fiber::current(), nullptr);
  fiber* inner_seen = nullptr;
  fiber* outer_seen = nullptr;
  fiber outer(pool.acquire(), [&] {
    outer_seen = fiber::current();
    fiber inner(fiber_stack(32 * 1024), [&] { inner_seen = fiber::current(); });
    inner.resume();
    EXPECT_EQ(fiber::current(), outer_seen);  // restored after nested fiber
  });
  outer.resume();
  EXPECT_EQ(fiber::current(), nullptr);
  EXPECT_NE(outer_seen, nullptr);
  EXPECT_NE(inner_seen, nullptr);
  EXPECT_NE(inner_seen, outer_seen);
}

TEST(Fiber, ManySequential) {
  stack_pool pool(32 * 1024, 8);
  long sum = 0;
  for (int i = 0; i < 2000; ++i) {
    fiber f(pool.acquire(), [&sum, i] { sum += i; });
    f.resume();
    pool.release(f.take_stack());
  }
  EXPECT_EQ(sum, 1999L * 2000 / 2);
}

TEST(Fiber, DeepStackUse) {
  stack_pool pool(256 * 1024);
  // Recursion that uses a few KB of fiber stack; verifies the usable region
  // is really usable and the guard page is where it should be.
  long result = 0;
  fiber f(pool.acquire(), [&] {
    struct rec {
      static long go(int depth) {
        volatile char pad[512];  // force stack growth
        pad[0] = static_cast<char>(depth);
        if (depth == 0) return pad[0];
        return go(depth - 1) + 1;
      }
    };
    result = rec::go(200);  // ~100 KB would overflow; 200*~0.6KB fits 256K
  });
  f.resume();
  EXPECT_EQ(result, 200);
}

TEST(Fiber, FloatingPointStatePreserved) {
  stack_pool pool(64 * 1024);
  double value = 0.0;
  fiber f(pool.acquire(), [&] {
    double x = 1.5;
    fiber::current()->suspend();
    x *= 2.0;  // executes after another context ran on this thread
    value = x;
  });
  f.resume();
  volatile double noise = 3.14159;
  noise = noise * 2.71828;
  (void)noise;
  f.resume();
  EXPECT_DOUBLE_EQ(value, 3.0);
}

}  // namespace
}  // namespace gran
