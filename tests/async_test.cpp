// Tests for the futures layer (src/async): future/promise, async, then,
// when_all/when_any, dataflow, unwrapping, packaged_task, exceptions.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "async/gran.hpp"

namespace gran {
namespace {

struct AsyncTest : ::testing::Test {
  AsyncTest() : tm(make_config()) {}
  static scheduler_config make_config() {
    scheduler_config cfg;
    cfg.num_workers = 3;
    cfg.pin_workers = false;
    return cfg;
  }
  thread_manager tm;
};

// --- future/promise -------------------------------------------------------

TEST_F(AsyncTest, PromiseDeliversValue) {
  promise<int> p;
  future<int> f = p.get_future();
  EXPECT_TRUE(f.valid());
  EXPECT_FALSE(f.is_ready());
  p.set_value(5);
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(), 5);
  EXPECT_EQ(f.get(), 5);  // shared semantics: get() is repeatable
}

TEST_F(AsyncTest, FutureCopiesShareState) {
  promise<std::string> p;
  future<std::string> a = p.get_future();
  future<std::string> b = a;  // copyable
  p.set_value("hello");
  EXPECT_EQ(a.get(), "hello");
  EXPECT_EQ(b.get(), "hello");
  EXPECT_EQ(&a.get(), &b.get());  // same underlying object
}

TEST_F(AsyncTest, VoidFuture) {
  promise<void> p;
  future<void> f = p.get_future();
  p.set_value();
  f.get();
  EXPECT_TRUE(f.is_ready());
}

TEST_F(AsyncTest, ExceptionPropagates) {
  promise<int> p;
  future<int> f = p.get_future();
  p.set_exception(std::make_exception_ptr(std::runtime_error("boom")));
  EXPECT_TRUE(f.has_exception());
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(AsyncTest, DoubleSetThrowsFutureError) {
  promise<int> p;
  p.set_value(1);
  EXPECT_THROW(p.set_value(2), std::future_error);
  EXPECT_THROW(p.set_exception(std::make_exception_ptr(std::runtime_error("x"))),
               std::future_error);
}

TEST_F(AsyncTest, MakeReadyAndExceptional) {
  EXPECT_EQ(make_ready_future<int>(9).get(), 9);
  make_ready_future().get();  // void
  auto bad = make_exceptional_future<int>(
      std::make_exception_ptr(std::logic_error("nope")));
  EXPECT_THROW(bad.get(), std::logic_error);
}

TEST_F(AsyncTest, InvalidFutureByDefault) {
  future<int> f;
  EXPECT_FALSE(f.valid());
  EXPECT_FALSE(f.is_ready());
}

TEST_F(AsyncTest, GetFromExternalThreadBlocks) {
  promise<int> p;
  future<int> f = p.get_future();
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    p.set_value(77);
  });
  EXPECT_EQ(f.get(), 77);  // main thread parks as an external waiter
  setter.join();
}

// --- async ------------------------------------------------------------------

TEST_F(AsyncTest, AsyncRunsOnWorker) {
  auto f = async([] { return this_task::worker_index(); });
  EXPECT_GE(f.get(), 0);
}

TEST_F(AsyncTest, AsyncWithArguments) {
  auto f = async([](int a, const std::string& b) { return b + std::to_string(a); }, 42,
                 std::string("x="));
  EXPECT_EQ(f.get(), "x=42");
}

TEST_F(AsyncTest, AsyncVoid) {
  std::atomic<bool> ran{false};
  auto f = async([&ran] { ran = true; });
  f.get();
  EXPECT_TRUE(ran.load());
}

TEST_F(AsyncTest, AsyncExceptionIntoFuture) {
  auto f = async([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(AsyncTest, AsyncOnExplicitManagerAndPriority) {
  auto f = async_on(tm, task_priority::high, [](int x) { return x * 2; }, 21);
  EXPECT_EQ(f.get(), 42);
}

TEST_F(AsyncTest, PostFireAndForget) {
  std::atomic<int> hits{0};
  for (int i = 0; i < 100; ++i) post([&hits] { ++hits; });
  tm.wait_idle();
  EXPECT_EQ(hits.load(), 100);
}

TEST_F(AsyncTest, NestedGetInsideTaskSuspends) {
  // Recursive fan-out with get() inside tasks: only cooperative suspension
  // keeps this from deadlocking on a small pool.
  std::function<long(int)> fib = [&](int n) -> long {
    if (n < 2) return n;
    auto left = async([&fib, n] { return fib(n - 1); });
    const long right = fib(n - 2);
    return left.get() + right;
  };
  EXPECT_EQ(async([&] { return fib(15); }).get(), 610);
}

// --- then / unwrap -----------------------------------------------------------

TEST_F(AsyncTest, ThenChains) {
  auto f = async([] { return 10; })
               .then([](future<int> x) { return x.get() + 5; })
               .then([](future<int> x) { return x.get() * 2; });
  EXPECT_EQ(f.get(), 30);
}

TEST_F(AsyncTest, ThenReceivesException) {
  auto f = async([]() -> int { throw std::runtime_error("inner"); })
               .then([](future<int> x) {
                 EXPECT_TRUE(x.has_exception());
                 return -1;  // recovered
               });
  EXPECT_EQ(f.get(), -1);
}

TEST_F(AsyncTest, ThenExceptionPropagates) {
  auto f = async([] { return 1; }).then([](future<int>) -> int {
    throw std::logic_error("continuation failed");
  });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST_F(AsyncTest, ThenUnwrapsFutureResult) {
  // A continuation returning future<int> yields future<int>, not
  // future<future<int>>.
  future<int> f = async([] { return 3; }).then([](future<int> x) {
    return async([v = x.get()] { return v * 7; });
  });
  EXPECT_EQ(f.get(), 21);
}

TEST_F(AsyncTest, ExplicitUnwrap) {
  auto outer = async([] { return make_ready_future<int>(13); });
  future<int> inner = unwrap(std::move(outer));
  EXPECT_EQ(inner.get(), 13);
}

TEST_F(AsyncTest, ThenOnAlreadyReadyFuture) {
  auto f = make_ready_future<int>(4).then([](future<int> x) { return x.get() + 1; });
  EXPECT_EQ(f.get(), 5);
}

// --- when_all / when_any --------------------------------------------------------

TEST_F(AsyncTest, WhenAllVector) {
  std::vector<future<int>> fs;
  for (int i = 0; i < 64; ++i) fs.push_back(async([i] { return i; }));
  when_all(fs).wait();
  int sum = 0;
  for (auto& f : fs) {
    ASSERT_TRUE(f.is_ready());
    sum += f.get();
  }
  EXPECT_EQ(sum, 63 * 64 / 2);
}

TEST_F(AsyncTest, WhenAllEmpty) {
  std::vector<future<int>> fs;
  auto all = when_all(fs);
  EXPECT_TRUE(all.is_ready());
}

TEST_F(AsyncTest, WhenAllVariadic) {
  auto a = async([] { return 1; });
  auto b = async([] { return std::string("two"); });
  auto c = async([] {});
  when_all(a, b, c).wait();
  EXPECT_TRUE(a.is_ready());
  EXPECT_TRUE(b.is_ready());
  EXPECT_TRUE(c.is_ready());
}

TEST_F(AsyncTest, WhenAllCountsExceptionsAsReady) {
  std::vector<future<int>> fs;
  fs.push_back(async([]() -> int { throw std::runtime_error("x"); }));
  fs.push_back(async([] { return 1; }));
  when_all(fs).wait();
  EXPECT_TRUE(fs[0].has_exception());
  EXPECT_EQ(fs[1].get(), 1);
}

TEST_F(AsyncTest, WhenAnyIndex) {
  promise<int> slow;
  std::vector<future<int>> fs;
  fs.push_back(slow.get_future());
  fs.push_back(make_ready_future<int>(2));
  const std::size_t idx = when_any(fs).get();
  EXPECT_EQ(idx, 1u);
  slow.set_value(0);  // cleanup
}

// --- dataflow --------------------------------------------------------------------

TEST_F(AsyncTest, DataflowWaitsForAllInputs) {
  promise<int> pa, pb;
  std::atomic<bool> fired{false};
  auto f = dataflow(
      [&fired](future<int>& a, future<int>& b) {
        fired = true;
        return a.get() + b.get();
      },
      pa.get_future(), pb.get_future());
  pa.set_value(30);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(fired.load());  // one input is not enough
  pb.set_value(12);
  EXPECT_EQ(f.get(), 42);
}

TEST_F(AsyncTest, DataflowNoInputsFiresImmediately) {
  auto f = dataflow([] { return 99; });
  EXPECT_EQ(f.get(), 99);
}

TEST_F(AsyncTest, DataflowUnwraps) {
  auto a = make_ready_future<int>(6);
  future<int> f = dataflow(
      [](future<int>& x) { return async([v = x.get()] { return v * 7; }); }, a);
  EXPECT_EQ(f.get(), 42);
}

TEST_F(AsyncTest, DataflowExceptionFromBody) {
  auto a = make_ready_future<int>(1);
  auto f = dataflow([](future<int>&) -> int { throw std::runtime_error("df"); }, a);
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(AsyncTest, DataflowVectorForm) {
  std::vector<future<int>> inputs;
  for (int i = 0; i < 10; ++i) inputs.push_back(async([i] { return i; }));
  auto f = dataflow_all(
      [](const std::vector<future<int>>& fs) {
        int s = 0;
        for (const auto& x : fs) s += x.get();
        return s;
      },
      inputs);
  EXPECT_EQ(f.get(), 45);
}

TEST_F(AsyncTest, DataflowChainDepth) {
  // A linear chain of dataflow nodes: each depends on the previous.
  future<int> f = make_ready_future<int>(0);
  for (int i = 0; i < 200; ++i)
    f = dataflow([](future<int>& prev) { return prev.get() + 1; }, f);
  EXPECT_EQ(f.get(), 200);
}

// --- packaged_task -----------------------------------------------------------------

TEST_F(AsyncTest, PackagedTaskBasics) {
  packaged_task<int(int, int)> pt([](int a, int b) { return a * b; });
  EXPECT_TRUE(pt.valid());
  auto f = pt.get_future();
  EXPECT_FALSE(f.is_ready());
  pt(6, 7);
  EXPECT_EQ(f.get(), 42);
}

TEST_F(AsyncTest, PackagedTaskException) {
  packaged_task<int()> pt([]() -> int { throw std::runtime_error("pt"); });
  auto f = pt.get_future();
  pt();
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(AsyncTest, PackagedTaskDoubleCallThrows) {
  packaged_task<int()> pt([] { return 1; });
  pt();
  EXPECT_THROW(pt(), std::future_error);
}

TEST_F(AsyncTest, PackagedTaskVoid) {
  int hits = 0;
  packaged_task<void()> pt([&hits] { ++hits; });
  auto f = pt.get_future();
  pt();
  f.get();
  EXPECT_EQ(hits, 1);
}


// --- executor --------------------------------------------------------------------

TEST_F(AsyncTest, ExecutorAsyncAndPost) {
  executor exec(tm);
  EXPECT_EQ(&exec.manager(), &tm);
  EXPECT_EQ(exec.priority(), task_priority::normal);
  EXPECT_EQ(exec.async([](int x) { return x + 1; }, 41).get(), 42);
  std::atomic<int> hits{0};
  for (int i = 0; i < 50; ++i) exec.post([&hits] { ++hits; });
  tm.wait_idle();
  EXPECT_EQ(hits.load(), 50);
}

TEST_F(AsyncTest, ExecutorWithPriority) {
  executor exec(tm);
  const executor high = exec.with_priority(task_priority::high);
  EXPECT_EQ(high.priority(), task_priority::high);
  EXPECT_EQ(&high.manager(), &tm);
  EXPECT_FALSE(exec == high);
  EXPECT_TRUE(exec == executor(tm));
  EXPECT_EQ(high.async([] { return 7; }).get(), 7);
}

TEST_F(AsyncTest, ExecutorDataflow) {
  executor exec(tm);
  auto a = exec.async([] { return 5; });
  auto b = exec.async([] { return 6; });
  auto c = exec.dataflow(
      [](future<int>& x, future<int>& y) { return x.get() * y.get(); }, a, b);
  EXPECT_EQ(c.get(), 30);
}

TEST_F(AsyncTest, DefaultExecutorUsesDefaultManager) {
  executor exec;  // resolves to `tm` (the fixture's manager is the default)
  EXPECT_EQ(&exec.manager(), &tm);
}

// --- cross-cutting stress ------------------------------------------------------------

TEST_F(AsyncTest, ManyConcurrentFutures) {
  std::vector<future<long>> fs;
  constexpr int n = 5000;
  fs.reserve(n);
  for (int i = 0; i < n; ++i) fs.push_back(async([i] { return static_cast<long>(i); }));
  when_all(fs).wait();
  long sum = 0;
  for (auto& f : fs) sum += f.get();
  EXPECT_EQ(sum, static_cast<long>(n - 1) * n / 2);
}

TEST_F(AsyncTest, DiamondDependencies) {
  auto root = async([] { return 1; });
  auto left = dataflow([](future<int>& r) { return r.get() + 10; }, root);
  auto right = dataflow([](future<int>& r) { return r.get() + 100; }, root);
  auto join = dataflow(
      [](future<int>& l, future<int>& r) { return l.get() + r.get(); }, left, right);
  EXPECT_EQ(join.get(), 112);
}

}  // namespace
}  // namespace gran
