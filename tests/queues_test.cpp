// Unit + stress tests for src/queues: SPSC ring, Vyukov MPMC, unbounded
// concurrent FIFO with overflow, and the instrumented dual queue.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "queues/concurrent_fifo.hpp"
#include "queues/dual_queue.hpp"
#include "queues/mpmc_bounded.hpp"
#include "queues/spsc_ring.hpp"

namespace gran {
namespace {

// --- spsc_ring ---------------------------------------------------------------

TEST(SpscRing, PushPopOrder) {
  spsc_ring<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = ring.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(SpscRing, FullRejects) {
  spsc_ring<int> ring(4);
  std::size_t pushed = 0;
  while (ring.push(1)) ++pushed;
  EXPECT_GE(pushed, 4u);  // capacity is rounded up
  EXPECT_FALSE(ring.push(2));
  ring.pop();
  EXPECT_TRUE(ring.push(2));
}

TEST(SpscRing, WrapAround) {
  spsc_ring<int> ring(4);
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(ring.push(round));
    auto v = ring.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, round);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, TwoThreadStress) {
  spsc_ring<int> ring(64);
  constexpr int n = 100'000;
  long long consumer_sum = 0;
  std::thread consumer([&] {
    int received = 0;
    while (received < n) {
      if (auto v = ring.pop()) {
        consumer_sum += *v;
        ++received;
      }
    }
  });
  for (int i = 0; i < n; ++i)
    while (!ring.push(i)) {
    }
  consumer.join();
  EXPECT_EQ(consumer_sum, static_cast<long long>(n - 1) * n / 2);
}

// Regression (ISSUE 9): push used to require T default-constructible and
// copy-assignable (std::vector<T> slots), and the natural retry loop
// `while (!ring.push(std::move(v)))` double-moved the payload on a full
// ring. Move-only payloads now work and a failed push does not consume the
// argument.
TEST(SpscRing, MoveOnlyPayloadSurvivesFullRingRetry) {
  spsc_ring<std::unique_ptr<int>> ring(2);
  std::size_t pushed = 0;
  while (ring.push(std::make_unique<int>(static_cast<int>(pushed)))) ++pushed;

  auto extra = std::make_unique<int>(777);
  EXPECT_FALSE(ring.push(std::move(extra)));
  ASSERT_NE(extra, nullptr);  // NOT consumed by the failed push
  EXPECT_EQ(*extra, 777);
  EXPECT_FALSE(ring.push(std::move(extra)));  // retry: still intact
  ASSERT_NE(extra, nullptr);

  auto v = ring.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 0);
  EXPECT_TRUE(ring.push(std::move(extra)));  // room now; this one consumes
  EXPECT_EQ(extra, nullptr);

  for (std::size_t i = 1; i < pushed; ++i) {
    auto p = ring.pop();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(**p, static_cast<int>(i));
  }
  auto last = ring.pop();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(**last, 777);
}

// Storage is uninitialized + placement-new, so T needs no default
// constructor (the old std::vector<T> slots required one).
TEST(SpscRing, NonDefaultConstructiblePayload) {
  struct payload {
    explicit payload(int x) : value(x) {}
    int value;
  };
  spsc_ring<payload> ring(4);
  EXPECT_TRUE(ring.push(payload{41}));
  EXPECT_TRUE(ring.push(payload{42}));
  auto a = ring.pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value, 41);
  auto b = ring.pop();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->value, 42);
}

// Regression (ISSUE 9): the destructor used to destroy unconsumed elements
// without running any drain, leaking owning payloads at shutdown. Elements
// still queued must have their destructors run — observable here via a
// counting RAII type, and ASan-visible via the unique_ptr variant below.
TEST(SpscRing, DestructorDrainsUnconsumedElements) {
  static std::atomic<int> live{0};
  struct tracked {
    tracked() { live.fetch_add(1, std::memory_order_relaxed); }
    tracked(const tracked&) { live.fetch_add(1, std::memory_order_relaxed); }
    tracked(tracked&&) noexcept { live.fetch_add(1, std::memory_order_relaxed); }
    ~tracked() { live.fetch_sub(1, std::memory_order_relaxed); }
  };
  live.store(0);
  {
    spsc_ring<tracked> ring(16);
    for (int i = 0; i < 10; ++i) EXPECT_TRUE(ring.push(tracked{}));
    (void)ring.pop();
    (void)ring.pop();
    EXPECT_EQ(live.load(), 8);  // 8 still queued, temporaries destroyed
  }
  EXPECT_EQ(live.load(), 0);  // destructor drained the rest
}

TEST(SpscRing, DestructorDrainReleasesOwningPointers) {
  // Under ASan, a leak here (the pre-fix behavior) fails the test run.
  spsc_ring<std::unique_ptr<std::vector<int>>> ring(8);
  for (int i = 0; i < 5; ++i)
    EXPECT_TRUE(ring.push(std::make_unique<std::vector<int>>(1000, i)));
  // Destroy with all five still queued.
}

// --- mpmc_bounded --------------------------------------------------------------

TEST(MpmcBounded, FifoOrderSingleThread) {
  mpmc_bounded<int> q(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(MpmcBounded, CapacityRounding) {
  mpmc_bounded<int> q(10);
  EXPECT_EQ(q.capacity(), 16u);
  mpmc_bounded<int> q2(16);
  EXPECT_EQ(q2.capacity(), 16u);
}

TEST(MpmcBounded, FullAndEmpty) {
  mpmc_bounded<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_FALSE(q.push(99));
  EXPECT_EQ(q.size_approx(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.empty_approx());
}

struct stress_params {
  int producers;
  int consumers;
};

class MpmcStress : public ::testing::TestWithParam<stress_params> {};

TEST_P(MpmcStress, SumPreserved) {
  const auto [producers, consumers] = GetParam();
  mpmc_bounded<int> q(256);
  constexpr int per_producer = 20'000;
  std::atomic<long long> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  const int total = producers * per_producer;

  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p)
    threads.emplace_back([&, p] {
      for (int i = 0; i < per_producer; ++i) {
        const int value = p * per_producer + i;
        while (!q.push(value)) std::this_thread::yield();
      }
    });
  for (int c = 0; c < consumers; ++c)
    threads.emplace_back([&] {
      while (consumed_count.load(std::memory_order_acquire) < total) {
        if (auto v = q.pop()) {
          consumed_sum.fetch_add(*v, std::memory_order_relaxed);
          consumed_count.fetch_add(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(consumed_count.load(), total);
  EXPECT_EQ(consumed_sum.load(), static_cast<long long>(total - 1) * total / 2);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MpmcStress,
                         ::testing::Values(stress_params{1, 1}, stress_params{2, 2},
                                           stress_params{4, 1}, stress_params{1, 4}));

// --- concurrent_fifo ------------------------------------------------------------

TEST(ConcurrentFifo, UnboundedBeyondRing) {
  concurrent_fifo<int> q(4);  // tiny ring forces overflow
  for (int i = 0; i < 1000; ++i) q.push(i);
  EXPECT_EQ(q.size_approx(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i) << "FIFO order must survive overflow migration";
  }
  EXPECT_FALSE(q.pop().has_value());
}

TEST(ConcurrentFifo, InterleavedOverflow) {
  concurrent_fifo<int> q(4);
  int next_push = 0, next_pop = 0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 7; ++i) q.push(next_push++);
    for (int i = 0; i < 5; ++i) {
      auto v = q.pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_pop++);
    }
  }
  while (auto v = q.pop()) EXPECT_EQ(*v, next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(ConcurrentFifo, MultiThreadedSum) {
  concurrent_fifo<int> q(64);
  constexpr int n = 50'000;
  std::atomic<long long> sum{0};
  std::atomic<int> count{0};
  std::thread producer([&] {
    for (int i = 0; i < n; ++i) q.push(i);
  });
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c)
    consumers.emplace_back([&] {
      while (count.load(std::memory_order_acquire) < n) {
        if (auto v = q.pop()) {
          sum.fetch_add(*v, std::memory_order_relaxed);
          count.fetch_add(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
    });
  producer.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(sum.load(), static_cast<long long>(n - 1) * n / 2);
}


TEST(MpmcBounded, SequenceWrapsManyGenerations) {
  // Cycle far beyond the capacity so slot sequence numbers wrap through
  // multiple generations.
  mpmc_bounded<int> q(4);
  for (int gen = 0; gen < 10'000; ++gen) {
    ASSERT_TRUE(q.push(gen));
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, gen);
  }
}

TEST(ConcurrentFifo, PushAfterDrainReturnsToLockFreePath) {
  concurrent_fifo<int> q(4);
  for (int i = 0; i < 100; ++i) q.push(i);   // spills
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(q.pop().has_value());
  // Fully drained: pushes fit the ring again and order is preserved.
  for (int i = 0; i < 3; ++i) q.push(i);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(q.pop().value(), i);
}

// --- dual_queue -------------------------------------------------------------------

TEST(DualQueue, AccessAndMissCounting) {
  dual_queue<int*, int*> q(16);
  int a = 1, b = 2;

  EXPECT_FALSE(q.pop_pending().has_value());  // miss
  q.push_pending(&a);
  EXPECT_TRUE(q.pop_pending().has_value());  // hit
  q.push_staged(&b);
  EXPECT_TRUE(q.pop_staged().has_value());
  EXPECT_FALSE(q.pop_staged().has_value());

  const auto counts = q.counts();
  EXPECT_EQ(counts.pending_accesses, 2u);
  EXPECT_EQ(counts.pending_misses, 1u);
  EXPECT_EQ(counts.staged_accesses, 2u);
  EXPECT_EQ(counts.staged_misses, 1u);
}

TEST(DualQueue, ResetCounts) {
  dual_queue<int*, int*> q(16);
  q.pop_pending();
  q.pop_staged();
  q.reset_counts();
  const auto counts = q.counts();
  EXPECT_EQ(counts.pending_accesses, 0u);
  EXPECT_EQ(counts.staged_misses, 0u);
}

TEST(DualQueue, EmptyApprox) {
  dual_queue<int*, int*> q(16);
  EXPECT_TRUE(q.empty_approx());
  int a = 1;
  q.push_staged(&a);
  EXPECT_FALSE(q.empty_approx());
  EXPECT_EQ(q.staged_size_approx(), 1u);
  EXPECT_EQ(q.pending_size_approx(), 0u);
}

}  // namespace
}  // namespace gran
