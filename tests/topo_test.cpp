// Unit tests for src/topo: topology discovery/synthesis, fake-sysfs
// discovery, the pin plan, affinity, and the Table-I platform
// specifications.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "topo/affinity.hpp"
#include "topo/pin_plan.hpp"
#include "topo/platform_spec.hpp"
#include "topo/topology.hpp"

namespace gran {
namespace {

namespace fs = std::filesystem;

// A throwaway sysfs cpu tree for topology::discover tests.
class fake_sysfs {
 public:
  fake_sysfs() {
    static std::atomic<int> counter{0};
    root_ = fs::temp_directory_path() /
            ("gran_topo_test_" + std::to_string(counter.fetch_add(1)) + "_" +
             std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(root_);
  }
  ~fake_sysfs() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void write(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream(p) << content << "\n";
  }

  // Creates cpuN with the given physical identity and NUMA node link.
  void add_cpu(int cpu, int core, int pkg, int node) {
    const std::string base = "cpu" + std::to_string(cpu);
    write(base + "/topology/core_id", std::to_string(core));
    write(base + "/topology/physical_package_id", std::to_string(pkg));
    write(base + "/node" + std::to_string(node) + "/cpulist", "");
  }

  std::string path() const { return root_.string(); }

 private:
  fs::path root_;
};

TEST(Topology, HostIsSane) {
  const topology& t = topology::host();
  EXPECT_GE(t.num_cpus(), 1);
  EXPECT_GE(t.num_numa_nodes(), 1);
  EXPECT_EQ(static_cast<int>(t.cpus().size()), t.num_cpus());
  for (const auto& c : t.cpus()) {
    EXPECT_GE(c.numa_node, 0);
    EXPECT_LT(c.numa_node, t.num_numa_nodes());
  }
}

TEST(Topology, SyntheticEvenSplit) {
  const topology t = topology::synthetic(8, 2);
  EXPECT_EQ(t.num_cpus(), 8);
  EXPECT_EQ(t.num_numa_nodes(), 2);
  EXPECT_EQ(t.cpus_of_node(0).size(), 4u);
  EXPECT_EQ(t.cpus_of_node(1).size(), 4u);
  EXPECT_EQ(t.numa_node_of(0), 0);
  EXPECT_EQ(t.numa_node_of(7), 1);
}

TEST(Topology, SyntheticUnevenSplit) {
  const topology t = topology::synthetic(7, 2);
  EXPECT_EQ(t.num_cpus(), 7);
  int total = 0;
  for (int n = 0; n < t.num_numa_nodes(); ++n)
    total += static_cast<int>(t.cpus_of_node(n).size());
  EXPECT_EQ(total, 7);
}

TEST(Topology, SyntheticSingleNode) {
  const topology t = topology::synthetic(4, 1);
  for (int c = 0; c < 4; ++c) EXPECT_EQ(t.numa_node_of(c), 0);
}

TEST(Topology, FromParts) {
  std::vector<cpu_info> cpus(2);
  cpus[0] = {.os_index = 0, .numa_node = 0, .core_id = 0, .package_id = 0};
  cpus[1] = {.os_index = 1, .numa_node = 1, .core_id = 0, .package_id = 1};
  std::vector<cache_info> caches{{.level = 1, .type = "Data", .size_bytes = 32768,
                                  .shared = false}};
  const topology t = topology::from_parts(cpus, caches, 2);
  EXPECT_EQ(t.num_cpus(), 2);
  EXPECT_EQ(t.num_numa_nodes(), 2);
  ASSERT_EQ(t.caches().size(), 1u);
  EXPECT_EQ(t.caches()[0].size_bytes, 32768u);
  EXPECT_EQ(t.cpus_of_node(1), std::vector<int>{1});
}

TEST(Topology, ParseCpulist) {
  EXPECT_EQ(parse_cpulist("0-3,8-11,16"),
            (std::vector<int>{0, 1, 2, 3, 8, 9, 10, 11, 16}));
  EXPECT_EQ(parse_cpulist("5"), std::vector<int>{5});
  EXPECT_TRUE(parse_cpulist("").empty());
  EXPECT_EQ(parse_cpulist("2,1,1"), (std::vector<int>{1, 2}));  // sorted, deduped
  EXPECT_EQ(parse_cpulist("a-b,3"), std::vector<int>{3});       // malformed skipped
}

TEST(Topology, DiscoverNonContiguousWithOfflineCpus) {
  // 6-CPU machine, CPUs 2-3 offline: the online cpulist is authoritative,
  // so discovery must skip them even though their sysfs dirs exist.
  fake_sysfs tree;
  tree.write("online", "0-1,4-5");
  tree.add_cpu(0, 0, 0, 0);
  tree.add_cpu(1, 0, 0, 0);  // SMT sibling of cpu0
  tree.add_cpu(2, 7, 0, 0);  // offline
  tree.add_cpu(3, 7, 0, 0);  // offline
  tree.add_cpu(4, 1, 0, 1);
  tree.add_cpu(5, 1, 0, 1);  // SMT sibling of cpu4

  const topology t = topology::discover(tree.path());
  EXPECT_EQ(t.num_cpus(), 4);
  EXPECT_EQ(t.num_numa_nodes(), 2);
  EXPECT_EQ(t.find_cpu(2), nullptr);
  EXPECT_EQ(t.find_cpu(3), nullptr);
  ASSERT_NE(t.find_cpu(4), nullptr);
  EXPECT_EQ(t.numa_node_of(4), 1);
  EXPECT_EQ(t.smt_siblings_of(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(t.smt_siblings_of(5), (std::vector<int>{4, 5}));
  EXPECT_EQ(t.num_physical_cores(), 2);
  EXPECT_EQ(t.cpus_of_node(1), (std::vector<int>{4, 5}));
}

TEST(Topology, DiscoverSmtInterleavedNumbering) {
  // Sibling numbering interleaved the way many servers do it: cpus 0..3 are
  // the first hyperthread of cores 0..3, cpus 4..7 the second.
  fake_sysfs tree;
  tree.write("online", "0-7");
  for (int c = 0; c < 8; ++c) tree.add_cpu(c, c % 4, 0, 0);

  const topology t = topology::discover(tree.path());
  EXPECT_EQ(t.num_cpus(), 8);
  EXPECT_EQ(t.num_physical_cores(), 4);
  EXPECT_EQ(t.smt_siblings_of(0), (std::vector<int>{0, 4}));
  EXPECT_EQ(t.smt_siblings_of(7), (std::vector<int>{3, 7}));
}

TEST(Topology, DiscoverWithoutOnlineFallsBackToDense) {
  fake_sysfs tree;  // no `online` file at all
  const topology t = topology::discover(tree.path());
  EXPECT_GE(t.num_cpus(), 1);
  for (int i = 0; i < t.num_cpus(); ++i)
    EXPECT_EQ(t.cpus()[static_cast<std::size_t>(i)].os_index, i);
}

// --- pin plan ---------------------------------------------------------------

// 2 cores x 2 SMT with *adjacent* sibling numbering: cpus (0,1) share core
// 0, cpus (2,3) share core 1 — the layout where the old `w % num_cpus`
// pinning packed two workers onto core 0 while core 1 sat empty.
topology adjacent_smt_topo() {
  std::vector<cpu_info> cpus(4);
  cpus[0] = {.os_index = 0, .numa_node = 0, .core_id = 0, .package_id = 0};
  cpus[1] = {.os_index = 1, .numa_node = 0, .core_id = 0, .package_id = 0};
  cpus[2] = {.os_index = 2, .numa_node = 0, .core_id = 1, .package_id = 0};
  cpus[3] = {.os_index = 3, .numa_node = 0, .core_id = 1, .package_id = 0};
  return topology::from_parts(cpus, {}, 1);
}

// Two NUMA nodes, two single-thread cores each.
topology two_node_topo() {
  std::vector<cpu_info> cpus(4);
  cpus[0] = {.os_index = 0, .numa_node = 0, .core_id = 0, .package_id = 0};
  cpus[1] = {.os_index = 1, .numa_node = 0, .core_id = 1, .package_id = 0};
  cpus[2] = {.os_index = 2, .numa_node = 1, .core_id = 0, .package_id = 1};
  cpus[3] = {.os_index = 3, .numa_node = 1, .core_id = 1, .package_id = 1};
  return topology::from_parts(cpus, {}, 2);
}

TEST(PinPlan, CompactFillsPhysicalCoresFirst) {
  const topology t = adjacent_smt_topo();
  const pin_plan plan = pin_plan::build(t, {}, 4, pin_mode::compact);
  ASSERT_EQ(plan.workers.size(), 4u);
  // One worker per physical core before any SMT sibling: 0, 2, then 1, 3.
  EXPECT_EQ(plan.workers[0].cpu, 0);
  EXPECT_EQ(plan.workers[1].cpu, 2);
  EXPECT_EQ(plan.workers[2].cpu, 1);
  EXPECT_EQ(plan.workers[3].cpu, 3);
  EXPECT_EQ(plan.num_cores, 2);
  // Workers 0/2 share a core (SMT siblings), as do 1/3.
  EXPECT_EQ(plan.workers[0].core, plan.workers[2].core);
  EXPECT_EQ(plan.workers[1].core, plan.workers[3].core);
  EXPECT_NE(plan.workers[0].core, plan.workers[1].core);
}

TEST(PinPlan, CompactTwoWorkersAvoidSmtSharing) {
  const topology t = adjacent_smt_topo();
  const pin_plan plan = pin_plan::build(t, {}, 2, pin_mode::compact);
  EXPECT_EQ(plan.workers[0].cpu, 0);
  EXPECT_EQ(plan.workers[1].cpu, 2);  // not 1, cpu0's hyperthread
  EXPECT_NE(plan.workers[0].core, plan.workers[1].core);
}

TEST(PinPlan, ScatterAlternatesDomains) {
  const topology t = two_node_topo();
  const pin_plan plan = pin_plan::build(t, {}, 4, pin_mode::scatter);
  EXPECT_EQ(plan.num_domains, 2);
  EXPECT_EQ(plan.workers[0].domain, 0);
  EXPECT_EQ(plan.workers[1].domain, 1);
  EXPECT_EQ(plan.workers[2].domain, 0);
  EXPECT_EQ(plan.workers[3].domain, 1);
}

TEST(PinPlan, CompactFillsDomainBeforeNext) {
  const topology t = two_node_topo();
  const pin_plan plan = pin_plan::build(t, {}, 4, pin_mode::compact);
  EXPECT_EQ(plan.workers[0].domain, 0);
  EXPECT_EQ(plan.workers[1].domain, 0);
  EXPECT_EQ(plan.workers[2].domain, 1);
  EXPECT_EQ(plan.workers[3].domain, 1);
}

TEST(PinPlan, RestrictedAffinityMaskNeverPinsOutside) {
  const topology t = two_node_topo();
  // Container cpuset grants only CPUs 1 and 3 — the old `w % num_cpus`
  // would have pinned worker 0 to the forbidden CPU 0.
  const pin_plan plan = pin_plan::build(t, {1, 3}, 2, pin_mode::compact);
  for (const auto& w : plan.workers) {
    EXPECT_TRUE(w.cpu == 1 || w.cpu == 3) << "pinned outside the mask: " << w.cpu;
  }
  EXPECT_TRUE(plan.pinned());
}

TEST(PinPlan, OversubscriptionLeavesAllUnpinned) {
  const topology t = two_node_topo();
  const pin_plan plan = pin_plan::build(t, {}, 8, pin_mode::compact);
  ASSERT_EQ(plan.workers.size(), 8u);
  for (const auto& w : plan.workers) EXPECT_EQ(w.cpu, -1);
  EXPECT_FALSE(plan.pinned());
  // Domains still spread evenly for the policies' locality tiers.
  EXPECT_EQ(plan.num_domains, 2);
  EXPECT_EQ(plan.workers[0].domain, 0);
  EXPECT_EQ(plan.workers[7].domain, 1);
}

TEST(PinPlan, ModeNoneLeavesAllUnpinned) {
  const topology t = adjacent_smt_topo();
  const pin_plan plan = pin_plan::build(t, {}, 2, pin_mode::none);
  for (const auto& w : plan.workers) EXPECT_EQ(w.cpu, -1);
  EXPECT_FALSE(plan.pinned());
}

TEST(PinPlan, ModeNames) {
  EXPECT_STREQ(pin_mode_name(pin_mode::compact), "compact");
  EXPECT_EQ(pin_mode_from_name("scatter"), pin_mode::scatter);
  EXPECT_THROW(pin_mode_from_name("bogus"), std::invalid_argument);
}

TEST(Affinity, AllowedCpusNonEmptyAndSorted) {
  const std::vector<int> allowed = allowed_cpus();
  ASSERT_FALSE(allowed.empty());
  for (std::size_t i = 1; i < allowed.size(); ++i)
    EXPECT_LT(allowed[i - 1], allowed[i]);
}

TEST(Affinity, PinAndUnpin) {
  // Pinning to CPU 0 must succeed on any Linux host; restore afterwards.
  EXPECT_TRUE(pin_current_thread(0));
  EXPECT_EQ(current_cpu(), 0);
  EXPECT_TRUE(unpin_current_thread());
  EXPECT_FALSE(pin_current_thread(-1));
  EXPECT_FALSE(pin_current_thread(CPU_SETSIZE + 1));
}

// --- platform specs (Table I data) -----------------------------------------

TEST(PlatformSpec, PaperValues) {
  const platform_spec& hw = haswell_spec();
  EXPECT_EQ(hw.cores, 28);
  EXPECT_DOUBLE_EQ(hw.clock_ghz, 2.3);
  EXPECT_EQ(hw.shared_cache_mb, 35u);
  EXPECT_EQ(hw.ram_gb, 128u);

  const platform_spec& phi = xeon_phi_spec();
  EXPECT_EQ(phi.cores, 61);
  EXPECT_DOUBLE_EQ(phi.clock_ghz, 1.2);
  EXPECT_EQ(phi.hardware_threads, 4);
  EXPECT_EQ(phi.l2_kb, 512u);
  EXPECT_EQ(phi.ram_gb, 8u);

  const platform_spec& sb = sandy_bridge_spec();
  EXPECT_EQ(sb.cores, 16);
  EXPECT_DOUBLE_EQ(sb.clock_ghz, 2.9);
  EXPECT_EQ(sb.shared_cache_mb, 20u);

  const platform_spec& ib = ivy_bridge_spec();
  EXPECT_EQ(ib.cores, 20);
  EXPECT_EQ(ib.ram_gb, 128u);
}

TEST(PlatformSpec, Lookup) {
  EXPECT_EQ(paper_platforms().size(), 4u);
  ASSERT_NE(find_platform("haswell"), nullptr);
  EXPECT_EQ(find_platform("haswell")->cores, 28);
  EXPECT_EQ(find_platform("nonexistent"), nullptr);
}

TEST(PlatformSpec, HostSpec) {
  const platform_spec host = host_spec();
  EXPECT_EQ(host.name, "host");
  EXPECT_GE(host.cores, 1);
  EXPECT_FALSE(host.processor.empty());
}

}  // namespace
}  // namespace gran
