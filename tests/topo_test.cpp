// Unit tests for src/topo: topology discovery/synthesis, affinity, and the
// Table-I platform specifications.
#include <gtest/gtest.h>

#include "topo/affinity.hpp"
#include "topo/platform_spec.hpp"
#include "topo/topology.hpp"

namespace gran {
namespace {

TEST(Topology, HostIsSane) {
  const topology& t = topology::host();
  EXPECT_GE(t.num_cpus(), 1);
  EXPECT_GE(t.num_numa_nodes(), 1);
  EXPECT_EQ(static_cast<int>(t.cpus().size()), t.num_cpus());
  for (const auto& c : t.cpus()) {
    EXPECT_GE(c.numa_node, 0);
    EXPECT_LT(c.numa_node, t.num_numa_nodes());
  }
}

TEST(Topology, SyntheticEvenSplit) {
  const topology t = topology::synthetic(8, 2);
  EXPECT_EQ(t.num_cpus(), 8);
  EXPECT_EQ(t.num_numa_nodes(), 2);
  EXPECT_EQ(t.cpus_of_node(0).size(), 4u);
  EXPECT_EQ(t.cpus_of_node(1).size(), 4u);
  EXPECT_EQ(t.numa_node_of(0), 0);
  EXPECT_EQ(t.numa_node_of(7), 1);
}

TEST(Topology, SyntheticUnevenSplit) {
  const topology t = topology::synthetic(7, 2);
  EXPECT_EQ(t.num_cpus(), 7);
  int total = 0;
  for (int n = 0; n < t.num_numa_nodes(); ++n)
    total += static_cast<int>(t.cpus_of_node(n).size());
  EXPECT_EQ(total, 7);
}

TEST(Topology, SyntheticSingleNode) {
  const topology t = topology::synthetic(4, 1);
  for (int c = 0; c < 4; ++c) EXPECT_EQ(t.numa_node_of(c), 0);
}

TEST(Topology, FromParts) {
  std::vector<cpu_info> cpus(2);
  cpus[0] = {.os_index = 0, .numa_node = 0, .core_id = 0, .package_id = 0};
  cpus[1] = {.os_index = 1, .numa_node = 1, .core_id = 0, .package_id = 1};
  std::vector<cache_info> caches{{.level = 1, .type = "Data", .size_bytes = 32768,
                                  .shared = false}};
  const topology t = topology::from_parts(cpus, caches, 2);
  EXPECT_EQ(t.num_cpus(), 2);
  EXPECT_EQ(t.num_numa_nodes(), 2);
  ASSERT_EQ(t.caches().size(), 1u);
  EXPECT_EQ(t.caches()[0].size_bytes, 32768u);
  EXPECT_EQ(t.cpus_of_node(1), std::vector<int>{1});
}

TEST(Affinity, PinAndUnpin) {
  // Pinning to CPU 0 must succeed on any Linux host; restore afterwards.
  EXPECT_TRUE(pin_current_thread(0));
  EXPECT_EQ(current_cpu(), 0);
  EXPECT_TRUE(unpin_current_thread());
  EXPECT_FALSE(pin_current_thread(-1));
  EXPECT_FALSE(pin_current_thread(CPU_SETSIZE + 1));
}

// --- platform specs (Table I data) -----------------------------------------

TEST(PlatformSpec, PaperValues) {
  const platform_spec& hw = haswell_spec();
  EXPECT_EQ(hw.cores, 28);
  EXPECT_DOUBLE_EQ(hw.clock_ghz, 2.3);
  EXPECT_EQ(hw.shared_cache_mb, 35u);
  EXPECT_EQ(hw.ram_gb, 128u);

  const platform_spec& phi = xeon_phi_spec();
  EXPECT_EQ(phi.cores, 61);
  EXPECT_DOUBLE_EQ(phi.clock_ghz, 1.2);
  EXPECT_EQ(phi.hardware_threads, 4);
  EXPECT_EQ(phi.l2_kb, 512u);
  EXPECT_EQ(phi.ram_gb, 8u);

  const platform_spec& sb = sandy_bridge_spec();
  EXPECT_EQ(sb.cores, 16);
  EXPECT_DOUBLE_EQ(sb.clock_ghz, 2.9);
  EXPECT_EQ(sb.shared_cache_mb, 20u);

  const platform_spec& ib = ivy_bridge_spec();
  EXPECT_EQ(ib.cores, 20);
  EXPECT_EQ(ib.ram_gb, 128u);
}

TEST(PlatformSpec, Lookup) {
  EXPECT_EQ(paper_platforms().size(), 4u);
  ASSERT_NE(find_platform("haswell"), nullptr);
  EXPECT_EQ(find_platform("haswell")->cores, 28);
  EXPECT_EQ(find_platform("nonexistent"), nullptr);
}

TEST(PlatformSpec, HostSpec) {
  const platform_spec host = host_spec();
  EXPECT_EQ(host.name, "host");
  EXPECT_GE(host.cores, 1);
  EXPECT_FALSE(host.processor.empty());
}

}  // namespace
}  // namespace gran
