// Tests for the task-service ingress (service/service.hpp): exactly-once
// delivery under concurrent multi-client submission, the three admission
// policies' semantics (block unblocks on drain, reject returns an error and
// keeps the backlog bounded, shed-oldest drops oldest-first and preserves
// FIFO among survivors), sojourn-histogram accounting against wall-clock,
// and the native-vs-sim accepted-count identity (sim/service_sim.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "perf/window.hpp"
#include "service/arrival.hpp"
#include "service/service.hpp"
#include "sim/machine_model.hpp"
#include "sim/service_sim.hpp"
#include "threads/thread_manager.hpp"
#include "util/timer.hpp"

namespace gran {
namespace {

scheduler_config workers_cfg(int n) {
  scheduler_config cfg;
  cfg.num_workers = n;
  cfg.pin_workers = false;
  return cfg;
}

TEST(ServiceExactlyOnce, MultiClientConcurrentSubmit) {
  constexpr int kClients = 6;
  constexpr int kPerClient = 2'000;
  constexpr int kTotal = kClients * kPerClient;

  thread_manager tm(workers_cfg(4));
  service::service_config cfg;
  cfg.shards = 3;  // fewer shards than clients: rings see real MPSC traffic
  cfg.shard_capacity = 256;
  service::task_service svc(tm, cfg);

  std::vector<std::atomic<std::uint8_t>> hits(kTotal);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int slot = c * kPerClient + i;
        const service::submit_status st =
            svc.submit([&hits, slot] { hits[slot].fetch_add(1, std::memory_order_relaxed); });
        ASSERT_EQ(st, service::submit_status::accepted);
      }
    });
  }
  for (auto& t : clients) t.join();
  svc.quiesce();

  const service::task_service::stats s = svc.snapshot();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(s.accepted, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(svc.backlog(), 0);
  for (int i = 0; i < kTotal; ++i)
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1) << "slot " << i;
}

TEST(ServiceBackpressure, BlockUnblocksOnDrain) {
  constexpr std::int64_t kBound = 4;

  thread_manager tm(workers_cfg(2));
  service::service_config cfg;
  cfg.shards = 1;
  cfg.backlog_bound = kBound;
  cfg.policy = service::admission_policy::block;
  service::task_service svc(tm, cfg);

  std::atomic<bool> release{false};
  const auto gated = [&release] {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::microseconds(100));
  };

  // Fill the admission window: these are accepted immediately.
  for (std::int64_t i = 0; i < kBound; ++i)
    ASSERT_EQ(svc.submit(gated), service::submit_status::accepted);
  EXPECT_EQ(svc.backlog(), kBound);

  // The next submit must block until completions make room.
  std::atomic<bool> returned{false};
  std::atomic<int> status{-1};
  std::thread blocked([&] {
    const service::submit_status st = svc.submit(gated);
    status.store(static_cast<int>(st), std::memory_order_relaxed);
    returned.store(true, std::memory_order_release);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(returned.load(std::memory_order_acquire))
      << "submit returned while backlog was at the bound";
  EXPECT_EQ(svc.snapshot().accepted, static_cast<std::uint64_t>(kBound));

  release.store(true, std::memory_order_release);
  blocked.join();
  EXPECT_EQ(status.load(std::memory_order_relaxed),
            static_cast<int>(service::submit_status::accepted));
  svc.quiesce();

  const service::task_service::stats s = svc.snapshot();
  EXPECT_EQ(s.accepted, static_cast<std::uint64_t>(kBound + 1));
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kBound + 1));
  EXPECT_EQ(s.rejected, 0u);
}

TEST(ServiceBackpressure, RejectReturnsErrorAndBoundsBacklog) {
  constexpr std::int64_t kBound = 8;
  constexpr int kSubmits = 100;

  thread_manager tm(workers_cfg(2));
  service::service_config cfg;
  cfg.shards = 1;
  cfg.backlog_bound = kBound;
  cfg.policy = service::admission_policy::reject;
  service::task_service svc(tm, cfg);

  std::atomic<bool> release{false};
  int accepted = 0, rejected = 0;
  for (int i = 0; i < kSubmits; ++i) {
    const service::submit_status st = svc.submit([&release] {
      while (!release.load(std::memory_order_acquire))
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    });
    if (st == service::submit_status::accepted)
      ++accepted;
    else if (st == service::submit_status::rejected)
      ++rejected;
  }

  // Nothing completes while the gate is closed, so admission stops exactly
  // at the bound and every further submit is refused.
  EXPECT_EQ(accepted, kBound);
  EXPECT_EQ(rejected, kSubmits - kBound);
  EXPECT_LE(svc.backlog(), kBound);

  // The bound is visible from a window snapshot (the acceptance criterion:
  // backlog never exceeds the configured bound under reject).
  perf::window_options wopt;
  wopt.prefixes = {"/service"};
  perf::window_aggregator win(wopt);
  const perf::window_snapshot snap = win.tick();
  const double backlog_gauge = snap.value_or("/service/backlog", -1.0);
  EXPECT_GE(backlog_gauge, 0.0);
  EXPECT_LE(backlog_gauge, static_cast<double>(kBound));

  // The drops also surface on the thread_manager's external lane counter.
  EXPECT_EQ(tm.external_rejected(), static_cast<std::uint64_t>(rejected));

  release.store(true, std::memory_order_release);
  svc.quiesce();
  const service::task_service::stats s = svc.snapshot();
  EXPECT_EQ(s.accepted, static_cast<std::uint64_t>(accepted));
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(accepted));
  EXPECT_EQ(s.rejected, static_cast<std::uint64_t>(rejected));
}

TEST(ServiceBackpressure, ShedOldestDropsOldestKeepsFifo) {
  constexpr std::int64_t kBound = 6;
  constexpr int kExtra = 12;  // submissions after the worker is pinned

  thread_manager tm(workers_cfg(1));  // one worker: deterministic ring state
  service::service_config cfg;
  cfg.shards = 1;
  cfg.shard_capacity = 64;
  cfg.backlog_bound = kBound;
  cfg.policy = service::admission_policy::shed_oldest;
  service::task_service svc(tm, cfg);

  // Pin the only worker inside a request body so every later request stays
  // queued in the shard ring, where shed_oldest can see it.
  std::atomic<bool> running{false};
  std::atomic<bool> release{false};
  ASSERT_EQ(svc.submit([&] {
              running.store(true, std::memory_order_release);
              while (!release.load(std::memory_order_acquire)) {
              }
            }),
            service::submit_status::accepted);
  while (!running.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::microseconds(50));

  // Backlog is now 1 (the pinned request). Submissions 1..5 fill the window
  // to the bound; each of 6..12 sheds the then-oldest queued request.
  std::mutex order_mutex;
  std::vector<int> order;
  for (int seq = 1; seq <= kExtra; ++seq) {
    ASSERT_EQ(svc.submit([&order_mutex, &order, seq] {
                std::lock_guard<std::mutex> lk(order_mutex);
                order.push_back(seq);
              }),
              service::submit_status::accepted);
  }
  const service::task_service::stats mid = svc.snapshot();
  EXPECT_EQ(mid.shed, static_cast<std::uint64_t>(kExtra - (kBound - 1)));
  EXPECT_LE(mid.backlog, kBound);

  release.store(true, std::memory_order_release);
  svc.quiesce();

  // Survivors are exactly the freshest bound−1 submissions, and the single
  // worker ran them in submission order (per-worker queues are FIFO).
  std::vector<int> expected;
  for (int seq = kExtra - (kBound - 1) + 1; seq <= kExtra; ++seq)
    expected.push_back(seq);
  EXPECT_EQ(order, expected);

  const service::task_service::stats s = svc.snapshot();
  EXPECT_EQ(s.completed, s.accepted - s.shed);
  EXPECT_EQ(svc.backlog(), 0);
}

TEST(ServiceSojourn, HistogramMatchesWallClock) {
  constexpr int kRequests = 400;
  constexpr std::uint64_t kSpinNs = 20'000;

  thread_manager tm(workers_cfg(4));
  service::task_service svc(tm);

  // Client-side measurement of the same interval the histogram records:
  // stamp right before submit, and in the body right before it returns.
  std::vector<std::uint64_t> start_ticks(kRequests);
  std::vector<std::uint64_t> end_ticks(kRequests);
  const auto spin_target =
      static_cast<std::uint64_t>(static_cast<double>(kSpinNs) / tsc_clock::ns_per_tick());
  for (int i = 0; i < kRequests; ++i) {
    start_ticks[i] = tsc_clock::now();
    ASSERT_EQ(svc.submit([&end_ticks, i, spin_target] {
                const std::uint64_t t0 = tsc_clock::now();
                while (tsc_clock::now() - t0 < spin_target) {
                }
                end_ticks[i] = tsc_clock::now();
              }),
              service::submit_status::accepted);
  }
  svc.quiesce();

  double wall_sum_ns = 0;
  for (int i = 0; i < kRequests; ++i)
    wall_sum_ns += tsc_clock::to_ns(end_ticks[i] - start_ticks[i]);

  const perf::histogram_snapshot h = svc.sojourn_snapshot();
  EXPECT_EQ(h.count, static_cast<std::uint64_t>(kRequests));
  ASSERT_GT(wall_sum_ns, 0.0);
  const double rel_err =
      std::abs(static_cast<double>(h.sum) - wall_sum_ns) / wall_sum_ns;
  EXPECT_LE(rel_err, 0.05) << "histogram sum " << h.sum << " ns vs wall-clock "
                           << wall_sum_ns << " ns";

  // Queue-wait (submit → first run) is a sub-interval of sojourn.
  const perf::histogram_snapshot qw = svc.queue_wait_snapshot();
  EXPECT_EQ(qw.count, static_cast<std::uint64_t>(kRequests));
  EXPECT_LE(qw.sum, h.sum);
}

TEST(ServiceSim, NativeAndSimAgreeOnAcceptedCount) {
  service::arrival_config arrival;
  arrival.kind = service::arrival_kind::mmpp;  // bursty: the harder case
  arrival.rate_per_s = 20'000;
  arrival.grain_min_ns = 3'000;
  arrival.grain_max_ns = 3'000;
  arrival.seed = 7;
  const double duration_s = 0.2;

  const std::vector<service::arrival_event> events =
      service::generate_arrivals(arrival, duration_s);
  ASSERT_GT(events.size(), 0u);

  // Native, block policy: every generated request is eventually admitted.
  thread_manager tm(workers_cfg(2));
  service::service_config cfg;
  cfg.policy = service::admission_policy::block;
  cfg.backlog_bound = 256;
  service::task_service svc(tm, cfg);
  for (const service::arrival_event& ev : events) {
    const std::uint64_t grain = ev.grain_ns;
    ASSERT_EQ(svc.submit([grain] {
                const auto target = static_cast<std::uint64_t>(
                    static_cast<double>(grain) / tsc_clock::ns_per_tick());
                const std::uint64_t t0 = tsc_clock::now();
                while (tsc_clock::now() - t0 < target) {
                }
              }),
              service::submit_status::accepted);
  }
  svc.quiesce();
  const service::task_service::stats native = svc.snapshot();

  // Sim, same arrival process and policy.
  sim::service_sim_config sc;
  sc.model = sim::haswell_model();
  sc.cores = 2;
  sc.arrival = arrival;
  sc.duration_s = duration_s;
  sc.policy = service::admission_policy::block;
  sc.backlog_bound = 256;
  const sim::service_sim_result sim_res = sim::run_service_sim(sc);

  EXPECT_EQ(sim_res.generated, events.size());
  EXPECT_EQ(native.accepted, events.size());
  EXPECT_EQ(sim_res.accepted, native.accepted);
  EXPECT_EQ(sim_res.completed, sim_res.accepted);
  EXPECT_EQ(native.completed, native.accepted);
  EXPECT_EQ(sim_res.rejected, 0u);
  EXPECT_GT(sim_res.sojourn_p50_ns, 0.0);
}

TEST(ServiceConfig, PolicyParsingRoundTrips) {
  using service::admission_policy;
  using service::policy_from_string;
  EXPECT_EQ(policy_from_string("block"), admission_policy::block);
  EXPECT_EQ(policy_from_string("reject"), admission_policy::reject);
  EXPECT_EQ(policy_from_string("shed-oldest"), admission_policy::shed_oldest);
  EXPECT_EQ(policy_from_string("shed_oldest"), admission_policy::shed_oldest);
  EXPECT_EQ(policy_from_string("shed"), admission_policy::shed_oldest);
  EXPECT_EQ(policy_from_string("nonsense", admission_policy::reject),
            admission_policy::reject);
  EXPECT_STREQ(service::to_string(admission_policy::block), "block");
  EXPECT_STREQ(service::to_string(admission_policy::reject), "reject");
  EXPECT_STREQ(service::to_string(admission_policy::shed_oldest), "shed-oldest");
}

}  // namespace
}  // namespace gran
