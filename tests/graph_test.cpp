// Tests of the parameterized task-graph subsystem (src/graph): generator
// determinism, structural validation, native-vs-simulator DAG agreement,
// and exactly-once kernel execution under work stealing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/graph_experiment.hpp"
#include "graph/executor.hpp"
#include "graph/futurize.hpp"
#include "graph/kernels.hpp"
#include "graph/spec.hpp"
#include "sim/graph_sim.hpp"
#include "sim/machine_model.hpp"
#include "threads/thread_manager.hpp"

namespace gran {
namespace {

graph::graph_spec make_spec(graph::pattern kind, std::uint32_t width = 16,
                            std::uint32_t steps = 6, std::uint32_t radius = 2,
                            double fraction = 0.4, std::uint64_t seed = 7) {
  graph::graph_spec g;
  g.kind = kind;
  g.width = width;
  g.steps = steps;
  g.radius = radius;
  g.fraction = fraction;
  g.seed = seed;
  return g;
}

std::vector<std::vector<std::uint32_t>> all_deps(const graph::graph_spec& g) {
  std::vector<std::vector<std::uint32_t>> deps;
  std::vector<std::uint32_t> d;
  for (std::uint32_t t = 0; t < g.steps; ++t)
    for (std::uint32_t p = 0; p < g.width; ++p) {
      g.dependencies(t, p, d);
      deps.push_back(d);
    }
  return deps;
}

TEST(GraphSpec, EveryPatternValidates) {
  for (const graph::pattern kind : graph::all_patterns) {
    const graph::graph_spec g = make_spec(kind);
    EXPECT_EQ(g.validate(), "") << g.describe();
  }
}

TEST(GraphSpec, StructuralInvariants) {
  // No forward/self edges by construction (deps name step-1 only); check
  // the queryable properties: step 0 empty, in-range, ascending, unique,
  // fanin bounded.
  for (const graph::pattern kind : graph::all_patterns) {
    const graph::graph_spec g = make_spec(kind);
    std::vector<std::uint32_t> d;
    for (std::uint32_t p = 0; p < g.width; ++p) {
      g.dependencies(0, p, d);
      EXPECT_TRUE(d.empty()) << g.describe();
    }
    for (std::uint32_t t = 1; t < g.steps; ++t)
      for (std::uint32_t p = 0; p < g.width; ++p) {
        g.dependencies(t, p, d);
        EXPECT_LE(d.size(), g.max_fanin()) << g.describe();
        for (std::size_t i = 0; i < d.size(); ++i) {
          EXPECT_LT(d[i], g.width) << g.describe();
          if (i > 0) {
            EXPECT_LT(d[i - 1], d[i]) << g.describe();
          }
        }
      }
  }
}

TEST(GraphSpec, DeterministicAcrossCalls) {
  for (const graph::pattern kind : graph::all_patterns) {
    const graph::graph_spec g = make_spec(kind);
    EXPECT_EQ(all_deps(g), all_deps(g)) << g.describe();
  }
}

TEST(GraphSpec, RandomSeedControlsStructure) {
  const auto a1 = all_deps(make_spec(graph::pattern::random, 32, 8, 3, 0.4, 1));
  const auto a2 = all_deps(make_spec(graph::pattern::random, 32, 8, 3, 0.4, 1));
  const auto b = all_deps(make_spec(graph::pattern::random, 32, 8, 3, 0.4, 2));
  EXPECT_EQ(a1, a2);          // same seed, same DAG
  EXPECT_NE(a1, b);           // different seed, different DAG
}

TEST(GraphSpec, Stencil1dClipsAtBoundaries) {
  const graph::graph_spec g = make_spec(graph::pattern::stencil1d, 10, 3, 3);
  std::vector<std::uint32_t> d;
  g.dependencies(1, 0, d);   // left edge: clipped to [0, 3]
  EXPECT_EQ(d, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  g.dependencies(1, 9, d);   // right edge: clipped to [6, 9]
  EXPECT_EQ(d, (std::vector<std::uint32_t>{6, 7, 8, 9}));
  g.dependencies(1, 5, d);   // interior: full window
  EXPECT_EQ(d, (std::vector<std::uint32_t>{2, 3, 4, 5, 6, 7, 8}));
}

TEST(GraphSpec, NearestWrapsAndSaturates) {
  // Radius 1 on a ring: the heat stencil's {p-1, p, p+1} mod width.
  const graph::graph_spec ring = make_spec(graph::pattern::nearest, 5, 2, 1);
  std::vector<std::uint32_t> d;
  ring.dependencies(1, 0, d);
  EXPECT_EQ(d, (std::vector<std::uint32_t>{0, 1, 4}));
  // 2r+1 >= width: every task consumes the full previous row, no dups.
  const graph::graph_spec full = make_spec(graph::pattern::nearest, 4, 2, 9);
  full.dependencies(1, 2, d);
  EXPECT_EQ(d, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(GraphSpec, TotalEdgesMatchesEnumeration) {
  for (const graph::pattern kind : graph::all_patterns) {
    const graph::graph_spec g = make_spec(kind);
    std::uint64_t sum = 0;
    for (const auto& d : all_deps(g)) sum += d.size();
    EXPECT_EQ(g.total_edges(), sum) << g.describe();
  }
}

TEST(GraphSpec, InvalidSpecsRejected) {
  graph::graph_spec g = make_spec(graph::pattern::trivial);
  g.width = 0;
  EXPECT_NE(g.validate(), "");
  g = make_spec(graph::pattern::random);
  g.fraction = 1.5;
  EXPECT_NE(g.validate(), "");
}

TEST(GraphSpec, PatternNamesRoundTrip) {
  for (const graph::pattern kind : graph::all_patterns)
    EXPECT_EQ(graph::pattern_from_name(graph::pattern_name(kind)), kind);
  EXPECT_THROW(graph::pattern_from_name("nope"), std::invalid_argument);
}

// --- native vs simulator: one spec, two executors, identical DAG ----------

TEST(GraphExecutors, NativeAndSimAgreeOnTasksAndEdges) {
  graph::kernel_spec k;
  k.grain_ns = 200.0;  // tiny: this test is about structure, not timing

  core::native_graph_backend native("priority-local-fifo");
  sim::graph_sim_backend sim_backend(sim::haswell_model());

  for (const graph::pattern kind : graph::all_patterns) {
    const graph::graph_spec g = make_spec(kind, 12, 5);
    const core::graph_run_result n = native.run(g, k, 2);
    const core::graph_run_result s = sim_backend.run(g, k, 4);

    EXPECT_EQ(n.tasks, g.total_tasks()) << g.describe();
    EXPECT_EQ(n.edges, g.total_edges()) << g.describe();
    EXPECT_EQ(s.tasks, g.total_tasks()) << g.describe();
    EXPECT_EQ(s.edges, g.total_edges()) << g.describe();
  }
}

TEST(GraphExecutors, SimIsDeterministic) {
  sim::graph_sim_config cfg;
  cfg.model = sim::haswell_model();
  cfg.cores = 8;
  cfg.graph = make_spec(graph::pattern::random, 24, 8);
  cfg.kernel.grain_ns = 5'000.0;
  const sim::sim_result a = sim::simulate_graph(cfg);
  const sim::sim_result b = sim::simulate_graph(cfg);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.measurement.pending_accesses, b.measurement.pending_accesses);
  EXPECT_EQ(a.edges_signaled, b.edges_signaled);
}

TEST(GraphExecutors, NativeChecksumIsSchedulingInvariant) {
  // The folded checksum depends on every task's value and its inputs'
  // values; identical across runs and worker counts ⇒ dependencies were
  // honored and nothing was lost or duplicated.
  const graph::graph_spec g = make_spec(graph::pattern::random, 16, 6);
  graph::kernel_spec k;
  k.grain_ns = 100.0;

  std::uint64_t expected = 0;
  for (const int workers : {1, 2, 4}) {
    scheduler_config cfg;
    cfg.num_workers = workers;
    cfg.pin_workers = false;
    thread_manager tm(cfg);
    const graph::run_stats stats = graph::run_graph(tm, g, k);
    if (workers == 1)
      expected = stats.checksum;
    else
      EXPECT_EQ(stats.checksum, expected) << "workers=" << workers;
  }
}

// --- exactly-once execution under work stealing ---------------------------

class ExactlyOnce : public ::testing::TestWithParam<graph::pattern> {};

TEST_P(ExactlyOnce, EveryTaskRunsOnceUnderWorkStealing) {
  const graph::graph_spec g = make_spec(GetParam(), 32, 10);
  scheduler_config cfg;
  cfg.num_workers = 4;
  cfg.policy = "work-stealing-lifo";
  cfg.pin_workers = false;
  thread_manager tm(cfg);

  std::vector<std::atomic<int>> runs(g.total_tasks());
  for (auto& r : runs) r.store(0, std::memory_order_relaxed);

  auto dag = graph::futurize_dag<int>(
      tm, g,
      [&runs, &g](std::uint32_t t, std::uint32_t p,
                  const std::vector<future<int>>& in) {
        int acc = 0;
        for (const auto& f : in) acc += f.get();
        runs[static_cast<std::size_t>(t) * g.width + p].fetch_add(
            1, std::memory_order_relaxed);
        return acc + 1;
      });

  EXPECT_EQ(dag.tasks, g.total_tasks());
  for (std::size_t i = 0; i < runs.size(); ++i)
    EXPECT_EQ(runs[i].load(std::memory_order_relaxed), 1) << "task " << i;
}

INSTANTIATE_TEST_SUITE_P(StealHeavyPatterns, ExactlyOnce,
                         ::testing::Values(graph::pattern::random,
                                           graph::pattern::spread),
                         [](const auto& info) {
                           return std::string(graph::pattern_name(info.param));
                         });

// --- the paper's structural claim, deterministically in the simulator -----

TEST(GraphMetrics, TrivialHasLowerOverheadPerTaskThanRandom) {
  // At equal grain and equal task count, the edge-free pattern pays no
  // dependency management; the random DAG does. Eq. 3's to must see it.
  graph::kernel_spec k;
  k.grain_ns = 20'000.0;
  sim::graph_sim_backend backend(sim::haswell_model());

  const graph::graph_spec trivial = make_spec(graph::pattern::trivial, 64, 8);
  const graph::graph_spec random =
      make_spec(graph::pattern::random, 64, 8, 4, 0.6);
  ASSERT_GT(random.total_edges(), 0u);

  const core::graph_run_result t = backend.run(trivial, k, 8);
  const core::graph_run_result r = backend.run(random, k, 8);
  const core::metrics mt = core::compute_metrics(t.m, 0.0);
  const core::metrics mr = core::compute_metrics(r.m, 0.0);
  EXPECT_LT(mt.task_overhead_ns, mr.task_overhead_ns);
}

}  // namespace
}  // namespace gran
