// Tests for the channel-steal scheduling backend (ISSUE 9): randomized
// N-worker exactly-once execution, termination-detection convergence with
// zero residual requests, steal-one vs steal-half batch correctness, the
// request-routing order, checksum equivalence with the other policies, and
// the racy-shutdown regression for in-flight handoffs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "graph/executor.hpp"
#include "graph/kernels.hpp"
#include "graph/spec.hpp"
#include "threads/policy_channel_steal.hpp"
#include "threads/thread_manager.hpp"

namespace gran {
namespace {

scheduler_config test_config(int workers, const std::string& batch = "") {
  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.policy = "channel-steal";
  cfg.steal_batch = batch;
  cfg.pin_workers = false;  // the CI host is oversubscribed
  return cfg;
}

channel_steal_policy& policy_of(thread_manager& tm) {
  return dynamic_cast<channel_steal_policy&>(tm.policy());
}

// --- exactly-once stress (mirrors chase_lev_test's checksum scheme) -------

struct stress_ctx {
  thread_manager* tm = nullptr;
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> xr{0};
  std::atomic<std::uint64_t> count{0};
};

// Recursive range split: the front half stays on the spawning worker, the
// back half is a new task — a steal-heavy tree whose leaves fold every id
// in [0, n) into sum/xor/count checksums exactly once.
void run_range(stress_ctx* c, std::uint64_t lo, std::uint64_t hi) {
  while (hi - lo > 16) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    c->tm->spawn([c, mid, hi] { run_range(c, mid, hi); });
    hi = mid;
  }
  std::uint64_t s = 0, x = 0;
  for (std::uint64_t i = lo; i < hi; ++i) {
    s += i;
    x ^= i;
  }
  c->sum.fetch_add(s, std::memory_order_relaxed);
  c->xr.fetch_xor(x, std::memory_order_relaxed);
  c->count.fetch_add(hi - lo, std::memory_order_relaxed);
}

class ChannelStealStress : public ::testing::TestWithParam<int> {};

TEST_P(ChannelStealStress, ExactlyOnceAcrossWorkers) {
  constexpr std::uint64_t n = 100'000;
  thread_manager tm(test_config(GetParam()));
  stress_ctx ctx;
  ctx.tm = &tm;
  tm.spawn([&ctx] { run_range(&ctx, 0, n); });
  tm.wait_idle();

  std::uint64_t want_sum = 0, want_xor = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    want_sum += i;
    want_xor ^= i;
  }
  EXPECT_EQ(ctx.count.load(), n);
  EXPECT_EQ(ctx.sum.load(), want_sum);
  EXPECT_EQ(ctx.xr.load(), want_xor);
}

INSTANTIATE_TEST_SUITE_P(Workers, ChannelStealStress, ::testing::Values(2, 4, 8));

// --- termination detection -------------------------------------------------

TEST(ChannelSteal, RequestsConvergeToZeroWhenIdle) {
  thread_manager tm(test_config(4));
  stress_ctx ctx;
  ctx.tm = &tm;
  tm.spawn([&ctx] { run_range(&ctx, 0, 20'000); });
  tm.wait_idle();

  // After the work drains, every circulating token completes its circuit,
  // comes back declined, and the thief stops requesting (blocked until the
  // manager observes queued work again) — so the in-flight count must reach
  // zero and stay there, with no polling loop involved.
  channel_steal_policy& pol = policy_of(tm);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (pol.requests_in_flight() != 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(pol.requests_in_flight(), 0u);

  // And the pool is still live: new work un-blocks the thieves.
  std::atomic<int> done{0};
  for (int i = 0; i < 1'000; ++i) tm.spawn([&done] { ++done; });
  tm.wait_idle();
  EXPECT_EQ(done.load(), 1'000);
}

// --- steal-one vs steal-half -----------------------------------------------

TEST(ChannelSteal, RequestHalfDecision) {
  using P = channel_steal_policy;
  using M = P::batch_mode;
  EXPECT_FALSE(P::request_half(M::one, false));
  EXPECT_FALSE(P::request_half(M::one, true));
  EXPECT_TRUE(P::request_half(M::half, false));
  EXPECT_TRUE(P::request_half(M::half, true));
  // Adaptive: escalate to half exactly when the last refill ran dry.
  EXPECT_FALSE(P::request_half(M::adaptive, false));
  EXPECT_TRUE(P::request_half(M::adaptive, true));
}

TEST(ChannelSteal, BatchModeParsing) {
  thread_manager one(test_config(2, "one"));
  EXPECT_EQ(policy_of(one).steal_batch(), channel_steal_policy::batch_mode::one);
  thread_manager half(test_config(2, "half"));
  EXPECT_EQ(policy_of(half).steal_batch(), channel_steal_policy::batch_mode::half);
  thread_manager adaptive(test_config(2));
  EXPECT_EQ(policy_of(adaptive).steal_batch(),
            channel_steal_policy::batch_mode::adaptive);
  EXPECT_THROW(thread_manager bad(test_config(2, "sideways")),
               std::invalid_argument);
}

// One generator worker floods its private deque while the others can only
// refill through requests — the workload that separates the batch modes.
thread_manager::totals run_generator_workload(const std::string& batch) {
  thread_manager tm(test_config(2, batch));
  tm.reset_counters();
  std::atomic<int> done{0};
  constexpr int n = 2'000;
  tm.spawn([&tm, &done] {
    for (int i = 0; i < n; ++i)
      tm.spawn([&done] {
        // ~2µs of spinning so the thief's drain is slower than the
        // generator's spawn loop and the deque stays deep.
        const auto until =
            std::chrono::steady_clock::now() + std::chrono::microseconds(2);
        while (std::chrono::steady_clock::now() < until) {
        }
        ++done;
      });
  });
  tm.wait_idle();
  EXPECT_EQ(done.load(), n);
  return tm.counter_totals();
}

TEST(ChannelSteal, StealOneDeliversAtMostOneTaskPerRequest) {
  const auto totals = run_generator_workload("one");
  // Every request is answered with exactly one task (or declined), so the
  // stolen count can never exceed the request count.
  EXPECT_GT(totals.steal_req_sent, 0u);
  EXPECT_LE(totals.tasks_stolen, totals.steal_req_sent);
}

TEST(ChannelSteal, StealHalfBatchesMultipleTasksPerRequest) {
  const auto totals = run_generator_workload("half");
  // Half of a deep deque per answer: far fewer requests than stolen tasks.
  EXPECT_GT(totals.tasks_stolen, 0u);
  EXPECT_GT(totals.tasks_stolen, totals.steal_req_sent);
}

// --- request routing reuses the PR-4 steal hierarchy -----------------------

TEST(ChannelSteal, RoutingOrderFollowsTopologyTiers) {
  scheduler_config cfg = test_config(6);
  cfg.numa_domains = 2;
  thread_manager tm(cfg);
  channel_steal_policy& pol = policy_of(tm);
  for (int w = 0; w < tm.num_workers(); ++w) {
    const std::vector<int>& order = pol.steal_order(w);
    ASSERT_EQ(order.size(), static_cast<std::size_t>(tm.num_workers() - 1));
    // Every other worker appears exactly once, tier distances monotone.
    std::vector<bool> seen(static_cast<std::size_t>(tm.num_workers()), false);
    int prev_tier = 0;
    for (const int v : order) {
      ASSERT_NE(v, w);
      ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
      seen[static_cast<std::size_t>(v)] = true;
      const int tier = tm.steal_distance(w, v);
      EXPECT_GE(tier, prev_tier) << "worker " << w << " victim " << v;
      prev_tier = tier;
    }
  }
}

// --- checksum equivalence with the other policies --------------------------

TEST(ChannelSteal, GraphChecksumsMatchOtherPolicies) {
  graph::kernel_spec k;
  k.grain_ns = 200.0;
  for (const graph::pattern kind : graph::all_patterns) {
    graph::graph_spec g;
    g.kind = kind;
    g.width = 12;
    g.steps = 5;
    g.seed = 42;
    std::uint64_t expected = 0;
    bool first = true;
    for (const char* policy :
         {"priority-local-fifo", "static-fifo", "work-stealing-lifo",
          "channel-steal"}) {
      scheduler_config cfg;
      cfg.num_workers = 4;
      cfg.policy = policy;
      cfg.pin_workers = false;
      thread_manager tm(cfg);
      const graph::run_stats stats = graph::run_graph(tm, g, k);
      if (first) {
        expected = stats.checksum;
        first = false;
      } else {
        EXPECT_EQ(stats.checksum, expected)
            << graph::pattern_name(kind) << " under " << policy;
      }
    }
  }
}

// --- racy shutdown (in-flight handoff regression) --------------------------

// Tasks handed off between structures (channel deliveries, staged-steal
// converts) are momentarily in no queue; queues_empty must still see them
// (thread_manager::handoffs_in_flight), or a racing park/shutdown observes
// an empty pool while work is in flight. Hammer construction, cross-thread
// spawning, yields (requeue traffic) and immediate destruction under every
// policy; nothing may be lost.
TEST(ChannelSteal, RacyShutdownLosesNoTasksUnderAnyPolicy) {
  for (const char* policy :
       {"priority-local-fifo", "static-fifo", "work-stealing-lifo",
        "channel-steal"}) {
    for (int round = 0; round < 10; ++round) {
      scheduler_config cfg;
      cfg.num_workers = 3;
      cfg.policy = policy;
      cfg.pin_workers = false;
      std::atomic<int> done{0};
      constexpr int n = 300;
      {
        thread_manager tm(cfg);
        std::thread external([&tm, &done] {
          for (int i = 0; i < n; ++i)
            tm.spawn([&done] {
              this_task::yield();  // forces a pending re-enqueue handoff
              ++done;
            });
        });
        external.join();
        tm.wait_idle();
        // Destructor races the tail of the drain from here.
      }
      ASSERT_EQ(done.load(), n) << policy << " round " << round;
    }
  }
}

}  // namespace
}  // namespace gran
