// Tests for the lock-free Chase–Lev work-stealing deque: sequential
// semantics, dynamic circular-array growth, and a randomized owner-vs-thieves
// stress test asserting exactly-once delivery of every pushed item.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "queues/chase_lev_deque.hpp"

namespace gran {
namespace {

TEST(ChaseLevDeque, LifoForOwner) {
  chase_lev_deque<int> d(8);
  for (int i = 0; i < 5; ++i) d.push(i);
  for (int i = 4; i >= 0; --i) {
    auto v = d.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(d.pop().has_value());
  EXPECT_TRUE(d.empty_approx());
}

TEST(ChaseLevDeque, FifoForThief) {
  chase_lev_deque<int> d(8);
  for (int i = 0; i < 5; ++i) d.push(i);
  // Steals come from the top: oldest first.
  for (int i = 0; i < 5; ++i) {
    auto v = d.steal();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(d.steal().has_value());
}

TEST(ChaseLevDeque, SingleElementOwnerWinsOrThiefWins) {
  // Owner pop and thief steal race over one element; exactly one side gets
  // it. Exercised deterministically here (no concurrency): after a steal
  // drained the deque, pop must miss.
  chase_lev_deque<int> d(4);
  d.push(42);
  EXPECT_EQ(d.steal().value(), 42);
  EXPECT_FALSE(d.pop().has_value());
}

TEST(ChaseLevDeque, GrowsBeyondInitialCapacity) {
  chase_lev_deque<int> d(4);
  const std::size_t cap0 = d.capacity();
  constexpr int n = 10'000;  // many doublings
  for (int i = 0; i < n; ++i) d.push(i);
  EXPECT_GT(d.capacity(), cap0);
  EXPECT_GE(d.capacity(), static_cast<std::size_t>(n));
  EXPECT_EQ(d.size_approx(), static_cast<std::size_t>(n));
  // Every element survived the copies, in LIFO order.
  for (int i = n - 1; i >= 0; --i) {
    auto v = d.pop();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);
  }
  EXPECT_FALSE(d.pop().has_value());
}

TEST(ChaseLevDeque, GrowthWhileStealing) {
  // Thieves keep stealing while the owner pushes through several growth
  // events; nothing may be lost or duplicated.
  chase_lev_deque<std::uint32_t> d(2);
  constexpr std::uint32_t n = 200'000;
  std::atomic<std::uint64_t> stolen_sum{0};
  std::atomic<std::uint64_t> stolen_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < 3; ++t)
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) || !d.empty_approx()) {
        if (auto v = d.steal()) {
          stolen_sum.fetch_add(*v, std::memory_order_relaxed);
          stolen_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });

  std::uint64_t owner_sum = 0, owner_count = 0;
  for (std::uint32_t i = 1; i <= n; ++i) d.push(i);
  while (auto v = d.pop()) {
    owner_sum += *v;
    ++owner_count;
  }
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();
  // Late drain in case the owner's last pop raced a thief that then lost.
  while (auto v = d.pop()) {
    owner_sum += *v;
    ++owner_count;
  }

  EXPECT_EQ(owner_count + stolen_count.load(), n);
  EXPECT_EQ(owner_sum + stolen_sum.load(),
            static_cast<std::uint64_t>(n) * (n + 1) / 2);
}

// The ISSUE's randomized stress: one owner doing interleaved push/pop while
// 2–8 thieves steal concurrently; every pushed id is consumed exactly once
// (xor + sum checksums over ids catch both loss and duplication).
class ChaseLevStress : public ::testing::TestWithParam<int> {};

TEST_P(ChaseLevStress, ExactlyOnceUnderInterleavedPushPop) {
  const int num_thieves = GetParam();
  chase_lev_deque<std::uint64_t> d(8);  // tiny: force growth under fire
  constexpr std::uint64_t n = 300'000;

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> thief_sum{0}, thief_xor{0}, thief_count{0};

  std::vector<std::thread> thieves;
  for (int t = 0; t < num_thieves; ++t)
    thieves.emplace_back([&] {
      std::uint64_t sum = 0, x = 0, cnt = 0;
      while (!done.load(std::memory_order_acquire) || !d.empty_approx()) {
        if (auto v = d.steal()) {
          sum += *v;
          x ^= *v;
          ++cnt;
        }
      }
      thief_sum.fetch_add(sum, std::memory_order_relaxed);
      thief_xor.fetch_xor(x, std::memory_order_relaxed);
      thief_count.fetch_add(cnt, std::memory_order_relaxed);
    });

  std::mt19937_64 rng(12345 + static_cast<std::uint64_t>(num_thieves));
  std::uint64_t owner_sum = 0, owner_xor = 0, owner_count = 0;
  std::uint64_t next_id = 1;
  while (next_id <= n) {
    // Random bursts of pushes interleaved with random bursts of pops.
    const std::uint64_t pushes = rng() % 16 + 1;
    for (std::uint64_t i = 0; i < pushes && next_id <= n; ++i) d.push(next_id++);
    const std::uint64_t pops = rng() % 16;
    for (std::uint64_t i = 0; i < pops; ++i) {
      auto v = d.pop();
      if (!v) break;
      owner_sum += *v;
      owner_xor ^= *v;
      ++owner_count;
    }
  }
  while (auto v = d.pop()) {
    owner_sum += *v;
    owner_xor ^= *v;
    ++owner_count;
  }
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();
  while (auto v = d.pop()) {  // anything a losing thief left behind
    owner_sum += *v;
    owner_xor ^= *v;
    ++owner_count;
  }

  std::uint64_t want_sum = 0, want_xor = 0;
  for (std::uint64_t id = 1; id <= n; ++id) {
    want_sum += id;
    want_xor ^= id;
  }
  EXPECT_EQ(owner_count + thief_count.load(), n);
  EXPECT_EQ(owner_sum + thief_sum.load(), want_sum);
  EXPECT_EQ(owner_xor ^ thief_xor.load(), want_xor);
}

INSTANTIATE_TEST_SUITE_P(Thieves, ChaseLevStress, ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace gran
