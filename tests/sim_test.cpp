// Tests for the discrete-event simulator: machine models, determinism, and
// the qualitative properties the paper's figures rest on (U-shape,
// idle-rate behaviour, wait-time growth, queue-access shape).
#include <gtest/gtest.h>

#include "sim/des.hpp"
#include "sim/machine_model.hpp"
#include "sim/sim_backend.hpp"

namespace gran::sim {
namespace {

sim_config make_config(const std::string& platform, int cores, std::size_t points,
                       std::size_t partition, std::size_t steps) {
  sim_config cfg;
  cfg.model = make_machine_model(platform);
  cfg.cores = cores;
  cfg.workload.total_points = points;
  cfg.workload.partition_size = partition;
  cfg.workload.time_steps = steps;
  cfg.workload.normalize();
  return cfg;
}

// --- machine models -----------------------------------------------------------

TEST(MachineModel, FactoriesMatchSpecs) {
  EXPECT_EQ(haswell_model().spec.cores, 28);
  EXPECT_EQ(xeon_phi_model().spec.cores, 61);
  EXPECT_EQ(sandy_bridge_model().spec.cores, 16);
  EXPECT_EQ(ivy_bridge_model().spec.cores, 20);
  EXPECT_THROW(make_machine_model("bogus"), std::invalid_argument);
}

TEST(MachineModel, CalibrationAnchors) {
  // Paper §IV-A: td(12,500 pts, 1 core) ≈ 21 µs on Haswell, ≈ 1.1 ms on the
  // Xeon Phi.
  const double hw = haswell_model().task_exec_single_core_ns(12'500, 100'000'000);
  EXPECT_NEAR(hw, 21'000, 2'000);
  const double phi = xeon_phi_model().task_exec_single_core_ns(12'500, 100'000'000);
  EXPECT_NEAR(phi, 1'100'000, 150'000);
}

TEST(MachineModel, ExecScalesWithPoints) {
  const machine_model m = haswell_model();
  EXPECT_LT(m.task_exec_ns(1'000, 1, 28), m.task_exec_ns(10'000, 1, 28));
  EXPECT_DOUBLE_EQ(m.task_exec_ns(2'000, 1, 28), 2 * m.task_exec_ns(1'000, 1, 28));
}

TEST(MachineModel, BandwidthContentionMonotone) {
  const machine_model m = haswell_model();
  // More concurrent streams can only slow a task down, saturating at the
  // point where bw_total/k < bw_core.
  double prev = m.task_exec_ns(10'000, 1, 28);
  for (int k = 2; k <= 28; ++k) {
    const double cur = m.task_exec_ns(10'000, k, 28);
    EXPECT_GE(cur, prev - 1e-9) << "streams " << k;
    prev = cur;
  }
  EXPECT_GT(m.task_exec_ns(10'000, 28, 28), m.task_exec_ns(10'000, 1, 28));
}

TEST(MachineModel, SingleCoreBiasOnlyForBigPartitions) {
  const machine_model m = haswell_model();
  // Small partitions: no working-set penalty.
  EXPECT_DOUBLE_EQ(m.task_exec_single_core_ns(10'000, 100'000'000),
                   10'000 * m.cpu_ns_per_point);
  // Huge partitions: penalized.
  EXPECT_GT(m.task_exec_single_core_ns(50'000'000, 100'000'000),
            50'000'000 * m.cpu_ns_per_point);
}

// --- simulator basics -------------------------------------------------------------

TEST(Simulator, ExecutesAllTasks) {
  const auto cfg = make_config("haswell", 8, 100'000, 1'000, 10);
  const auto r = simulate_stencil(cfg);
  EXPECT_EQ(r.measurement.tasks, 100u * 10u);
  EXPECT_GT(r.makespan_s, 0.0);
  EXPECT_GT(r.measurement.exec_ns, 0.0);
  EXPECT_GE(r.measurement.func_ns, r.measurement.exec_ns);
}

TEST(Simulator, DeterministicForFixedSeed) {
  const auto cfg = make_config("haswell", 16, 1'000'000, 10'000, 10);
  const auto a = simulate_stencil(cfg);
  const auto b = simulate_stencil(cfg);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.measurement.pending_accesses, b.measurement.pending_accesses);
  EXPECT_EQ(a.tasks_stolen, b.tasks_stolen);
}

TEST(Simulator, SeedChangesJitterOnly) {
  auto cfg = make_config("haswell", 16, 1'000'000, 10'000, 10);
  const auto a = simulate_stencil(cfg);
  cfg.seed = 99;
  const auto b = simulate_stencil(cfg);
  EXPECT_EQ(a.measurement.tasks, b.measurement.tasks);
  EXPECT_NE(a.makespan_s, b.makespan_s);  // jitter differs
  EXPECT_NEAR(a.makespan_s, b.makespan_s, 0.2 * a.makespan_s);
}

TEST(Simulator, CoresClampedToModel) {
  const auto cfg = make_config("haswell", 500, 100'000, 10'000, 5);
  const auto r = simulate_stencil(cfg);
  EXPECT_EQ(r.measurement.cores, 28);  // Haswell has 28 cores
}

TEST(Simulator, SinglePartitionSerialChain) {
  // One partition: a pure serial chain of `steps` tasks.
  const auto cfg = make_config("haswell", 8, 1'000'000, 1'000'000, 20);
  const auto r = simulate_stencil(cfg);
  EXPECT_EQ(r.measurement.tasks, 20u);
  // Makespan at least the serial execution of the chain.
  const double min_chain =
      20 * cfg.model.task_exec_ns(1'000'000, 1, 8) * (1 - cfg.model.jitter) * 1e-9;
  EXPECT_GE(r.makespan_s, min_chain * 0.9);
}

// --- strong scaling & figure shapes -----------------------------------------------

TEST(Simulator, MidGrainScalesWithCores) {
  // At medium granularity more cores must help substantially.
  const double t1 = simulate_stencil(make_config("haswell", 1, 4'000'000, 50'000, 20))
                        .makespan_s;
  const double t8 = simulate_stencil(make_config("haswell", 8, 4'000'000, 50'000, 20))
                        .makespan_s;
  EXPECT_LT(t8, t1 / 2.5);
}

struct platform_case {
  const char* name;
  int cores;
  std::size_t steps;
};

class FigureShapes : public ::testing::TestWithParam<platform_case> {};

TEST_P(FigureShapes, ExecTimeIsUShaped) {
  const auto [platform, cores, steps] = GetParam();
  const std::size_t points = 2'000'000;
  const double fine =
      simulate_stencil(make_config(platform, cores, points, 200, steps)).makespan_s;
  const double mid =
      simulate_stencil(make_config(platform, cores, points, 50'000, steps)).makespan_s;
  const double coarse =
      simulate_stencil(make_config(platform, cores, points, points, steps)).makespan_s;
  EXPECT_LT(mid, fine) << "fine-grain overhead must dominate on the left";
  EXPECT_LT(mid, coarse) << "starvation must dominate on the right";
}

TEST_P(FigureShapes, IdleRateHighAtExtremes) {
  const auto [platform, cores, steps] = GetParam();
  const std::size_t points = 2'000'000;
  const auto idle = [&](std::size_t partition) {
    const auto m = simulate_stencil(make_config(platform, cores, points, partition, steps))
                       .measurement;
    return (m.func_ns - m.exec_ns) / m.func_ns;
  };
  const double fine = idle(200);
  const double mid = idle(50'000);
  const double coarse = idle(points);
  EXPECT_GT(fine, mid + 0.1);
  EXPECT_GT(coarse, mid + 0.1);
  EXPECT_GT(fine, 0.5);
  EXPECT_GT(coarse, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, FigureShapes,
    ::testing::Values(platform_case{"haswell", 28, 20},
                      platform_case{"haswell", 8, 20},
                      platform_case{"sandy-bridge", 16, 20},
                      platform_case{"ivy-bridge", 20, 20},
                      platform_case{"xeon-phi", 60, 5}),
    [](const auto& info) {
      std::string n = info.param.name;
      for (auto& c : n)
        if (c == '-') c = '_';
      return n + "_" + std::to_string(info.param.cores) + "c";
    });

TEST(Simulator, WaitTimeGrowsWithCores) {
  // Fig. 6: td(nc) - td(1) increases with core count at fixed mid grain.
  const std::size_t points = 4'000'000, partition = 50'000, steps = 20;
  const auto td = [&](int cores) {
    const auto m =
        simulate_stencil(make_config("haswell", cores, points, partition, steps))
            .measurement;
    return m.exec_ns / static_cast<double>(m.tasks);
  };
  const double td1 = td(1);
  const double tw8 = td(8) - td1;
  const double tw28 = td(28) - td1;
  EXPECT_GT(tw8, 0.0);
  EXPECT_GT(tw28, tw8);
}

TEST(Simulator, WaitTimeGrowsWithPartitionSize) {
  // Fig. 6's other axis: at fixed cores, tw grows with the partition size.
  const std::size_t points = 4'000'000, steps = 20;
  const auto tw = [&](std::size_t partition) {
    const auto multi =
        simulate_stencil(make_config("haswell", 16, points, partition, steps))
            .measurement;
    const auto single =
        simulate_stencil(make_config("haswell", 1, points, partition, steps))
            .measurement;
    return multi.exec_ns / static_cast<double>(multi.tasks) -
           single.exec_ns / static_cast<double>(single.tasks);
  };
  EXPECT_GT(tw(100'000), tw(10'000));
}

TEST(Simulator, NegativeWaitTimeAtVeryCoarseGrain) {
  // Figs. 7/8: with partitions far beyond the cache anchor, the 1-core
  // baseline is slower per task than the parallel run.
  const std::size_t points = 50'000'000, steps = 5;
  const auto multi =
      simulate_stencil(make_config("haswell", 28, points, points / 2, steps))
          .measurement;
  const auto single =
      simulate_stencil(make_config("haswell", 1, points, points / 2, steps)).measurement;
  const double td_multi = multi.exec_ns / static_cast<double>(multi.tasks);
  const double td1 = single.exec_ns / static_cast<double>(single.tasks);
  EXPECT_LT(td_multi, td1);
}

TEST(Simulator, PendingAccessesShape) {
  // Fig. 9: accesses high at fine grain, interior minimum, mild rise at
  // coarse grain.
  const std::size_t points = 2'000'000, steps = 20;
  const auto pq = [&](std::size_t partition) {
    return simulate_stencil(make_config("haswell", 16, points, partition, steps))
        .measurement.pending_accesses;
  };
  const auto fine = pq(200);
  const auto mid = pq(50'000);
  const auto coarse = pq(points);
  EXPECT_GT(fine, mid * 5);
  EXPECT_GT(coarse, mid);
}

TEST(Simulator, EveryTaskTouchesPendingQueue) {
  const auto cfg = make_config("haswell", 4, 500'000, 5'000, 10);
  const auto r = simulate_stencil(cfg);
  EXPECT_GE(r.measurement.pending_accesses, r.measurement.tasks);
}


// --- the calibrated fine-grain mechanisms --------------------------------------

TEST(Simulator, FineGrainTimesConvergeAcrossCoreCounts) {
  // Fig. 3's left edge: at the finest grain the serial tree construction +
  // contended task management bound execution, so adding cores barely helps.
  const std::size_t points = 2'000'000, partition = 200, steps = 20;
  const double t4 =
      simulate_stencil(make_config("haswell", 4, points, partition, steps)).makespan_s;
  const double t28 =
      simulate_stencil(make_config("haswell", 28, points, partition, steps)).makespan_s;
  EXPECT_LT(t28, t4);            // still a little better...
  EXPECT_GT(t28, t4 * 0.5);      // ...but nowhere near 7x
}

TEST(Simulator, IdleRateRisesWithCoreCountAtFixedFineGrain) {
  // Figs. 4/5: the same fine grain looks worse on more cores (management
  // contention), one of the paper's central observations.
  const std::size_t points = 2'000'000, partition = 1'600, steps = 20;
  const auto idle = [&](int cores) {
    const auto m =
        simulate_stencil(make_config("haswell", cores, points, partition, steps))
            .measurement;
    return (m.func_ns - m.exec_ns) / m.func_ns;
  };
  EXPECT_GT(idle(16), idle(8));
  EXPECT_GT(idle(28), idle(16));
}

TEST(Simulator, ManagementScalesWithContention) {
  // Direct check on the per-task overhead: to(28 cores) >> to(1 core).
  const std::size_t points = 1'000'000, partition = 1'000, steps = 10;
  const auto to = [&](int cores) {
    const auto m =
        simulate_stencil(make_config("haswell", cores, points, partition, steps))
            .measurement;
    const double overhead = std::max(0.0, m.func_ns - m.exec_ns);
    return overhead / static_cast<double>(m.tasks);
  };
  EXPECT_GT(to(28), to(2) * 3);
}


// --- independent-task workload (the paper's micro benchmarks) -------------------

TEST(Simulator, IndependentWorkloadRunsAllTasks) {
  auto cfg = make_config("haswell", 8, 500'000, 5'000, 10);
  cfg.workload_kind = sim_workload::independent;
  const auto r = simulate_stencil(cfg);
  EXPECT_EQ(r.measurement.tasks, 100u * 10u);
}

TEST(Simulator, IndependentWorkloadShowsSameUShape) {
  // "We obtained similar results from micro benchmarks" (paper \u00a7I-C): the
  // U-shape does not depend on the stencil's dependency graph.
  const std::size_t points = 2'000'000, steps = 20;
  const auto t = [&](std::size_t partition) {
    auto cfg = make_config("haswell", 16, points, partition, steps);
    cfg.workload_kind = sim_workload::independent;
    return simulate_stencil(cfg).makespan_s;
  };
  const double fine = t(200), mid = t(50'000), coarse = t(points);
  EXPECT_LT(mid, fine);
  EXPECT_LT(mid, coarse);
}

TEST(Simulator, IndependentFasterOrEqualToStencilAtCoarseGrain) {
  // Without the 3-point dependency chain, coarse grains parallelize freely
  // until the task count drops below the core count.
  auto dep = make_config("haswell", 16, 4'000'000, 2'000'000, 20);
  auto indep = dep;
  indep.workload_kind = sim_workload::independent;
  // 2 partitions x 20 steps: stencil serializes steps, independent does not.
  EXPECT_LT(simulate_stencil(indep).makespan_s * 2.0,
            simulate_stencil(dep).makespan_s);
}

// --- policies & ablation knobs ------------------------------------------------------

TEST(Simulator, PoliciesAllComplete) {
  for (const sim_policy p : {sim_policy::priority_local, sim_policy::static_fifo,
                             sim_policy::work_stealing}) {
    auto cfg = make_config("haswell", 8, 500'000, 5'000, 10);
    cfg.policy = p;
    const auto r = simulate_stencil(cfg);
    EXPECT_EQ(r.measurement.tasks, 100u * 10u);
  }
}

TEST(Simulator, StaticPolicyNeverSteals) {
  auto cfg = make_config("haswell", 8, 500'000, 5'000, 10);
  cfg.policy = sim_policy::static_fifo;
  EXPECT_EQ(simulate_stencil(cfg).tasks_stolen, 0u);
}

TEST(Simulator, StaticPolicySuffersAtCoarseGrain) {
  // Without stealing, locally staged dependents pile onto few cores.
  auto base = make_config("haswell", 16, 2'000'000, 250'000, 20);
  const double with_steal = simulate_stencil(base).makespan_s;
  base.policy = sim_policy::static_fifo;
  const double without = simulate_stencil(base).makespan_s;
  EXPECT_GE(without, with_steal);
}

TEST(Simulator, NumaObliviousStealRuns) {
  auto cfg = make_config("haswell", 16, 1'000'000, 10'000, 10);
  cfg.numa_aware_steal = false;
  const auto r = simulate_stencil(cfg);
  EXPECT_EQ(r.measurement.tasks, 100u * 10u);
}

TEST(Simulator, WorkStealingConvertsAtSpawn) {
  auto cfg = make_config("haswell", 8, 500'000, 5'000, 10);
  cfg.policy = sim_policy::work_stealing;
  const auto r = simulate_stencil(cfg);
  // No staged stage: conversions happen for every non-initial task at spawn
  // and staged queues are never accessed.
  EXPECT_EQ(r.measurement.staged_accesses, 0u);
}

// --- backend integration -------------------------------------------------------------

TEST(SimBackend, ImplementsExperimentInterface) {
  sim_backend backend("haswell");
  EXPECT_EQ(backend.name(), "sim(haswell)");
  stencil::params p;
  p.total_points = 200'000;
  p.partition_size = 10'000;
  p.time_steps = 5;
  const auto m = backend.run(p, 8);
  EXPECT_EQ(m.cores, 8);
  EXPECT_EQ(m.tasks, 20u * 5u);
  EXPECT_GT(m.exec_time_s, 0.0);
}

}  // namespace
}  // namespace gran::sim
