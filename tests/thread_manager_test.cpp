// Integration tests for the thread manager and the scheduling policies.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "perf/heartbeat.hpp"
#include "sync/latch.hpp"
#include "threads/runtime.hpp"
#include "threads/thread_manager.hpp"

namespace gran {
namespace {

scheduler_config test_config(int workers, const std::string& policy = "priority-local-fifo") {
  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.policy = policy;
  cfg.pin_workers = false;  // the CI host is oversubscribed
  return cfg;
}

TEST(ThreadManager, RunsSpawnedTasks) {
  thread_manager tm(test_config(2));
  std::atomic<long> sum{0};
  for (int i = 0; i < 5000; ++i) tm.spawn([&sum, i] { sum += i; });
  tm.wait_idle();
  EXPECT_EQ(sum.load(), 4999L * 5000 / 2);
}

TEST(ThreadManager, CountsTasksAndPhases) {
  thread_manager tm(test_config(2));
  tm.reset_counters();
  for (int i = 0; i < 100; ++i) tm.spawn([] {});
  tm.wait_idle();
  const auto totals = tm.counter_totals();
  EXPECT_EQ(totals.tasks_executed, 100u);
  EXPECT_GE(totals.phases_executed, 100u);
  EXPECT_GE(totals.func_ns, totals.exec_ns);  // tfunc ⊇ texec
  EXPECT_EQ(tm.tasks_alive(), 0u);
}

TEST(ThreadManager, SpawnFromInsideTask) {
  thread_manager tm(test_config(2));
  std::atomic<int> done{0};
  tm.spawn([&] {
    for (int i = 0; i < 50; ++i)
      thread_manager::current()->spawn([&done] { ++done; });
  });
  tm.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadManager, YieldEndsPhase) {
  thread_manager tm(test_config(1));
  tm.reset_counters();
  tm.spawn([] {
    for (int i = 0; i < 4; ++i) this_task::yield();
  });
  tm.wait_idle();
  const auto totals = tm.counter_totals();
  EXPECT_EQ(totals.tasks_executed, 1u);
  EXPECT_EQ(totals.phases_executed, 5u);  // initial phase + 4 yields
}

TEST(ThreadManager, SuspendAndExternalWake) {
  thread_manager tm(test_config(2));
  std::atomic<task*> self{nullptr};
  std::atomic<bool> resumed{false};
  tm.spawn([&] {
    self.store(this_task::current());
    this_task::suspend();
    resumed.store(true);
  });
  while (self.load() == nullptr) {
  }
  tm.wake(self.load());  // protocol handles any interleaving
  tm.wait_idle();
  EXPECT_TRUE(resumed.load());
}

TEST(ThreadManager, ThisTaskIdentity) {
  thread_manager tm(test_config(1));
  std::atomic<std::uint64_t> observed_id{0};
  std::atomic<int> observed_worker{-2};
  const std::uint64_t id = tm.spawn([&] {
    observed_id = this_task::id();
    observed_worker = this_task::worker_index();
  });
  tm.wait_idle();
  EXPECT_EQ(observed_id.load(), id);
  EXPECT_EQ(observed_worker.load(), 0);
  EXPECT_EQ(this_task::current(), nullptr);     // outside any task
  EXPECT_EQ(this_task::worker_index(), -1);     // outside any worker
}

TEST(ThreadManager, WorkDistributionAcrossWorkers) {
  thread_manager tm(test_config(4));
  tm.reset_counters();
  latch gate(200);
  for (int i = 0; i < 200; ++i)
    tm.spawn([&gate] {
      // Enough work that stealing pays off even on one physical CPU.
      volatile double x = 1.0;
      for (int k = 0; k < 20000; ++k) x = x * 1.0000001 + 0.1;
      gate.count_down();
    });
  gate.wait();
  tm.wait_idle();
  // External spawns round-robin across workers: more than one worker must
  // have executed something.
  int active_workers = 0;
  for (int w = 0; w < tm.num_workers(); ++w)
    if (tm.worker(w).counters.tasks_executed.load() > 0) ++active_workers;
  EXPECT_GT(active_workers, 1);
}

TEST(ThreadManager, PrioritiesAllRun) {
  thread_manager tm(test_config(2));
  std::atomic<int> ran{0};
  tm.spawn([&] { ++ran; }, task_priority::high, "high");
  tm.spawn([&] { ++ran; }, task_priority::normal, "normal");
  tm.spawn([&] { ++ran; }, task_priority::low, "low");
  tm.wait_idle();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadManager, LowPriorityRunsLast) {
  // One worker: a low-priority task spawned first must still run after the
  // normal-priority work that arrives later (low queue is drained only when
  // everything else is empty).
  thread_manager tm(test_config(1));
  std::vector<int> order;
  gran::latch done(3);
  tm.spawn(
      [&] {
        order.push_back(0);  // low
        done.count_down();
      },
      task_priority::low);
  tm.spawn(
      [&] {
        order.push_back(1);
        done.count_down();
      },
      task_priority::normal);
  tm.spawn(
      [&] {
        order.push_back(2);
        done.count_down();
      },
      task_priority::normal);
  done.wait();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), 0) << "low-priority task must run after normal ones";
}

class PolicyParam : public ::testing::TestWithParam<const char*> {};

TEST_P(PolicyParam, CorrectUnderEachPolicy) {
  thread_manager tm(test_config(3, GetParam()));
  EXPECT_STREQ(tm.policy().name(), GetParam());
  std::atomic<long> sum{0};
  for (int i = 0; i < 2000; ++i) tm.spawn([&sum, i] { sum += i; });
  tm.wait_idle();
  EXPECT_EQ(sum.load(), 1999L * 2000 / 2);
}

TEST_P(PolicyParam, SuspendWakeUnderEachPolicy) {
  thread_manager tm(test_config(2, GetParam()));
  std::atomic<task*> self{nullptr};
  std::atomic<bool> resumed{false};
  tm.spawn([&] {
    self.store(this_task::current());
    this_task::suspend();
    resumed = true;
  });
  while (!self.load()) {
  }
  tm.wake(self.load());
  tm.wait_idle();
  EXPECT_TRUE(resumed.load());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyParam,
                         ::testing::Values("priority-local-fifo", "static-fifo",
                                           "work-stealing-lifo",
                                           "channel-steal"));

TEST(ThreadManager, UnknownPolicyThrows) {
  EXPECT_THROW(thread_manager tm(test_config(1, "no-such-policy")),
               std::invalid_argument);
}

TEST(ThreadManager, QueueCountersAdvance) {
  thread_manager tm(test_config(2));
  tm.reset_counters();
  for (int i = 0; i < 500; ++i) tm.spawn([] {});
  tm.wait_idle();
  const auto totals = tm.counter_totals();
  // Every task passes through a pending queue at least once.
  EXPECT_GE(totals.queues.pending_accesses, 500u);
  EXPECT_GE(totals.queues.staged_accesses, 1u);
  EXPECT_EQ(totals.tasks_converted, 500u);
}

TEST(ThreadManager, ResetCountersZeroes) {
  thread_manager tm(test_config(2));
  for (int i = 0; i < 50; ++i) tm.spawn([] {});
  tm.wait_idle();
  tm.reset_counters();
  const auto totals = tm.counter_totals();
  EXPECT_EQ(totals.tasks_executed, 0u);
  EXPECT_EQ(totals.queues.pending_accesses, 0u);
}

TEST(ThreadManager, PerfCountersRegistered) {
  thread_manager tm(test_config(2));
  auto& reg = perf::registry::instance();
  for (int i = 0; i < 100; ++i) tm.spawn([] {});
  tm.wait_idle();
  EXPECT_EQ(reg.value_or("/threads/count/cumulative", -1), 100.0);
  EXPECT_GE(reg.value_or("/threads/idle-rate", -1), 0.0);
  EXPECT_LE(reg.value_or("/threads/idle-rate", 2), 1.0);
  EXPECT_GE(reg.value_or("/threads{worker#0}/count/cumulative", -1), 0.0);
  EXPECT_FALSE(reg.list("/threads").empty());
}

TEST(ThreadManager, InstanceCountersSumToAggregate) {
  // The per-worker {worker#N} instances must decompose the aggregate exactly
  // — both views read the same per-worker atomics.
  thread_manager tm(test_config(4));
  auto& reg = perf::registry::instance();
  tm.reset_counters();
  constexpr int n = 400;
  for (int i = 0; i < n; ++i)
    tm.spawn([] {
      volatile double x = 1.0;
      for (int k = 0; k < 5000; ++k) x = x * 1.0000001 + 0.1;
    });
  tm.wait_idle();

  for (const char* name : {"count/cumulative", "count/stolen", "count/stolen-local",
                           "count/stolen-remote"}) {
    const double aggregate =
        reg.value_or(std::string("/threads/") + name, -1);
    ASSERT_GE(aggregate, 0.0) << name;
    double sum = 0;
    for (int w = 0; w < tm.num_workers(); ++w)
      sum += reg.value_or(
          "/threads{worker#" + std::to_string(w) + "}/" + name, 0);
    EXPECT_EQ(sum, aggregate) << name;
  }
  EXPECT_EQ(reg.value_or("/threads/count/cumulative", -1),
            static_cast<double>(n));

  // The locality split decomposes the steal count.
  const double stolen = reg.value_or("/threads/count/stolen", -1);
  const double local = reg.value_or("/threads/count/stolen-local", -1);
  const double remote = reg.value_or("/threads/count/stolen-remote", -1);
  EXPECT_EQ(local + remote, stolen);
}

TEST(ThreadManager, PinPlanExposedAndNoRejectedPins) {
  // test_config disables pinning, so the plan leaves every worker unpinned
  // and no pin can have been rejected.
  thread_manager tm(test_config(3));
  const auto& plan = tm.plan();
  EXPECT_FALSE(plan.pinned());
  ASSERT_EQ(plan.workers.size(), 3u);
  for (const auto& a : plan.workers) {
    EXPECT_EQ(a.cpu, -1);
    EXPECT_GE(a.domain, 0);
  }
  EXPECT_EQ(tm.pins_rejected(), 0u);
  auto& reg = perf::registry::instance();
  EXPECT_EQ(reg.value_or("/threads/count/pin-rejected", -1), 0.0);
}

TEST(ThreadManager, TaskDurationHistogramCounters) {
  thread_manager tm(test_config(2));
  auto& reg = perf::registry::instance();
  tm.reset_counters();
  constexpr int n = 200;
  for (int i = 0; i < n; ++i)
    tm.spawn([] {
      volatile double x = 1.0;
      for (int k = 0; k < 2000; ++k) x = x * 1.0000001 + 0.1;
    });
  tm.wait_idle();

  EXPECT_EQ(reg.value_or("/threads/histogram/task-duration/count", -1),
            static_cast<double>(n));
  const double p50 = reg.value_or("/threads/histogram/task-duration/p50", -1);
  const double p95 = reg.value_or("/threads/histogram/task-duration/p95", -1);
  const double p99 = reg.value_or("/threads/histogram/task-duration/p99", -1);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(reg.value_or("/threads/histogram/task-duration/mean", -1), 0.0);
  // Overhead histogram records inter-phase gaps: at least one sample once
  // more than one task ran on a worker.
  EXPECT_GT(reg.value_or("/threads/histogram/task-overhead/count", -1), 0.0);

  // Per-worker instances exist and their sample counts decompose the total.
  double inst_count = 0;
  for (int w = 0; w < tm.num_workers(); ++w)
    inst_count += reg.value_or(
        "/threads{worker#" + std::to_string(w) + "}/histogram/task-duration/count", 0);
  EXPECT_EQ(inst_count, static_cast<double>(n));
}

TEST(ThreadManager, CountersUnregisteredAfterDestruction) {
  {
    thread_manager tm(test_config(1));
    EXPECT_FALSE(perf::registry::instance().list("/threads").empty());
  }
  EXPECT_TRUE(perf::registry::instance().list("/threads").empty());
}

TEST(ThreadManager, DefaultManagerLifecycle) {
  EXPECT_EQ(default_manager(), nullptr);
  {
    thread_manager tm(test_config(1));
    EXPECT_EQ(default_manager(), &tm);
    EXPECT_EQ(&resolve_manager(), &tm);
  }
  EXPECT_EQ(default_manager(), nullptr);
}

TEST(ThreadManager, DrainsOnDestruction) {
  std::atomic<int> done{0};
  {
    thread_manager tm(test_config(2));
    for (int i = 0; i < 1000; ++i) tm.spawn([&done] { ++done; });
    // No wait_idle: the destructor must drain everything.
  }
  EXPECT_EQ(done.load(), 1000);
}

TEST(ThreadManager, OversubscribedWorkers) {
  // More workers than physical CPUs must still be correct (the CI host has
  // one CPU, so every multi-worker test already oversubscribes; make it
  // explicit and bigger here).
  thread_manager tm(test_config(8));
  std::atomic<long> sum{0};
  for (int i = 0; i < 3000; ++i) tm.spawn([&sum] { ++sum; });
  tm.wait_idle();
  EXPECT_EQ(sum.load(), 3000);
}

TEST(ThreadManager, HighPriorityQueueConfig) {
  scheduler_config cfg = test_config(4);
  cfg.high_priority_queues = 2;
  thread_manager tm(cfg);
  EXPECT_TRUE(tm.worker(0).owns_high_queue);
  EXPECT_TRUE(tm.worker(1).owns_high_queue);
  EXPECT_FALSE(tm.worker(2).owns_high_queue);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) tm.spawn([&ran] { ++ran; }, task_priority::high);
  tm.wait_idle();
  EXPECT_EQ(ran.load(), 64);
}


TEST(ThreadManager, HighPriorityRunsBeforeQueuedNormal) {
  // One worker, briefly blocked: queue normal work first, then a high-
  // priority task. The high-priority dual queue is searched first, so the
  // high task must run before the queued normal ones.
  thread_manager tm(test_config(1));
  gran::latch gate_open(1);
  gran::latch all_done(4);
  std::vector<int> order;
  tm.spawn([&] {
    gate_open.wait();  // hold the single worker until everything is queued
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  for (int i = 0; i < 3; ++i)
    tm.spawn(
        [&order, &all_done, i] {
          order.push_back(i);  // single worker: no race
          all_done.count_down();
        },
        task_priority::normal);
  tm.spawn(
      [&order, &all_done] {
        order.push_back(100);
        all_done.count_down();
      },
      task_priority::high);
  gate_open.count_down();
  all_done.wait();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 100) << "high-priority task must run first";
}


TEST(ThreadManager, GranWorkersEnvDefault) {
  ::setenv("GRAN_WORKERS", "3", 1);
  {
    scheduler_config cfg;  // num_workers = 0 -> env wins
    cfg.pin_workers = false;
    thread_manager tm(cfg);
    EXPECT_EQ(tm.num_workers(), 3);
  }
  {
    scheduler_config cfg = test_config(2);  // explicit config beats env
    thread_manager tm(cfg);
    EXPECT_EQ(tm.num_workers(), 2);
  }
  ::unsetenv("GRAN_WORKERS");
}

TEST(ThreadManager, InstantaneousQueueGauges) {
  thread_manager tm(test_config(1));
  auto& reg = perf::registry::instance();
  // Block the single worker, then queue work and observe the gauges.
  gran::latch gate(1);
  tm.spawn([&gate] { gate.wait(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  for (int i = 0; i < 10; ++i) tm.spawn([] {});
  const double queued =
      reg.value_or("/threads/count/instantaneous/pending", 0) +
      reg.value_or("/threads/count/instantaneous/staged", 0);
  EXPECT_GE(queued, 10.0);
  gate.count_down();
  tm.wait_idle();
  EXPECT_EQ(reg.value_or("/threads/count/instantaneous/alive", -1), 0.0);
}


TEST(ThreadManager, HeartbeatCountersAndBoardAttached) {
  thread_manager tm(test_config(2));
  auto& reg = perf::registry::instance();
  EXPECT_EQ(perf::heartbeat_board::instance().active_workers(), 2);

  for (int i = 0; i < 200; ++i)
    tm.spawn([] {
      volatile double x = 1.0;
      for (int k = 0; k < 1000; ++k) x = x * 1.0000001 + 0.1;
    });
  tm.wait_idle();

  // Workers just finished a scheduler round: every heartbeat is recent and
  // the max-age gauge reflects the staleness of the oldest one.
  const double max_age = reg.value_or("/threads/watchdog/heartbeat-age-max-ns", -1);
  EXPECT_GE(max_age, 0.0);
  EXPECT_LT(max_age, 5e9);
  for (int w = 0; w < tm.num_workers(); ++w) {
    const double age = reg.value_or(
        "/threads{worker#" + std::to_string(w) + "}/watchdog/heartbeat-age-ns", -2);
    EXPECT_GE(age, 0.0) << "worker " << w;
  }

  // Stall counters are registered (and, in a healthy run, untouched since
  // the last reset).
  EXPECT_GE(reg.value_or("/threads/count/stall-stuck", -1), 0.0);
  EXPECT_GE(reg.value_or("/threads/count/stall-starved", -1), 0.0);
  EXPECT_GE(reg.value_or("/threads/count/stall-flatline", -1), 0.0);
  // The starving gauge exists; after the drain the idle workers report as
  // starving (no work to find), so it reads in [0, num_workers].
  const double starving = reg.value_or("/threads/count/instantaneous/starving", -1);
  EXPECT_GE(starving, 0.0);
  EXPECT_LE(starving, static_cast<double>(tm.num_workers()));
}

TEST(ThreadManager, HeartbeatBoardDetachedAfterStop) {
  {
    thread_manager tm(test_config(2));
    EXPECT_EQ(perf::heartbeat_board::instance().active_workers(), 2);
  }
  EXPECT_EQ(perf::heartbeat_board::instance().active_workers(), 0);
}

TEST(ThreadManager, SpawnMoveOnlyBody) {
  thread_manager tm(test_config(2));
  auto payload = std::make_unique<int>(17);
  std::atomic<int> seen{0};
  tm.spawn([p = std::move(payload), &seen] { seen = *p; });
  tm.wait_idle();
  EXPECT_EQ(seen.load(), 17);
}

TEST(ThreadManager, StressManySmallTasks) {
  thread_manager tm(test_config(4));
  std::atomic<long> sum{0};
  constexpr int n = 50'000;
  for (int i = 0; i < n; ++i) tm.spawn([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
  tm.wait_idle();
  EXPECT_EQ(sum.load(), n);
}

}  // namespace
}  // namespace gran
