// Tests for the cooperative synchronization primitives (src/sync): mutex,
// condition_variable, latch, barrier, semaphore, event, channel — exercised
// from tasks, from external threads, and mixed.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "async/gran.hpp"

namespace gran {
namespace {

scheduler_config test_config(int workers) {
  scheduler_config cfg;
  cfg.num_workers = workers;
  cfg.pin_workers = false;
  return cfg;
}

// --- mutex -------------------------------------------------------------------

TEST(Mutex, MutualExclusionAmongTasks) {
  thread_manager tm(test_config(4));
  gran::mutex m;
  long counter = 0;
  latch done(2000);
  for (int i = 0; i < 2000; ++i)
    tm.spawn([&] {
      std::lock_guard<gran::mutex> lock(m);
      ++counter;  // data race unless the mutex works
      done.count_down();
    });
  done.wait();
  EXPECT_EQ(counter, 2000);
}

TEST(Mutex, TryLock) {
  thread_manager tm(test_config(1));
  gran::mutex m;
  EXPECT_TRUE(m.try_lock());
  EXPECT_FALSE(m.try_lock());
  m.unlock();
  EXPECT_TRUE(m.try_lock());
  m.unlock();
}

TEST(Mutex, ExternalThreadCanBlock) {
  thread_manager tm(test_config(2));
  gran::mutex m;
  std::atomic<bool> task_has_lock{false};
  std::atomic<bool> task_release{false};
  tm.spawn([&] {
    m.lock();
    task_has_lock = true;
    while (!task_release) this_task::yield();
    m.unlock();
  });
  while (!task_has_lock) {
  }
  std::atomic<bool> external_acquired{false};
  std::thread external([&] {
    m.lock();  // blocks as an external waiter
    external_acquired = true;
    m.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(external_acquired.load());
  task_release = true;
  external.join();
  EXPECT_TRUE(external_acquired.load());
  tm.wait_idle();
}

// --- condition_variable --------------------------------------------------------

TEST(ConditionVariable, PredicateWait) {
  thread_manager tm(test_config(2));
  gran::mutex m;
  gran::condition_variable cv;
  int stage = 0;
  auto waiter = async([&] {
    std::unique_lock<gran::mutex> lock(m);
    cv.wait(lock, [&] { return stage == 2; });
    return stage;
  });
  auto setter = async([&] {
    {
      std::unique_lock<gran::mutex> lock(m);
      stage = 1;
    }
    cv.notify_all();  // waiter's predicate still false: must keep waiting
    {
      std::unique_lock<gran::mutex> lock(m);
      stage = 2;
    }
    cv.notify_all();
    return 0;
  });
  EXPECT_EQ(waiter.get(), 2);
  setter.get();
}

TEST(ConditionVariable, NotifyOneWakesExactlyOneEventually) {
  thread_manager tm(test_config(2));
  gran::mutex m;
  gran::condition_variable cv;
  int ready = 0;
  std::atomic<int> woken{0};
  latch done(3);
  for (int i = 0; i < 3; ++i)
    tm.spawn([&] {
      std::unique_lock<gran::mutex> lock(m);
      cv.wait(lock, [&] { return ready > 0; });
      --ready;
      ++woken;
      done.count_down();
    });
  for (int i = 0; i < 3; ++i) {
    {
      std::unique_lock<gran::mutex> lock(m);
      ++ready;
    }
    cv.notify_one();
  }
  // Stragglers may need further nudges if a notified waiter consumed two
  // tokens' worth of predicate; notify_all resolves the remainder safely.
  cv.notify_all();
  done.wait();
  EXPECT_EQ(woken.load(), 3);
}

TEST(ConditionVariable, ExternalWaiter) {
  thread_manager tm(test_config(1));
  gran::mutex m;
  gran::condition_variable cv;
  bool flag = false;
  std::thread external([&] {
    std::unique_lock<gran::mutex> lock(m);
    cv.wait(lock, [&] { return flag; });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  {
    std::unique_lock<gran::mutex> lock(m);
    flag = true;
  }
  cv.notify_all();
  external.join();
  SUCCEED();
}

// --- latch ---------------------------------------------------------------------

TEST(Latch, BasicCountdown) {
  thread_manager tm(test_config(2));
  latch l(10);
  EXPECT_FALSE(l.try_wait());
  for (int i = 0; i < 10; ++i) tm.spawn([&l] { l.count_down(); });
  l.wait();  // external wait
  EXPECT_TRUE(l.try_wait());
  l.wait();  // waiting on a released latch returns immediately
}

TEST(Latch, WaitFromTask) {
  thread_manager tm(test_config(2));
  latch l(3);
  std::atomic<bool> joined{false};
  tm.spawn([&] {
    l.wait();  // suspends the task, not the worker
    joined = true;
  });
  for (int i = 0; i < 3; ++i) tm.spawn([&l] { l.count_down(); });
  tm.wait_idle();
  EXPECT_TRUE(joined.load());
}

TEST(Latch, ArriveAndWait) {
  thread_manager tm(test_config(3));
  latch l(3);
  std::atomic<int> after{0};
  for (int i = 0; i < 3; ++i)
    tm.spawn([&] {
      l.arrive_and_wait();
      ++after;
    });
  tm.wait_idle();
  EXPECT_EQ(after.load(), 3);
}

TEST(Latch, MultiCount) {
  latch l(5);
  l.count_down(3);
  EXPECT_FALSE(l.try_wait());
  l.count_down(2);
  EXPECT_TRUE(l.try_wait());
}

// --- barrier --------------------------------------------------------------------

TEST(Barrier, PhasesSynchronize) {
  thread_manager tm(test_config(3));
  constexpr int parties = 3, rounds = 5;
  barrier b(parties);
  std::atomic<int> phase_counts[rounds] = {};
  latch done(parties);
  for (int p = 0; p < parties; ++p)
    tm.spawn([&] {
      for (int r = 0; r < rounds; ++r) {
        ++phase_counts[r];
        b.arrive_and_wait();
        // After the barrier, everyone must have arrived at round r.
        EXPECT_EQ(phase_counts[r].load(), parties);
      }
      done.count_down();
    });
  done.wait();
}

TEST(Barrier, CompletionFunctionRuns) {
  thread_manager tm(test_config(2));
  std::atomic<int> completions{0};
  barrier b(2, [&] { ++completions; });
  latch done(2);
  for (int p = 0; p < 2; ++p)
    tm.spawn([&] {
      for (int r = 0; r < 3; ++r) b.arrive_and_wait();
      done.count_down();
    });
  done.wait();
  EXPECT_EQ(completions.load(), 3);
}

TEST(Barrier, ArriveAndDrop) {
  thread_manager tm(test_config(2));
  barrier b(2);
  std::atomic<bool> alone_passed{false};
  tm.spawn([&] {
    b.arrive_and_wait();  // phase 1 with the dropper
    b.arrive_and_wait();  // now expected == 1: passes alone
    alone_passed = true;
  });
  tm.spawn([&] {
    b.arrive_and_wait();  // phase 1
    b.arrive_and_drop();  // leaves
  });
  tm.wait_idle();
  EXPECT_TRUE(alone_passed.load());
  EXPECT_EQ(b.expected(), 1);
}

// --- semaphore ------------------------------------------------------------------

TEST(Semaphore, LimitsConcurrency) {
  thread_manager tm(test_config(4));
  counting_semaphore sem(2);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  latch done(50);
  for (int i = 0; i < 50; ++i)
    tm.spawn([&] {
      sem.acquire();
      const int now = ++inside;
      int expected = max_inside.load();
      while (now > expected && !max_inside.compare_exchange_weak(expected, now)) {
      }
      this_task::yield();  // give others a chance to pile up
      --inside;
      sem.release();
      done.count_down();
    });
  done.wait();
  EXPECT_LE(max_inside.load(), 2);
  EXPECT_EQ(sem.value(), 2);
}

TEST(Semaphore, TryAcquire) {
  counting_semaphore sem(1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

TEST(Semaphore, ReleaseMany) {
  thread_manager tm(test_config(2));
  counting_semaphore sem(0);
  std::atomic<int> acquired{0};
  latch done(5);
  for (int i = 0; i < 5; ++i)
    tm.spawn([&] {
      sem.acquire();
      ++acquired;
      done.count_down();
    });
  sem.release(5);
  done.wait();
  EXPECT_EQ(acquired.load(), 5);
  EXPECT_EQ(sem.value(), 0);
}

// --- event ----------------------------------------------------------------------

TEST(Event, SetReleasesAllWaiters) {
  thread_manager tm(test_config(2));
  event e;
  std::atomic<int> released{0};
  latch done(4);
  for (int i = 0; i < 4; ++i)
    tm.spawn([&] {
      e.wait();
      ++released;
      done.count_down();
    });
  EXPECT_EQ(released.load(), 0);
  e.set();
  done.wait();
  EXPECT_EQ(released.load(), 4);
  EXPECT_TRUE(e.is_set());
}

TEST(Event, WaitAfterSetReturnsImmediately) {
  thread_manager tm(test_config(1));
  event e;
  e.set();
  e.wait();  // external, already set
  std::atomic<bool> ran{false};
  tm.spawn([&] {
    e.wait();
    ran = true;
  });
  tm.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(Event, Reset) {
  event e;
  e.set();
  EXPECT_TRUE(e.is_set());
  e.reset();
  EXPECT_FALSE(e.is_set());
}

// --- channel --------------------------------------------------------------------

TEST(Channel, OrderedDelivery) {
  thread_manager tm(test_config(2));
  channel<int> ch(8);
  auto producer = async([&] {
    for (int i = 0; i < 100; ++i) ch.send(i);
    ch.close();
    return 0;
  });
  auto consumer = async([&] {
    int expected = 0;
    while (auto v = ch.recv()) EXPECT_EQ(*v, expected++);
    return expected;
  });
  EXPECT_EQ(consumer.get(), 100);
  producer.get();
}

TEST(Channel, BackpressureBlocksSender) {
  thread_manager tm(test_config(2));
  channel<int> ch(2);
  std::atomic<int> sent{0};
  tm.spawn([&] {
    for (int i = 0; i < 10; ++i) {
      ch.send(i);
      ++sent;
    }
  });
  // Without a consumer the sender can get at most capacity items in.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_LE(sent.load(), 3);
  int received = 0;
  while (received < 10) {
    ASSERT_TRUE(ch.recv().has_value());
    ++received;
  }
  tm.wait_idle();
  EXPECT_EQ(sent.load(), 10);
}

TEST(Channel, CloseUnblocksEveryone) {
  thread_manager tm(test_config(2));
  channel<int> ch(1);
  auto r1 = async([&] { return ch.recv().has_value(); });
  auto r2 = async([&] { return ch.recv().has_value(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ch.close();
  EXPECT_FALSE(r1.get());
  EXPECT_FALSE(r2.get());
  EXPECT_FALSE(ch.send(1));  // closed channel rejects sends
}

TEST(Channel, DrainAfterClose) {
  thread_manager tm(test_config(1));
  channel<int> ch(8);
  ch.send(1);
  ch.send(2);
  ch.close();
  EXPECT_EQ(ch.recv().value(), 1);
  EXPECT_EQ(ch.recv().value(), 2);
  EXPECT_FALSE(ch.recv().has_value());
}

TEST(Channel, TrySendTryRecv) {
  thread_manager tm(test_config(1));
  channel<int> ch(1);
  EXPECT_FALSE(ch.try_recv().has_value());
  EXPECT_TRUE(ch.try_send(7));
  EXPECT_FALSE(ch.try_send(8));  // full
  EXPECT_EQ(ch.try_recv().value(), 7);
}

TEST(Channel, ManyProducersManyConsumers) {
  thread_manager tm(test_config(4));
  channel<int> ch(16);
  constexpr int producers = 4, per = 500;
  std::atomic<long> total{0};
  std::atomic<int> producers_left{producers};
  latch done(producers + 3);
  for (int p = 0; p < producers; ++p)
    tm.spawn([&] {
      for (int i = 1; i <= per; ++i) ch.send(i);
      if (--producers_left == 0) ch.close();
      done.count_down();
    });
  for (int c = 0; c < 3; ++c)
    tm.spawn([&] {
      while (auto v = ch.recv()) total += *v;
      done.count_down();
    });
  done.wait();
  EXPECT_EQ(total.load(), static_cast<long>(producers) * per * (per + 1) / 2);
}

}  // namespace
}  // namespace gran
